"""Tests for source-location plumbing and the diagnostic hierarchy."""

import pytest

from repro.lang import (
    LexError,
    ParseError,
    SemanticError,
    SourceFile,
    Span,
    TangramError,
    analyze_source,
    parse_program,
    tokenize,
)
from repro.lang.errors import TransformError
from repro.lang.source import DUMMY_SPAN


class TestSourceFile:
    def test_line_col_mapping(self):
        source = SourceFile("ab\ncde\n\nf", "t")
        assert source.line_col(0) == (1, 1)
        assert source.line_col(3) == (2, 1)
        assert source.line_col(5) == (2, 3)
        assert source.line_col(8) == (4, 1)

    def test_offset_past_end_clamps(self):
        source = SourceFile("ab", "t")
        assert source.line_col(100) == (1, 3)

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            SourceFile("ab", "t").line_col(-1)

    def test_line_text(self):
        source = SourceFile("first\nsecond", "t")
        assert source.line_text(1) == "first"
        assert source.line_text(2) == "second"
        with pytest.raises(ValueError):
            source.line_text(3)

    def test_span_describe(self):
        source = SourceFile("hello\nworld", "file.tgm")
        span = Span(6, 11, source)
        assert span.describe() == "file.tgm:2:1"
        assert span.text == "world"

    def test_dummy_span_safe(self):
        assert DUMMY_SPAN.describe().startswith("<offset")
        assert DUMMY_SPAN.caret_snippet() == ""


class TestDiagnostics:
    def test_lex_error_carries_location(self):
        with pytest.raises(LexError) as exc:
            tokenize("a @ b", "bad.tgm")
        message = str(exc.value)
        assert "bad.tgm:1:3" in message
        assert "^" in message

    def test_parse_error_carries_location(self):
        with pytest.raises(ParseError) as exc:
            parse_program("__codelet int f(const Array<1,int> in) { return ; ", "p.tgm")
        assert "p.tgm" in str(exc.value)

    def test_semantic_error_names_symbol(self):
        with pytest.raises(SemanticError) as exc:
            analyze_source(
                "__codelet int f(const Array<1,int> in) { return ghost; }"
            )
        assert "ghost" in str(exc.value)

    def test_error_hierarchy(self):
        assert issubclass(LexError, TangramError)
        assert issubclass(ParseError, TangramError)
        assert issubclass(SemanticError, TangramError)
        assert issubclass(TransformError, TangramError)

    def test_stage_labels(self):
        assert LexError("x").stage == "lex"
        assert TransformError("x").stage == "transform"
        assert "transform error" in str(TransformError("boom"))
