"""Unit tests for semantic analysis: typing, scoping, classification."""

import pytest

from repro.lang import (
    SemanticError,
    TypeMismatchError,
    UnknownSymbolError,
    analyze_source,
)

SCALAR = """
__codelet __tag(scalar)
int f(const Array<1,int> in) {
  unsigned len = in.Size();
  int acc = 0;
  for (unsigned i = 0; i < len; i += 1) { acc += in[i]; }
  return acc;
}
"""


def analyze_one(body, header="int f(const Array<1,int> in)", prefix=""):
    text = f"{prefix}__codelet\n{header} {{\n{body}\n}}"
    return analyze_source(text).codelets[-1]


class TestClassification:
    def test_scalar_is_atomic_autonomous(self):
        info = analyze_source(SCALAR).codelets[0]
        assert info.kind == "atomic_autonomous"

    def test_vector_makes_cooperative(self):
        info = analyze_one("Vector vt();\nreturn 0;")
        assert info.kind == "cooperative"
        assert info.vector is not None

    def test_map_makes_compound(self):
        info = analyze_one(
            "__tunable unsigned p;\n"
            "Sequence start(i);\nSequence inc(p);\nSequence end(in.Size());\n"
            "Map m(f, partition(in, p, start, inc, end));\n"
            "return f(m);"
        )
        assert info.kind == "compound"
        assert len(info.maps) == 1
        assert info.maps[0].spectrum == "f"

    def test_coop_without_vector_rejected(self):
        with pytest.raises(SemanticError):
            analyze_source(
                "__codelet __coop int f(const Array<1,int> in) { return 0; }"
            )

    def test_vector_plus_map_rejected(self):
        with pytest.raises(SemanticError):
            analyze_one(
                "Vector vt();\n"
                "__tunable unsigned p;\n"
                "Sequence start(i);\nSequence inc(p);\nSequence end(in.Size());\n"
                "Map m(f, partition(in, p, start, inc, end));\n"
                "return f(m);"
            )


class TestTyping:
    def test_container_indexing_yields_element(self):
        info = analyze_one("int x = in[0];\nreturn x;")
        assert info.kind == "atomic_autonomous"

    def test_float_to_int_narrowing_allowed_c_style(self):
        analyze_one("int x = 1.5f;\nreturn x;")

    def test_modulo_requires_integers(self):
        with pytest.raises(TypeMismatchError):
            analyze_one("float x = 1.0f;\nfloat y = x % 2.0f;\nreturn 0;")

    def test_undeclared_identifier(self):
        with pytest.raises(UnknownSymbolError):
            analyze_one("return missing;")

    def test_shadowing_in_inner_scope_allowed(self):
        analyze_one("int x = 1;\nif (x > 0) { int y = 2; x = y; }\nreturn x;")

    def test_inner_scope_not_visible_outside(self):
        with pytest.raises(UnknownSymbolError):
            analyze_one("if (1 > 0) { int y = 2; }\nreturn y;")

    def test_redeclaration_in_same_scope_rejected(self):
        with pytest.raises(SemanticError):
            analyze_one("int x = 1;\nint x = 2;\nreturn x;")

    def test_assign_to_parameter_rejected(self):
        with pytest.raises(SemanticError):
            analyze_one("in = in;\nreturn 0;", header="int f(const Array<1,int> in)")

    def test_const_container_write_rejected(self):
        with pytest.raises(SemanticError):
            analyze_one("in[0] = 5;\nreturn 0;")

    def test_ternary_merges_types(self):
        analyze_one("int x = (1 > 0) ? 1 : 2;\nreturn x;")

    def test_return_type_checked(self):
        # returning a Vector-typed thing is impossible; but returning
        # nothing from an int codelet is an error
        with pytest.raises(SemanticError):
            analyze_one("int x = 1;")  # no return at all

    def test_min_max_builtin(self):
        analyze_one("int x = min(1, 2);\nint y = max(x, 3);\nreturn y;")

    def test_min_wrong_arity(self):
        with pytest.raises(SemanticError):
            analyze_one("int x = min(1);\nreturn x;")


class TestQualifierRules:
    def test_atomic_requires_shared(self):
        with pytest.raises(SemanticError):
            analyze_one("_atomicAdd int t;\nreturn 0;")

    def test_tunable_must_be_integral(self):
        with pytest.raises(SemanticError):
            analyze_one("__tunable float p;\nreturn 0;")

    def test_tunable_no_initializer(self):
        with pytest.raises(SemanticError):
            analyze_one("__tunable unsigned p = 4;\nreturn 0;")

    def test_tunable_not_assignable(self):
        with pytest.raises(SemanticError):
            analyze_one("__tunable unsigned p;\np = 3;\nreturn 0;")

    def test_shared_atomic_array_allowed(self):
        info = analyze_one("__shared _atomicAdd int hist[64];\nreturn 0;")
        assert info.shared[0].atomic == "add"
        assert info.shared[0].is_array


class TestVectorMethods:
    def test_known_methods(self):
        analyze_one(
            "Vector vt();\n"
            "int a = vt.ThreadId() + vt.LaneId() + vt.VectorId();\n"
            "int b = vt.Size() + vt.MaxSize();\n"
            "return a + b;"
        )

    def test_unknown_method_rejected(self):
        with pytest.raises(SemanticError):
            analyze_one("Vector vt();\nreturn vt.WarpId();")

    def test_two_vectors_rejected(self):
        with pytest.raises(SemanticError):
            analyze_one("Vector a();\nVector b();\nreturn 0;")


class TestMapAndPartition:
    PREFIX = (
        "__tunable unsigned p;\n"
        "Sequence start(i);\nSequence inc(p);\nSequence end(in.Size());\n"
    )

    def test_map_atomic_api_recorded(self):
        info = analyze_one(
            self.PREFIX
            + "Map m(f, partition(in, p, start, inc, end));\n"
            + "m.atomicAdd();\nreturn f(m);"
        )
        assert info.maps[0].atomic_op == "add"

    def test_double_atomic_api_rejected(self):
        with pytest.raises(SemanticError):
            analyze_one(
                self.PREFIX
                + "Map m(f, partition(in, p, start, inc, end));\n"
                + "m.atomicAdd();\nm.atomicMax();\nreturn f(m);"
            )

    def test_partition_wrong_arity(self):
        with pytest.raises(SemanticError):
            analyze_one(self.PREFIX + "Map m(f, partition(in, p));\nreturn 0;")

    def test_partition_sequence_args_typed(self):
        with pytest.raises(TypeMismatchError):
            analyze_one(
                "__tunable unsigned p;\nSequence start(i);\n"
                "Map m(f, partition(in, p, start, p, start));\nreturn 0;"
            )

    def test_map_unknown_spectrum(self):
        with pytest.raises(SemanticError):
            analyze_one(
                self.PREFIX + "Map m(nope, partition(in, p, start, inc, end));\n"
                "return 0;"
            )


class TestSpectrumRules:
    def test_signature_mismatch_rejected(self):
        with pytest.raises(SemanticError):
            analyze_source(
                "__codelet int f(const Array<1,int> in) { return 0; }\n"
                "__codelet float f(const Array<1,float> in) { return 0.0f; }"
            )

    def test_duplicate_tags_rejected(self):
        with pytest.raises(SemanticError):
            analyze_source(
                "__codelet __tag(a) int f(const Array<1,int> in) { return 0; }\n"
                "__codelet __tag(a) int f(const Array<1,int> in) { return 1; }"
            )

    def test_find_by_tag(self):
        program = analyze_source(
            "__codelet __tag(x) int f(const Array<1,int> in) { return 0; }\n"
            "__codelet __tag(y) int f(const Array<1,int> in) { return 1; }"
        )
        assert program.find("f", "y").codelet.tag == "y"
        with pytest.raises(SemanticError):
            program.find("f", "z")

    def test_first_param_must_be_container(self):
        with pytest.raises(SemanticError):
            analyze_source("__codelet int f(int x) { return x; }")
