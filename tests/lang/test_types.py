"""Unit tests for the DSL type system (promotion and assignability)."""

import pytest

from repro.lang.types import (
    BOOL,
    BufferType,
    ContainerType,
    DOUBLE,
    FLOAT,
    INT,
    MapType,
    PartitionType,
    ScalarType,
    SEQUENCE,
    UNSIGNED,
    VECTOR,
    VOID,
    assignable,
    promote,
)


class TestScalars:
    def test_kind_validation(self):
        with pytest.raises(ValueError):
            ScalarType("quaternion")

    def test_predicates(self):
        assert INT.is_scalar() and INT.is_numeric() and INT.is_integral()
        assert FLOAT.is_numeric() and not FLOAT.is_integral()
        assert BOOL.is_integral() and not BOOL.is_numeric()
        assert not VOID.is_numeric()
        assert not VECTOR.is_scalar()

    def test_str(self):
        assert str(UNSIGNED) == "unsigned"
        assert str(ContainerType(1, FLOAT)) == "const Array<1,float>"
        assert str(BufferType(INT)) == "int[]"
        assert str(MapType(FLOAT)) == "Map<float>"
        assert str(PartitionType(INT)) == "Partition<int>"
        assert str(SEQUENCE) == "Sequence"


class TestPromotion:
    @pytest.mark.parametrize(
        "left,right,expected",
        [
            (INT, INT, INT),
            (INT, UNSIGNED, UNSIGNED),
            (INT, FLOAT, FLOAT),
            (FLOAT, DOUBLE, DOUBLE),
            (UNSIGNED, DOUBLE, DOUBLE),
            (BOOL, BOOL, INT),  # bool arithmetic computes in int, like C
            (BOOL, FLOAT, FLOAT),
        ],
    )
    def test_usual_conversions(self, left, right, expected):
        assert promote(left, right) == expected
        assert promote(right, left) == expected

    def test_void_has_no_value(self):
        with pytest.raises(TypeError):
            promote(VOID, INT)

    def test_non_scalar_rejected(self):
        with pytest.raises(TypeError):
            promote(INT, VECTOR)


class TestAssignability:
    def test_scalar_conversions_free(self):
        assert assignable(INT, FLOAT)  # C-style narrowing allowed
        assert assignable(FLOAT, INT)
        assert assignable(BOOL, INT)

    def test_void_never_assignable(self):
        assert not assignable(VOID, INT)
        assert not assignable(INT, VOID)

    def test_non_scalars_need_exact_match(self):
        a = ContainerType(1, FLOAT)
        b = ContainerType(1, INT)
        assert assignable(a, ContainerType(1, FLOAT))
        assert not assignable(a, b)
        assert not assignable(a, FLOAT)
        assert assignable(MapType(INT), MapType(INT))
        assert not assignable(MapType(INT), MapType(FLOAT))
