"""Unit tests for the DSL parser."""

import pytest

from repro.lang import ParseError, ast, parse_expression, parse_program


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expression("a + b * c")
        assert isinstance(expr, ast.Binary) and expr.op == "+"
        assert isinstance(expr.rhs, ast.Binary) and expr.rhs.op == "*"

    def test_parentheses_override(self):
        expr = parse_expression("(a + b) * c")
        assert expr.op == "*"
        assert isinstance(expr.lhs, ast.Binary) and expr.lhs.op == "+"

    def test_comparison_below_shift(self):
        expr = parse_expression("a << 2 < b")
        assert expr.op == "<"
        assert expr.lhs.op == "<<"

    def test_logical_lowest(self):
        expr = parse_expression("a < b && c > d || e == f")
        assert expr.op == "||"
        assert expr.lhs.op == "&&"

    def test_ternary_right_associative(self):
        expr = parse_expression("a ? b : c ? d : e")
        assert isinstance(expr, ast.Ternary)
        assert isinstance(expr.otherwise, ast.Ternary)

    def test_unary_minus_binds_tighter_than_mul(self):
        expr = parse_expression("-a * b")
        assert expr.op == "*"
        assert isinstance(expr.lhs, ast.Unary)

    def test_method_call_chain(self):
        expr = parse_expression("vthread.ThreadId()")
        assert isinstance(expr, ast.MethodCall)
        assert expr.method == "ThreadId"
        assert expr.obj.name == "vthread"

    def test_index_of_method_result(self):
        expr = parse_expression("tmp[vthread.ThreadId() + offset]")
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.index, ast.Binary)

    def test_call_with_args(self):
        expr = parse_expression("min((i + 1) * tile, len)")
        assert isinstance(expr, ast.Call)
        assert expr.name == "min"
        assert len(expr.args) == 2

    def test_unsigned_literal(self):
        expr = parse_expression("5u")
        assert isinstance(expr, ast.IntLiteral) and expr.unsigned

    def test_float_literal_single(self):
        expr = parse_expression("2.5f")
        assert isinstance(expr, ast.FloatLiteral) and expr.single

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("a + b )")

    def test_missing_operand_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("a + ")


def _single_codelet(body: str, header="int f(const Array<1,int> in)"):
    text = f"__codelet\n{header} {{\n{body}\n}}"
    program = parse_program(text)
    assert len(program.codelets) == 1
    return program.codelets[0]


class TestCodelets:
    def test_minimal_codelet(self):
        codelet = _single_codelet("return 0;")
        assert codelet.name == "f"
        assert str(codelet.return_type) == "int"
        assert len(codelet.params) == 1
        assert str(codelet.params[0].declared_type) == "const Array<1,int>"

    def test_coop_and_tag_qualifiers(self):
        program = parse_program(
            "__codelet __coop __tag(shared_V1)\n"
            "int f(const Array<1,int> in) { return 0; }"
        )
        codelet = program.codelets[0]
        assert codelet.coop
        assert codelet.tag == "shared_V1"
        assert codelet.display_name() == "f@shared_V1"

    def test_multiple_codelets_same_spectrum(self):
        program = parse_program(
            "__codelet int f(const Array<1,int> in) { return 0; }\n"
            "__codelet int f(const Array<1,int> in) { return 1; }"
        )
        assert list(program.spectrums()) == ["f"]
        assert len(program.spectrums()["f"]) == 2

    def test_missing_codelet_keyword_fails(self):
        with pytest.raises(ParseError):
            parse_program("int f(const Array<1,int> in) { return 0; }")


class TestStatements:
    def test_for_loop_shape(self):
        codelet = _single_codelet(
            "int acc = 0;\n"
            "for (unsigned i = 0; i < in.Size(); i += 1) { acc += in[i]; }\n"
            "return acc;"
        )
        loop = codelet.body.stmts[1]
        assert isinstance(loop, ast.For)
        assert isinstance(loop.init, ast.VarDecl)
        assert isinstance(loop.step, ast.Assign) and loop.step.op == "+="

    def test_for_with_increment_operator(self):
        codelet = _single_codelet(
            "int acc = 0;\n"
            "for (unsigned i = 0; i < 4; i++) { acc += 1; }\n"
            "return acc;"
        )
        loop = codelet.body.stmts[1]
        assert loop.step.op == "+="
        assert loop.step.value.value == 1

    def test_if_else(self):
        codelet = _single_codelet(
            "int x = 0;\nif (x > 0) { x = 1; } else { x = 2; }\nreturn x;"
        )
        branch = codelet.body.stmts[1]
        assert isinstance(branch, ast.If)
        assert branch.otherwise is not None

    def test_if_without_braces(self):
        codelet = _single_codelet("int x = 0;\nif (x > 0)\n  x = 1;\nreturn x;")
        branch = codelet.body.stmts[1]
        assert isinstance(branch.then, ast.Block)
        assert len(branch.then.stmts) == 1

    def test_while_loop(self):
        codelet = _single_codelet("int x = 8;\nwhile (x > 0) { x /= 2; }\nreturn x;")
        assert isinstance(codelet.body.stmts[1], ast.While)

    def test_assignment_targets(self):
        with pytest.raises(ParseError):
            _single_codelet("1 = 2;\nreturn 0;")

    def test_compound_assignment(self):
        codelet = _single_codelet("int x = 0;\nx <<= 2;\nreturn x;")
        assert codelet.body.stmts[1].op == "<<="


class TestDeclarations:
    def test_shared_array_decl(self):
        codelet = _single_codelet(
            "__shared int tmp[in.Size()];\nreturn 0;"
        )
        decl = codelet.body.stmts[0]
        assert decl.shared and decl.is_array

    def test_shared_atomic_scalar(self):
        codelet = _single_codelet("__shared _atomicAdd int t;\nreturn 0;")
        decl = codelet.body.stmts[0]
        assert decl.shared and decl.atomic == "add" and not decl.is_array

    def test_double_atomic_qualifier_rejected(self):
        with pytest.raises(ParseError):
            _single_codelet("__shared _atomicAdd _atomicMax int t;\nreturn 0;")

    def test_tunable(self):
        codelet = _single_codelet("__tunable unsigned p;\nreturn 0;")
        assert codelet.body.stmts[0].tunable

    def test_vector_decl(self):
        codelet = _single_codelet("Vector vt();\nreturn 0;")
        decl = codelet.body.stmts[0]
        assert str(decl.declared_type) == "Vector"
        assert decl.ctor_args == []

    def test_sequence_decl(self):
        codelet = _single_codelet("Sequence start(i * 4);\nreturn 0;")
        decl = codelet.body.stmts[0]
        assert str(decl.declared_type) == "Sequence"
        assert len(decl.ctor_args) == 1

    def test_map_decl(self):
        codelet = _single_codelet(
            "__tunable unsigned p;\n"
            "Sequence start(i);\nSequence inc(p);\nSequence end(in.Size());\n"
            "Map m(f, partition(in, p, start, inc, end));\n"
            "return 0;"
        )
        decl = codelet.body.stmts[4]
        assert decl.name == "m"
        assert len(decl.ctor_args) == 2

    def test_map_decl_wrong_arity(self):
        with pytest.raises(ParseError):
            _single_codelet("Map m(f);\nreturn 0;")

    def test_unsigned_int_spelled_out(self):
        codelet = _single_codelet("unsigned int x = 0;\nreturn 0;")
        assert str(codelet.body.stmts[0].declared_type) == "unsigned"
