"""Unit tests for AST utilities: traversal, transformation, cloning."""

from repro.lang import ast, parse_expression, parse_program
from repro.lang.source import Span, SourceFile

TEXT = """
__codelet
int f(const Array<1,int> in) {
  int acc = 0;
  for (unsigned i = 0; i < in.Size(); i += 1) {
    acc += in[i];
  }
  return acc;
}
"""


def test_walk_visits_all_nodes():
    program = parse_program(TEXT)
    nodes = list(ast.walk(program))
    assert any(isinstance(n, ast.For) for n in nodes)
    assert any(isinstance(n, ast.MethodCall) for n in nodes)
    assert any(isinstance(n, ast.Index) for n in nodes)


def test_find_all():
    program = parse_program(TEXT)
    assigns = ast.find_all(program, ast.Assign)
    # i += 1 and acc += in[i]
    assert len(assigns) == 2


def test_clone_is_deep():
    program = parse_program(TEXT)
    clone = program.clone()
    original_loop = ast.find_all(program, ast.For)[0]
    cloned_loop = ast.find_all(clone, ast.For)[0]
    assert original_loop is not cloned_loop
    cloned_loop.body.stmts.clear()
    assert len(original_loop.body.stmts) == 1


def test_expr_structural_equality_ignores_span():
    a = parse_expression("x + 1")
    b = parse_expression("x  +  1")
    assert a == b


def test_expr_inequality():
    assert parse_expression("x + 1") != parse_expression("x + 2")


def test_dump_is_readable():
    text = ast.dump(parse_expression("a ? b : c"))
    assert "Ternary" in text
    assert "Ident(name='a')" in text


class _Renamer(ast.NodeTransformer):
    def visit_Ident(self, node):
        if node.name == "acc":
            return ast.Ident(name="total", span=node.span)
        return node


def test_transformer_replaces_nodes():
    program = parse_program(TEXT)
    _Renamer().visit(program)
    names = {n.name for n in ast.walk(program) if isinstance(n, ast.Ident)}
    assert "total" in names
    assert "acc" not in names


class _StmtDeleter(ast.NodeTransformer):
    def visit_For(self, node):
        return None


def test_transformer_deletes_statements():
    program = parse_program(TEXT)
    _StmtDeleter().visit(program)
    assert not ast.find_all(program, ast.For)


class _StmtSplicer(ast.NodeTransformer):
    def visit_Return(self, node):
        extra = ast.ExprStmt(expr=ast.IntLiteral(value=0))
        return [extra, node]


def test_transformer_splices_lists():
    program = parse_program(TEXT)
    _StmtSplicer().visit(program)
    body = program.codelets[0].body.stmts
    assert isinstance(body[-1], ast.Return)
    assert isinstance(body[-2], ast.ExprStmt)


def test_span_merge_and_snippet():
    source = SourceFile("hello world", "t.tgm")
    a = Span(0, 5, source)
    b = Span(6, 11, source)
    merged = a.merge(b)
    assert merged.text == "hello world"
    assert "^^^^^" in a.caret_snippet()


def test_program_spectrums_groups_in_order():
    program = parse_program(
        "__codelet int a(const Array<1,int> in) { return 0; }\n"
        "__codelet int b(const Array<1,int> in) { return 0; }\n"
        "__codelet int a(const Array<1,int> in) { return 1; }"
    )
    groups = program.spectrums()
    assert list(groups) == ["a", "b"]
    assert len(groups["a"]) == 2
