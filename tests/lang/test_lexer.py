"""Unit tests for the DSL lexer."""

import pytest

from repro.lang import LexError, TokenKind, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)[:-1]]  # drop EOF


def texts(text):
    return [t.text for t in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifiers(self):
        assert kinds("foo bar_baz _x x9") == [TokenKind.IDENT] * 4

    def test_keywords_are_not_identifiers(self):
        assert kinds("int unsigned float if else for return") == [
            TokenKind.KW_INT,
            TokenKind.KW_UNSIGNED,
            TokenKind.KW_FLOAT,
            TokenKind.KW_IF,
            TokenKind.KW_ELSE,
            TokenKind.KW_FOR,
            TokenKind.KW_RETURN,
        ]

    def test_dsl_qualifiers(self):
        assert kinds("__codelet __coop __tag __shared __tunable") == [
            TokenKind.KW_CODELET,
            TokenKind.KW_COOP,
            TokenKind.KW_TAG,
            TokenKind.KW_SHARED,
            TokenKind.KW_TUNABLE,
        ]

    def test_atomic_qualifiers(self):
        assert kinds("_atomicAdd _atomicSub _atomicMax _atomicMin") == [
            TokenKind.KW_ATOMIC_ADD,
            TokenKind.KW_ATOMIC_SUB,
            TokenKind.KW_ATOMIC_MAX,
            TokenKind.KW_ATOMIC_MIN,
        ]

    def test_primitive_keywords(self):
        assert kinds("Array Sequence Map Vector") == [
            TokenKind.KW_ARRAY,
            TokenKind.KW_SEQUENCE,
            TokenKind.KW_MAP,
            TokenKind.KW_VECTOR,
        ]

    def test_similar_identifier_is_not_keyword(self):
        assert kinds("interval Arrays vectorize")[0] is TokenKind.IDENT
        assert all(k is TokenKind.IDENT for k in kinds("interval Arrays"))


class TestNumbers:
    def test_decimal_int(self):
        tokens = tokenize("42")
        assert tokens[0].kind is TokenKind.INT_LITERAL
        assert tokens[0].text == "42"

    def test_unsigned_suffix(self):
        assert tokenize("42u")[0].text == "42u"
        assert tokenize("42U")[0].kind is TokenKind.INT_LITERAL

    def test_hex_literal(self):
        assert tokenize("0xFF")[0].kind is TokenKind.INT_LITERAL
        assert tokenize("0x1aB")[0].text == "0x1aB"

    def test_hex_without_digits_fails(self):
        with pytest.raises(LexError):
            tokenize("0x")

    def test_float_literals(self):
        for text in ("1.5", "0.25f", "3.402823e38f", "1e10", "2.5E-3", "7f"):
            token = tokenize(text)[0]
            assert token.kind is TokenKind.FLOAT_LITERAL, text

    def test_int_then_member_access_is_not_float(self):
        # `2.x` should not lex as a float
        assert kinds("x.Size") == [TokenKind.IDENT, TokenKind.DOT, TokenKind.IDENT]

    def test_invalid_suffix_rejected(self):
        with pytest.raises(LexError):
            tokenize("12abc")


class TestOperators:
    def test_maximal_munch(self):
        assert kinds("<<= >>= << >> <= >= == != += -= && || ++ --") == [
            TokenKind.SHL_ASSIGN,
            TokenKind.SHR_ASSIGN,
            TokenKind.SHL,
            TokenKind.SHR,
            TokenKind.LE,
            TokenKind.GE,
            TokenKind.EQ,
            TokenKind.NE,
            TokenKind.PLUS_ASSIGN,
            TokenKind.MINUS_ASSIGN,
            TokenKind.AND_AND,
            TokenKind.OR_OR,
            TokenKind.PLUS_PLUS,
            TokenKind.MINUS_MINUS,
        ]

    def test_punctuation(self):
        assert kinds("( ) { } [ ] , ; . ? :") == [
            TokenKind.LPAREN,
            TokenKind.RPAREN,
            TokenKind.LBRACE,
            TokenKind.RBRACE,
            TokenKind.LBRACKET,
            TokenKind.RBRACKET,
            TokenKind.COMMA,
            TokenKind.SEMICOLON,
            TokenKind.DOT,
            TokenKind.QUESTION,
            TokenKind.COLON,
        ]

    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")


class TestCommentsAndTrivia:
    def test_line_comment(self):
        assert texts("a // comment here\n b") == ["a", "b"]

    def test_block_comment(self):
        assert texts("a /* multi\nline */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_division_is_not_comment(self):
        assert kinds("a / b") == [TokenKind.IDENT, TokenKind.SLASH, TokenKind.IDENT]


class TestSpans:
    def test_token_spans_point_into_source(self):
        tokens = tokenize("foo + bar")
        assert tokens[0].span.text == "foo"
        assert tokens[1].span.text == "+"
        assert tokens[2].span.text == "bar"

    def test_span_line_col(self):
        tokens = tokenize("a\n  b")
        line, col = tokens[1].span.source.line_col(tokens[1].span.start)
        assert (line, col) == (2, 3)
