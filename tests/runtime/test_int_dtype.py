"""Integer-element reductions end to end (the paper's Figure 1 codelets
are written over int; the evaluation uses float32 — we support both)."""

import numpy as np
import pytest

from repro import ReductionFramework


@pytest.fixture(scope="module")
def fw_int():
    return ReductionFramework("add", ctype="int")


class TestIntReductions:
    def test_dtype_property(self, fw_int, fw_add):
        assert fw_int.dtype == np.int32
        assert fw_add.dtype == np.float32

    def test_exact_integer_sums(self, fw_int, rng):
        data = rng.integers(-1000, 1000, size=54321).astype(np.int32)
        for label in ("l", "m", "n", "p", "a", "e"):
            result = fw_int.run(data, label)
            assert result.value == float(data.sum()), label

    def test_int_max_with_negatives(self, rng):
        fw = ReductionFramework("max", ctype="int")
        data = (-rng.integers(1, 10_000, size=4096)).astype(np.int32)
        assert fw.run(data, "p").value == float(data.max())

    def test_int_min(self, rng):
        fw = ReductionFramework("min", ctype="int")
        data = rng.integers(-500, 500, size=4096).astype(np.int32)
        assert fw.run(data, "n").value == float(data.min())

    def test_plan_dtype_meta(self, fw_int):
        plan = fw_int.build("p", 1000)
        assert plan.meta["dtype"] == "int32"

    def test_identity_memset_fits_int32(self, rng):
        """max/min identities must be int32-representable (no overflow)."""
        fw = ReductionFramework("max", ctype="int")
        data = rng.integers(-100, 100, size=100).astype(np.int32)
        assert fw.run(data, "n").value == float(data.max())

    def test_float_framework_unchanged(self, fw_add, rng):
        data = rng.random(1000).astype(np.float32)
        result = fw_add.run(data, "p")
        assert result.value == pytest.approx(float(data.sum()), rel=1e-5)
