"""ReductionFramework under concurrent use: the serving prerequisite.

One framework instance is shared by every request of a serve session's
tenant population, so ``run``/``profile`` must be safe to call from
many threads at once — and, being a deterministic simulator, must
return BIT-IDENTICAL results regardless of interleaving.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.runtime import ReductionFramework

THREADS = 8


class TestSharedFrameworkThreads:
    def test_8_threads_bit_identical_results(self):
        fw = ReductionFramework(op="add")
        rng = np.random.default_rng(17)
        payloads = [
            rng.standard_normal(int(n)).astype(np.float32)
            for n in rng.integers(1, 8192, size=24)
        ]
        versions = ["p", "b", "m", "e"]
        # Single-threaded reference, computed first.
        expected = {
            (i, v): fw.run(data, version=v).value
            for i, data in enumerate(payloads)
            for v in versions
        }
        errors = []
        barrier = threading.Barrier(THREADS)

        def worker(offset):
            barrier.wait()  # maximize interleaving
            for step in range(len(payloads)):
                i = (offset + step) % len(payloads)
                v = versions[(offset + step) % len(versions)]
                value = fw.run(payloads[i], version=v).value
                if value != expected[(i, v)]:
                    errors.append((i, v, value, expected[(i, v)]))

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            list(pool.map(worker, range(THREADS)))
        assert errors == []

    def test_8_threads_distinct_frameworks_same_op(self):
        # Concurrent construction exercises the frontend memo's
        # per-key build locks (one pipeline build, everyone shares it).
        results = [None] * THREADS
        data = np.arange(1000, dtype=np.float32)

        def build_and_run(i):
            fw = ReductionFramework(op="add")
            results[i] = fw.run(data, version="p").value

        threads = [
            threading.Thread(target=build_and_run, args=(i,))
            for i in range(THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(results)) == 1

    def test_frontend_memo_shares_pipeline(self):
        a = ReductionFramework(op="max")
        b = ReductionFramework(op="max")
        assert a.pre is b.pre

    @pytest.mark.parametrize("engine", ["interpreted", "vector"])
    def test_threads_across_backends(self, engine):
        fw = ReductionFramework(op="min", engine=engine)
        rng = np.random.default_rng(23)
        data = rng.standard_normal(4097).astype(np.float32)
        expected = fw.run(data, version="n").value

        outcomes = []

        def worker():
            outcomes.append(fw.run(data, version="n").value)

        threads = [threading.Thread(target=worker) for _ in range(THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert outcomes == [expected] * THREADS
