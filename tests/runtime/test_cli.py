"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_variants(self, capsys):
        assert main(["variants"]) == 0
        out = capsys.readouterr().out
        assert "pruned: 30" in out
        assert "(p) *" in out

    def test_passes(self, capsys):
        assert main(["passes"]) == 0
        out = capsys.readouterr().out
        assert "shuffle pass" in out
        assert "shared-atomic pass" in out

    def test_passes_with_unroll(self, capsys):
        assert main(["passes", "--unroll"]) == 0
        assert "unroll pass" in capsys.readouterr().out

    def test_cuda(self, capsys):
        assert main(["cuda", "p"]) == 0
        out = capsys.readouterr().out
        assert "__global__" in out
        assert "__shfl_down" in out

    def test_reduce_success(self, capsys):
        assert main(["reduce", "5000", "--version", "m"]) == 0
        out = capsys.readouterr().out
        assert "relative error" in out
        assert "kernel launches: 1" in out

    def test_reduce_with_tunables(self, capsys):
        assert main(["reduce", "5000", "--version", "b", "--block", "128",
                     "--grid", "32"]) == 0

    def test_reduce_max(self, capsys):
        assert main(["reduce", "3000", "--op", "max", "--version", "n"]) == 0

    def test_time(self, capsys):
        assert main(["time", "4096", "--versions", "m,p"]) == 0
        out = capsys.readouterr().out
        assert "kepler" in out and "pascal" in out
        assert "CUB" in out

    def test_tune(self, capsys):
        assert main(["tune", "10000", "--version", "b", "--arch",
                     "maxwell"]) == 0
        out = capsys.readouterr().out
        assert "<- best" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_version_errors(self):
        with pytest.raises(KeyError):
            main(["cuda", "zz"])
