"""Tests for the end-to-end runtime framework."""

import numpy as np
import pytest

from repro import ReductionFramework, Tunables, cub_time, kokkos_time, openmp_time
from repro.core import FIG6


class TestResolve:
    def test_label_resolution(self, fw_add):
        assert fw_add.resolve("p") == FIG6["p"]

    def test_identifier_resolution(self, fw_add):
        version = fw_add.resolve("DT,A / VA2S")
        assert version == FIG6["p"]

    def test_version_passthrough(self, fw_add):
        assert fw_add.resolve(FIG6["a"]) is FIG6["a"]

    def test_unknown_label(self, fw_add):
        with pytest.raises(KeyError):
            fw_add.resolve("zz")

    def test_bad_type(self, fw_add):
        with pytest.raises(TypeError):
            fw_add.resolve(42)


class TestRun:
    def test_run_returns_result_and_metadata(self, fw_add, rng):
        data = rng.random(3000).astype(np.float32)
        result = fw_add.run(data, version="p")
        assert result.value == pytest.approx(float(data.sum()), rel=1e-4)
        assert result.label == "p"
        assert result.profile.num_launches() == 1

    def test_run_with_tunables(self, fw_add, rng):
        data = rng.random(3000).astype(np.float32)
        result = fw_add.run(data, version="b", tunables=Tunables(block=128, grid=16))
        assert result.value == pytest.approx(float(data.sum()), rel=1e-4)

    def test_run_rejects_empty(self, fw_add):
        with pytest.raises(ValueError):
            fw_add.run(np.array([], dtype=np.float32))

    def test_run_rejects_2d(self, fw_add):
        with pytest.raises(ValueError):
            fw_add.run(np.zeros((4, 4), dtype=np.float32))

    def test_max_framework(self, fw_max, rng):
        data = ((rng.random(2000) - 0.5) * 7).astype(np.float32)
        result = fw_max.run(data, version="n")
        assert result.value == pytest.approx(float(data.max()))


class TestTiming:
    def test_time_positive_and_cached(self, fw_add):
        t1 = fw_add.time(4096, "p", "kepler")
        t2 = fw_add.time(4096, "p", "kepler")
        assert t1 == t2 > 0

    def test_profiles_shared_across_architectures(self, fw_add):
        fw_add.time(4096, "m", "kepler")
        stores = fw_add.cache.stats.stores
        fw_add.time(4096, "m", "pascal")
        assert fw_add.cache.stats.stores == stores  # no new profiling

    def test_launch_overhead_floor(self, fw_add):
        from repro import get_architecture

        arch = get_architecture("kepler")
        assert fw_add.time(64, "p", arch) >= arch.kernel_launch_overhead_us * 1e-6

    def test_best_version_returns_catalog_label(self, fw_add):
        label, seconds = fw_add.best_version(1024, "maxwell")
        assert label in FIG6
        assert seconds > 0

    def test_best_version_custom_candidates(self, fw_add):
        label, _ = fw_add.best_version(1024, "maxwell", candidates=["l", "m"])
        assert label in ("l", "m")

    def test_second_kernel_version_slower_than_atomic(self, fw_add):
        """The pruning rule's premise: second-kernel versions lose."""
        from repro.core import Version

        atomic = fw_add.time(4096, "l", "kepler")
        two_kernel = Version(
            grid_pattern="tile",
            final_combine="second_kernel",
            block_kind="coop",
            combine="V",
        )
        non_atomic = fw_add.time(4096, two_kernel, "kepler")
        assert non_atomic > atomic


class TestBaselineTimers:
    def test_cub_time_includes_host_overhead(self):
        from repro.baselines import CUB_HOST_OVERHEAD_S

        assert cub_time(64, "kepler") > CUB_HOST_OVERHEAD_S

    def test_kokkos_small_dominated_by_three_launches(self):
        from repro import get_architecture

        arch = get_architecture("pascal")
        assert kokkos_time(64, arch) >= 3 * arch.kernel_launch_overhead_us * 1e-6

    def test_openmp_time(self):
        assert openmp_time(64) > 0
