"""Property-based tests: every synthesized version computes the right
reduction for arbitrary inputs, sizes, and tunables."""

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings

import pytest

from repro import ReductionFramework, Tunables
from repro.core import FIG6

_fw = {"add": ReductionFramework("add"), "max": ReductionFramework("max")}

_sizes = st.integers(min_value=1, max_value=3000)
_labels = st.sampled_from(sorted(FIG6))
_blocks = st.sampled_from([32, 64, 128, 256])


@st.composite
def _arrays(draw):
    n = draw(_sizes)
    seed = draw(st.integers(min_value=0, max_value=2 ** 32 - 1))
    rng = np.random.default_rng(seed)
    return ((rng.random(n) - 0.5) * 10).astype(np.float32)


class TestSumCorrectness:
    @given(data=_arrays(), label=_labels, block=_blocks)
    @settings(max_examples=60, deadline=None)
    def test_any_version_any_size_any_block(self, data, label, block):
        result = _fw["add"].run(data, label, Tunables(block=block))
        expected = float(data.sum(dtype=np.float64))
        assert result.value == pytest.approx(expected, rel=1e-3, abs=1e-3)

    @given(data=_arrays(), grid=st.integers(min_value=1, max_value=64))
    @settings(max_examples=30, deadline=None)
    def test_compound_any_partition_count(self, data, grid):
        result = _fw["add"].run(data, "b", Tunables(block=64, grid=grid))
        expected = float(data.sum(dtype=np.float64))
        assert result.value == pytest.approx(expected, rel=1e-3, abs=1e-3)


class TestMaxCorrectness:
    @given(data=_arrays(), label=st.sampled_from(["l", "m", "n", "o", "p", "a", "e"]))
    @settings(max_examples=40, deadline=None)
    def test_max_any_version(self, data, label):
        result = _fw["max"].run(data, label)
        assert result.value == pytest.approx(float(data.max()), rel=1e-6, abs=1e-6)


class TestInvariants:
    @given(data=_arrays())
    @settings(max_examples=25, deadline=None)
    def test_all_versions_agree(self, data):
        """Order-of-combination differs across versions, but sums agree
        within float32 tolerance."""
        values = [
            _fw["add"].run(data, label).value for label in ("l", "m", "n", "p", "b")
        ]
        assert max(values) - min(values) <= max(1e-3, 1e-4 * abs(values[0]))

    @given(data=_arrays())
    @settings(max_examples=25, deadline=None)
    def test_permutation_invariance(self, data):
        shuffled = data.copy()
        np.random.default_rng(0).shuffle(shuffled)
        a = _fw["add"].run(data, "p").value
        b = _fw["add"].run(shuffled, "p").value
        assert a == pytest.approx(b, rel=1e-3, abs=1e-3)

    @given(st.integers(min_value=1, max_value=2000))
    @settings(max_examples=25, deadline=None)
    def test_sum_of_ones_is_n(self, n):
        data = np.ones(n, dtype=np.float32)
        assert _fw["add"].run(data, "e").value == pytest.approx(float(n))
