"""Property-based contract of the region former and vector backend.

Hypothesis draws (version, op, element type, size, launch shape)
points and asserts two properties:

* **Partition** — the fused region list is an exact partition of the
  compiled closure trace: the identity-multiset of instructions across
  all regions equals the trace's (unrolled splices included), and
  every region boundary sits at a documented boundary kind (barrier,
  shuffle, memory, atomic, control) — fusible ALU ops only ever appear
  inside ``fused`` / ``single-alu`` cells.
* **Equivalence** — executing the fused trace is bit-identical to the
  compiled backend in results and per-step event counters.
"""

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.codegen import Tunables
from repro.gpusim import Executor, compile_kernel, fuse_kernel
from repro.gpusim.fuse import BOUNDARY_KINDS, FUSIBLE_OPS, trace_instrs
from repro.runtime import ReductionFramework

_FRAMEWORKS = {}


def _framework(op, ctype):
    key = (op, ctype)
    if key not in _FRAMEWORKS:
        _FRAMEWORKS[key] = ReductionFramework(op=op, ctype=ctype)
    return _FRAMEWORKS[key]


def _data(rng, ctype, n):
    if ctype == "int":
        return rng.integers(-1000, 1000, size=n).astype(np.int32)
    return (rng.random(n).astype(np.float32) - np.float32(0.5)) * 8


def _run(plan, data, mode, backend):
    executor = Executor(mode=mode, backend=backend)
    executor.device.upload("in", data)
    return executor.run_plan(plan)


@settings(max_examples=25, deadline=None)
@given(
    label=st.sampled_from(sorted("abcdefghijklmnop")),
    op=st.sampled_from(["add", "max", "min"]),
    ctype=st.sampled_from(["float", "int"]),
    n=st.integers(min_value=33, max_value=4096),
    block=st.sampled_from([32, 64, 128]),
    grid=st.integers(min_value=2, max_value=10),
)
def test_regions_partition_the_trace(label, op, ctype, n, block, grid):
    fw = _framework(op, ctype)
    version = fw.resolve(label)
    if version.block_kind == "coop":
        tunables = Tunables(block=block)
    else:
        tunables = Tunables(block=block, grid=grid)
    plan = fw.build(version, n, tunables)
    for step in plan.kernel_steps():
        compiled = compile_kernel(step.kernel)
        fused = fuse_kernel(step.kernel)
        flat = sorted(id(i) for i in trace_instrs(compiled.trace))
        regioned = sorted(
            id(i) for region in fused.regions for i in region.instrs
        )
        assert regioned == flat  # a partition: nothing lost, nothing doubled
        for region in fused.regions:
            if region.kind in ("fused", "single-alu"):
                assert all(isinstance(i, FUSIBLE_OPS) for i in region.instrs)
            else:
                assert len(region.instrs) == 1
                instr = region.instrs[0]
                assert not isinstance(instr, FUSIBLE_OPS)
                kind = BOUNDARY_KINDS.get(type(instr), "other")
                assert region.kind == kind


@settings(max_examples=25, deadline=None)
@given(
    label=st.sampled_from(sorted("abcdefghijklmnop")),
    op=st.sampled_from(["add", "max", "min"]),
    ctype=st.sampled_from(["float", "int"]),
    n=st.integers(min_value=33, max_value=4096),
    block=st.sampled_from([32, 64, 128]),
    grid=st.integers(min_value=2, max_value=10),
    mode=st.sampled_from(["sequential", "batched"]),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_vector_equals_compiled(label, op, ctype, n, block, grid, mode, seed):
    fw = _framework(op, ctype)
    version = fw.resolve(label)
    if version.block_kind == "coop":
        tunables = Tunables(block=block)
    else:
        tunables = Tunables(block=block, grid=grid)
    plan = fw.build(version, n, tunables)
    data = _data(np.random.default_rng(seed), ctype, n)

    ref = _run(plan, data, mode, "compiled")
    got = _run(plan, data, mode, "vector")
    assert got.result == ref.result
    for r, g in zip(ref.steps, got.steps):
        assert dict(g.events) == dict(r.events), r.kernel_name
