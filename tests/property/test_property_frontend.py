"""Property-based tests (hypothesis) for the DSL frontend."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.lang import TokenKind, ast, parse_expression, tokenize

# -- strategies -------------------------------------------------------

_ident = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True).filter(
    lambda s: s not in {"if", "else", "for", "while", "return", "int",
                        "true", "false", "min", "max", "bool", "void",
                        "float", "double", "unsigned", "const"}
)

_int_literal = st.integers(min_value=0, max_value=2 ** 31 - 1).map(str)


def _exprs(depth=3):
    base = st.one_of(_ident, _int_literal)
    if depth == 0:
        return base
    sub = _exprs(depth - 1)
    return st.one_of(
        base,
        st.tuples(sub, st.sampled_from(["+", "-", "*", "/", "%"]), sub).map(
            lambda t: f"({t[0]} {t[1]} {t[2]})"
        ),
        st.tuples(sub, st.sampled_from(["<", "<=", "==", "!="]), sub).map(
            lambda t: f"({t[0]} {t[1]} {t[2]})"
        ),
        st.tuples(sub, sub, sub).map(lambda t: f"(({t[0]}) ? {t[1]} : {t[2]})"),
        st.tuples(_ident, sub).map(lambda t: f"{t[0]}[{t[1]}]"),
        st.tuples(sub, sub).map(lambda t: f"min({t[0]}, {t[1]})"),
    )


class TestLexerProperties:
    @given(st.text(alphabet=" \t\n+-*/%<>=!&|^~()[]{},;.?:", max_size=60))
    @settings(max_examples=200)
    def test_operator_soup_never_crashes_or_loops(self, text):
        """The lexer either tokenizes or raises LexError — never hangs."""
        from repro.lang import LexError

        try:
            tokens = tokenize(text)
        except LexError:
            return
        assert tokens[-1].kind is TokenKind.EOF

    @given(_exprs())
    @settings(max_examples=150)
    def test_spans_cover_disjoint_source(self, text):
        tokens = tokenize(text)[:-1]
        previous_end = 0
        for token in tokens:
            assert token.span.start >= previous_end
            assert token.span.text == token.text
            previous_end = token.span.end

    @given(st.lists(_ident, min_size=1, max_size=8))
    @settings(max_examples=100)
    def test_identifier_roundtrip(self, names):
        text = " ".join(names)
        tokens = tokenize(text)[:-1]
        assert [t.text for t in tokens] == names


class TestParserProperties:
    @given(_exprs())
    @settings(max_examples=200)
    def test_generated_expressions_parse(self, text):
        expr = parse_expression(text)
        assert isinstance(expr, ast.Expr)

    @given(_exprs())
    @settings(max_examples=100)
    def test_parse_is_deterministic(self, text):
        assert parse_expression(text) == parse_expression(text)

    @given(_exprs(2))
    @settings(max_examples=100)
    def test_extra_parens_do_not_change_structure(self, text):
        assert parse_expression(text) == parse_expression(f"(({text}))")

    @given(_exprs(2), _exprs(2))
    @settings(max_examples=100)
    def test_addition_left_associative(self, a, b):
        expr = parse_expression(f"{a} + {b} + {a}")
        assert isinstance(expr, ast.Binary)
        assert expr.op == "+"
        assert isinstance(expr.lhs, ast.Binary)

    @given(_exprs(2))
    @settings(max_examples=100)
    def test_clone_equals_original(self, text):
        expr = parse_expression(text)
        assert expr.clone() == expr
