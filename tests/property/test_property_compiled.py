"""Property-based equivalence of the compiled and interpreted backends.

Hypothesis draws (version, op, element type, size, launch shape) points
and asserts the strongest form of the compiled executor's contract:
identical reduction results (bitwise, no tolerance) AND identical
per-step event counters against the tree-walking interpreter, under
both the sequential and the batched execution mode.
"""

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.codegen import Tunables
from repro.gpusim import Executor
from repro.runtime import ReductionFramework

_FRAMEWORKS = {}


def _framework(op, ctype):
    key = (op, ctype)
    if key not in _FRAMEWORKS:
        _FRAMEWORKS[key] = ReductionFramework(op=op, ctype=ctype)
    return _FRAMEWORKS[key]


def _data(rng, ctype, n):
    if ctype == "int":
        return rng.integers(-1000, 1000, size=n).astype(np.int32)
    return (rng.random(n).astype(np.float32) - np.float32(0.5)) * 8


def _run(plan, data, mode, backend):
    executor = Executor(mode=mode, backend=backend)
    executor.device.upload("in", data)
    return executor.run_plan(plan)


@settings(max_examples=30, deadline=None)
@given(
    label=st.sampled_from(sorted("abcdefghijklmnop")),
    op=st.sampled_from(["add", "max", "min"]),
    ctype=st.sampled_from(["float", "int"]),
    n=st.integers(min_value=33, max_value=4096),
    block=st.sampled_from([32, 64, 128]),
    grid=st.integers(min_value=2, max_value=10),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_compiled_equals_interpreted(label, op, ctype, n, block, grid, seed):
    fw = _framework(op, ctype)
    version = fw.resolve(label)
    if version.block_kind == "coop":
        tunables = Tunables(block=block)
    else:
        tunables = Tunables(block=block, grid=grid)
    plan = fw.build(version, n, tunables)
    data = _data(np.random.default_rng(seed), ctype, n)

    ref = _run(plan, data, "sequential", "interpreted")
    for mode in ("sequential", "batched"):
        got = _run(plan, data, mode, "compiled")
        assert got.result == ref.result
        assert len(got.steps) == len(ref.steps)
        for r, g in zip(ref.steps, got.steps):
            assert (g.grid, g.block) == (r.grid, r.block)
            assert dict(g.events) == dict(r.events), r.kernel_name
