"""Property-based tests of the SIMT engine against a numpy oracle.

Random straight-line ALU programs are executed both by the engine (as a
one-block kernel) and by direct numpy evaluation; results must agree.
This pins down the engine's operator semantics independently of the
compiler stack above it.
"""

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.gpusim.device import Device
from repro.gpusim.engine import Executor
from repro.vir import BinOp, Imm, Kernel, KernelStep, Reg, Sel, Special, StGlobal, UnOp

_BLOCK = 64

# ops closed over "safe" integer inputs (no div-by-zero, no shifts > width)
_ARITH_OPS = ("add", "sub", "mul", "min", "max", "and", "or", "xor")
_CMP_OPS = ("lt", "le", "gt", "ge", "eq", "ne")

_NUMPY = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "min": np.minimum,
    "max": np.maximum,
    "and": np.bitwise_and,
    "or": np.bitwise_or,
    "xor": np.bitwise_xor,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
}


@st.composite
def straightline_programs(draw):
    """A random sequence of ALU instructions over tid and constants."""
    length = draw(st.integers(min_value=1, max_value=12))
    instrs = []
    values = {}  # register name -> numpy array (the oracle)
    tid = np.arange(_BLOCK, dtype=np.int64)
    instrs.append(Special(Reg("r0"), "tid"))
    values["r0"] = tid
    names = ["r0"]
    for index in range(1, length + 1):
        name = f"r{index}"
        op = draw(st.sampled_from(_ARITH_OPS + _CMP_OPS + ("sel", "neg")))
        a = draw(st.sampled_from(names))
        if op == "neg":
            instrs.append(UnOp(Reg(name), "neg", Reg(a)))
            values[name] = -values[a]
        elif op == "sel":
            b = draw(st.sampled_from(names))
            c = draw(st.sampled_from(names))
            cond_name = f"c{index}"
            instrs.append(BinOp(Reg(cond_name), "eq", Reg(a), Imm(0)))
            cond_value = values[a] == 0
            instrs.append(Sel(Reg(name), Reg(cond_name), Reg(b), Reg(c)))
            values[name] = np.where(cond_value, values[b], values[c])
        else:
            use_imm = draw(st.booleans())
            if use_imm:
                imm = draw(st.integers(min_value=-100, max_value=100))
                instrs.append(BinOp(Reg(name), op, Reg(a), Imm(imm)))
                rhs = np.int64(imm)
            else:
                b = draw(st.sampled_from(names))
                instrs.append(BinOp(Reg(name), op, Reg(a), Reg(b)))
                rhs = values[b]
            result = _NUMPY[op](values[a], rhs)
            values[name] = result.astype(np.int64) if result.dtype == bool else result
        names.append(name)
    final = names[-1]
    instrs.append(StGlobal("out", Reg("r0"), Reg(final)))
    return instrs, values[final]


class TestEngineOracle:
    @given(straightline_programs())
    @settings(max_examples=120, deadline=None)
    def test_alu_matches_numpy(self, program):
        instrs, expected = program
        kernel = Kernel("prop", buffers=["out"], body=instrs)
        device = Device()
        device.alloc("out", _BLOCK, dtype=np.int64)
        executor = Executor(device=device)
        executor.run_kernel(
            KernelStep(kernel, grid=1, block=_BLOCK, buffers={"out": "out"})
        )
        np.testing.assert_array_equal(
            device.get("out"), np.asarray(expected, dtype=np.int64)
        )


class TestShuffleProperties:
    @given(
        st.sampled_from([1, 2, 4, 8, 16]),
        st.sampled_from([8, 16, 32]),
    )
    @settings(max_examples=40, deadline=None)
    def test_shfl_down_then_up_identity_in_range(self, offset, width):
        """Lanes where both hops stay in range recover their own value."""
        from repro.vir import IRBuilder

        b = IRBuilder()
        tid = b.special("tid")
        src = b.mov(tid)
        down = b.shfl(src, "down", offset, width=width)
        back = b.shfl(down, "up", offset, width=width)
        b.st_global("out", tid, back)
        kernel = Kernel("rt", buffers=["out"], body=b.finish())
        device = Device()
        device.alloc("out", 32, dtype=np.int64)
        executor = Executor(device=device)
        executor.run_kernel(
            KernelStep(kernel, grid=1, block=32, buffers={"out": "out"})
        )
        out = device.get("out")
        lanes = np.arange(32)
        sub = lanes % width
        in_range = (sub + offset < width) & (sub >= offset)
        np.testing.assert_array_equal(out[in_range], lanes[in_range])
