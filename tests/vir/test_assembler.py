"""Tests for the VIR assembler (text → IR round trips)."""

import numpy as np
import pytest

from repro.vir import format_kernel
from repro.vir.assembler import AssemblyError, parse_kernel


SIMPLE = """
.kernel add_one(params: n; buffers: in, out)
  %tid1 = %tid
  %n1 = ld.param [n]
  %c = lt %tid1, %n1
  if %c {
    %v = ld.global [in + %tid1]
    %w = add %v, 1.0
    st.global [out + %tid1], %w
  }
"""


class TestParsing:
    def test_simple_kernel(self):
        kernel = parse_kernel(SIMPLE)
        assert kernel.name == "add_one"
        assert kernel.params == ["n"]
        assert kernel.buffers == ["in", "out"]
        assert kernel.instruction_count() == 7

    def test_roundtrip_is_identity(self):
        kernel = parse_kernel(SIMPLE)
        text = format_kernel(kernel)
        assert format_kernel(parse_kernel(text)) == text

    def test_parsed_kernel_executes(self):
        from repro.gpusim.device import Device
        from repro.gpusim.engine import Executor
        from repro.vir import KernelStep

        kernel = parse_kernel(SIMPLE)
        device = Device()
        device.upload("in", np.arange(10, dtype=np.float32))
        device.alloc("out", 10)
        executor = Executor(device=device)
        executor.run_kernel(
            KernelStep(kernel, grid=1, block=32, args={"n": 10},
                       buffers={"in": "in", "out": "out"})
        )
        np.testing.assert_array_equal(device.get("out"), np.arange(10) + 1)

    def test_shared_and_atomics(self):
        text = """
.kernel k(params: -; buffers: out)
  .shared smem[64]
  %t = %tid
  st.shared [smem + %t], 1.0
  bar.sync
  %v = ld.shared [smem + %t]
  atom.shared.add [smem + 0], %v
  atom.global.device.add [out + 0], %v
  atom.global.block.max [out + 1], %v
"""
        kernel = parse_kernel(text)
        assert kernel.shared[0].size == 64
        assert format_kernel(parse_kernel(format_kernel(kernel))) == format_kernel(kernel)

    def test_while_and_shuffle(self):
        text = """
.kernel k(params: -; buffers: -)
  %acc = mov 0.0
  %i = mov 16
  while {
    %c = gt %i, 0
  } test %c {
    %s = shfl.down %acc, %i, w=32
    %acc = add %acc, %s
    %i = div %i, 2
  }
"""
        kernel = parse_kernel(text)
        assert format_kernel(parse_kernel(format_kernel(kernel))) == format_kernel(kernel)

    def test_vector_load(self):
        text = """
.kernel k(params: -; buffers: in)
  %t = %tid
  {%a, %b, %c, %d} = ld.global.v4 [in + %t]
"""
        kernel = parse_kernel(text)
        assert format_kernel(parse_kernel(format_kernel(kernel))) == format_kernel(kernel)

    def test_comments_preserved(self):
        text = """
.kernel k(params: -; buffers: -)
  ; hello world
  %a = mov 1
"""
        kernel = parse_kernel(text)
        assert "; hello world" in format_kernel(kernel)


class TestErrors:
    def test_bad_header(self):
        with pytest.raises(AssemblyError):
            parse_kernel("not a kernel")

    def test_unknown_instruction(self):
        with pytest.raises(AssemblyError):
            parse_kernel(".kernel k(params: -; buffers: -)\n  %a = frob %b")

    def test_bad_operand(self):
        with pytest.raises(AssemblyError):
            parse_kernel(".kernel k(params: -; buffers: -)\n  %a = mov $$$")

    def test_unterminated_region(self):
        with pytest.raises(AssemblyError):
            parse_kernel(".kernel k(params: -; buffers: -)\n  if %c {\n  %a = mov 1")

    def test_wrong_arity(self):
        with pytest.raises(AssemblyError):
            parse_kernel(".kernel k(params: -; buffers: -)\n  %a = add %b")


class TestSynthesizedRoundTrips:
    def test_all_catalog_kernels_roundtrip(self, fw_add):
        for label in ("l", "m", "n", "o", "p", "a", "b", "e", "k"):
            plan = fw_add.build(label, 5000)
            for step in plan.kernel_steps():
                text = format_kernel(step.kernel)
                assert format_kernel(parse_kernel(text)) == text, label

    def test_baseline_kernels_roundtrip(self):
        from repro.baselines import build_cub_plan, build_kokkos_plan

        for plan in (build_cub_plan(10_000), build_kokkos_plan(10_000)):
            for step in plan.kernel_steps():
                text = format_kernel(step.kernel)
                assert format_kernel(parse_kernel(text)) == text
