"""Unit tests for the VIR instruction set, builder, printer, and programs."""

import pytest

from repro.vir import (
    AtomGlobal,
    Bar,
    BinOp,
    If,
    Imm,
    IRBuilder,
    Kernel,
    KernelStep,
    LdGlobal,
    MemsetStep,
    Mov,
    Plan,
    Reg,
    SharedDecl,
    Shfl,
    StShared,
    While,
    as_operand,
    format_instr,
    format_kernel,
    format_plan,
    walk_instrs,
)


class TestOperands:
    def test_as_operand_coerces_scalars(self):
        assert as_operand(3) == Imm(3)
        assert as_operand(2.5) == Imm(2.5)
        assert as_operand(True) == Imm(True)

    def test_as_operand_passthrough(self):
        reg = Reg("x")
        assert as_operand(reg) is reg

    def test_as_operand_rejects_junk(self):
        with pytest.raises(TypeError):
            as_operand("nope")


class TestInstructionValidation:
    def test_unknown_binop_rejected(self):
        with pytest.raises(ValueError):
            BinOp(Reg("d"), "frobnicate", 1, 2)

    def test_unknown_atomic_rejected(self):
        with pytest.raises(ValueError):
            AtomGlobal("xor", "buf", 0, 1)

    def test_unknown_scope_rejected(self):
        with pytest.raises(ValueError):
            AtomGlobal("add", "buf", 0, 1, scope="warp")

    def test_shuffle_width_power_of_two(self):
        Shfl(Reg("d"), Reg("s"), "down", 1, width=16)
        with pytest.raises(ValueError):
            Shfl(Reg("d"), Reg("s"), "down", 1, width=33)

    def test_vector_load_dst_shape(self):
        with pytest.raises(ValueError):
            LdGlobal(Reg("d"), "buf", 0, width=4)
        LdGlobal([Reg("a"), Reg("b")], "buf", 0, width=2)

    def test_shared_decl_positive(self):
        with pytest.raises(ValueError):
            SharedDecl("s", 0)


class TestBuilder:
    def test_fresh_registers_unique(self):
        b = IRBuilder()
        regs = {b.fresh().name for _ in range(100)}
        assert len(regs) == 100

    def test_regions_nest_and_restore(self):
        b = IRBuilder()
        cond = b.binop("lt", b.special("tid"), 10)
        with b.if_(cond):
            b.mov(1)
        body = b.finish()
        assert isinstance(body[-1], If)
        assert len(body[-1].then) == 1

    def test_unclosed_region_detected(self):
        b = IRBuilder()
        cond = b.fresh()
        region = b.if_(cond)
        region.__enter__()
        with pytest.raises(RuntimeError):
            b.finish()

    def test_while_regions(self):
        b = IRBuilder()
        cond = b.fresh("c")
        loop = b.while_(cond)
        with loop.cond:
            b.mov(False, dst=cond)
        with loop.body:
            b.mov(0)
        body = b.finish()
        assert isinstance(body[-1], While)
        assert len(body[-1].cond_block) == 1


class TestKernel:
    def _kernel(self):
        b = IRBuilder()
        tid = b.special("tid")
        n = b.ld_param("n")
        ok = b.binop("lt", tid, n)
        with b.if_(ok):
            value = b.ld_global("in", tid)
            b.st_shared("smem", tid, value)
            b.bar()
        return Kernel(
            "k",
            params=["n"],
            buffers=["in"],
            shared=[SharedDecl("smem", 64)],
            body=b.finish(),
        )

    def test_register_count(self):
        kernel = self._kernel()
        assert kernel.register_count() >= 4

    def test_instruction_count_descends_regions(self):
        kernel = self._kernel()
        assert kernel.instruction_count() == len(list(walk_instrs(kernel.body)))
        assert kernel.instruction_count() > 4

    def test_shared_bytes(self):
        assert self._kernel().shared_bytes() == 64 * 4

    def test_validate_catches_unknown_buffer(self):
        kernel = self._kernel()
        kernel.buffers = []
        with pytest.raises(ValueError):
            kernel.validate()

    def test_validate_catches_unknown_shared(self):
        kernel = self._kernel()
        kernel.shared = []
        with pytest.raises(ValueError):
            kernel.validate()

    def test_validate_catches_unknown_param(self):
        kernel = self._kernel()
        kernel.params = []
        with pytest.raises(ValueError):
            kernel.validate()


class TestLaunchValidation:
    def test_missing_args_rejected(self):
        kernel = Kernel("k", params=["n"], buffers=[], shared=[], body=[])
        with pytest.raises(ValueError):
            KernelStep(kernel, grid=1, block=32, args={}, buffers={})

    def test_missing_buffers_rejected(self):
        kernel = Kernel("k", params=[], buffers=["in"], shared=[], body=[])
        with pytest.raises(ValueError):
            KernelStep(kernel, grid=1, block=32, args={}, buffers={})

    def test_nonpositive_launch_rejected(self):
        kernel = Kernel("k", params=[], buffers=[], shared=[], body=[])
        with pytest.raises(ValueError):
            KernelStep(kernel, grid=0, block=32)


class TestPrinter:
    def test_format_simple_instrs(self):
        assert "mov" in format_instr(Mov(Reg("a"), Imm(1)))
        assert "bar.sync" in format_instr(Bar())
        assert "st.shared" in format_instr(StShared("s", Imm(0), Imm(1)))

    def test_format_kernel_contains_header_and_shared(self):
        kernel = Kernel(
            "k", params=["n"], buffers=["in"],
            shared=[SharedDecl("smem", 8)],
            body=[Mov(Reg("a"), Imm(0))],
        )
        text = format_kernel(kernel)
        assert ".kernel k" in text
        assert ".shared smem[8]" in text

    def test_format_plan(self):
        kernel = Kernel("k", params=[], buffers=["out"], shared=[], body=[])
        plan = Plan(
            "p",
            steps=[
                MemsetStep("out", 0.0),
                KernelStep(kernel, grid=2, block=64, buffers={"out": "out"}),
            ],
            scratch={"out": 1},
        )
        text = format_plan(plan)
        assert "memset out" in text
        assert "launch k<<<2, 64>>>" in text
        assert ".scratch out[1]" in text

    def test_format_structured(self):
        instr = If(Reg("c"), then=[Mov(Reg("a"), Imm(1))], otherwise=[Bar()])
        text = format_instr(instr)
        assert "if %c {" in text and "} else {" in text
