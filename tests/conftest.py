"""Shared fixtures: session-scoped frameworks (compile once, test many)."""

import numpy as np
import pytest

from repro import ReductionFramework
from repro.gpusim.engine import Executor


@pytest.fixture(scope="session")
def fw_add():
    return ReductionFramework(op="add")


@pytest.fixture(scope="session")
def fw_max():
    return ReductionFramework(op="max")


@pytest.fixture(scope="session")
def fw_min():
    return ReductionFramework(op="min")


@pytest.fixture(scope="session")
def pre_add(fw_add):
    return fw_add.pre


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)


def run_reduction_plan(plan, data):
    """Execute a plan on ``data``; returns the numeric result."""
    executor = Executor()
    executor.device.upload("in", np.asarray(data, dtype=np.float32))
    profile = executor.run_plan(plan)
    return profile.result


@pytest.fixture()
def run_plan():
    return run_reduction_plan
