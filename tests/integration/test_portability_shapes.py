"""Integration tests asserting the paper's performance-portability shapes.

These are the cheap, always-run versions of the checks the benchmark
harness performs in full (Figures 7-10); they use a few sizes only.
"""

import pytest

from repro import (
    ReductionFramework,
    Tunables,
    cub_time,
    kokkos_time,
    openmp_time,
)


@pytest.fixture(scope="module")
def fw():
    return ReductionFramework("add")


def tuned_time(fw, label, n, arch, blocks=(64, 128, 256)):
    return min(fw.time(n, label, arch, Tunables(block=b)) for b in blocks)


class TestArchitectureWinners:
    """Section IV-C's per-architecture best versions."""

    def test_kepler_small_prefers_shared_atomic_shuffle(self, fw):
        times = {k: tuned_time(fw, k, 256, "kepler") for k in "lmnop"}
        assert min(times, key=times.get) == "p"

    def test_kepler_medium_prefers_pure_shuffle(self, fw):
        """Kepler's software shared atomics make (m) beat (p) once many
        warps contend (Section IV-C-2)."""
        times = {k: tuned_time(fw, k, 262_144, "kepler") for k in "lmnop"}
        assert min(times, key=times.get) == "m"

    def test_kepler_shared_atomics_catastrophic_under_contention(self, fw):
        """Version (n) hammers one accumulator; Kepler's lock loop makes
        it an order of magnitude slower than (m) at medium sizes."""
        t_n = tuned_time(fw, "n", 1_048_576, "kepler")
        t_m = tuned_time(fw, "m", 1_048_576, "kepler")
        assert t_n > 5 * t_m

    def test_maxwell_small_prefers_va1(self, fw):
        """Native shared atomics flip the small-size winner to (n)."""
        times = {k: tuned_time(fw, k, 256, "maxwell") for k in "lmnop"}
        assert min(times, key=times.get) == "n"

    def test_maxwell_medium_prefers_va2s(self, fw):
        times = {k: tuned_time(fw, k, 1_048_576, "maxwell") for k in "lmnop"}
        assert min(times, key=times.get) == "p"

    def test_pascal_small_prefers_va1(self, fw):
        times = {k: tuned_time(fw, k, 1024, "pascal") for k in "lmnop"}
        assert min(times, key=times.get) == "n"

    def test_same_code_different_winner_across_archs(self, fw):
        """The heart of the paper: identical source, different best
        version per microarchitecture."""
        kepler = min("lmnop", key=lambda k: tuned_time(fw, k, 262_144, "kepler"))
        maxwell = min("lmnop", key=lambda k: tuned_time(fw, k, 262_144, "maxwell"))
        assert kepler != maxwell


class TestBaselineRelations:
    def test_tangram_beats_cub_small_and_medium(self, fw):
        for arch in ("kepler", "maxwell", "pascal"):
            for n in (256, 4096, 65_536):
                label, t = fw.best_version(n, arch)
                assert cub_time(n, arch) / t > 1.8, (arch, n)

    def test_cub_wins_large(self, fw):
        for arch in ("kepler", "maxwell", "pascal"):
            n = 67_108_864
            best = min(
                fw.time(n, label, arch) for label in ("a", "b", "c", "e", "k")
            )
            ratio = cub_time(n, arch) / best
            # paper: Tangram 7-38% slower at large sizes
            assert 0.6 < ratio < 1.0, (arch, ratio)

    def test_kokkos_wins_beyond_ten_million(self, fw):
        for arch in ("kepler", "maxwell", "pascal"):
            n = 16_777_216
            assert cub_time(n, arch) / kokkos_time(n, arch) > 2.0, arch

    def test_kokkos_loses_small(self):
        for arch in ("kepler", "maxwell", "pascal"):
            assert kokkos_time(256, arch) > cub_time(256, arch) / 3

    def test_openmp_about_4x_faster_than_cub_small(self):
        for arch in ("kepler", "maxwell", "pascal"):
            for n in (256, 16_384):
                ratio = cub_time(n, arch) / openmp_time(n)
                assert 2.5 < ratio < 7.0, (arch, n, ratio)

    def test_openmp_loses_at_gpu_scale(self):
        n = 268_435_456
        for arch in ("kepler", "maxwell", "pascal"):
            assert openmp_time(n) > cub_time(n, arch)

    def test_openmp_beats_kepler_tangram_below_4k(self, fw):
        t_omp = openmp_time(1024)
        t_tgm = tuned_time(fw, "p", 1024, "kepler")
        assert t_omp < t_tgm

    def test_pascal_tangram_competitive_with_openmp_small(self, fw):
        """Pascal's higher clock makes the GPU competitive for small
        arrays (Section IV-C-1)."""
        t_omp = openmp_time(1024)
        t_tgm = tuned_time(fw, "n", 1024, "pascal")
        assert t_tgm < t_omp * 1.1
