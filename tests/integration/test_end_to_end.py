"""Integration tests: DSL source → passes → synthesis → simulation.

These exercise the whole stack the way the paper's evaluation does.
"""

import numpy as np
import pytest

from repro import ReductionFramework, Tunables
from repro.core import FIG6, enumerate_versions, prune_versions


class TestAllPrunedVersions:
    """Every one of the 30 pruned versions must be correct end-to-end."""

    @pytest.mark.parametrize(
        "version", prune_versions(enumerate_versions()), ids=lambda v: v.identifier
    )
    def test_version_correct(self, fw_add, rng, version):
        n = 2531  # odd size exercising tail handling
        data = rng.random(n).astype(np.float32)
        result = fw_add.run(data, version)
        assert result.value == pytest.approx(
            float(data.sum(dtype=np.float64)), rel=1e-4
        )


class TestSecondKernelVersions:
    """The pruned-away versions must still work (ablation support)."""

    @pytest.mark.parametrize(
        "version",
        [v for v in enumerate_versions() if v.num_kernels == 2][:6],
        ids=lambda v: v.identifier,
    )
    def test_two_kernel_version_correct(self, fw_add, rng, version):
        data = rng.random(3001).astype(np.float32)
        result = fw_add.run(data, version)
        assert result.value == pytest.approx(
            float(data.sum(dtype=np.float64)), rel=1e-4
        )


class TestCrossOpAgreement:
    def test_add_max_min_on_same_data(self, fw_add, fw_max, fw_min, rng):
        data = ((rng.random(4096) - 0.5) * 50).astype(np.float32)
        assert fw_add.run(data, "p").value == pytest.approx(
            float(data.sum(dtype=np.float64)), rel=1e-4
        )
        assert fw_max.run(data, "p").value == float(data.max())
        assert fw_min.run(data, "p").value == float(data.min())


class TestProfileMeaningfulness:
    def test_shuffle_version_has_shfl_events(self, fw_add, rng):
        data = rng.random(2048).astype(np.float32)
        result = fw_add.run(data, "m")
        events = result.profile.steps[0].events
        assert events["inst.shfl"] > 0
        assert events.get("inst.ld.shared", 0) + events.get("inst.st.shared", 0) > 0

    def test_va1_has_shared_atomic_events(self, fw_add, rng):
        data = rng.random(2048).astype(np.float32)
        result = fw_add.run(data, "n")
        events = result.profile.steps[0].events
        assert events["atom.shared.ops"] == 2048  # one per element-thread

    def test_tree_version_has_no_shuffles(self, fw_add, rng):
        data = rng.random(2048).astype(np.float32)
        result = fw_add.run(data, "l")
        assert result.profile.steps[0].events.get("inst.shfl", 0) == 0

    def test_every_version_one_global_atomic_per_block(self, fw_add, rng):
        data = rng.random(4096).astype(np.float32)
        for label in ("l", "m", "n", "o", "p"):
            result = fw_add.run(data, label, Tunables(block=256))
            events = result.profile.steps[0].events
            blocks = events["blocks"]
            assert events["atom.global.ops"] == blocks
            assert events["atom.global.max_same_addr"] == blocks

    def test_compound_version_fewer_blocks(self, fw_add, rng):
        """Thread coarsening shrinks the grid (and the atomic traffic)."""
        data = rng.random(65536).astype(np.float32)
        coop = fw_add.run(data, "l", Tunables(block=256))
        compound = fw_add.run(data, "a", Tunables(block=256, grid=64))
        coop_blocks = coop.profile.steps[0].events["blocks"]
        compound_blocks = compound.profile.steps[0].events["blocks"]
        assert compound_blocks < coop_blocks


class TestNumericalEdgeCases:
    def test_single_element(self, fw_add):
        data = np.array([7.25], dtype=np.float32)
        for label in FIG6:
            assert fw_add.run(data, label).value == 7.25, label

    def test_all_zeros(self, fw_add):
        data = np.zeros(1000, dtype=np.float32)
        assert fw_add.run(data, "p").value == 0.0

    def test_negative_only_sum(self, fw_add):
        data = -np.ones(333, dtype=np.float32)
        assert fw_add.run(data, "e").value == pytest.approx(-333.0)

    def test_max_of_negatives(self, fw_max):
        data = np.array([-5.0, -2.0, -9.0] * 100, dtype=np.float32)
        for label in ("l", "n", "p", "a"):
            assert fw_max.run(data, label).value == -2.0, label

    def test_large_magnitudes(self, fw_add):
        data = np.full(128, 1e30, dtype=np.float32)
        result = fw_add.run(data, "p")
        assert result.value == pytest.approx(128e30, rel=1e-4)
