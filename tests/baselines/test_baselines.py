"""Tests for the CUB-like and Kokkos-like baselines and the CPU model."""

import numpy as np
import pytest

from repro.baselines import build_cub_plan, build_kokkos_plan, cub_grid
from repro.cpu import POWER8, openmp_reduce, openmp_reduce_time


class TestCubStructure:
    def test_two_kernels_always(self):
        """CUB has no small-array special case (Section IV-C-1)."""
        for n in (4, 1000, 10_000_000):
            plan = build_cub_plan(n)
            assert plan.num_kernel_launches() == 2

    def test_vector_load_pattern(self):
        plan = build_cub_plan(100_000)
        for step in plan.kernel_steps():
            assert step.kernel.meta["load_pattern"] == "vector"

    def test_grid_capped(self):
        assert cub_grid(10 ** 9) == 512
        assert cub_grid(1) == 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            build_cub_plan(0)


class TestCubCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 63, 64, 65, 4095, 4096, 4097])
    def test_boundary_sizes(self, run_plan, rng, n):
        """The float4 main loop plus scalar tail must cover every n."""
        data = rng.random(n).astype(np.float32)
        assert run_plan(build_cub_plan(n), data) == pytest.approx(
            float(data.sum(dtype=np.float64)), rel=1e-4
        )

    def test_max_reduction(self, run_plan, rng):
        data = ((rng.random(10_000) - 0.5) * 100).astype(np.float32)
        assert run_plan(build_cub_plan(10_000, op="max"), data) == pytest.approx(
            float(data.max())
        )

    def test_min_reduction(self, run_plan, rng):
        data = ((rng.random(10_000) - 0.5) * 100).astype(np.float32)
        assert run_plan(build_cub_plan(10_000, op="min"), data) == pytest.approx(
            float(data.min())
        )

    def test_unsupported_op(self):
        with pytest.raises(ValueError):
            build_cub_plan(100, op="xor")


class TestKokkosStructure:
    def test_three_kernels(self):
        """The paper profiles Kokkos as multi-kernel (Section IV-C-2)."""
        plan = build_kokkos_plan(100_000)
        assert plan.num_kernel_launches() == 3

    def test_staged_load_pattern(self):
        plan = build_kokkos_plan(100_000)
        assert all(
            step.kernel.meta["load_pattern"] == "staged"
            for step in plan.kernel_steps()
        )

    @pytest.mark.parametrize("n", [1, 7, 64, 1023, 99_991])
    def test_correctness(self, run_plan, rng, n):
        data = rng.random(n).astype(np.float32)
        assert run_plan(build_kokkos_plan(n), data) == pytest.approx(
            float(data.sum(dtype=np.float64)), rel=1e-4
        )


class TestOpenMPModel:
    def test_functional_reduce(self, rng):
        data = rng.random(1000).astype(np.float32)
        assert openmp_reduce(data) == pytest.approx(float(data.sum()), rel=1e-6)
        assert openmp_reduce(data, "max") == float(data.max())
        assert openmp_reduce(data, "min") == float(data.min())
        with pytest.raises(ValueError):
            openmp_reduce(data, "xor")

    def test_overhead_floor(self):
        assert openmp_reduce_time(1) >= 5e-6  # fork/join floor

    def test_monotone_in_n(self):
        times = [openmp_reduce_time(n) for n in (64, 4096, 10 ** 6, 10 ** 8)]
        assert times == sorted(times)

    def test_cache_cliff(self):
        """Per-byte cost jumps once the array spills the cache hierarchy."""
        small = POWER8.reduction_time(1 << 20) / (1 << 20)
        huge = POWER8.reduction_time(1 << 28) / (1 << 28)
        assert huge > 2 * small

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            POWER8.reduction_time(-1)
