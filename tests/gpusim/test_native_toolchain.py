"""Native toolchain: discovery, FFI call protocol and `.so` disk cache.

The disk tier must never trust a cached object: a truncated ``.so``, a
sidecar from a different toolchain/ABI, or an object that fails to
dlopen must all be evicted and recompiled from source — silently
serving a stale or corrupt library would poison every later run keyed
to the same source hash.  These tests drive :func:`load_or_compile`
against a throwaway cache directory (``REPRO_NATIVE_CACHE_DIR``) and
tamper with the entries between calls.

Everything here needs a real C compiler; the module skips cleanly
otherwise (the degradation story is covered in test_native_engine.py).
"""

import json
import os
import subprocess
import sys

import pytest

from repro.gpusim.native import native_available
from repro.gpusim.native.toolchain import (
    ABI_VERSION,
    cache_dir,
    detect_toolchain,
    load_or_compile,
    source_key,
)

pytestmark = pytest.mark.skipif(
    not native_available(), reason="no C toolchain on this host"
)

#: Minimal translation unit honouring the generated-code call protocol:
#: ``int64_t f(void **ptrs, int64_t *meta)``.
SOURCE = """\
#include <stdint.h>
int64_t t_answer(void **p, int64_t *m) { (void)p; (void)m; return 42; }
"""


class Recorder:
    """Stand-in metrics registry capturing counter increments."""

    def __init__(self):
        self.counts = {}

    def inc(self, name, value=1):
        self.counts[name] = self.counts.get(name, 0) + value

    def observe(self, name, value):
        pass


@pytest.fixture
def cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_NATIVE_CACHE_DIR", str(tmp_path))
    assert cache_dir() == str(tmp_path)
    return tmp_path


def _paths(source):
    key = source_key(source, detect_toolchain())
    return (
        os.path.join(cache_dir(), f"{key}.so"),
        os.path.join(cache_dir(), f"{key}.json"),
    )


def _call(lib):
    return lib.get("t_answer")(0, 0)


def test_compile_then_disk_hit(cache):
    rec = Recorder()
    lib = load_or_compile(SOURCE, ["t_answer"], rec)
    assert _call(lib) == 42
    assert rec.counts == {"native.cache.misses": 1}
    so_path, meta_path = _paths(SOURCE)
    assert os.path.exists(so_path) and os.path.exists(meta_path)
    # Second process/plan with the same source: pure disk hit.
    lib2 = load_or_compile(SOURCE, ["t_answer"], rec)
    assert _call(lib2) == 42
    assert rec.counts["native.cache.hits"] == 1
    assert rec.counts["native.cache.misses"] == 1


def test_binder_matches_direct_call(cache):
    lib = load_or_compile(SOURCE, ["t_answer"])
    call = lib.binder("t_answer")(0, 0)
    assert call() == 42 == _call(lib)


def test_truncated_object_is_evicted_and_recompiled(cache):
    load_or_compile(SOURCE, ["t_answer"])
    so_path, meta_path = _paths(SOURCE)
    # Replace (unlink + rewrite, as an interrupted writer would leave
    # it) rather than truncating the mapped inode in place.
    os.unlink(so_path)
    with open(so_path, "wb") as fh:
        fh.write(b"\x7fELF")  # truncated: sidecar size no longer matches
    rec = Recorder()
    lib = load_or_compile(SOURCE, ["t_answer"], rec)
    assert _call(lib) == 42
    assert rec.counts == {"native.cache.misses": 1}
    assert os.path.getsize(so_path) > 4  # fresh object replaced the stub


def test_stale_toolchain_tag_is_evicted(cache):
    load_or_compile(SOURCE, ["t_answer"])
    so_path, meta_path = _paths(SOURCE)
    with open(meta_path, "r", encoding="utf-8") as fh:
        meta = json.load(fh)
    meta["toolchain"] = "ancient-cc 0.1|abi0"
    with open(meta_path, "w", encoding="utf-8") as fh:
        json.dump(meta, fh)
    rec = Recorder()
    lib = load_or_compile(SOURCE, ["t_answer"], rec)
    assert _call(lib) == 42
    assert rec.counts == {"native.cache.misses": 1}
    with open(meta_path, "r", encoding="utf-8") as fh:
        assert json.load(fh)["abi"] == ABI_VERSION  # sidecar rewritten


def test_corrupt_object_with_forged_sidecar_is_evicted(cache):
    """Worst case: garbage bytes whose size matches the sidecar, so the
    metadata check passes and only dlopen can reveal the corruption.

    The entry is produced by a *separate process*: dlopen dedupes by
    pathname within one process and would serve the healthy image it
    already mapped, hiding the on-disk corruption this test plants.
    (That is also the realistic failure: a corrupted cache is only ever
    *read* by a process that never compiled it.)
    """
    import repro

    src_root = os.path.dirname(os.path.dirname(repro.__file__))
    code = (
        "from repro.gpusim.native.toolchain import load_or_compile; "
        f"load_or_compile({SOURCE!r}, ['t_answer'])"
    )
    subprocess.run(
        [sys.executable, "-c", code], check=True,
        env={**os.environ, "PYTHONPATH": src_root},
    )
    so_path, meta_path = _paths(SOURCE)
    size = os.path.getsize(so_path)
    os.unlink(so_path)
    with open(so_path, "wb") as fh:
        fh.write(b"\x00" * size)
    rec = Recorder()
    lib = load_or_compile(SOURCE, ["t_answer"], rec)
    assert _call(lib) == 42
    assert rec.counts == {"native.cache.misses": 1}


def test_missing_sidecar_forces_recompile(cache):
    load_or_compile(SOURCE, ["t_answer"])
    so_path, meta_path = _paths(SOURCE)
    os.unlink(meta_path)
    rec = Recorder()
    lib = load_or_compile(SOURCE, ["t_answer"], rec)
    assert _call(lib) == 42
    assert rec.counts == {"native.cache.misses": 1}
    assert os.path.exists(meta_path)


def test_source_key_separates_source_and_toolchain(cache):
    tc = detect_toolchain()
    other = SOURCE.replace("42", "43")
    assert source_key(SOURCE, tc) != source_key(other, tc)
    # Two sources coexist as independent entries.
    lib_a = load_or_compile(SOURCE, ["t_answer"])
    lib_b = load_or_compile(other, ["t_answer"])
    assert _call(lib_a) == 42
    assert _call(lib_b) == 43
