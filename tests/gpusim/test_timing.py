"""Unit tests for the architecture models and the analytic timing model."""

import math
from collections import Counter

import pytest

from repro.gpusim import (
    ARCHITECTURES,
    KEPLER,
    MAXWELL,
    PASCAL,
    StepProfile,
    get_architecture,
    kernel_time,
)
from repro.gpusim.timing import OVERLAP_LEAK


def make_profile(**overrides):
    defaults = dict(
        kernel_name="k",
        grid=60,
        block=256,
        shared_bytes=1024,
        registers=16,
        events=Counter(
            {
                "inst.alu": 10_000,
                "inst.ld.global": 1_000,
                "mem.global.bytes": 1_000 * 128,
                "blocks": 60,
                "warps": 480,
                "threads": 60 * 256,
            }
        ),
    )
    defaults.update(overrides)
    return StepProfile(**defaults)


class TestArchitectures:
    def test_registry(self):
        assert set(ARCHITECTURES) == {"kepler", "maxwell", "pascal"}
        assert get_architecture("Kepler") is KEPLER
        with pytest.raises(KeyError):
            get_architecture("volta")

    def test_paper_microarchitecture_facts(self):
        """The facts of Section II-A the model depends on."""
        assert not KEPLER.native_shared_atomics
        assert MAXWELL.native_shared_atomics
        assert PASCAL.native_shared_atomics
        assert PASCAL.scoped_atomics
        assert not KEPLER.scoped_atomics
        assert PASCAL.clock_ghz > MAXWELL.clock_ghz > KEPLER.clock_ghz
        assert KEPLER.shared_atomic_sw_base > 0  # lock-update-unlock

    def test_occupancy_limits(self):
        assert KEPLER.max_resident_blocks(256, 0) == 8  # 2048/256
        assert KEPLER.max_resident_blocks(64, 0) == 16  # block cap
        # shared memory limits residency
        assert KEPLER.max_resident_blocks(64, 24 * 1024) == 2
        with pytest.raises(ValueError):
            KEPLER.max_resident_blocks(0, 0)

    def test_vector_efficiency_exceeds_scalar(self):
        for arch in ARCHITECTURES.values():
            assert arch.dram_efficiency_vector > arch.dram_efficiency_scalar


class TestKernelTime:
    def test_more_instructions_cost_more(self):
        light = kernel_time(make_profile(), KEPLER)
        heavy_events = Counter(make_profile().events)
        heavy_events["inst.alu"] *= 10
        heavy = kernel_time(make_profile(events=heavy_events), KEPLER)
        assert heavy.compute > light.compute

    def test_memory_bound_scales_with_bytes(self):
        small = kernel_time(make_profile(), KEPLER)
        big_events = Counter(make_profile().events)
        big_events["mem.global.bytes"] *= 1000
        big = kernel_time(make_profile(events=big_events), KEPLER)
        assert big.memory == pytest.approx(small.memory * 1000)
        assert big.total >= big.memory

    def test_vector_pattern_faster_than_scalar(self):
        profile = make_profile()
        scalar = kernel_time(profile, KEPLER, load_pattern="scalar")
        vector = kernel_time(profile, KEPLER, load_pattern="vector")
        assert vector.memory < scalar.memory

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError):
            kernel_time(make_profile(), KEPLER, load_pattern="warp")

    def test_low_occupancy_latency_penalty(self):
        wide = make_profile(grid=60)
        narrow = make_profile(grid=1, events=Counter(
            {"inst.alu": 10_000, "blocks": 1, "warps": 8}
        ))
        t_wide = kernel_time(wide, KEPLER)
        t_narrow = kernel_time(narrow, KEPLER)
        # same instruction count on 1 block: far fewer SMs + latency exposed
        assert t_narrow.compute > t_wide.compute
        assert t_narrow.detail["per_instr_cost"] > t_wide.detail["per_instr_cost"]

    def test_kepler_shared_atomics_expensive(self):
        events = Counter(
            {"atom.shared.ops": 8192, "atom.shared.warp_serial": 8192,
             "blocks": 60, "warps": 480}
        )
        profile = make_profile(events=events)
        kepler = kernel_time(profile, KEPLER)
        maxwell = kernel_time(profile, MAXWELL)
        # Kepler's software lock loop is an order of magnitude costlier
        kepler_cycles = kepler.compute * KEPLER.clock_ghz
        maxwell_cycles = maxwell.compute * MAXWELL.clock_ghz
        assert kepler_cycles > 5 * maxwell_cycles

    def test_global_atomic_serialization(self):
        events = Counter({"atom.global.max_same_addr": 1_000_000, "blocks": 60})
        profile = make_profile(events=events)
        breakdown = kernel_time(profile, KEPLER)
        assert breakdown.atomic_global > 1e-3  # milliseconds of serialization
        assert breakdown.total >= breakdown.atomic_global

    def test_overlap_leak(self):
        breakdown = kernel_time(make_profile(), KEPLER)
        terms = (
            breakdown.compute,
            breakdown.memory,
            breakdown.atomic_global,
            breakdown.atomic_shared_block,
        )
        expected = max(terms) + OVERLAP_LEAK * (sum(terms) - max(terms))
        assert breakdown.total == pytest.approx(expected)

    def test_oversized_block_rejected(self):
        profile = make_profile(shared_bytes=KEPLER.shared_mem_per_sm + 1)
        with pytest.raises(ValueError):
            kernel_time(profile, KEPLER)

    def test_waves_computed(self):
        profile = make_profile(grid=KEPLER.sm_count * 8 * 3)  # 3 full waves
        breakdown = kernel_time(profile, KEPLER)
        assert breakdown.detail["waves"] == 3


class TestSampledScaling:
    def test_scaled_profile_times_like_full(self):
        full = make_profile()
        sampled_events = Counter(
            {k: v / 10 for k, v in full.events.items()}
        )
        sampled = make_profile(events=sampled_events, sampled_blocks=6)
        t_full = kernel_time(full, MAXWELL)
        t_sampled = kernel_time(sampled, MAXWELL)
        assert t_sampled.total == pytest.approx(t_full.total, rel=0.01)
