"""Native (generated-C) backend: bit-identical to the vector backend.

The native backend lowers fused regions, megafused While loops, shuffle
gathers and region+shuffle chains to C compiled into per-plan shared
libraries; everything it cannot lower falls back to the vector/compiled
closures.  Its contract is the same as every backend behind
:class:`repro.gpusim.backend.Backend`: bit-identical results AND
identical per-step event counters, for every Figure 6 version, op,
element type and execution mode, with and without the sanitizer
attached.  These tests also lock the graceful-degradation story (no C
toolchain -> unavailable with a reason, never a crash), the dtype edge
cases (NaN min/max, int64 extremes), the chain-fusion statistics, the
plan cache's native keying and the ``native.*`` metrics.

Equivalence tests skip cleanly on hosts without a C compiler; the
degradation tests run everywhere (they force unavailability via
``REPRO_NATIVE_DISABLE``).
"""

import itertools

import numpy as np
import pytest

from repro.codegen import Tunables, build_plan_cached, plan_key
from repro.gpusim import Executor
from repro.gpusim.native import (
    lower_kernel,
    native_available,
    reset_toolchain_cache,
    unavailable_reason,
)
from repro.runtime import ReductionFramework

FIG6_LABELS = "abcdefghijklmnop"
OPS = ("add", "max", "min")
CTYPES = ("float", "int")
MODES = ("sequential", "batched")

needs_toolchain = pytest.mark.skipif(
    not native_available(), reason="no C toolchain on this host"
)


def _tunables(version):
    if version.block_kind == "coop":
        return Tunables(block=64)
    return Tunables(block=64, grid=8)


def _data(ctype, n, seed=7):
    rng = np.random.default_rng(seed)
    if ctype == "int":
        return rng.integers(-50, 50, size=n).astype(np.int32)
    return rng.random(n).astype(np.float32)


def _run(plan, data, mode="batched", backend="native", sanitizer=None):
    executor = Executor(mode=mode, backend=backend, sanitizer=sanitizer)
    executor.device.upload("in", data)
    return executor.run_plan(plan)


def _same_scalar(a, b):
    """Bit-exact equality that treats NaN == NaN (results may be NaN)."""
    if a == b:
        return True
    try:
        return bool(np.isnan(a)) and bool(np.isnan(b))
    except TypeError:
        return False


def _assert_profiles_identical(ref, got):
    assert _same_scalar(got.result, ref.result), (got.result, ref.result)
    assert len(got.steps) == len(ref.steps)
    for r, g in zip(ref.steps, got.steps):
        assert dict(g.events) == dict(r.events), r.kernel_name


@pytest.fixture(scope="module")
def frameworks():
    return {
        (op, ctype): ReductionFramework(op=op, ctype=ctype)
        for op, ctype in itertools.product(OPS, CTYPES)
    }


@needs_toolchain
class TestFigure6NativeEquivalence:
    @pytest.mark.parametrize("label", sorted(FIG6_LABELS))
    @pytest.mark.parametrize("ctype", CTYPES)
    @pytest.mark.parametrize("op", OPS)
    def test_results_and_events_identical(self, frameworks, label, op, ctype):
        """Exhaustive: every Fig. 6 version × op × element type, both
        modes, native vs vector (itself locked to the interpreter)."""
        fw = frameworks[(op, ctype)]
        n = 3333
        data = _data(ctype, n)
        version = fw.resolve(label)
        plan = fw.build(version, n, _tunables(version))
        for mode in MODES:
            ref = _run(plan, data, mode=mode, backend="vector")
            got = _run(plan, data, mode=mode, backend="native")
            _assert_profiles_identical(ref, got)

    @pytest.mark.parametrize("mode", MODES)
    def test_sanitized_native_reports_match_vector(self, frameworks, mode):
        """Same diagnostics (kind, kernel) with the sanitizer attached:
        lowered fragments fall back to the closure path under a
        sanitizer, so shadow-state hooks observe identical traffic."""
        from repro.sanitize import Sanitizer

        fw = frameworks[("add", "float")]
        n = 1024
        data = _data("float", n)
        plan = fw.build("d", n, Tunables(block=64, grid=4))
        reports = {}
        for backend in ("vector", "native"):
            sanitizer = Sanitizer()
            _run(plan, data, mode=mode, backend=backend, sanitizer=sanitizer)
            reports[backend] = [
                (d.kind, d.kernel) for d in sanitizer.diagnostics
            ]
        assert reports["native"] == reports["vector"]

    def test_native_after_vector_warm_is_unperturbed(self, frameworks):
        """Artifact memos are per backend: running vector first (and the
        sanitized fallback path) must not leak into a native run."""
        fw = frameworks[("add", "float")]
        n = 2048
        data = _data("float", n)
        plan = fw.build("b", n, Tunables(block=64, grid=8))
        ref = _run(plan, data, mode="batched", backend="vector")
        got = _run(plan, data, mode="batched", backend="native")
        _assert_profiles_identical(ref, got)
        got2 = _run(plan, data, mode="batched", backend="native")
        _assert_profiles_identical(ref, got2)


@needs_toolchain
class TestDtypeEdgeCases:
    """Generated C must round-trip numpy's exact semantics at the edges:
    NaN propagation through min/max, int64 extremes, and bool/int/float
    promotion inside predicated regions."""

    @pytest.mark.parametrize("op", ("max", "min"))
    def test_float32_nan_min_max(self, frameworks, op):
        fw = frameworks[(op, "float")]
        n = 3333
        data = _data("float", n)
        data[[0, 17, 1000, n - 1]] = np.nan
        version = fw.resolve("b")
        plan = fw.build(version, n, _tunables(version))
        ref = _run(plan, data, backend="vector")
        got = _run(plan, data, backend="native")
        _assert_profiles_identical(ref, got)

    @pytest.mark.parametrize("op", OPS)
    def test_int_extremes_bitexact(self, frameworks, op):
        """Full-range int32 inputs (INT32_MIN/MAX mixed in): the int64
        accumulator arithmetic must match numpy bit for bit, including
        any wraparound behaviour on summation."""
        fw = frameworks[(op, "int")]
        n = 3333
        rng = np.random.default_rng(11)
        data = rng.integers(
            np.iinfo(np.int32).min, np.iinfo(np.int32).max,
            size=n, dtype=np.int64,
        ).astype(np.int32)
        data[0] = np.iinfo(np.int32).min
        data[-1] = np.iinfo(np.int32).max
        version = fw.resolve("b")
        plan = fw.build(version, n, _tunables(version))
        ref = _run(plan, data, backend="vector")
        got = _run(plan, data, backend="native")
        _assert_profiles_identical(ref, got)

    @pytest.mark.parametrize("label", ("d", "g", "p"))
    def test_mixed_promotion_in_predicated_versions(
        self, frameworks, label
    ):
        """Versions mixing bool predicates, int lane math and float
        accumulation in one region (conditional tree / warp variants):
        promotion inside the generated expressions must match numpy."""
        fw = frameworks[("add", "float")]
        n = 2048
        data = _data("float", n)
        data[::7] = -0.0  # signed zero through the predicate paths
        version = fw.resolve(label)
        plan = fw.build(version, n, _tunables(version))
        ref = _run(plan, data, backend="vector")
        got = _run(plan, data, backend="native")
        _assert_profiles_identical(ref, got)


@needs_toolchain
class TestNativeLoweringStats:
    def test_lowering_stats_for_warp_version(self):
        """Version (b) at a warp-rich shape lowers regions, the
        megafused accumulation loop, shuffles AND at least one fused
        region+shuffle chain (the warp reduction tree)."""
        fw = ReductionFramework(op="add")
        plan = fw.build("b", 1 << 14, Tunables(block=256, grid=8))
        totals = {}
        for step in plan.kernel_steps():
            nk = lower_kernel(step.kernel)
            for key, value in nk.stats.items():
                if key.startswith("native_"):
                    totals[key] = totals.get(key, 0) + value
        assert totals["native_regions"] >= 1
        assert totals["native_loops"] >= 1
        assert totals["native_shfls"] >= 1
        assert totals["native_chains"] >= 1

    def test_native_metrics_flow_to_registry(self):
        from repro.obs import default_metrics

        metrics = default_metrics()
        before = metrics.counter("native.kernels")
        fw = ReductionFramework(op="add")
        # Odd size/shape no other test builds: lowering is memoized per
        # kernel, so a shared plan would bump no counters here.
        n = 4111
        plan = fw.build("b", n, Tunables(block=64, grid=3))
        _run(plan, _data("float", n), backend="native")
        snap = metrics.snapshot(include_caches=False)
        assert metrics.counter("native.kernels") > before
        counters = snap["counters"]
        assert counters.get("native.cache.hits", 0) + counters.get(
            "native.cache.misses", 0
        ) >= 1
        # Compile time lands in the histogram on every cache miss; the
        # counter set always carries the lowered/fallback breakdown.
        assert "native.lowered_regions" in counters
        assert "native.fallback_closures" in counters

    def test_out_of_bounds_matches_vector(self):
        """An undersized buffer must fault with the engine's exact
        bounds error (message included) however the loads happen."""
        from repro.gpusim import SimulationError

        fw = ReductionFramework(op="add")
        n = 4096
        plan = fw.build("b", n, Tunables(block=64, grid=8))
        data = _data("float", n)
        errors = {}
        for backend in ("vector", "native"):
            executor = Executor(mode="batched", backend=backend)
            executor.device.upload("in", data[: n // 2])
            with pytest.raises(SimulationError) as exc:
                executor.run_plan(plan)
            errors[backend] = str(exc.value)
        assert errors["native"] == errors["vector"]


class TestPlanCacheNativeKeying:
    def test_key_includes_native_backend(self):
        fw = ReductionFramework(op="add")
        v = fw.resolve("b")
        t = Tunables(block=64, grid=8)
        assert plan_key(fw.pre, v, 4096, t, backend="native") != plan_key(
            fw.pre, v, 4096, t, backend="vector"
        )
        assert plan_key(fw.pre, v, 4096, t, backend="native") != plan_key(
            fw.pre, v, 4096, t, backend="compiled"
        )

    @needs_toolchain
    def test_native_plan_is_distinct_entry(self):
        from repro.perf import default_plan_cache

        fw = ReductionFramework(op="add")
        v = fw.resolve("b")
        t = Tunables(block=96, grid=5)  # unlikely to be cached already
        cache = default_plan_cache()
        p_vector = build_plan_cached(fw.pre, v, 4104, t, backend="vector")
        misses = cache.stats.misses
        p_native = build_plan_cached(fw.pre, v, 4104, t, backend="native")
        assert cache.stats.misses == misses + 1
        assert p_native is not p_vector
        assert (
            build_plan_cached(fw.pre, v, 4104, t, backend="native")
            is p_native
        )


class TestGracefulDegradation:
    """No C toolchain (or REPRO_NATIVE_DISABLE): the backend stays
    registered but refuses with a reason; sweeps shrink instead of
    failing; nothing crashes at import or parse time."""

    @pytest.fixture
    def disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        reset_toolchain_cache()
        yield
        monkeypatch.undo()
        reset_toolchain_cache()

    def test_unavailable_with_reason(self, disabled):
        assert not native_available()
        assert "REPRO_NATIVE_DISABLE" in unavailable_reason()

    def test_executor_refuses_with_reason(self, disabled):
        with pytest.raises(ValueError, match="unavailable"):
            Executor(mode="batched", backend="native")

    def test_engine_spec_refuses_with_reason(self, disabled):
        from repro.gpusim import parse_engine_spec

        with pytest.raises(ValueError, match="REPRO_NATIVE_DISABLE"):
            parse_engine_spec("batched-native")

    def test_sanitizer_sweep_drops_native_engine(self, disabled):
        from repro.sanitize import DEFAULT_ENGINES, default_engines

        engines = default_engines()
        assert engines == DEFAULT_ENGINES
        assert "batched-native" not in engines

    @needs_toolchain
    def test_sanitizer_sweep_gains_native_engine(self):
        from repro.sanitize import DEFAULT_ENGINES, default_engines

        engines = default_engines()
        assert engines[: len(DEFAULT_ENGINES)] == DEFAULT_ENGINES
        assert engines[-1] == "batched-native"

    def test_availability_recovers_after_reset(self, disabled):
        assert not native_available()
        # Fixture teardown restores env + cache; simulate it inline so
        # the recovery path itself is under test.
        import os

        del os.environ["REPRO_NATIVE_DISABLE"]
        reset_toolchain_cache()
        assert native_available() == (unavailable_reason() is None)
