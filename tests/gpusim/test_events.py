"""Tests for event profiles and their sampled-scaling behaviour."""

from collections import Counter

import pytest

from repro.gpusim.events import EVENT_KEYS, PlanProfile, StepProfile


def make_step(grid=100, block=128, sampled=0, **events):
    return StepProfile(
        kernel_name="k",
        grid=grid,
        block=block,
        shared_bytes=0,
        registers=8,
        events=Counter(events),
        sampled_blocks=sampled,
    )


class TestStepProfile:
    def test_warps_per_block(self):
        assert make_step(block=128).warps_per_block == 4
        assert make_step(block=33).warps_per_block == 2
        assert make_step(block=32).warps_per_block == 1

    def test_full_run_not_scaled(self):
        step = make_step(**{"inst.alu": 100})
        assert step.scaled()["inst.alu"] == 100

    def test_sampled_run_scaled_linearly(self):
        step = make_step(grid=100, sampled=10, **{"inst.alu": 50})
        scaled = step.scaled()
        assert scaled["inst.alu"] == 500
        assert scaled["blocks"] == 100
        assert scaled["threads"] == 100 * 128
        assert scaled["warps"] == 100 * 4

    def test_sampled_equal_to_grid_not_scaled(self):
        step = make_step(grid=10, sampled=10, **{"inst.alu": 50})
        assert step.scaled()["inst.alu"] == 50

    def test_sampled_max_same_addr_not_extrapolated(self):
        """A launch-wide *max* is not additive across blocks: the engine
        already extrapolated the cross-block population when recording,
        so scaled() must carry the counter through untouched."""
        step = make_step(
            grid=100,
            sampled=3,
            **{"atom.global.ops": 9, "atom.global.max_same_addr": 3},
        )
        scaled = step.scaled()
        assert scaled["atom.global.ops"] == 300  # additive: scales
        assert scaled["atom.global.max_same_addr"] == 3  # max: does not

    def test_event_key_registry_covers_engine_counters(self):
        # keep the documented key list in sync with what profiles contain
        for key in ("inst.alu", "mem.global.bytes", "atom.shared.ops",
                    "branch.divergent", "warps"):
            assert key in EVENT_KEYS


class TestPlanProfile:
    def test_totals_across_steps(self):
        plan = PlanProfile(
            plan_name="p",
            steps=[
                make_step(**{"inst.alu": 10}),
                make_step(**{"inst.alu": 20}),
            ],
        )
        assert plan.total("inst.alu") == 30
        assert plan.num_launches() == 2

    def test_totals_respect_scaling(self):
        plan = PlanProfile(
            plan_name="p",
            steps=[make_step(grid=100, sampled=10, **{"inst.alu": 10})],
        )
        assert plan.total("inst.alu") == pytest.approx(100)
