"""Batched vs sequential execution: bit-identical results and events.

The batched engine executes every block of a launch as one 2-D numpy
batch. Its contract (ISSUE: batched block execution) is that on any
batchable kernel it produces *bit-identical* results AND identical
per-step event counters to the per-block sequential interpreter. These
tests sweep the full Figure 6 catalog for both element types plus the
fallback analysis that routes non-batchable kernels to the sequential
path.
"""

import numpy as np
import pytest

from repro.apps.histogram import Histogram
from repro.apps.scan import Scan
from repro.codegen import Tunables
from repro.gpusim import Device, Executor, analyze_batchability
from repro.runtime import ReductionFramework

FIG6_LABELS = "abcdefghijklmnop"


def _tunables(version):
    if version.block_kind == "coop":
        return Tunables(block=64)
    return Tunables(block=64, grid=8)


def _run(fw, plan, data, mode, sample_limit=None):
    executor = Executor(mode=mode)
    executor.device.upload("in", data)
    return executor.run_plan(plan, sample_limit=sample_limit)


def _assert_profiles_identical(seq, bat):
    assert bat.result == seq.result  # bit-identical, no tolerance
    assert len(bat.steps) == len(seq.steps)
    for s, b in zip(seq.steps, bat.steps):
        assert dict(b.events) == dict(s.events), s.kernel_name


@pytest.fixture(scope="module")
def frameworks():
    return {
        "float": ReductionFramework(op="add", ctype="float"),
        "int": ReductionFramework(op="add", ctype="int"),
    }


class TestFigure6Equivalence:
    @pytest.mark.parametrize("label", sorted(FIG6_LABELS))
    @pytest.mark.parametrize("ctype", ["float", "int"])
    def test_results_and_events_identical(self, frameworks, label, ctype):
        fw = frameworks[ctype]
        rng = np.random.default_rng(7)
        n = 3333
        if ctype == "int":
            data = rng.integers(-50, 50, size=n).astype(np.int32)
        else:
            data = rng.random(n).astype(np.float32)
        version = fw.resolve(label)
        plan = fw.build(version, n, _tunables(version))
        seq = _run(fw, plan, data, "sequential")
        bat = _run(fw, plan, data, "batched")
        _assert_profiles_identical(seq, bat)

    def test_device_buffers_identical(self, frameworks):
        """Not just the scalar result: every output buffer matches."""
        fw = frameworks["float"]
        rng = np.random.default_rng(11)
        data = rng.random(2048).astype(np.float32)
        version = fw.resolve("b")
        plan = fw.build(version, len(data), Tunables(block=64, grid=8))
        outs = {}
        for mode in ("sequential", "batched"):
            executor = Executor(mode=mode)
            executor.device.upload("in", data)
            executor.run_plan(plan)
            outs[mode] = executor.device.download("out").copy()
        np.testing.assert_array_equal(outs["sequential"], outs["batched"])

    def test_min_max_ops_identical(self, frameworks):
        for op in ("min", "max"):
            fw = ReductionFramework(op=op)
            rng = np.random.default_rng(3)
            data = rng.random(1500).astype(np.float32)
            version = fw.resolve("p")
            plan = fw.build(version, len(data), Tunables(block=64, grid=4))
            seq = _run(fw, plan, data, "sequential")
            bat = _run(fw, plan, data, "batched")
            _assert_profiles_identical(seq, bat)

    def test_sampled_run_identical(self, frameworks):
        """sample_limit composes with batching (a sampled grid is just a
        smaller batch)."""
        fw = frameworks["float"]
        rng = np.random.default_rng(5)
        data = rng.random(1 << 16).astype(np.float32)
        version = fw.resolve("b")
        plan = fw.build(version, len(data), Tunables(block=128, grid=32))
        seq = _run(fw, plan, data, "sequential", sample_limit=3)
        bat = _run(fw, plan, data, "batched", sample_limit=3)
        for s, b in zip(seq.steps, bat.steps):
            assert b.sampled_blocks == s.sampled_blocks
            assert dict(b.events) == dict(s.events)

    def test_chunked_batches_identical(self):
        """Launches above BATCH_LANES execute in block-ordered chunks and
        must still match the sequential engine exactly."""
        fw = ReductionFramework(op="add")
        rng = np.random.default_rng(13)
        data = rng.random(40000).astype(np.float32)
        version = fw.resolve("b")
        plan = fw.build(version, len(data), Tunables(block=64, grid=48))
        seq = _run(fw, plan, data, "sequential")
        executor = Executor(mode="batched")
        executor.BATCH_LANES = 64 * 7  # force several uneven chunks
        executor.device.upload("in", data)
        bat = executor.run_plan(plan)
        _assert_profiles_identical(seq, bat)


class TestExecutionModeSelection:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            Executor(mode="turbo")

    def test_forced_modes_recorded_in_meta(self):
        fw = ReductionFramework(op="add")
        data = np.ones(4096, dtype=np.float32)
        plan = fw.build("b", len(data), Tunables(block=64, grid=8))
        for mode in ("batched", "sequential"):
            executor = Executor(mode=mode)
            executor.device.upload("in", data)
            profile = executor.run_plan(plan)
            assert all(s.meta["exec.mode"] == mode for s in profile.steps)

    def test_auto_batches_reduction_kernels(self):
        fw = ReductionFramework(op="add")
        data = np.ones(4096, dtype=np.float32)
        plan = fw.build("b", len(data), Tunables(block=64, grid=8))
        executor = Executor()  # auto
        executor.device.upload("in", data)
        profile = executor.run_plan(plan)
        multi = [s for s in profile.steps if s.grid > 1]
        assert multi and all(s.meta["exec.mode"] == "batched" for s in multi)

    def test_auto_single_block_stays_sequential(self):
        fw = ReductionFramework(op="add")
        data = np.ones(256, dtype=np.float32)
        plan = fw.build("a", len(data), Tunables(block=64))
        executor = Executor()
        executor.device.upload("in", data)
        profile = executor.run_plan(plan)
        assert all(
            s.meta["exec.mode"] == "sequential"
            for s in profile.steps
            if s.grid == 1
        )

    def test_all_fig6_kernels_are_batchable(self):
        fw = ReductionFramework(op="add")
        for label in FIG6_LABELS:
            plan = fw.build(label, 4096, _tunables(fw.resolve(label)))
            for step in plan.kernel_steps():
                ok, reason = analyze_batchability(step.kernel)
                assert ok, f"({label}) {step.kernel.name}: {reason}"


class TestFallbackAnalysis:
    def test_scan_kernels_fall_back(self):
        """Scan loads and stores the same global buffer — a cross-block
        hazard the batch analysis must reject."""
        plan = Scan().build_plan(4096)
        verdicts = [
            analyze_batchability(step.kernel)
            for step in plan.kernel_steps()
        ]
        assert any(not ok for ok, _ in verdicts)

    def test_histogram_float_semantics_preserved(self):
        """Histogram atomics inside a while loop: whatever the analysis
        decides, results must equal the sequential engine's."""
        app = Histogram(bins=16)
        rng = np.random.default_rng(23)
        keys = rng.integers(0, 16, size=5000).astype(np.int32)
        counts, _ = app.run(keys)
        expected = np.bincount(keys % 16, minlength=16)
        np.testing.assert_array_equal(counts, expected)

    def test_apps_still_correct_in_auto_mode(self):
        data = np.random.default_rng(1).random(3000).astype(np.float32)
        prefix, _ = Scan().run(data)
        np.testing.assert_allclose(
            prefix, np.cumsum(data.astype(np.float64)), rtol=1e-4
        )
