"""Unit tests for the functional SIMT execution engine."""

import numpy as np
import pytest

from repro.gpusim.device import Device, DeviceError
from repro.gpusim.engine import Executor, SimulationError
from repro.vir import (
    IRBuilder,
    Imm,
    Kernel,
    KernelStep,
    MemsetStep,
    Plan,
    SharedDecl,
)


def run_kernel(kernel, grid, block, args=None, buffers=None, device=None,
               sample_limit=None):
    executor = Executor(device=device)
    step = KernelStep(
        kernel, grid=grid, block=block, args=args or {}, buffers=buffers or {}
    )
    profile = executor.run_kernel(step, sample_limit=sample_limit)
    return executor.device, profile


class TestSpecialRegisters:
    def test_tid_and_block_identities(self):
        b = IRBuilder()
        tid = b.special("tid")
        ctaid = b.special("ctaid")
        ntid = b.special("ntid")
        gid = b.binop("add", b.binop("mul", ctaid, ntid), tid)
        b.st_global("out", gid, gid)
        kernel = Kernel("ids", buffers=["out"], body=b.finish())
        device = Device()
        device.alloc("out", 128, dtype=np.int64)
        device, _ = run_kernel(kernel, grid=4, block=32,
                               buffers={"out": "out"}, device=device)
        np.testing.assert_array_equal(device.get("out"), np.arange(128))

    def test_laneid_warpid(self):
        b = IRBuilder()
        tid = b.special("tid")
        lane = b.special("laneid")
        warp = b.special("warpid")
        recon = b.binop("add", b.binop("mul", warp, Imm(32)), lane)
        eq = b.binop("eq", recon, tid)
        b.st_global("out", tid, eq)
        kernel = Kernel("lw", buffers=["out"], body=b.finish())
        device = Device()
        device.alloc("out", 96, dtype=np.int64)
        device, _ = run_kernel(kernel, grid=1, block=96,
                               buffers={"out": "out"}, device=device)
        assert device.get("out").all()


class TestControlFlow:
    def test_if_masks_lanes(self):
        b = IRBuilder()
        tid = b.special("tid")
        lo = b.binop("lt", tid, 16)
        instr, then_r, else_r = b.if_else(lo)
        with then_r:
            b.st_global("out", tid, Imm(1.0))
        with else_r:
            b.st_global("out", tid, Imm(2.0))
        kernel = Kernel("ifel", buffers=["out"], body=b.finish())
        device = Device()
        device.alloc("out", 32)
        device, profile = run_kernel(kernel, grid=1, block=32,
                                     buffers={"out": "out"}, device=device)
        out = device.get("out")
        assert (out[:16] == 1.0).all() and (out[16:] == 2.0).all()
        assert profile.events["branch.divergent"] == 1

    def test_uniform_branch_not_divergent(self):
        b = IRBuilder()
        tid = b.special("tid")
        warp = b.special("warpid")
        lo = b.binop("lt", warp, 1)  # whole warps agree
        with b.if_(lo):
            b.st_global("out", tid, Imm(1.0))
        kernel = Kernel("uni", buffers=["out"], body=b.finish())
        device = Device()
        device.alloc("out", 64)
        _, profile = run_kernel(kernel, grid=1, block=64,
                                buffers={"out": "out"}, device=device)
        assert profile.events.get("branch.divergent", 0) == 0

    def test_while_per_lane_trip_counts(self):
        # lane i iterates i times accumulating 1 per iteration
        b = IRBuilder()
        tid = b.special("tid")
        acc = b.mov(Imm(0))
        i = b.mov(Imm(0))
        cond = b.fresh("c")
        loop = b.while_(cond)
        with loop.cond:
            b.binop("lt", i, tid, dst=cond)
        with loop.body:
            b.binop("add", acc, Imm(1), dst=acc)
            b.binop("add", i, Imm(1), dst=i)
        b.st_global("out", tid, acc)
        kernel = Kernel("w", buffers=["out"], body=b.finish())
        device = Device()
        device.alloc("out", 40, dtype=np.int64)
        device, _ = run_kernel(kernel, grid=1, block=40,
                               buffers={"out": "out"}, device=device)
        np.testing.assert_array_equal(device.get("out"), np.arange(40))

    def test_runaway_loop_capped(self):
        b = IRBuilder()
        cond = b.fresh("c")
        loop = b.while_(cond)
        with loop.cond:
            b.mov(Imm(True), dst=cond)
        with loop.body:
            b.mov(Imm(0))
        kernel = Kernel("inf", body=b.finish())
        executor = Executor(loop_cap=100)
        step = KernelStep(kernel, grid=1, block=32)
        with pytest.raises(SimulationError, match="iteration cap"):
            executor.run_kernel(step)


class TestMemory:
    def test_out_of_bounds_global_read_detected(self):
        b = IRBuilder()
        tid = b.special("tid")
        b.ld_global("in", tid)
        kernel = Kernel("oob", buffers=["in"], body=b.finish())
        device = Device()
        device.alloc("in", 8)
        with pytest.raises(SimulationError, match="out-of-bounds"):
            run_kernel(kernel, grid=1, block=32, buffers={"in": "in"},
                       device=device)

    def test_out_of_bounds_shared_detected(self):
        b = IRBuilder()
        tid = b.special("tid")
        b.st_shared("smem", tid, Imm(1.0))
        kernel = Kernel(
            "oobs", shared=[SharedDecl("smem", 8)], body=b.finish()
        )
        with pytest.raises(SimulationError, match="out-of-bounds"):
            run_kernel(kernel, grid=1, block=32)

    def test_read_of_unwritten_register(self):
        from repro.vir import Mov, Reg

        kernel = Kernel("unwritten", body=[Mov(Reg("a"), Reg("ghost"))])
        with pytest.raises(SimulationError, match="unwritten register"):
            run_kernel(kernel, grid=1, block=32)

    def test_coalesced_vs_strided_transactions(self):
        def make(stride):
            b = IRBuilder()
            tid = b.special("tid")
            idx = b.binop("mul", tid, Imm(stride))
            b.ld_global("in", idx)
            return Kernel("ld", buffers=["in"], body=b.finish())

        device = Device()
        device.alloc("in", 32 * 32)
        _, coalesced = run_kernel(make(1), grid=1, block=32,
                                  buffers={"in": "in"}, device=device)
        device2 = Device()
        device2.alloc("in", 32 * 32)
        _, strided = run_kernel(make(32), grid=1, block=32,
                                buffers={"in": "in"}, device=device2)
        assert coalesced.events["mem.global.ld.trans"] == 1
        assert strided.events["mem.global.ld.trans"] == 32

    def test_vector_load_counts_one_instruction(self):
        b = IRBuilder()
        tid = b.special("tid")
        base = b.binop("mul", tid, Imm(4))
        b.ld_global_vec("in", base, width=4)
        kernel = Kernel("vec", buffers=["in"], body=b.finish())
        device = Device()
        device.alloc("in", 4 * 32)
        _, profile = run_kernel(kernel, grid=1, block=32,
                                buffers={"in": "in"}, device=device)
        assert profile.events["inst.ld.global"] == 1
        # 128 consecutive floats = 4 segments of 128B, counted once
        assert profile.events["mem.global.ld.trans"] == 4

    def test_bank_conflicts_counted(self):
        b = IRBuilder()
        tid = b.special("tid")
        idx = b.binop("mul", tid, Imm(32))  # all lanes hit bank 0
        b.st_shared("smem", idx, Imm(1.0))
        kernel = Kernel(
            "bank", shared=[SharedDecl("smem", 32 * 32)], body=b.finish()
        )
        _, profile = run_kernel(kernel, grid=1, block=32)
        assert profile.events["mem.shared.replays"] == 31

    def test_race_detection_opt_in(self):
        b = IRBuilder()
        tid = b.special("tid")
        b.st_global("out", Imm(0), tid)  # all lanes write index 0
        kernel = Kernel("race", buffers=["out"], body=b.finish())
        device = Device()
        device.alloc("out", 4)
        executor = Executor(device=device, check_races=True)
        step = KernelStep(kernel, grid=1, block=32, buffers={"out": "out"})
        with pytest.raises(SimulationError, match="race"):
            executor.run_kernel(step)


class TestAtomics:
    def test_shared_atomic_add_contention(self):
        b = IRBuilder()
        b.atom_shared("add", "smem", Imm(0), Imm(1.0))
        kernel = Kernel("satom", shared=[SharedDecl("smem", 1)], body=b.finish())
        _, profile = run_kernel(kernel, grid=1, block=64)
        assert profile.events["atom.shared.ops"] == 64
        # all 32 lanes of each warp hit the same address -> 32 serialized
        assert profile.events["atom.shared.warp_serial"] == 64
        assert profile.events["atom.shared.block_max_same_addr"] == 64

    def test_global_atomic_accumulates_across_blocks(self):
        b = IRBuilder()
        tid = b.special("tid")
        z = b.binop("eq", tid, 0)
        with b.if_(z):
            b.atom_global("add", "out", 0, Imm(1.0))
        kernel = Kernel("gatom", buffers=["out"], body=b.finish())
        device = Device()
        device.alloc("out", 1)
        device, profile = run_kernel(kernel, grid=10, block=32,
                                     buffers={"out": "out"}, device=device)
        assert device.get("out")[0] == 10.0
        assert profile.events["atom.global.max_same_addr"] == 10

    def test_atomic_max(self):
        b = IRBuilder()
        tid = b.special("tid")
        b.atom_global("max", "out", 0, tid)
        kernel = Kernel("gmax", buffers=["out"], body=b.finish())
        device = Device()
        device.alloc("out", 1)
        device, _ = run_kernel(kernel, grid=1, block=64,
                               buffers={"out": "out"}, device=device)
        assert device.get("out")[0] == 63


class TestShuffle:
    def _shfl_kernel(self, mode, offset, width=32):
        b = IRBuilder()
        tid = b.special("tid")
        src = b.mov(tid)
        res = b.shfl(src, mode, offset, width=width)
        b.st_global("out", tid, res)
        return Kernel("shfl", buffers=["out"], body=b.finish())

    def _run(self, kernel, block=32):
        device = Device()
        device.alloc("out", block, dtype=np.int64)
        device, _ = run_kernel(kernel, grid=1, block=block,
                               buffers={"out": "out"}, device=device)
        return device.get("out")

    def test_shfl_down(self):
        out = self._run(self._shfl_kernel("down", 1))
        expected = np.arange(32) + 1
        expected[31] = 31  # out of range -> own value
        np.testing.assert_array_equal(out, expected)

    def test_shfl_up(self):
        out = self._run(self._shfl_kernel("up", 1))
        expected = np.arange(32) - 1
        expected[0] = 0
        np.testing.assert_array_equal(out, expected)

    def test_shfl_xor(self):
        out = self._run(self._shfl_kernel("xor", 1))
        expected = np.arange(32) ^ 1
        np.testing.assert_array_equal(out, expected)

    def test_shfl_respects_warp_boundaries(self):
        out = self._run(self._shfl_kernel("down", 16), block=64)
        assert out[0] == 16   # lane 0 reads lane 16 of warp 0
        assert out[15] == 31  # lane 15 reads lane 31 of warp 0
        assert out[16] == 16  # 16+16 leaves the warp -> own value
        assert out[32] == 48  # lane 0 of warp 1 reads lane 16 of warp 1
        assert out[48] == 48  # out of range within warp 1 -> own value

    def test_subwarp_width(self):
        out = self._run(self._shfl_kernel("down", 4, width=8))
        # within each 8-lane subwarp
        assert out[0] == 4
        assert out[5] == 5  # 5+4=9 out of subwarp range -> own value


class TestPlansAndSampling:
    def _plan(self, n, grid, block):
        b = IRBuilder()
        tid = b.special("tid")
        ctaid = b.special("ctaid")
        ntid = b.special("ntid")
        gid = b.binop("add", b.binop("mul", ctaid, ntid), tid)
        nreg = b.ld_param("n")
        ok = b.binop("lt", gid, nreg)
        with b.if_(ok):
            value = b.ld_global("in", gid)
            b.atom_global("add", "out", 0, value)
        kernel = Kernel("sum", params=["n"], buffers=["in", "out"], body=b.finish())
        return Plan(
            "t",
            steps=[
                MemsetStep("out", 0.0),
                KernelStep(kernel, grid=grid, block=block, args={"n": n},
                           buffers={"in": "in", "out": "out"}),
            ],
            scratch={"out": 1},
        )

    def test_plan_runs_and_returns_result(self, rng):
        n = 1000
        plan = self._plan(n, grid=8, block=128)
        executor = Executor()
        data = rng.random(n).astype(np.float32)
        executor.device.upload("in", data)
        profile = executor.run_plan(plan)
        assert profile.result == pytest.approx(float(data.sum()), rel=1e-5)
        assert not profile.meta["sampled"]

    def test_sampled_run_scales_events(self, rng):
        n = 128 * 64
        plan = self._plan(n, grid=64, block=128)
        executor = Executor()
        executor.device.upload("in", np.ones(n, dtype=np.float32))
        profile = executor.run_plan(plan, sample_limit=4)
        assert profile.meta["sampled"]
        assert profile.result is None
        step = profile.steps[0]
        assert step.sampled_blocks == 4
        scaled = step.scaled()
        assert scaled["blocks"] == 64
        # every thread issues one atomic; 4 sampled blocks scale to 64
        assert scaled["atom.global.ops"] == pytest.approx(n, rel=0.01)

    def test_sampled_cross_block_max_same_addr_extrapolates(self):
        """Every block hits out[0] (the final-combine pattern): the
        sampled per-address total must extrapolate to the full grid."""
        b = IRBuilder()
        tid = b.special("tid")
        z = b.binop("eq", tid, 0)
        with b.if_(z):
            b.atom_global("add", "out", 0, Imm(1.0))
        kernel = Kernel("combine", buffers=["out"], body=b.finish())
        device = Device()
        device.alloc("out", 1)
        _, profile = run_kernel(kernel, grid=64, block=32,
                                buffers={"out": "out"}, device=device,
                                sample_limit=4)
        assert profile.sampled_blocks == 4
        # 4 sampled blocks x 1 op on out[0], shared cross-block ->
        # extrapolated by 64/4 when recorded; scaled() keeps it as-is.
        assert profile.events["atom.global.max_same_addr"] == 64
        assert profile.scaled()["atom.global.max_same_addr"] == 64

    def test_sampled_block_private_max_same_addr_not_extrapolated(self):
        """Each block atomically updates only out[ctaid]: the per-address
        count is grid-independent and must NOT grow with the sampling
        factor (the old linear scaling inflated it ~grid/sample times)."""
        b = IRBuilder()
        ctaid = b.special("ctaid")
        b.atom_global("add", "out", ctaid, Imm(1.0))
        kernel = Kernel("private", buffers=["out"], body=b.finish())
        device = Device()
        device.alloc("out", 64)
        _, profile = run_kernel(kernel, grid=64, block=32,
                                buffers={"out": "out"}, device=device,
                                sample_limit=4)
        assert profile.sampled_blocks == 4
        # 32 lanes per block on one private address, in every block.
        assert profile.events["atom.global.max_same_addr"] == 32
        assert profile.scaled()["atom.global.max_same_addr"] == 32
        # The additive counter still extrapolates: 4 x 32 -> 64 x 32.
        assert profile.scaled()["atom.global.ops"] == 64 * 32

    @pytest.mark.parametrize("pattern", ["cross", "private"])
    def test_sampled_max_same_addr_identical_across_engines(self, pattern):
        """Batched and sequential engines must agree on the recorded
        counter for both atomic-address populations, sampled or not."""
        b = IRBuilder()
        if pattern == "cross":
            tid = b.special("tid")
            z = b.binop("eq", tid, 0)
            with b.if_(z):
                b.atom_global("add", "out", 0, Imm(1.0))
        else:
            ctaid = b.special("ctaid")
            b.atom_global("add", "out", ctaid, Imm(1.0))
        kernel = Kernel(f"agree_{pattern}", buffers=["out"], body=b.finish())
        results = {}
        for mode in ("batched", "sequential"):
            for sample_limit in (None, 4):
                device = Device()
                device.alloc("out", 64)
                executor = Executor(device=device, mode=mode)
                step = KernelStep(kernel, grid=64, block=32,
                                  buffers={"out": "out"})
                profile = executor.run_kernel(step, sample_limit=sample_limit)
                results.setdefault(sample_limit, []).append(
                    dict(profile.events)
                )
        for sample_limit, (batched, sequential) in results.items():
            assert batched == sequential, f"sample_limit={sample_limit}"

    def test_device_errors(self):
        device = Device()
        device.alloc("a", 4)
        with pytest.raises(DeviceError):
            device.alloc("a", 4)
        with pytest.raises(DeviceError):
            device.get("missing")
        with pytest.raises(DeviceError):
            device.alloc("b", 0)
        device.free("a")
        with pytest.raises(DeviceError):
            device.free("a")
