"""Regressions for loop-divergence accounting, the shuffle warp-boundary
clamp, and exact engine error messages — locked across all four
(mode × backend) execution combinations."""

import numpy as np
import pytest

from repro.gpusim import Executor, SimulationError
from repro.vir import IRBuilder, Kernel, KernelStep, Reg

COMBOS = [
    ("sequential", "interpreted"),
    ("sequential", "compiled"),
    ("batched", "interpreted"),
    ("batched", "compiled"),
    ("sequential", "vector"),
    ("batched", "vector"),
]


def run_combo(kernel, grid, block, mode, backend, out_size=64,
              out_dtype=np.float64, in_data=None, loop_cap=None):
    executor = Executor(mode=mode, backend=backend, loop_cap=loop_cap)
    buffers = {}
    if "in" in kernel.buffers:
        executor.device.upload("in", in_data)
        buffers["in"] = "in"
    if "out" in kernel.buffers:
        executor.device.alloc("out", out_size, dtype=out_dtype)
        buffers["out"] = "out"
    step = KernelStep(kernel, grid=grid, block=block, buffers=buffers)
    profile = executor.run_kernel(step)
    return executor.device, profile


class TestWhileDivergence:
    def _lane_dependent_loop(self):
        # Lane trip counts 0,1,2,3 repeating: every warp splits at the
        # first three back-edge tests (some lanes continue, some exit)
        # and reconverges at the fourth.
        b = IRBuilder()
        tid = b.special("tid")
        ctaid = b.special("ctaid")
        ntid = b.special("ntid")
        gid = b.binop("add", b.binop("mul", ctaid, ntid), tid)
        limit = b.binop("mod", tid, 4)
        i = b.mov(0)
        cond = b.fresh("c")
        loop = b.while_(cond)
        with loop.cond:
            b.binop("lt", i, limit, dst=cond)
        with loop.body:
            b.binop("add", i, 1, dst=i)
        b.st_global("out", gid, i)
        return Kernel("lanedep", buffers=["out"], body=b.finish())

    @pytest.mark.parametrize("mode,backend", COMBOS)
    def test_counts_per_warp_per_iteration(self, mode, backend):
        kernel = self._lane_dependent_loop()
        device, profile = run_combo(
            kernel, grid=2, block=64, mode=mode, backend=backend,
            out_size=128, out_dtype=np.int64,
        )
        # 3 divergent back-edge tests x 2 warps/block x 2 blocks.
        assert profile.events["branch.divergent"] == 12
        np.testing.assert_array_equal(
            device.get("out"), np.arange(128) % 4
        )

    @pytest.mark.parametrize("mode,backend", COMBOS)
    def test_uniform_trip_count_not_divergent(self, mode, backend):
        # Constant trip count: all lanes exit together. The compiled
        # backend unrolls this loop entirely; both must report zero.
        b = IRBuilder()
        tid = b.special("tid")
        i = b.mov(0)
        cond = b.fresh("c")
        loop = b.while_(cond)
        with loop.cond:
            b.binop("lt", i, 4, dst=cond)
        with loop.body:
            b.binop("add", i, 1, dst=i)
        b.st_global("out", tid, i)
        kernel = Kernel("uniloop", buffers=["out"], body=b.finish())
        _, profile = run_combo(kernel, 1, 64, mode, backend,
                               out_dtype=np.int64)
        assert profile.events.get("branch.divergent", 0) == 0

    @pytest.mark.parametrize("mode,backend", COMBOS)
    def test_warp_uniform_exit_not_divergent(self, mode, backend):
        # Trip count varies per *warp* but not within any warp: no lane
        # split, so no divergence (and the loop is not unrollable, so
        # both backends exercise the live While path).
        b = IRBuilder()
        tid = b.special("tid")
        warp = b.special("warpid")
        limit = b.binop("add", warp, 1)
        i = b.mov(0)
        cond = b.fresh("c")
        loop = b.while_(cond)
        with loop.cond:
            b.binop("lt", i, limit, dst=cond)
        with loop.body:
            b.binop("add", i, 1, dst=i)
        b.st_global("out", tid, i)
        kernel = Kernel("warpuni", buffers=["out"], body=b.finish())
        _, profile = run_combo(kernel, 1, 64, mode, backend,
                               out_dtype=np.int64)
        assert profile.events.get("branch.divergent", 0) == 0

    def test_all_combos_bit_identical(self):
        kernel = self._lane_dependent_loop()
        results = []
        for mode, backend in COMBOS:
            device, profile = run_combo(
                kernel, grid=2, block=64, mode=mode, backend=backend,
                out_size=128, out_dtype=np.int64,
            )
            results.append((device.get("out").copy(), dict(profile.events)))
        ref_out, ref_events = results[0]
        for out, events in results[1:]:
            np.testing.assert_array_equal(out, ref_out)
            assert events == ref_events


class TestShflBoundaryClamp:
    """Out-of-segment shuffle sources fall back to the lane's own value,
    never read across the warp/width boundary of a partial warp."""

    def _shfl_kernel(self, mode_, offset, width):
        b = IRBuilder()
        tid = b.special("tid")
        v = b.ld_global("in", tid)
        w = b.shfl(v, mode_, offset, width=width)
        b.st_global("out", tid, w)
        return Kernel("shfl", buffers=["in", "out"], body=b.finish())

    @pytest.mark.parametrize("mode,backend", COMBOS)
    def test_partial_last_warp_identity(self, mode, backend):
        # block=48: lanes 32..47 form a partial warp. shfl.down 16 would
        # source lanes 48..63 — past the block — so they must read their
        # own value, not lane 47's (the old clamp).
        n = 48
        data = np.arange(100, 100 + n).astype(np.float32)
        kernel = self._shfl_kernel("down", 16, 32)
        device, _ = run_combo(kernel, 1, n, mode, backend,
                              out_size=n, out_dtype=np.float32,
                              in_data=data)
        out = device.get("out")
        expected = data.copy()
        expected[:16] = data[16:32]  # full warp, in-segment sources
        np.testing.assert_array_equal(out, expected)

    @pytest.mark.parametrize("mode,backend", COMBOS)
    def test_width_lt_32_with_ragged_block(self, mode, backend):
        # block=20, width=8: segments {0..7}, {8..15}, {16..19}. In the
        # ragged last segment, down-4 sources (20..23) exceed the block.
        n = 20
        data = np.arange(n).astype(np.float32) * 3.0
        kernel = self._shfl_kernel("down", 4, 8)
        device, _ = run_combo(kernel, 1, n, mode, backend,
                              out_size=n, out_dtype=np.float32,
                              in_data=data)
        out = device.get("out")
        expected = data.copy()
        for lane in range(16):
            if lane % 8 < 4:
                expected[lane] = data[lane + 4]
        np.testing.assert_array_equal(out, expected)

    @pytest.mark.parametrize("mode,backend", COMBOS)
    def test_idx_mode_out_of_range_target(self, mode, backend):
        # shfl.idx with a lane-varying target: lanes whose target lands
        # outside the width segment keep their own value.
        b = IRBuilder()
        tid = b.special("tid")
        v = b.ld_global("in", tid)
        target = b.binop("add", tid, 28)  # >= 32 for lanes 4+
        w = b.shfl(v, "idx", target)
        b.st_global("out", tid, w)
        kernel = Kernel("shflidx", buffers=["in", "out"], body=b.finish())
        n = 32
        data = np.arange(n).astype(np.float32)
        device, _ = run_combo(kernel, 1, n, mode, backend,
                              out_size=n, out_dtype=np.float32,
                              in_data=data)
        expected = data.copy()
        expected[:4] = data[28:32]
        np.testing.assert_array_equal(device.get("out"), expected)


class TestExactErrorMessages:
    """Compiled traces must fail with the interpreter's exact messages."""

    @pytest.mark.parametrize("mode,backend", COMBOS)
    def test_loop_cap_exceeded(self, mode, backend):
        b = IRBuilder()
        tid = b.special("tid")
        cond = b.fresh("c")
        loop = b.while_(cond)
        with loop.cond:
            b.binop("ge", tid, 0, dst=cond)  # always true, lane-varying
        with loop.body:
            b.mov(1)
        b.st_global("out", tid, tid)
        kernel = Kernel("spin", buffers=["out"], body=b.finish())
        with pytest.raises(
            SimulationError,
            match=r"kernel 'spin': loop exceeded iteration cap \(7\)$",
        ):
            run_combo(kernel, 1, 32, mode, backend, loop_cap=7)

    @pytest.mark.parametrize("mode,backend", COMBOS)
    def test_read_of_unwritten_register(self, mode, backend):
        b = IRBuilder()
        tid = b.special("tid")
        b.st_global("out", tid, Reg("ghost"))
        kernel = Kernel("unread", buffers=["out"], body=b.finish())
        with pytest.raises(
            SimulationError,
            match=r"kernel 'unread': read of unwritten register %ghost$",
        ):
            run_combo(kernel, 1, 32, mode, backend)

    @pytest.mark.parametrize("mode,backend", COMBOS)
    @pytest.mark.parametrize(
        "field,value,detail",
        [("mode", "bogus", r"invalid shfl mode 'bogus'"),
         ("width", 5, r"invalid shfl width 5")],
    )
    def test_invalid_shfl_rejected(self, mode, backend, field, value,
                                   detail):
        # The dataclass validates at construction; mutate afterwards to
        # prove the engines re-validate at execution time.
        b = IRBuilder()
        tid = b.special("tid")
        v = b.ld_global("in", tid)
        w = b.shfl(v, "down", 1)
        b.st_global("out", tid, w)
        body = b.finish()
        shfl = next(i for i in body if type(i).__name__ == "Shfl")
        setattr(shfl, field, value)
        kernel = Kernel("badshfl", buffers=["in", "out"], body=body)
        data = np.zeros(32, dtype=np.float32)
        with pytest.raises(
            SimulationError, match=r"kernel 'badshfl': " + detail,
        ):
            run_combo(kernel, 1, 32, mode, backend, in_data=data)
