"""Vector (fused-region) backend: bit-identical to compiled/interpreted.

The vector backend re-partitions each compiled closure trace into
maximal straight-line regions and executes every region as one
generated numpy mega-expression; eligible While loops additionally
megafuse into a single generated Python loop (registers live in SSA
locals, gather indices resolve as ``base + offset`` without ever being
materialized). Its contract is the same as every backend behind
:class:`repro.gpusim.backend.Backend`: bit-identical results AND
identical per-step event counters against both predecessors, for every
Figure 6 version, op, element type and execution mode, with and
without the sanitizer attached. These tests also lock the plan cache's
backend keying (a plan pre-warmed for one backend must be a cache miss
for another) and the fusion statistics surfaced by ``repro stats``.
"""

import itertools

import numpy as np
import pytest

from repro.codegen import Tunables, build_plan_cached, plan_key
from repro.gpusim import Executor, compile_kernel, fuse_kernel
from repro.gpusim.fuse import trace_instrs
from repro.perf import default_plan_cache
from repro.runtime import ReductionFramework

FIG6_LABELS = "abcdefghijklmnop"
OPS = ("add", "max", "min")
CTYPES = ("float", "int")
MODES = ("sequential", "batched")


def _tunables(version):
    if version.block_kind == "coop":
        return Tunables(block=64)
    return Tunables(block=64, grid=8)


def _data(ctype, n, seed=7):
    rng = np.random.default_rng(seed)
    if ctype == "int":
        return rng.integers(-50, 50, size=n).astype(np.int32)
    return rng.random(n).astype(np.float32)


def _run(plan, data, mode="auto", backend="compiled", sanitizer=None):
    executor = Executor(mode=mode, backend=backend, sanitizer=sanitizer)
    executor.device.upload("in", data)
    return executor.run_plan(plan)


def _assert_profiles_identical(ref, got):
    assert got.result == ref.result  # bit-identical, no tolerance
    assert len(got.steps) == len(ref.steps)
    for r, g in zip(ref.steps, got.steps):
        assert dict(g.events) == dict(r.events), r.kernel_name


@pytest.fixture(scope="module")
def frameworks():
    return {
        (op, ctype): ReductionFramework(op=op, ctype=ctype)
        for op, ctype in itertools.product(OPS, CTYPES)
    }


class TestFigure6VectorEquivalence:
    @pytest.mark.parametrize("label", sorted(FIG6_LABELS))
    @pytest.mark.parametrize("ctype", CTYPES)
    @pytest.mark.parametrize("op", OPS)
    def test_results_and_events_identical(self, frameworks, label, op, ctype):
        """Exhaustive: every Fig. 6 version × op × element type, both
        modes, vector vs compiled (itself locked to the interpreter)."""
        fw = frameworks[(op, ctype)]
        n = 3333
        data = _data(ctype, n)
        version = fw.resolve(label)
        plan = fw.build(version, n, _tunables(version))
        for mode in MODES:
            ref = _run(plan, data, mode=mode, backend="compiled")
            got = _run(plan, data, mode=mode, backend="vector")
            _assert_profiles_identical(ref, got)


class TestVectorAfterEveryPredecessor:
    """A vector run must be unperturbed by which backend warmed the
    shared kernels first: artifact memos are per backend and must not
    leak state across (mode × backend) predecessor combinations."""

    PREDECESSORS = [
        ("sequential", "interpreted"),
        ("sequential", "compiled"),
        ("batched", "interpreted"),
        ("batched", "compiled"),
    ]

    @pytest.mark.parametrize("san", [False, True])
    @pytest.mark.parametrize("pre_mode,pre_backend", PREDECESSORS)
    def test_vector_matches_after_predecessor(
        self, frameworks, pre_mode, pre_backend, san
    ):
        from repro.sanitize import Sanitizer

        fw = frameworks[("add", "float")]
        n = 2048
        data = _data("float", n)
        plan = fw.build("b", n, Tunables(block=64, grid=8))
        ref = _run(
            plan, data, mode=pre_mode, backend=pre_backend,
            sanitizer=Sanitizer() if san else None,
        )
        got = _run(
            plan, data, mode="batched", backend="vector",
            sanitizer=Sanitizer() if san else None,
        )
        _assert_profiles_identical(ref, got)

    @pytest.mark.parametrize("mode", MODES)
    def test_sanitized_vector_reports_match_compiled(self, frameworks, mode):
        """Same diagnostics (kind, kernel) with the sanitizer attached
        to a vector executor as to a compiled one."""
        from repro.sanitize import Sanitizer

        fw = frameworks[("add", "float")]
        n = 1024
        data = _data("float", n)
        plan = fw.build("d", n, Tunables(block=64, grid=4))
        reports = {}
        for backend in ("compiled", "vector"):
            sanitizer = Sanitizer()
            _run(plan, data, mode=mode, backend=backend, sanitizer=sanitizer)
            reports[backend] = [
                (d.kind, d.kernel) for d in sanitizer.diagnostics
            ]
        assert reports["vector"] == reports["compiled"]


class TestPlanCacheBackendKeying:
    def test_key_includes_backend(self):
        fw = ReductionFramework(op="add")
        v = fw.resolve("b")
        t = Tunables(block=64, grid=8)
        assert plan_key(fw.pre, v, 4096, t, backend="compiled") != plan_key(
            fw.pre, v, 4096, t, backend="vector"
        )
        # Default keeps the historical key: one shared plan per config.
        assert plan_key(fw.pre, v, 4096, t) == plan_key(
            fw.pre, v, 4096, t, backend="compiled"
        )

    def test_warm_backend_misses_other_backend(self):
        """A plan pre-warmed for one backend is a miss for the other:
        same config, different backend, distinct plan entries."""
        fw = ReductionFramework(op="add")
        v = fw.resolve("b")
        t = Tunables(block=96, grid=7)  # unlikely to be cached already
        cache = default_plan_cache()
        p_compiled = build_plan_cached(fw.pre, v, 4100, t)
        misses = cache.stats.misses
        p_vector = build_plan_cached(fw.pre, v, 4100, t, backend="vector")
        assert cache.stats.misses == misses + 1  # not served from warm
        assert p_vector is not p_compiled
        # Hitting each key again returns the same object per backend.
        assert build_plan_cached(fw.pre, v, 4100, t) is p_compiled
        assert (
            build_plan_cached(fw.pre, v, 4100, t, backend="vector")
            is p_vector
        )

    def test_vector_plan_is_prewarmed_with_fused_regions(self):
        from repro.gpusim.fuse import _FUSE_MEMO

        fw = ReductionFramework(op="add")
        plan = build_plan_cached(
            fw.pre, fw.resolve("p"), 2223, Tunables(block=64),
            backend="vector",
        )
        for step in plan.kernel_steps():
            assert id(step.kernel) in _FUSE_MEMO

    def test_framework_engine_spec_selects_backend(self):
        """A framework constructed with a vector engine spec builds
        (and pre-warms) vector-keyed plans."""
        t = Tunables(block=64, grid=8)
        fw_vec = ReductionFramework(op="add", engine="batched-vector")
        fw_def = ReductionFramework(op="add")
        assert fw_vec.build("b", 4096, t) is not fw_def.build("b", 4096, t)


class TestFusionStatistics:
    def test_partition_and_loop_fusion_stats(self):
        fw = ReductionFramework(op="add")
        plan = fw.build("b", 1 << 14, Tunables(block=256, grid=8))
        for step in plan.kernel_steps():
            fused = fuse_kernel(step.kernel)
            stats = fused.stats
            assert stats["fused_regions"] >= 1
            assert stats["max_region_len"] >= 2
            assert stats["specialized"]["ld_global"] >= 1
            # The tiled accumulation loop megafuses into one generated
            # Python loop (regions + specialized loads only).
            assert stats["specialized"]["loop"] >= 1
            assert stats["dead_stores"] >= 1
            # The region list partitions the compiled trace exactly.
            compiled = compile_kernel(step.kernel)
            flat = [id(i) for i in trace_instrs(compiled.trace)]
            regioned = [
                id(i) for r in fused.regions for i in r.instrs
            ]
            assert sorted(flat) == sorted(regioned)

    def test_megafused_loop_out_of_bounds_matches_compiled(self):
        """The affine load path raises the engine's exact bounds error
        (message included) when the shifted index range escapes."""
        from repro.gpusim import SimulationError

        fw = ReductionFramework(op="add")
        n = 4096
        plan = fw.build("b", n, Tunables(block=64, grid=8))
        data = _data("float", n)
        errors = {}
        for backend in ("compiled", "vector"):
            executor = Executor(mode="batched", backend=backend)
            # Undersized buffer: the strided accumulation loop must
            # fault identically however the gather is performed.
            executor.device.upload("in", data[: n // 2])
            with pytest.raises(SimulationError) as exc:
                executor.run_plan(plan)
            errors[backend] = str(exc.value)
        assert errors["vector"] == errors["compiled"]
