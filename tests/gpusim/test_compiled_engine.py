"""Compiled vs interpreted execution: bit-identical results and events.

The compiled backend walks each kernel body once and emits a flat list
of specialized closures (with block-uniform constant loops unrolled into
the trace), so per-instruction dispatch disappears from the hot loop.
Its contract (ISSUE: closure-compiled VIR executor) is that on *every*
kernel it produces bit-identical results AND identical per-step event
counters to the tree-walking interpreter, under both the sequential and
batched execution modes. These tests sweep the full Figure 6 catalog
for every supported (op, ctype) pair, plus the engine-spec parsing, the
compile/batchability memos and the process-wide plan cache.
"""

import itertools

import numpy as np
import pytest

from repro.codegen import Tunables, build_plan_cached, plan_key
from repro.gpusim import (
    EXECUTION_BACKENDS,
    Executor,
    analyze_batchability,
    compile_kernel,
    parse_engine_spec,
)
from repro.perf import default_plan_cache
from repro.runtime import ReductionFramework

FIG6_LABELS = "abcdefghijklmnop"
OPS = ("add", "max", "min")
CTYPES = ("float", "int")


def _tunables(version):
    if version.block_kind == "coop":
        return Tunables(block=64)
    return Tunables(block=64, grid=8)


def _data(ctype, n, seed=7):
    rng = np.random.default_rng(seed)
    if ctype == "int":
        return rng.integers(-50, 50, size=n).astype(np.int32)
    return rng.random(n).astype(np.float32)


def _run(plan, data, mode="auto", backend="compiled"):
    executor = Executor(mode=mode, backend=backend)
    executor.device.upload("in", data)
    return executor.run_plan(plan)


def _assert_profiles_identical(ref, got):
    assert got.result == ref.result  # bit-identical, no tolerance
    assert len(got.steps) == len(ref.steps)
    for r, g in zip(ref.steps, got.steps):
        assert dict(g.events) == dict(r.events), r.kernel_name


@pytest.fixture(scope="module")
def frameworks():
    return {
        (op, ctype): ReductionFramework(op=op, ctype=ctype)
        for op, ctype in itertools.product(OPS, CTYPES)
    }


class TestFigure6Equivalence:
    @pytest.mark.parametrize("label", sorted(FIG6_LABELS))
    @pytest.mark.parametrize("ctype", CTYPES)
    @pytest.mark.parametrize("op", OPS)
    def test_results_and_events_identical(self, frameworks, label, op, ctype):
        """Exhaustive: every Fig. 6 version × op × element type."""
        fw = frameworks[(op, ctype)]
        n = 3333
        data = _data(ctype, n)
        version = fw.resolve(label)
        plan = fw.build(version, n, _tunables(version))
        interp = _run(plan, data, backend="interpreted")
        comp = _run(plan, data, backend="compiled")
        _assert_profiles_identical(interp, comp)

    @pytest.mark.parametrize("label", ["b", "p"])
    def test_all_mode_backend_combinations(self, frameworks, label):
        """Both backends × both forced modes agree with the reference
        sequential interpreter."""
        fw = frameworks[("add", "float")]
        n = 2048
        data = _data("float", n, seed=11)
        version = fw.resolve(label)
        plan = fw.build(version, n, _tunables(version))
        ref = _run(plan, data, mode="sequential", backend="interpreted")
        for mode in ("sequential", "batched"):
            for backend in EXECUTION_BACKENDS:
                got = _run(plan, data, mode=mode, backend=backend)
                _assert_profiles_identical(ref, got)

    def test_device_buffers_identical(self, frameworks):
        """Not just the scalar result: every output buffer matches."""
        fw = frameworks[("add", "float")]
        data = _data("float", 2048, seed=13)
        plan = fw.build("b", len(data), Tunables(block=64, grid=8))
        outs = {}
        for backend in EXECUTION_BACKENDS:
            executor = Executor(backend=backend)
            executor.device.upload("in", data)
            executor.run_plan(plan)
            outs[backend] = executor.device.download("out").copy()
        np.testing.assert_array_equal(outs["interpreted"], outs["compiled"])

    def test_sampled_run_identical(self, frameworks):
        fw = frameworks[("add", "float")]
        data = _data("float", 1 << 16, seed=5)
        plan = fw.build("b", len(data), Tunables(block=128, grid=32))
        interp = _run(plan, data, backend="interpreted")
        comp = _run(plan, data, backend="compiled")
        _assert_profiles_identical(interp, comp)
        seq = Executor(backend="interpreted")
        seq.device.upload("in", data)
        s = seq.run_plan(plan, sample_limit=3)
        cmp_ = Executor(backend="compiled")
        cmp_.device.upload("in", data)
        c = cmp_.run_plan(plan, sample_limit=3)
        for rs, cs in zip(s.steps, c.steps):
            assert cs.sampled_blocks == rs.sampled_blocks
            assert dict(cs.events) == dict(rs.events)


class TestEngineSpec:
    def test_defaults(self):
        assert parse_engine_spec("auto") == ("auto", "compiled")
        assert parse_engine_spec("compiled") == ("auto", "compiled")
        assert parse_engine_spec("interpreted") == ("auto", "interpreted")
        assert parse_engine_spec("batched") == ("batched", "compiled")
        assert parse_engine_spec("sequential") == ("sequential", "compiled")

    def test_combined_specs(self):
        assert parse_engine_spec("batched-interpreted") == (
            "batched",
            "interpreted",
        )
        assert parse_engine_spec("sequential-compiled") == (
            "sequential",
            "compiled",
        )
        # order-independent
        assert parse_engine_spec("interpreted-batched") == (
            "batched",
            "interpreted",
        )

    @pytest.mark.parametrize(
        "spec",
        ["turbo", "batched-sequential", "compiled-interpreted", "auto-auto", ""],
    )
    def test_invalid_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_engine_spec(spec)

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            Executor(backend="jit")

    def test_backend_recorded_in_meta(self):
        fw = ReductionFramework(op="add")
        data = np.ones(4096, dtype=np.float32)
        plan = fw.build("b", len(data), Tunables(block=64, grid=8))
        for backend in EXECUTION_BACKENDS:
            profile = _run(plan, data, backend=backend)
            assert all(
                s.meta["exec.backend"] == backend for s in profile.steps
            )

    def test_framework_engine_spec_applied(self):
        fw = ReductionFramework(op="add", engine="sequential-interpreted")
        data = np.ones(2048, dtype=np.float32)
        result = fw.run(data, "b", Tunables(block=64, grid=8))
        steps = result.profile.steps
        assert all(s.meta["exec.mode"] == "sequential" for s in steps)
        assert all(s.meta["exec.backend"] == "interpreted" for s in steps)
        # per-call override wins
        result = fw.run(
            data, "b", Tunables(block=64, grid=8), engine_mode="batched"
        )
        multi = [s for s in result.profile.steps if s.grid > 1]
        assert multi and all(s.meta["exec.mode"] == "batched" for s in multi)
        assert all(
            s.meta["exec.backend"] == "compiled"
            for s in result.profile.steps
        )


class TestCompilation:
    def test_trace_is_memoized_per_kernel(self):
        fw = ReductionFramework(op="add")
        plan = fw.build("p", 4096, Tunables(block=64))
        kernel = list(plan.kernel_steps())[0].kernel
        first = compile_kernel(kernel)
        assert compile_kernel(kernel) is first
        assert first.kernel_name == kernel.name
        # "closures" counts every emitted closure including those inside
        # If/While sub-traces, so it bounds the top-level trace length.
        assert 0 < len(first.trace) <= first.stats["closures"]

    def test_tree_loops_unroll(self):
        """Shuffle/shared-tree loops have block-uniform constant trip
        counts and must unroll into the trace."""
        fw = ReductionFramework(op="add")
        plan = fw.build("p", 4096, Tunables(block=64))
        kernel = list(plan.kernel_steps())[0].kernel
        stats = compile_kernel(kernel).stats
        assert stats["unrolled_loops"] >= 1
        assert stats["unrolled_trips"] >= 1

    def test_runtime_trip_loops_stay_loops(self):
        """The per-thread coarsening loop's trip count depends on tid, so
        it must remain a loop closure, not unroll."""
        fw = ReductionFramework(op="add")
        found_loop = False
        for label in FIG6_LABELS:
            version = fw.resolve(label)
            plan = fw.build(version, 4096, _tunables(version))
            for step in plan.kernel_steps():
                stats = compile_kernel(step.kernel).stats
                assert stats["unrolled_loops"] <= stats["loops"]
                if stats["loops"] > stats["unrolled_loops"]:
                    found_loop = True
        assert found_loop

    def test_batchability_memoized(self):
        from repro.gpusim.engine import _kernel_access_summary

        fw = ReductionFramework(op="add")
        plan = fw.build("b", 4096, Tunables(block=64, grid=8))
        kernel = list(plan.kernel_steps())[0].kernel
        assert _kernel_access_summary(kernel) is _kernel_access_summary(kernel)
        assert analyze_batchability(kernel) == analyze_batchability(kernel)


class TestPlanCache:
    def test_same_point_shares_one_plan(self):
        fw1 = ReductionFramework(op="add")
        fw2 = ReductionFramework(op="add")
        t = Tunables(block=64, grid=8)
        p1 = fw1.build("b", 4096, t)
        p2 = fw2.build("b", 4096, t)
        assert p1 is p2  # one built plan across framework instances
        assert fw1.pre is fw2.pre  # frontend memoized too
        assert fw1.build("b", 8192, t) is not p1  # different n, new plan

    def test_key_separates_configurations(self):
        fw_add = ReductionFramework(op="add")
        fw_max = ReductionFramework(op="max")
        v = fw_add.resolve("b")
        t = Tunables(block=64, grid=8)
        assert plan_key(fw_add.pre, v, 4096, t) != plan_key(
            fw_max.pre, v, 4096, t
        )
        assert plan_key(fw_add.pre, v, 4096, t) != plan_key(
            fw_add.pre, v, 8192, t
        )
        assert plan_key(fw_add.pre, v, 4096, t) == plan_key(
            fw_add.pre, v, 4096, Tunables(block=64, grid=8)
        )

    def test_hit_statistics_recorded(self):
        fw = ReductionFramework(op="add")
        cache = default_plan_cache()
        t = Tunables(block=96, grid=5)  # unlikely to be cached already
        fw.build("b", 5000, t)
        hits = cache.stats.hits
        fw.build("b", 5000, t)
        assert cache.stats.hits == hits + 1

    def test_cached_plan_is_prewarmed(self):
        from repro.gpusim.compile import _COMPILE_MEMO

        fw = ReductionFramework(op="add")
        plan = build_plan_cached(
            fw.pre, fw.resolve("p"), 2222, Tunables(block=64)
        )
        for step in plan.kernel_steps():
            assert id(step.kernel) in _COMPILE_MEMO

    def test_cached_plans_still_correct(self):
        """A plan served from the cache (shared kernels, shared traces)
        reduces correctly for fresh executors and data."""
        fw = ReductionFramework(op="add")
        t = Tunables(block=64, grid=8)
        for seed in (1, 2):
            data = _data("float", 4096, seed=seed)
            result = fw.run(data, "b", t)
            ref = _run(fw.build("b", 4096, t), data, backend="interpreted")
            assert result.value == ref.result
