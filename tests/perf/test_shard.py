"""Shard tiers: deterministic partitioning, mergeable disk tiers,
manifest round-trips, and the ``repro sweep`` / ``repro cache merge``
CLI workflow.

The acceptance property: a sweep sharded two ways and merged produces
a cache — and a tuning table read back from it — bit-identical to the
single-process sweep of the same grid.
"""

import pickle

import pytest

from repro.cli import main
from repro.perf import ProfileCache
from repro.perf.shard import (
    SHARD_MANIFEST_NAME,
    ShardConflictError,
    build_manifest,
    entry_value_digest,
    merge_tiers,
    parse_shard,
    read_manifest,
    shard_of,
    tier_digest,
    tier_path,
    write_manifest,
)

#: A compact but representative grid: one coop version (p ignores
#: grid) and one compound version, two sizes, two blocks.
GRID_ARGS = [
    "--sizes", "1024,4096", "--versions", "b,p",
    "--blocks", "64,128", "--grids", "none,8",
]


class TestPartitioning:
    def test_parse_shard(self):
        assert parse_shard("0/2") == (0, 2)
        assert parse_shard("3/4") == (3, 4)
        for bad in ("2/2", "-1/2", "1", "a/b", "1/0"):
            with pytest.raises(ValueError):
                parse_shard(bad)

    def test_partition_is_deterministic_total_and_disjoint(self):
        keys = [f"{i:08x}{'0' * 56}" for i in range(64)]
        for count in (1, 2, 3, 5):
            owners = [shard_of(key, count) for key in keys]
            assert owners == [shard_of(key, count) for key in keys]
            assert all(0 <= owner < count for owner in owners)
        # More than one shard actually gets work on a realistic grid.
        assert len({shard_of(key, 2) for key in keys}) == 2


def _make_tier(path, entries):
    cache = ProfileCache(disk_dir=path)
    for key, value in entries.items():
        cache.put(key, value, cost_s=0.5)
    return path


KEY_A = "a" * 64
KEY_B = "b" * 64


class TestMergeTiers:
    def test_merge_and_idempotence(self, tmp_path):
        tier1 = _make_tier(tmp_path / "t1", {KEY_A: {"profile": 1}})
        tier2 = _make_tier(tmp_path / "t2", {KEY_B: {"profile": 2}})
        dest = tmp_path / "dest"
        stats = merge_tiers([tier1, tier2], dest)
        assert stats["merged"] == 2 and stats["identical"] == 0
        first = tier_digest(dest)
        assert set(first) == {KEY_A, KEY_B}
        # Merging again is a no-op with the same final state.
        again = merge_tiers([tier1, tier2], dest)
        assert again["merged"] == 0 and again["identical"] == 2
        assert tier_digest(dest) == first

    def test_same_value_different_cost_is_identical(self, tmp_path):
        tier1 = tmp_path / "t1"
        tier2 = tmp_path / "t2"
        ProfileCache(disk_dir=tier1).put(KEY_A, {"profile": 1}, cost_s=0.1)
        ProfileCache(disk_dir=tier2).put(KEY_A, {"profile": 1}, cost_s=9.9)
        dest = tmp_path / "dest"
        merge_tiers([tier1], dest)
        stats = merge_tiers([tier2], dest)
        assert stats["identical"] == 1  # cost_s is timing, not identity

    def test_conflicting_value_raises(self, tmp_path):
        tier1 = _make_tier(tmp_path / "t1", {KEY_A: {"profile": 1}})
        tier2 = _make_tier(tmp_path / "t2", {KEY_A: {"profile": 2}})
        dest = tmp_path / "dest"
        merge_tiers([tier1], dest)
        with pytest.raises(ShardConflictError, match=KEY_A[:8]):
            merge_tiers([tier2], dest)
        # The destination keeps its original entry.
        assert tier_digest(dest) == tier_digest(tier1)

    def test_corrupt_source_entry_is_skipped(self, tmp_path):
        tier = _make_tier(tmp_path / "t1", {KEY_A: {"profile": 1}})
        (tier / f"{KEY_B}.profile.pkl").write_bytes(b"not a pickle")
        stats = merge_tiers([tier], tmp_path / "dest")
        assert stats["merged"] == 1 and stats["corrupt"] == 1

    def test_value_digest_ignores_cost(self, tmp_path):
        path1, path2 = tmp_path / "e1.profile.pkl", tmp_path / "e2.profile.pkl"
        for path, cost in ((path1, 0.25), (path2, 123.0)):
            path.write_bytes(pickle.dumps({"value": (1, 2), "cost_s": cost}))
        assert entry_value_digest(path1) == entry_value_digest(path2)


class TestManifest:
    def test_roundtrip(self, tmp_path):
        manifest = build_manifest(
            1, 2, [KEY_B, KEY_A],
            grid={"sizes": [1024], "versions": ["b"]},
            wall_s=1.25,
            cache_stats={"compute_time_s": 1.0, "misses": 3, "hits": 0},
        )
        tier = tmp_path / "tier"
        path = write_manifest(tier, manifest)
        assert path.name == SHARD_MANIFEST_NAME
        loaded = read_manifest(tier)
        assert loaded["shard"] == {"index": 1, "count": 2}
        assert loaded["points"] == 2
        assert loaded["keys"] == sorted([KEY_A, KEY_B])
        assert loaded["cost"]["wall_s"] == 1.25
        assert loaded["grid"]["sizes"] == [1024]
        assert "git_sha" in loaded


class TestShardedSweepCLI:
    """End-to-end through ``repro.cli.main``: shard 0/2 + shard 1/2 →
    merge must equal the single-process sweep, bit for bit, and the
    tuning table read from either cache must be identical."""

    def _tune_table(self, cache_dir):
        from repro.autotune import tune_all
        from repro.runtime import ReductionFramework

        fw = ReductionFramework(
            op="add", cache=ProfileCache(disk_dir=cache_dir)
        )
        results = tune_all(
            fw, 4096, "kepler", candidates=["b", "p"],
            blocks=(64, 128), grids=(None, 8), max_workers=1,
        )
        return {
            key: (result.tunables, result.time_s)
            for key, result in results.items()
        }

    def test_two_shards_merge_equals_single_sweep(self, tmp_path):
        shards = tmp_path / "shards"
        single = tmp_path / "single"
        merged = tmp_path / "merged"
        for shard in ("0/2", "1/2"):
            assert main(
                ["sweep", *GRID_ARGS, "--shard", shard,
                 "--shard-dir", str(shards)]
            ) == 0
        assert main(
            ["sweep", *GRID_ARGS, "--shard", "0/1",
             "--shard-dir", str(single)]
        ) == 0
        tier0 = tier_path(shards, 0, 2)
        tier1 = tier_path(shards, 1, 2)
        assert main(
            ["cache", "merge", str(tier0), str(tier1),
             "--dest", str(merged)]
        ) == 0

        single_tier = tier_path(single, 0, 1)
        merged_digest = tier_digest(merged)
        assert merged_digest  # non-empty
        assert merged_digest == tier_digest(single_tier)

        # Shards partitioned the grid: disjoint, union == whole.
        digest0, digest1 = tier_digest(tier0), tier_digest(tier1)
        assert digest0 and digest1
        assert not (set(digest0) & set(digest1))
        assert {**digest0, **digest1} == merged_digest

        # Manifests agree with the tiers they describe.
        for index, tier in ((0, tier0), (1, tier1)):
            manifest = read_manifest(tier)
            assert manifest["shard"] == {"index": index, "count": 2}
            assert sorted(tier_digest(tier)) == manifest["keys"]

        # The tuning table built from the merged shards is identical to
        # the one built from the single-process sweep's cache.
        assert self._tune_table(merged) == self._tune_table(single_tier)

    def test_cli_merge_conflict_exits_nonzero(self, tmp_path, capsys):
        tier1 = _make_tier(tmp_path / "t1", {KEY_A: {"profile": 1}})
        tier2 = _make_tier(tmp_path / "t2", {KEY_A: {"profile": 2}})
        dest = tmp_path / "dest"
        assert main(["cache", "merge", str(tier1), "--dest", str(dest)]) == 0
        assert main(["cache", "merge", str(tier2), "--dest", str(dest)]) == 1
        assert "CONFLICT" in capsys.readouterr().err

    def test_cli_shard_requires_shard_dir(self, capsys):
        assert main(["sweep", "-n", "1024", "--shard", "0/2"]) == 2
        assert "--shard-dir" in capsys.readouterr().err
