"""Disk-tier cache races: regression tests for the serving bugfix sweep.

The original implementation performed pickle I/O while holding the
cache lock (convoying every other session on a slow disk) and could
crash in ``disk_info`` when a concurrent ``clear(disk=True)`` unlinked
files mid-listing.  These tests hammer one cache from many threads and
assert the invariants the serving runtime relies on: no exceptions, no
lost entries, consistent stats accounting, and in-process entry
identity (the first-published object wins).
"""

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.perf import ProfileCache


class TestDiskTierRaces:
    def test_hammer_get_put_with_disk_tier(self, tmp_path):
        cache = ProfileCache(max_entries=64, disk_dir=tmp_path)
        keys = [f"key-{i}" for i in range(16)]
        errors = []
        barrier = threading.Barrier(8)

        def worker(seed):
            barrier.wait()
            try:
                for round_ in range(50):
                    key = keys[(seed + round_) % len(keys)]
                    value = cache.get(key)
                    if value is None:
                        cache.put(key, {"key": key}, cost_s=0.001)
                    elif value["key"] != key:
                        errors.append((key, value))
                    assert key in cache
            except Exception as exc:  # noqa: BLE001
                errors.append(repr(exc))

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(worker, range(8)))

        assert errors == []
        for key in keys:
            assert cache.get(key) == {"key": key}
        stats = cache.stats
        assert stats.hits + stats.misses + stats.disk_hits > 0
        assert stats.stores >= len(keys)

    def test_disk_promotion_prefers_in_process_entry(self, tmp_path):
        # Two caches share a disk dir (two processes, in effect).  After
        # cache B writes, cache A must promote the disk entry — but once
        # an in-process object exists, repeated gets return THAT object,
        # because id-keyed memos downstream rely on identity.
        a = ProfileCache(disk_dir=tmp_path)
        b = ProfileCache(disk_dir=tmp_path)
        b.put("shared", {"origin": "b"})
        first = a.get("shared")
        assert first == {"origin": "b"}
        assert a.get("shared") is first
        assert a.stats.disk_hits == 1

    def test_clear_races_disk_info(self, tmp_path):
        cache = ProfileCache(disk_dir=tmp_path)
        for i in range(32):
            cache.put(f"k{i}", i)
        errors = []
        stop = threading.Event()

        def lister():
            while not stop.is_set():
                try:
                    info = cache.disk_info()
                    assert info["entries"] >= 0
                except Exception as exc:  # noqa: BLE001
                    errors.append(repr(exc))

        thread = threading.Thread(target=lister)
        thread.start()
        try:
            for _ in range(20):
                cache.clear(memory=True, disk=True)
                for i in range(8):
                    cache.put(f"k{i}", i)
        finally:
            stop.set()
            thread.join()
        assert errors == []

    def test_concurrent_writers_last_one_wins_without_corruption(
        self, tmp_path
    ):
        cache = ProfileCache(disk_dir=tmp_path)
        barrier = threading.Barrier(6)

        def writer(tag):
            barrier.wait()
            for _ in range(30):
                cache.put("contested", {"tag": tag})

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Whatever won, the value must be a complete write of SOME tag.
        value = cache.get("contested")
        assert value["tag"] in range(6)
        fresh = ProfileCache(disk_dir=tmp_path)
        assert fresh.get("contested")["tag"] in range(6)

    def test_lru_eviction_stays_bounded_under_threads(self):
        cache = ProfileCache(max_entries=10)

        def pounder(base):
            for i in range(200):
                cache.put(f"{base}-{i}", i)
                cache.get(f"{base}-{i}")

        threads = [
            threading.Thread(target=pounder, args=(b,)) for b in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) <= 10
        assert cache.stats.evictions >= 4 * 200 - 10
