"""Work-stealing sweep scheduler: dispatch policy, determinism,
persistent-pool reuse, and per-future fault tolerance.

The scheduler's contract is that *scheduling is invisible except in
wall time*: whatever order workers complete specs in — including after
a worker death — the caller-visible results, the cache contents, the
cache's LRU order and the tuning tables must be bit-identical to a
serial sweep.
"""

import os

import pytest

from repro.codegen import Tunables
from repro.perf import ProfileCache, shutdown_scheduler
from repro.perf import parallel as parallel_mod
from repro.perf.parallel import (
    DEFAULT_WORKER_CAP,
    MAX_WORKERS_ENV,
    WORKER_CAP_ENV,
    dispatch_order,
    predicted_cost,
    resolve_workers,
)
from repro.runtime import ReductionFramework


def _spec(n, block=64, grid=8, sample_limit=None):
    return ("add", "float", False, None, n, Tunables(block=block, grid=grid),
            sample_limit)


class TestDispatchOrder:
    def test_large_unsampled_cost_dominates(self):
        # Unsampled profiles touch every element (cost ~ n); a sampled
        # profile of the same n touches a few blocks' worth.
        big_unsampled = _spec(1 << 20, block=256, grid=64)
        big_sampled = _spec(1 << 20, block=256, grid=4096, sample_limit=3)
        small = _spec(1024, block=64, grid=8)
        assert predicted_cost(big_unsampled) > predicted_cost(big_sampled)
        assert predicted_cost(big_unsampled) > predicted_cost(small)

    def test_order_is_descending_cost_with_stable_ties(self):
        specs = [_spec(1024), _spec(1 << 20, block=256, grid=64),
                 _spec(1024), _spec(65536, block=256, grid=64)]
        order = dispatch_order(specs)
        assert order[0] == 1  # the straggler starts first
        assert order[1] == 3
        assert order[2:] == [0, 2]  # equal costs keep submission order

    def test_none_tunables_are_schedulable(self):
        spec = ("add", "float", False, None, 4096, None, None)
        assert predicted_cost(spec) > 0


class TestWorkerResolution:
    def test_cap_env_overrides_default_cap(self, monkeypatch):
        monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: 32)
        monkeypatch.delenv(MAX_WORKERS_ENV, raising=False)
        monkeypatch.delenv(WORKER_CAP_ENV, raising=False)
        assert resolve_workers() == DEFAULT_WORKER_CAP
        monkeypatch.setenv(WORKER_CAP_ENV, "16")
        assert resolve_workers() == 16
        # The cap only bounds auto-selection; fewer cores still win.
        monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: 4)
        assert resolve_workers() == 4

    def test_max_workers_env_beats_cap(self, monkeypatch):
        monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: 32)
        monkeypatch.setenv(WORKER_CAP_ENV, "4")
        monkeypatch.setenv(MAX_WORKERS_ENV, "12")
        assert resolve_workers() == 12

    def test_bad_cap_env_falls_back_to_default(self, monkeypatch):
        monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: 32)
        monkeypatch.delenv(MAX_WORKERS_ENV, raising=False)
        monkeypatch.setenv(WORKER_CAP_ENV, "not-a-number")
        assert resolve_workers() == DEFAULT_WORKER_CAP


SIZES = [1024, 2048, 4096, 8192, 16384, 32768]


def _specs():
    return [("b", n, Tunables(block=64, grid=8)) for n in SIZES]


def _table(results):
    return {
        key: (result.tunables, result.time_s)
        for key, result in results.items()
    }


class TestSchedulingDeterminism:
    def test_cache_contents_and_lru_order_match_serial(self):
        serial = ReductionFramework(op="add", cache=ProfileCache())
        serial.profile_many(_specs(), max_workers=1)
        parallel = ReductionFramework(op="add", cache=ProfileCache())
        parallel.profile_many(_specs(), max_workers=2)
        assert list(serial.cache._mem) == list(parallel.cache._mem)
        for key in serial.cache._mem:
            left = serial.cache._mem[key].value
            right = parallel.cache._mem[key].value
            assert left[1] == right[1]  # num_memsets
            assert left[0].result == right[0].result
            for got, ref in zip(left[0].steps, right[0].steps):
                assert dict(got.events) == dict(ref.events)

    def test_tune_all_table_is_schedule_independent(self):
        from repro.autotune import tune_all

        serial = ReductionFramework(op="add", cache=ProfileCache())
        parallel = ReductionFramework(op="add", cache=ProfileCache())
        blocks, grids = (64, 128), (None, 8)
        reference = tune_all(
            serial, 4096, "kepler", candidates=["b", "p"],
            blocks=blocks, grids=grids, max_workers=1,
        )
        stolen = tune_all(
            parallel, 4096, "kepler", candidates=["b", "p"],
            blocks=blocks, grids=grids, max_workers=2,
        )
        assert _table(reference) == _table(stolen)

    def test_selector_table_is_schedule_independent(self):
        from repro.autotune import DynamicSelector

        kwargs = dict(
            sizes=(1024, 16384), candidates=["b", "p"],
            blocks=(64,), grids=(None, 8),
        )
        serial = DynamicSelector.build(
            ReductionFramework(op="add", cache=ProfileCache()),
            "kepler", max_workers=1, **kwargs,
        )
        stolen = DynamicSelector.build(
            ReductionFramework(op="add", cache=ProfileCache()),
            "kepler", max_workers=2, **kwargs,
        )
        assert [
            (e.max_n, e.version_key, e.tunables, e.time_s)
            for e in serial.entries
        ] == [
            (e.max_n, e.version_key, e.tunables, e.time_s)
            for e in stolen.entries
        ]


class TestPersistentPool:
    def test_pool_is_reused_across_sweeps(self):
        from repro.obs import default_metrics

        shutdown_scheduler()
        metrics = default_metrics()

        def counters():
            snap = metrics.snapshot()["counters"]
            return (snap.get("sweep.sched.pool_spawns", 0),
                    snap.get("sweep.sched.pool_reuses", 0))

        spawns0, reuses0 = counters()
        fw = ReductionFramework(op="add", cache=ProfileCache())
        fw.profile_many(_specs(), max_workers=2)
        fw2 = ReductionFramework(op="add", cache=ProfileCache())
        fw2.profile_many(_specs(), max_workers=2)
        spawns1, reuses1 = counters()
        assert spawns1 - spawns0 == 1  # second sweep reused the pool
        assert reuses1 - reuses0 >= 1
        shutdown_scheduler()


# Module-level so forked pool workers inherit them (the test rebinds
# them via monkeypatch before the pool is created).
_DIE_ONCE_ORIGINAL = None
_DIE_ONCE_FLAG = None
_DIE_ONCE_POISON_N = None


def _die_once_entry(spec):
    """Kill the worker the first time it sees the poisoned spec; the
    flag file makes the retry (in a freshly spawned pool) succeed —
    isolating recreate-pool-and-retry-unfinished from the thread/serial
    cascade."""
    if spec[4] == _DIE_ONCE_POISON_N:
        import os as _os

        if not _os.path.exists(_DIE_ONCE_FLAG):
            open(_DIE_ONCE_FLAG, "w").close()
            _os._exit(1)
    return _DIE_ONCE_ORIGINAL(spec)


class TestFaultTolerance:
    def test_die_once_worker_death_retries_only_unfinished(
        self, monkeypatch, tmp_path
    ):
        import sys

        from repro.obs import default_metrics

        this_module = sys.modules[__name__]
        monkeypatch.setattr(
            this_module, "_DIE_ONCE_ORIGINAL",
            parallel_mod._profile_spec_traced,
        )
        monkeypatch.setattr(
            this_module, "_DIE_ONCE_FLAG", str(tmp_path / "died-once")
        )
        monkeypatch.setattr(this_module, "_DIE_ONCE_POISON_N", 4096)
        monkeypatch.setattr(
            parallel_mod, "_profile_spec_traced", _die_once_entry
        )
        # Fork after the patch so workers inherit the poisoned entry.
        shutdown_scheduler()

        serial = ReductionFramework(op="add", cache=ProfileCache())
        expected = serial.profile_many(_specs(), max_workers=1)

        metrics = default_metrics()
        retried0 = metrics.snapshot()["counters"].get(
            "sweep.sched.retried", 0
        )
        try:
            fw = ReductionFramework(op="add", cache=ProfileCache())
            results = fw.profile_many(_specs(), max_workers=2)
        finally:
            shutdown_scheduler()  # no poisoned forks leak to later tests
        retried1 = metrics.snapshot()["counters"].get(
            "sweep.sched.retried", 0
        )

        assert os.path.exists(str(tmp_path / "died-once"))  # it did die
        assert len(results) == len(expected)
        for (profile, memsets), (ref_profile, ref_memsets) in zip(
            results, expected
        ):
            assert memsets == ref_memsets
            assert profile.result == ref_profile.result
        # Only unfinished specs were re-dispatched — never the whole
        # list (the old fallback re-ran all six).
        assert 1 <= retried1 - retried0 < len(SIZES)

    def test_serial_tail_propagates_real_errors(self, monkeypatch):
        def _boom(spec):
            raise ValueError("deterministic spec failure")

        monkeypatch.setattr(parallel_mod, "_profile_spec", _boom)
        monkeypatch.setattr(parallel_mod, "_profile_spec_traced", _boom)
        shutdown_scheduler()
        try:
            with pytest.raises(ValueError, match="deterministic spec"):
                parallel_mod.map_profiles(
                    [_spec(n) for n in (64, 128, 256, 512)], max_workers=2
                )
        finally:
            shutdown_scheduler()
