"""Unit tests for the unified profile/plan cache (:mod:`repro.perf`).

Covers hit/miss accounting, key invalidation (tunables, unroll,
pipeline signature), the on-disk tier round-trip, concurrent writers,
and the LRU bound that keeps the memory tier from growing without
limit.
"""

import pickle
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.codegen import Tunables
from repro.perf import (
    CacheStats,
    ProfileCache,
    configure,
    content_key,
    default_cache,
)
from repro.runtime import ReductionFramework


class TestContentKey:
    def test_deterministic_and_order_insensitive(self):
        a = content_key(op="add", n=100, block=64)
        b = content_key(block=64, n=100, op="add")
        assert a == b
        assert a != content_key(op="add", n=100, block=128)

    def test_distinguishes_none_from_absent(self):
        assert content_key(grid=None) != content_key()


class TestMemoryTier:
    def test_hit_miss_store_accounting(self):
        cache = ProfileCache()
        key = content_key(x=1)
        assert cache.get(key) is None
        assert cache.stats.misses == 1
        cache.put(key, "value", cost_s=0.5)
        assert cache.get(key) == "value"
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1
        assert cache.stats.time_saved_s == pytest.approx(0.5)

    def test_get_or_compute_runs_once(self):
        cache = ProfileCache()
        calls = []

        def compute():
            calls.append(1)
            return 42

        key = content_key(y=2)
        assert cache.get_or_compute(key, compute) == 42
        assert cache.get_or_compute(key, compute) == 42
        assert len(calls) == 1

    def test_lru_eviction_bounds_growth(self):
        cache = ProfileCache(max_entries=4)
        keys = [content_key(i=i) for i in range(8)]
        for i, key in enumerate(keys):
            cache.put(key, i)
        assert len(cache) == 4
        assert cache.stats.evictions == 4
        assert cache.get(keys[0]) is None  # oldest evicted
        assert cache.get(keys[7]) == 7

    def test_get_refreshes_lru_order(self):
        cache = ProfileCache(max_entries=2)
        k1, k2, k3 = (content_key(i=i) for i in range(3))
        cache.put(k1, 1)
        cache.put(k2, 2)
        cache.get(k1)  # k1 now most-recent; k2 is the eviction victim
        cache.put(k3, 3)
        assert cache.get(k1) == 1
        assert cache.get(k2) is None

    def test_concurrent_writers(self):
        cache = ProfileCache(max_entries=1024)
        barrier = threading.Barrier(8)

        def writer(worker):
            barrier.wait()
            for i in range(50):
                key = content_key(worker=worker % 4, i=i)
                cache.put(key, (worker % 4, i))
                got = cache.get(key)
                assert got is not None and got[1] == i

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(writer, range(8)))
        assert len(cache) == 200  # 4 distinct worker groups x 50 keys


class TestDiskTier:
    def test_round_trip_across_instances(self, tmp_path):
        first = ProfileCache(disk_dir=tmp_path)
        key = content_key(kind="t", n=1)
        first.put(key, {"payload": 99})
        second = ProfileCache(disk_dir=tmp_path)  # fresh memory tier
        assert second.get(key) == {"payload": 99}
        assert second.stats.disk_hits == 1
        info = second.disk_info()
        assert info["dir"] and info["entries"] == 1 and info["bytes"] > 0

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = ProfileCache(disk_dir=tmp_path)
        key = content_key(kind="t", n=2)
        cache.put(key, "good")
        target = next(tmp_path.glob("*.profile.pkl"))
        target.write_bytes(b"not a pickle")
        fresh = ProfileCache(disk_dir=tmp_path)
        assert fresh.get(key) is None

    def test_clear_scopes(self, tmp_path):
        cache = ProfileCache(disk_dir=tmp_path)
        cache.put(content_key(n=3), "v")
        cache.clear(memory=True, disk=False)
        assert len(cache) == 0
        assert cache.disk_info()["entries"] == 1
        cache.clear(memory=True, disk=True)
        assert cache.disk_info()["entries"] == 0

    def test_concurrent_disk_writers(self, tmp_path):
        cache = ProfileCache(disk_dir=tmp_path)

        def writer(i):
            cache.put(content_key(i=i % 4), np.arange(i % 4 + 1))

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(writer, range(64)))
        fresh = ProfileCache(disk_dir=tmp_path)
        for i in range(4):
            value = fresh.get(content_key(i=i))
            np.testing.assert_array_equal(value, np.arange(i + 1))


class TestEnvDrivenDiskTier:
    """The default cache reads ``REPRO_CACHE_DIR`` at first use; these
    tests swap the singleton for one pointed at a tmp dir and exercise
    ``disk_info`` / ``clear(disk=True)`` / corrupt-entry handling
    through that env-driven path."""

    @pytest.fixture
    def env_cache(self, tmp_path, monkeypatch):
        import repro.perf.cache as cache_mod

        monkeypatch.setenv(cache_mod.CACHE_DIR_ENV, str(tmp_path))
        original = cache_mod._default_cache
        cache_mod._default_cache = None
        try:
            yield default_cache(), tmp_path
        finally:
            cache_mod._default_cache = original

    def test_env_var_enables_disk_tier(self, env_cache):
        cache, tmp_path = env_cache
        assert cache.disk_dir == tmp_path
        info = cache.disk_info()
        assert info["dir"] == str(tmp_path)
        assert info["entries"] == 0 and info["bytes"] == 0
        cache.put(content_key(kind="env", i=1), {"v": 1})
        cache.put(content_key(kind="env", i=2), {"v": 2})
        info = cache.disk_info()
        assert info["entries"] == 2 and info["bytes"] > 0

    def test_clear_disk_true_empties_both_tiers(self, env_cache):
        cache, _ = env_cache
        key = content_key(kind="env", i=3)
        cache.put(key, "v")
        cache.clear(memory=True, disk=True)
        assert len(cache) == 0
        assert cache.disk_info()["entries"] == 0
        assert cache.get(key) is None  # neither tier serves it

    def test_corrupted_disk_entry_dropped_and_rewritten(self, env_cache):
        cache, tmp_path = env_cache
        key = content_key(kind="env", i=4)
        cache.put(key, "good")
        target = next(tmp_path.glob("*.profile.pkl"))
        target.write_bytes(b"\x80garbage")
        cache.clear(memory=True, disk=False)  # force the disk path
        assert cache.get(key) is None  # corrupt file degrades to a miss
        assert cache.disk_info()["entries"] == 0  # and was unlinked
        cache.put(key, "fresh")
        assert cache.disk_info()["entries"] == 1
        cache.clear(memory=True, disk=False)
        assert cache.get(key) == "fresh"
        assert cache.stats.disk_hits == 1

    def test_truncated_disk_entry_is_a_miss(self, env_cache):
        cache, tmp_path = env_cache
        key = content_key(kind="env", i=5)
        cache.put(key, {"payload": list(range(100))})
        target = next(tmp_path.glob("*.profile.pkl"))
        blob = target.read_bytes()
        target.write_bytes(blob[: len(blob) // 2])  # killed mid-write
        cache.clear(memory=True, disk=False)
        assert cache.get(key) is None


class TestDefaultCache:
    def test_configure_replaces_singleton(self, tmp_path):
        before = default_cache()
        try:
            configured = configure(max_entries=16, disk_dir=tmp_path)
            assert default_cache() is configured
            assert configured.max_entries == 16
        finally:
            configure(max_entries=before.max_entries, disk_dir=None)

    def test_stats_as_dict_keys(self):
        stats = CacheStats()
        assert set(stats.as_dict()) >= {
            "hits", "misses", "disk_hits", "stores", "evictions",
            "compute_time_s", "time_saved_s",
        }


class TestFrameworkKeying:
    """The framework's profile keys must invalidate on every field that
    changes simulated behaviour — and nothing else."""

    @pytest.fixture(scope="class")
    def fw(self):
        return ReductionFramework(op="add", cache=ProfileCache())

    def test_key_varies_with_inputs(self, fw):
        base = fw.profile_key("b", 4096, Tunables(block=64, grid=8))
        assert base == fw.profile_key("b", 4096, Tunables(block=64, grid=8))
        assert base != fw.profile_key("b", 8192, Tunables(block=64, grid=8))
        assert base != fw.profile_key("b", 4096, Tunables(block=128, grid=8))
        assert base != fw.profile_key("b", 4096, Tunables(block=64, grid=4))
        assert base != fw.profile_key("m", 4096, Tunables(block=64, grid=8))
        assert base != fw.profile_key(
            "b", 4096, Tunables(block=64, grid=8), sample_limit=3
        )

    def test_key_varies_with_framework_config(self, fw):
        key = fw.profile_key("b", 4096)
        assert key != ReductionFramework(
            op="max", cache=fw.cache
        ).profile_key("b", 4096)
        assert key != ReductionFramework(
            op="add", ctype="int", cache=fw.cache
        ).profile_key("b", 4096)
        assert key != ReductionFramework(
            op="add", unroll=True, cache=fw.cache
        ).profile_key("b", 4096)

    def test_profile_cached_and_shared(self, fw):
        fw.cache.clear()
        fw.profile("b", 2048, Tunables(block=64, grid=4))
        stores = fw.cache.stats.stores
        fw.profile("b", 2048, Tunables(block=64, grid=4))
        assert fw.cache.stats.stores == stores  # second call is a pure hit
        twin = ReductionFramework(op="add", cache=fw.cache)
        twin.profile("b", 2048, Tunables(block=64, grid=4))
        assert fw.cache.stats.stores == stores  # shared across instances

    def test_int_framework_profiles_int_dtype(self):
        """Satellite (a): the profiling device buffer must honour the
        framework element type, not hard-code float32."""
        fw = ReductionFramework(op="add", ctype="int", cache=ProfileCache())
        profile, _ = fw.profile("b", 1024, Tunables(block=64, grid=4))
        assert profile.result == float(int(profile.result))

    def test_profile_entries_picklable(self, fw):
        """Disk tier stores entries with pickle; profiles must survive."""
        entry = fw.profile("p", 1024, Tunables(block=64))
        clone = pickle.loads(pickle.dumps(entry))
        assert clone[0].result == entry[0].result


class TestParallelSweep:
    def test_profile_many_matches_serial(self):
        """Deterministic merge: a parallel sweep yields entries whose
        scaled event totals equal the serial path's, in spec order."""
        specs = [
            ("b", 4096, Tunables(block=64, grid=8)),
            ("b", 4096, Tunables(block=128, grid=8)),
            ("m", 4096, Tunables(block=64, grid=8)),
            ("p", 4096, Tunables(block=64)),
            ("a", 4096, Tunables(block=64)),
        ]
        serial_fw = ReductionFramework(op="add", cache=ProfileCache())
        serial = [
            serial_fw.profile(version, n, tunables)
            for version, n, tunables in specs
        ]
        parallel_fw = ReductionFramework(op="add", cache=ProfileCache())
        fanned = parallel_fw.profile_many(specs, max_workers=2)
        assert len(fanned) == len(serial)
        for (sp, sm), (pp, pm) in zip(serial, fanned):
            assert pm == sm
            assert pp.result == sp.result
            assert [dict(s.events) for s in pp.steps] == [
                dict(s.events) for s in sp.steps
            ]

    def test_profile_many_populates_cache_once(self):
        fw = ReductionFramework(op="add", cache=ProfileCache())
        specs = [
            ("b", 2048, Tunables(block=64, grid=4)),
            ("m", 2048, Tunables(block=64, grid=4)),
        ]
        fw.profile_many(specs, max_workers=2)
        stores = fw.cache.stats.stores
        assert stores == 2
        fw.profile_many(specs, max_workers=2)
        assert fw.cache.stats.stores == stores

    def test_best_version_parallel_matches_serial(self):
        serial_fw = ReductionFramework(op="add", cache=ProfileCache())
        parallel_fw = ReductionFramework(op="add", cache=ProfileCache())
        want = serial_fw.best_version(65536, "kepler")
        got = parallel_fw.best_version(65536, "kepler", max_workers=2)
        assert got == want

    def test_single_miss_recorded_like_pooled_misses(self):
        """A lone missing profile takes the same map_profiles path as a
        pooled sweep: the store carries a real compute cost, so a later
        hit credits time_saved the same way."""
        fw = ReductionFramework(op="add", cache=ProfileCache())
        spec = ("b", 4096, Tunables(block=64, grid=8))
        fw.profile_many([spec])
        assert fw.cache.stats.stores == 1
        assert fw.cache.stats.compute_time_s > 0
        fw.profile_many([spec])  # pure hit
        assert fw.cache.stats.stores == 1
        assert fw.cache.stats.time_saved_s > 0

    def test_single_miss_matches_direct_profile(self):
        fw_many = ReductionFramework(op="add", cache=ProfileCache())
        fw_direct = ReductionFramework(op="add", cache=ProfileCache())
        spec = ("m", 4096, Tunables(block=64, grid=8))
        (many_profile, many_memsets), = fw_many.profile_many([spec])
        direct_profile, direct_memsets = fw_direct.profile(*spec)
        assert many_memsets == direct_memsets
        assert [dict(s.events) for s in many_profile.steps] == [
            dict(s.events) for s in direct_profile.steps
        ]
