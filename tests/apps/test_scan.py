"""Tests for the device-wide inclusive scan application."""

import numpy as np
import pytest

from repro.apps import Scan


class TestConfiguration:
    def test_bad_strategy(self):
        with pytest.raises(ValueError):
            Scan(strategy="tree")

    def test_bad_block(self):
        with pytest.raises(ValueError):
            Scan(block=48)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Scan().run(np.array([], dtype=np.float32))

    def test_oversized_rejected(self):
        with pytest.raises(ValueError, match="supports up to"):
            Scan(block=32).build_plan(32 * 32 * 32 + 1)


class TestCorrectness:
    @pytest.mark.parametrize("strategy", ["shared", "shuffle"])
    @pytest.mark.parametrize("n", [1, 2, 31, 32, 33, 255, 256, 257, 8191])
    def test_matches_cumsum(self, rng, strategy, n):
        data = rng.random(n).astype(np.float32)
        out, _ = Scan(strategy=strategy).run(data)
        ref = np.cumsum(data, dtype=np.float64)
        np.testing.assert_allclose(out, ref, rtol=1e-4)

    @pytest.mark.parametrize("strategy", ["shared", "shuffle"])
    def test_negative_values(self, rng, strategy):
        data = (rng.random(3000) - 0.5).astype(np.float32)
        out, _ = Scan(strategy=strategy).run(data)
        ref = np.cumsum(data, dtype=np.float64)
        np.testing.assert_allclose(out, ref, rtol=1e-3, atol=1e-3)

    def test_last_element_is_total(self, rng):
        data = rng.random(5000).astype(np.float32)
        out, profile = Scan().run(data)
        assert profile.result == pytest.approx(float(data.sum()), rel=1e-4)

    def test_block_sizes(self, rng):
        data = rng.random(2000).astype(np.float32)
        ref = np.cumsum(data, dtype=np.float64)
        for block in (32, 64, 128, 512):
            out, _ = Scan(block=block).run(data)
            np.testing.assert_allclose(out, ref, rtol=1e-4)

    def test_three_kernel_pipeline(self):
        plan = Scan().build_plan(10_000)
        assert plan.num_kernel_launches() == 3


class TestStrategies:
    def test_shuffle_strategy_uses_shfl_up(self, rng):
        data = rng.random(1024).astype(np.float32)
        _, profile = Scan(strategy="shuffle").run(data)
        assert profile.steps[0].events["inst.shfl"] > 0

    def test_shared_strategy_no_shuffles_more_barriers(self, rng):
        data = rng.random(1024).astype(np.float32)
        _, shared_prof = Scan(strategy="shared").run(data)
        _, shuffle_prof = Scan(strategy="shuffle").run(data)
        shared_events = shared_prof.steps[0].events
        shuffle_events = shuffle_prof.steps[0].events
        assert shared_events.get("inst.shfl", 0) == 0
        assert shared_events["inst.bar"] > shuffle_events["inst.bar"]

    def test_shuffle_faster_in_model(self):
        n = 1_000_000
        for arch in ("kepler", "maxwell", "pascal"):
            t_shared = Scan(strategy="shared").time(n, arch)
            t_shuffle = Scan(strategy="shuffle").time(n, arch)
            assert t_shuffle < t_shared, arch
