"""Tests for the histogram application (the paper's Section III-B use case)."""

import numpy as np
import pytest

from repro.apps import Histogram, histogram_source, reference_histogram
from repro.lang import analyze_source


class TestConfiguration:
    def test_bad_strategy(self):
        with pytest.raises(ValueError):
            Histogram(strategy="warp")

    def test_bad_bins(self):
        with pytest.raises(ValueError):
            Histogram(bins=0)
        with pytest.raises(ValueError):
            Histogram(bins=5000)

    def test_bad_block(self):
        with pytest.raises(ValueError):
            Histogram(block=100)

    def test_shared_strategy_rejects_coarsening(self):
        with pytest.raises(ValueError):
            Histogram(strategy="shared", coarsen=4)
        Histogram(strategy="global", coarsen=4)  # fine

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            Histogram().run(np.array([], dtype=np.int32))


class TestDslSource:
    def test_source_analyzes_as_cooperative(self):
        analyzed = analyze_source(histogram_source(128))
        info = analyzed.codelets[0]
        assert info.kind == "cooperative"
        assert info.shared[0].atomic == "add"
        assert info.shared[0].is_array


class TestCorrectness:
    @pytest.mark.parametrize("strategy", ["shared", "global"])
    @pytest.mark.parametrize("n", [1, 255, 256, 257, 10_000])
    def test_counts_match_numpy(self, rng, strategy, n):
        keys = rng.integers(0, 1 << 20, size=n).astype(np.int32)
        hist = Histogram(bins=64, strategy=strategy)
        counts, _ = hist.run(keys)
        assert (counts == reference_histogram(keys, 64)).all()

    def test_single_bin(self, rng):
        keys = rng.integers(0, 1 << 16, size=5000).astype(np.int32)
        counts, _ = Histogram(bins=1).run(keys)
        assert counts[0] == 5000

    def test_skewed_keys_all_same_bin(self):
        keys = np.full(4096, 64 * 7, dtype=np.int32)  # all map to bin 0
        counts, _ = Histogram(bins=64).run(keys)
        assert counts[0] == 4096
        assert counts[1:].sum() == 0

    def test_many_bins(self, rng):
        keys = rng.integers(0, 1 << 22, size=20_000).astype(np.int32)
        hist = Histogram(bins=1024)
        counts, _ = hist.run(keys)
        assert (counts == reference_histogram(keys, 1024)).all()

    def test_global_strategy_with_coarsening(self, rng):
        keys = rng.integers(0, 1 << 18, size=33_333).astype(np.int32)
        hist = Histogram(bins=64, strategy="global", coarsen=8)
        counts, _ = hist.run(keys)
        assert (counts == reference_histogram(keys, 64)).all()


class TestProfiles:
    def test_shared_strategy_uses_shared_atomics(self, rng):
        keys = rng.integers(0, 1 << 16, size=8192).astype(np.int32)
        _, profile = Histogram(bins=64, strategy="shared").run(keys)
        events = profile.steps[0].events
        assert events["atom.shared.ops"] == 8192
        # global traffic is only the per-block merges
        assert events["atom.global.ops"] < events["atom.shared.ops"]

    def test_global_strategy_all_global_atomics(self, rng):
        keys = rng.integers(0, 1 << 16, size=8192).astype(np.int32)
        _, profile = Histogram(bins=64, strategy="global").run(keys)
        events = profile.steps[0].events
        assert events["atom.global.ops"] == 8192
        assert events.get("atom.shared.ops", 0) == 0


class TestTiming:
    def test_privatization_wins_under_contention(self):
        """The paper's point: shared-memory privatization beats global
        atomics when many updates contend."""
        n = 500_000
        shared = Histogram(bins=64, strategy="shared").time(n, "maxwell")
        direct = Histogram(bins=64, strategy="global").time(n, "maxwell")
        assert shared < direct

    def test_kepler_software_atomics_narrow_the_gap(self):
        """On Kepler the shared atomics themselves are expensive, so the
        privatization advantage shrinks relative to Maxwell."""
        n = 500_000
        gap = {}
        for arch in ("kepler", "maxwell"):
            shared = Histogram(bins=64, strategy="shared").time(n, arch)
            direct = Histogram(bins=64, strategy="global").time(n, arch)
            gap[arch] = direct / shared
        assert gap["maxwell"] > gap["kepler"]
