"""Tests for the reduction DSL source library."""

import pytest

from repro.core.sources import (
    LIBRARY_OPS,
    identity_literal,
    identity_value,
    load_reduction_program,
    reduction_source,
)


class TestIdentities:
    def test_add_identity(self):
        assert identity_value("add") == 0.0
        assert identity_literal("add", "float") == "0.0f"
        assert identity_literal("add", "int") == "0"

    def test_max_identity_is_lowest_float(self):
        assert identity_value("max") < -1e38
        assert "-3.402823e38f" == identity_literal("max", "float")

    def test_min_identity_is_highest_float(self):
        assert identity_value("min") > 1e38

    def test_sub_identity(self):
        assert identity_value("sub") == 0.0

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            identity_value("xor")
        with pytest.raises(ValueError):
            identity_literal("xor", "float")


class TestSourceGeneration:
    def test_library_ops(self):
        assert set(LIBRARY_OPS) == {"add", "max", "min"}

    def test_sub_only_through_atomic_api(self):
        with pytest.raises(ValueError, match="atomic API"):
            reduction_source("sub")

    def test_bad_ctype(self):
        with pytest.raises(ValueError):
            reduction_source("add", "double")

    def test_six_codelets_per_program(self):
        for op in LIBRARY_OPS:
            program = load_reduction_program(op, "float")
            tags = {info.codelet.tag for info in program.codelets}
            assert tags == {
                "scalar", "tile", "stride", "coop_tree", "shared_v1", "shared_v2"
            }

    def test_codelet_kinds(self):
        program = load_reduction_program("add", "float")
        kinds = {
            info.codelet.tag: info.kind for info in program.codelets
        }
        assert kinds["scalar"] == "atomic_autonomous"
        assert kinds["tile"] == "compound"
        assert kinds["stride"] == "compound"
        assert kinds["coop_tree"] == "cooperative"
        assert kinds["shared_v1"] == "cooperative"
        assert kinds["shared_v2"] == "cooperative"

    def test_max_source_uses_max_atomics(self):
        text = reduction_source("max", "float")
        assert "atomicMax" in text
        assert "_atomicMax" in text
        assert "+=" not in text.split("__tag(coop_tree)")[1].split("__tag")[0]

    def test_int_source_types(self):
        text = reduction_source("add", "int")
        assert "Array<1,int>" in text
        assert "float" not in text
