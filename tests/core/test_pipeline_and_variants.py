"""Tests for the pre-processing pipeline (Figure 5) and the version
catalog/enumeration (Figure 6, Section IV-B)."""

import pytest

from repro.core import (
    BEST8,
    FIG6,
    Version,
    enumerate_versions,
    fig6_label,
    original_tangram_versions,
    preprocess,
    prune_versions,
    search_space_summary,
)
from repro.core.sources import load_reduction_program
from repro.lang import ast
from repro.lang.errors import SynthesisError


@pytest.fixture(scope="module")
def pre():
    return preprocess(load_reduction_program("add", "float"))


class TestPipeline:
    def test_all_coop_variants_generated(self, pre):
        # the paper's five (Figure 6 legend) plus the VA1A extension
        assert sorted(pre.coop) == ["V", "VA1", "VA1A", "VA2", "VA2S", "VS"]

    def test_both_compound_patterns(self, pre):
        assert sorted(pre.compound) == ["stride", "tile"]

    def test_vs_uses_shuffle_not_atomics(self, pre):
        vs = pre.coop_variant("VS")
        assert vs.uses_shuffle and not vs.uses_shared_atomic
        assert vs.disabled_arrays == ["tmp"]

    def test_va1_uses_atomics_not_shuffle(self, pre):
        va1 = pre.coop_variant("VA1")
        assert va1.uses_shared_atomic and not va1.uses_shuffle
        assert va1.shared_atomic_op == "add"

    def test_va2s_uses_both(self, pre):
        va2s = pre.coop_variant("VA2S")
        assert va2s.uses_shuffle and va2s.uses_shared_atomic
        shuffles = [
            n for n in ast.walk(va2s.codelet) if isinstance(n, ast.WarpShuffle)
        ]
        atomics = [
            n for n in ast.walk(va2s.codelet) if isinstance(n, ast.AtomicUpdate)
        ]
        assert len(shuffles) == 1 and len(atomics) == 1

    def test_log_records_every_pass(self, pre):
        log = "\n".join(pre.log)
        assert "shuffle pass" in log
        assert "shared-atomic pass" in log
        assert "global-atomic pass" in log

    def test_unknown_coop_key_raises(self, pre):
        with pytest.raises(KeyError):
            pre.coop_variant("VX")

    def test_reduction_op_inferred(self, pre):
        assert pre.reduction_op == "add"

    def test_max_pipeline(self):
        pre_max = preprocess(load_reduction_program("max", "float"))
        assert pre_max.reduction_op == "max"
        assert sorted(pre_max.coop) == ["V", "VA1", "VA1A", "VA2", "VA2S", "VS"]


class TestEnumeration:
    def test_total_space_is_60(self):
        assert len(enumerate_versions()) == 60

    def test_pruned_space_is_30_matching_paper(self):
        """The paper prunes to exactly 30 versions, all with global
        atomics for the per-block combine (Section IV-B)."""
        pruned = prune_versions(enumerate_versions())
        assert len(pruned) == 30
        assert all(v.uses_global_atomic for v in pruned)
        assert all(v.num_kernels == 1 for v in pruned)

    def test_versions_unique(self):
        versions = enumerate_versions()
        assert len(set(versions)) == len(versions)

    def test_original_versions_use_no_new_features(self):
        for version in original_tangram_versions():
            assert not version.uses_shared_atomic
            assert not version.uses_shuffle
            assert not version.uses_global_atomic
            assert version.num_kernels == 2

    def test_summary_counts_consistent(self):
        summary = search_space_summary()
        assert summary["total"] == 60
        assert summary["pruned_total"] == 30
        assert summary["pruned_all_use_global_atomics"]
        assert summary["with_shared_atomics"] + summary[
            "with_global_atomics_only"
        ] <= summary["total"]


class TestFig6Catalog:
    def test_sixteen_entries(self):
        assert len(FIG6) == 16
        assert set(FIG6) == set("abcdefghijklmnop")

    def test_all_entries_survive_pruning(self):
        pruned = set(prune_versions(enumerate_versions()))
        assert all(v in pruned for v in FIG6.values())

    def test_best8(self):
        assert BEST8 == frozenset("abcekmnp")

    def test_label_roundtrip(self):
        for label, version in FIG6.items():
            assert fig6_label(version) == label

    def test_coop_entries(self):
        assert FIG6["l"].combine == "V" and FIG6["l"].block_kind == "coop"
        assert FIG6["m"].combine == "VS"
        assert FIG6["n"].combine == "VA1"
        assert FIG6["o"].combine == "VA2"
        assert FIG6["p"].combine == "VA2S"

    def test_k_uses_strided_grid(self):
        assert FIG6["k"].grid_pattern == "stride"

    def test_identifier_format(self):
        assert FIG6["p"].identifier == "DT,A / VA2S"
        assert FIG6["b"].identifier == "DT,A / DS+S / VS"


class TestVersionValidation:
    def test_bad_grid_pattern(self):
        with pytest.raises(SynthesisError):
            Version(
                grid_pattern="diagonal",
                final_combine="global_atomic",
                block_kind="coop",
                combine="V",
            )

    def test_compound_requires_block_pattern(self):
        with pytest.raises(SynthesisError):
            Version(
                grid_pattern="tile",
                final_combine="global_atomic",
                block_kind="compound",
                combine="V",
            )

    def test_coop_takes_no_block_pattern(self):
        with pytest.raises(SynthesisError):
            Version(
                grid_pattern="tile",
                final_combine="global_atomic",
                block_kind="coop",
                combine="V",
                block_pattern="tile",
            )

    def test_feature_flags(self):
        assert FIG6["p"].uses_shuffle and FIG6["p"].uses_shared_atomic
        assert FIG6["m"].uses_shuffle and not FIG6["m"].uses_shared_atomic
        assert FIG6["n"].uses_shared_atomic and not FIG6["n"].uses_shuffle
        assert not FIG6["l"].uses_shuffle and not FIG6["l"].uses_shared_atomic
