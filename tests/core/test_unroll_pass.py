"""Tests for the loop-unrolling extension pass (Section III-A, [34])."""

import numpy as np
import pytest

from repro import ReductionFramework
from repro.core import apply_unroll
from repro.lang import analyze_source, ast


def codelet_of(body, coop=True):
    vector = "  Vector vt();\n" if coop else ""
    qual = "__coop" if coop else ""
    text = (
        f"__codelet {qual}\nint f(const Array<1,int> in) {{\n"
        f"{vector}{body}\n}}"
    )
    return analyze_source(text).codelets[0].codelet


class TestTripCountAnalysis:
    def test_halving_tree_loop_unrolled(self):
        codelet = codelet_of(
            "  int val = 0;\n"
            "  for (int offset = vt.MaxSize() / 2; offset > 0; offset /= 2) {\n"
            "    val += offset;\n"
            "  }\n"
            "  return val;"
        )
        result = apply_unroll(codelet)
        assert result.loops_unrolled == 1
        assert result.iterations_expanded == 5  # 16, 8, 4, 2, 1
        assert not [n for n in ast.walk(result.codelet) if isinstance(n, ast.For)]
        # iterator occurrences replaced by constants
        literals = [
            n.value
            for n in ast.walk(result.codelet)
            if isinstance(n, ast.IntLiteral)
        ]
        for expected in (16, 8, 4, 2, 1):
            assert expected in literals

    def test_counted_loop_unrolled(self):
        codelet = codelet_of(
            "  int val = 0;\n"
            "  for (int i = 0; i < 4; i += 1) { val += i; }\n"
            "  return val;",
            coop=False,
        )
        result = apply_unroll(codelet)
        assert result.iterations_expanded == 4

    def test_dynamic_bound_left_rolled(self):
        codelet = codelet_of(
            "  int val = 0;\n"
            "  for (unsigned i = 0; i < in.Size(); i += 1) { val += in[i]; }\n"
            "  return val;",
            coop=False,
        )
        result = apply_unroll(codelet)
        assert result.loops_unrolled == 0
        assert [n for n in ast.walk(result.codelet) if isinstance(n, ast.For)]

    def test_huge_loop_left_rolled(self):
        codelet = codelet_of(
            "  int val = 0;\n"
            "  for (int i = 0; i < 1000; i += 1) { val += 1; }\n"
            "  return val;",
            coop=False,
        )
        assert apply_unroll(codelet).loops_unrolled == 0

    def test_iterator_modified_in_body_left_rolled(self):
        codelet = codelet_of(
            "  int val = 0;\n"
            "  for (int i = 8; i > 0; i /= 2) { i -= 1; val += 1; }\n"
            "  return val;",
            coop=False,
        )
        assert apply_unroll(codelet).loops_unrolled == 0

    def test_nested_static_loops_both_unrolled(self):
        codelet = codelet_of(
            "  int val = 0;\n"
            "  for (int i = 0; i < 2; i += 1) {\n"
            "    for (int j = 0; j < 3; j += 1) { val += 1; }\n"
            "  }\n"
            "  return val;",
            coop=False,
        )
        result = apply_unroll(codelet)
        assert result.loops_unrolled == 2
        assert not [n for n in ast.walk(result.codelet) if isinstance(n, ast.For)]

    def test_original_untouched(self):
        codelet = codelet_of(
            "  int val = 0;\n"
            "  for (int i = 0; i < 4; i += 1) { val += i; }\n"
            "  return val;",
            coop=False,
        )
        apply_unroll(codelet)
        assert [n for n in ast.walk(codelet) if isinstance(n, ast.For)]


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def fw_unrolled(self):
        return ReductionFramework("add", unroll=True)

    def test_unrolled_framework_correct(self, fw_unrolled, rng):
        data = rng.random(9001).astype(np.float32)
        for label in ("l", "m", "n", "p", "e"):
            result = fw_unrolled.run(data, label)
            assert result.value == pytest.approx(
                float(data.sum(dtype=np.float64)), rel=1e-4
            ), label

    def test_unroll_reduces_instruction_count(self, fw_add, fw_unrolled, rng):
        data = rng.random(4096).astype(np.float32)
        rolled = fw_add.run(data, "m").profile.steps[0].events
        unrolled = fw_unrolled.run(data, "m").profile.steps[0].events
        assert unrolled["inst.alu"] < rolled["inst.alu"]
        # the same shuffles happen either way
        assert unrolled["inst.shfl"] == rolled["inst.shfl"]

    def test_unroll_logged(self, fw_unrolled):
        assert any("unroll pass" in line for line in fw_unrolled.pre.log)

    def test_unroll_never_slower_in_model(self, fw_add, fw_unrolled):
        for arch in ("kepler", "maxwell"):
            rolled = fw_add.time(65536, "m", arch)
            unrolled = fw_unrolled.time(65536, "m", arch)
            assert unrolled <= rolled * 1.001
