"""Tests for the global-memory atomic Map-API pass (Section III-A)."""

import pytest

from repro.core import (
    apply_global_atomic,
    classify_partition,
    infer_reduction_op,
)
from repro.core.sources import load_reduction_program
from repro.lang import analyze_source, ast
from repro.lang.errors import TransformError


@pytest.fixture(scope="module")
def program():
    return load_reduction_program("add", "float")


class TestInferReductionOp:
    def test_add(self, program):
        assert infer_reduction_op(program, "reduce") == "add"

    def test_max(self):
        assert infer_reduction_op(load_reduction_program("max"), "reduce") == "max"

    def test_min(self):
        assert infer_reduction_op(load_reduction_program("min"), "reduce") == "min"

    def test_sub_via_custom_source(self):
        text = """
__codelet int f(const Array<1,int> in) {
  int acc = 0;
  for (unsigned i = 0; i < in.Size(); i += 1) { acc -= in[i]; }
  return acc;
}
"""
        assert infer_reduction_op(analyze_source(text), "f") == "sub"

    def test_unrecognizable_rejected(self):
        text = """
__codelet int f(const Array<1,int> in) {
  int acc = 0;
  for (unsigned i = 0; i < in.Size(); i += 1) { acc = acc * 2; }
  return acc;
}
"""
        with pytest.raises(TransformError):
            infer_reduction_op(analyze_source(text), "f")


class TestClassifyPartition:
    def test_tile(self, program):
        assert classify_partition(program.find("reduce", "tile")) == "tile"

    def test_stride(self, program):
        assert classify_partition(program.find("reduce", "stride")) == "stride"

    def test_non_compound_rejected(self, program):
        with pytest.raises(TransformError):
            classify_partition(program.find("reduce", "scalar"))

    def test_unsupported_increment_rejected(self):
        text = """
__codelet int g(const Array<1,int> in) { return 0; }
__codelet int f(const Array<1,int> in) {
  __tunable unsigned p;
  Sequence start(i);
  Sequence inc(i * 2);
  Sequence end(in.Size());
  Map m(g, partition(in, p, start, inc, end));
  return g(m);
}
"""
        analyzed = analyze_source(text)
        info = [c for c in analyzed.codelets if c.kind == "compound"][0]
        with pytest.raises(TransformError):
            classify_partition(info)


class TestAtomicVariant:
    def test_spectrum_call_disabled_when_same_computation(self, program):
        info = program.find("reduce", "tile")
        result = apply_global_atomic(info, program, atomic=True)
        assert result.atomic
        assert result.atomic_op == "add"
        assert result.spectrum_disabled
        # the return now yields the map accumulator directly (Listing 2)
        returns = [n for n in ast.walk(result.codelet) if isinstance(n, ast.Return)]
        assert isinstance(returns[0].value, ast.Ident)
        assert returns[0].value.name == result.map_name

    def test_spectrum_call_kept_when_different_computation(self):
        """The paper's rule: if the spectrum's computation differs from
        the atomic API's, the spectrum call must NOT be disabled."""
        text = """
__codelet int g(const Array<1,int> in) {
  int acc = 0;
  for (unsigned i = 0; i < in.Size(); i += 1) { acc += in[i]; }
  return acc;
}
__codelet int f(const Array<1,int> in) {
  __tunable unsigned p;
  Sequence start(i);
  Sequence inc(p);
  Sequence end(in.Size());
  Map m(g, partition(in, p, start, inc, end));
  m.atomicMax();
  return g(m);
}
"""
        analyzed = analyze_source(text)
        info = [c for c in analyzed.codelets if c.kind == "compound"][0]
        result = apply_global_atomic(info, analyzed, atomic=True)
        assert result.atomic
        assert not result.spectrum_disabled
        calls = [
            n
            for n in ast.walk(result.codelet)
            if isinstance(n, ast.Call) and n.name == "g"
        ]
        assert calls  # spectrum call survives

    def test_atomic_variant_requires_api_call(self):
        text = """
__codelet int g(const Array<1,int> in) {
  int acc = 0;
  for (unsigned i = 0; i < in.Size(); i += 1) { acc += in[i]; }
  return acc;
}
__codelet int f(const Array<1,int> in) {
  __tunable unsigned p;
  Sequence start(i);
  Sequence inc(p);
  Sequence end(in.Size());
  Map m(g, partition(in, p, start, inc, end));
  return g(m);
}
"""
        analyzed = analyze_source(text)
        info = [c for c in analyzed.codelets if c.kind == "compound"][0]
        with pytest.raises(TransformError):
            apply_global_atomic(info, analyzed, atomic=True)
        # but the non-atomic variant is fine
        result = apply_global_atomic(info, analyzed, atomic=False)
        assert not result.atomic


class TestNonAtomicVariant:
    def test_atomic_api_call_removed(self, program):
        info = program.find("reduce", "tile")
        result = apply_global_atomic(info, program, atomic=False)
        assert not result.atomic
        methods = [
            n
            for n in ast.walk(result.codelet)
            if isinstance(n, ast.MethodCall) and n.method == "atomicAdd"
        ]
        assert not methods

    def test_spectrum_call_retained(self, program):
        info = program.find("reduce", "tile")
        result = apply_global_atomic(info, program, atomic=False)
        calls = [
            n
            for n in ast.walk(result.codelet)
            if isinstance(n, ast.Call) and n.name == "reduce"
        ]
        assert calls

    def test_original_untouched(self, program):
        info = program.find("reduce", "tile")
        apply_global_atomic(info, program, atomic=False)
        methods = [
            n
            for n in ast.walk(info.codelet)
            if isinstance(n, ast.MethodCall) and n.method == "atomicAdd"
        ]
        assert methods  # still present in the source AST
