"""Tests for the warp-aggregated atomics extension pass (Section III-D)."""

import numpy as np
import pytest

from repro import ReductionFramework
from repro.core import Version
from repro.core.aggregate import apply_warp_aggregation
from repro.core.atomics_shared import apply_shared_atomics
from repro.lang import analyze_source, ast


def va1_codelet(op_qualifier="_atomicAdd", write="t = val;"):
    text = f"""
__codelet __coop
float f(const Array<1,float> in) {{
  Vector vt();
  __shared {op_qualifier} float t;
  float val = 0.0f;
  val = (vt.ThreadId() < in.Size()) ? in[vt.ThreadId()] : 0.0f;
  {write}
  return t;
}}
"""
    codelet = analyze_source(text).codelets[0].codelet
    return apply_shared_atomics(codelet).codelet


class TestPass:
    def test_uniform_scalar_atomic_aggregated(self):
        result = apply_warp_aggregation(va1_codelet())
        assert result.rewrites == 1
        shuffles = [n for n in ast.walk(result.codelet)
                    if isinstance(n, ast.WarpShuffle)]
        assert shuffles, "aggregation must introduce a shuffle reduction"
        # the atomic survives, but guarded by LaneId() == 0
        updates = [n for n in ast.walk(result.codelet)
                   if isinstance(n, ast.AtomicUpdate)]
        assert len(updates) == 1

    def test_leader_guard_inserted(self):
        result = apply_warp_aggregation(va1_codelet())
        guards = [
            n for n in ast.walk(result.codelet)
            if isinstance(n, ast.If)
            and isinstance(n.cond, ast.Binary)
            and isinstance(n.cond.lhs, ast.MethodCall)
            and n.cond.lhs.method == "LaneId"
        ]
        assert guards

    def test_divergent_atomic_not_aggregated(self):
        """An atomic inside an If may be divergent — must be left alone."""
        text = """
__codelet __coop
float f(const Array<1,float> in) {
  Vector vt();
  __shared _atomicAdd float t;
  float val = 1.0f;
  if (vt.ThreadId() < in.Size()) {
    t = val;
  }
  return t;
}
"""
        codelet = analyze_source(text).codelets[0].codelet
        transformed = apply_shared_atomics(codelet).codelet
        result = apply_warp_aggregation(transformed)
        assert result.rewrites == 0

    def test_array_atomic_not_aggregated(self):
        """Histogram-style per-lane addresses cannot be warp-aggregated."""
        text = """
__codelet __coop
int f(const Array<1,int> in) {
  Vector vt();
  __shared _atomicAdd int hist[32];
  hist[vt.LaneId()] += 1;
  return 0;
}
"""
        codelet = analyze_source(text).codelets[0].codelet
        transformed = apply_shared_atomics(codelet).codelet
        result = apply_warp_aggregation(transformed)
        assert result.rewrites == 0

    def test_non_cooperative_untouched(self):
        text = """
__codelet
int f(const Array<1,int> in) {
  int acc = 0;
  for (unsigned i = 0; i < in.Size(); i += 1) { acc += in[i]; }
  return acc;
}
"""
        codelet = analyze_source(text).codelets[0].codelet
        assert apply_warp_aggregation(codelet).rewrites == 0

    def test_max_aggregation_uses_max_combine(self):
        codelet = va1_codelet(op_qualifier="_atomicMax")
        result = apply_warp_aggregation(codelet)
        assert result.rewrites == 1
        calls = [n for n in ast.walk(result.codelet)
                 if isinstance(n, ast.Call) and n.name == "max"]
        assert any(
            isinstance(c.args[1], ast.WarpShuffle)
            for c in calls if len(c.args) == 2
        )


class TestEndToEnd:
    VA1A = Version(
        grid_pattern="tile", final_combine="global_atomic",
        block_kind="coop", combine="VA1A",
    )

    def test_pipeline_generates_va1a(self, fw_add):
        assert "VA1A" in fw_add.pre.coop
        variant = fw_add.pre.coop_variant("VA1A")
        assert variant.uses_shuffle and variant.uses_shared_atomic

    def test_va1a_correct(self, fw_add, rng):
        data = rng.random(7777).astype(np.float32)
        result = fw_add.run(data, self.VA1A)
        assert result.value == pytest.approx(
            float(data.sum(dtype=np.float64)), rel=1e-4
        )

    def test_va1a_slashes_atomic_traffic(self, fw_add, rng):
        data = rng.random(8192).astype(np.float32)
        plain = fw_add.run(data, "n").profile.steps[0].events
        aggregated = fw_add.run(data, self.VA1A).profile.steps[0].events
        assert aggregated["atom.shared.ops"] * 16 < plain["atom.shared.ops"]
        assert aggregated["inst.shfl"] > 0

    def test_va1a_rescues_kepler(self, fw_add):
        """On Kepler, aggregation turns the pathological (n) into a
        competitive version — the trick of [25]."""
        n = 1_048_576
        t_va1 = fw_add.time(n, "n", "kepler")
        t_va1a = fw_add.time(n, self.VA1A, "kepler")
        assert t_va1a < t_va1 / 3

    def test_enumeration_counts_unchanged(self):
        """VA1A is an extension variant: the paper-matching counts of the
        canonical enumeration must not change."""
        from repro.core import enumerate_versions, prune_versions

        assert len(enumerate_versions()) == 60
        assert len(prune_versions(enumerate_versions())) == 30

    def test_max_reduction_with_aggregation(self, fw_max, rng):
        data = ((rng.random(5000) - 0.5) * 40).astype(np.float32)
        result = fw_max.run(data, self.VA1A)
        assert result.value == pytest.approx(float(data.max()))
