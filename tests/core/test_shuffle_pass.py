"""Tests for the warp-shuffle detection pass (Section III-C, Figure 4).

Each test checks one of the seven conditions of the detection algorithm
by perturbing the canonical tree-reduction loop so exactly that
condition fails.
"""

import pytest

from repro.core import apply_shuffle, detect_shuffle_loops
from repro.core.sources import load_reduction_program
from repro.lang import analyze_source, ast


def coop_codelet(body):
    text = (
        "__codelet __coop\n"
        "int f(const Array<1,int> in) {\n"
        "  Vector vt();\n"
        f"{body}\n"
        "}\n"
    )
    return analyze_source(text).codelets[0].codelet


CANONICAL = """
  __shared int tmp[in.Size()];
  int val = 0;
  val = (vt.ThreadId() < in.Size()) ? in[vt.ThreadId()] : 0;
  tmp[vt.ThreadId()] = val;
  for (int offset = vt.MaxSize() / 2; offset > 0; offset /= 2) {
    val += (vt.LaneId() + offset < vt.Size()) ? tmp[vt.ThreadId() + offset] : 0;
    tmp[vt.ThreadId()] = val;
  }
  return val;
"""


class TestDetection:
    def test_canonical_loop_detected(self):
        codelet = coop_codelet(CANONICAL)
        matches = detect_shuffle_loops(codelet)
        assert len(matches) == 1
        match = matches[0]
        assert match.accumulator == "val"
        assert match.shared_array == "tmp"
        assert match.direction == "down"
        assert match.combine == "add"

    def test_condition1_bound_not_from_vector(self):
        body = CANONICAL.replace("vt.MaxSize() / 2", "16")
        assert not detect_shuffle_loops(coop_codelet(body))

    def test_condition2_iterator_must_decrease(self):
        body = CANONICAL.replace("offset /= 2", "offset *= 2")
        assert not detect_shuffle_loops(coop_codelet(body))

    def test_condition2_subtractive_step_accepted(self):
        body = CANONICAL.replace("offset /= 2", "offset -= 1")
        assert detect_shuffle_loops(coop_codelet(body))

    def test_condition3_read_must_be_shared_array(self):
        # read from the input container instead of the shared array
        body = CANONICAL.replace(
            "tmp[vt.ThreadId() + offset]", "in[vt.ThreadId() + offset]"
        )
        assert not detect_shuffle_loops(coop_codelet(body))

    def test_condition4_index_must_use_iterator(self):
        body = CANONICAL.replace(
            "tmp[vt.ThreadId() + offset]", "tmp[vt.ThreadId() + 1]"
        )
        assert not detect_shuffle_loops(coop_codelet(body))

    def test_condition4_index_must_use_thread_id(self):
        body = CANONICAL.replace(
            "tmp[vt.ThreadId() + offset]", "tmp[vt.LaneId() + offset]"
        )
        assert not detect_shuffle_loops(coop_codelet(body))

    def test_condition5_writeback_to_different_array(self):
        body = CANONICAL.replace(
            "__shared int tmp[in.Size()];",
            "__shared int tmp[in.Size()];\n  __shared int other[in.Size()];",
        ).replace(
            """    tmp[vt.ThreadId()] = val;
  }""",
            """    other[vt.ThreadId()] = val;
  }""",
        )
        assert not detect_shuffle_loops(coop_codelet(body))

    def test_condition7_write_index_must_not_use_iterator(self):
        body = CANONICAL.replace(
            """    tmp[vt.ThreadId()] = val;
  }""",
            """    tmp[vt.ThreadId() + offset] = val;
  }""",
        )
        assert not detect_shuffle_loops(coop_codelet(body))

    def test_up_direction_detected(self):
        body = CANONICAL.replace(
            "tmp[vt.ThreadId() + offset]", "tmp[vt.ThreadId() - offset]"
        )
        matches = detect_shuffle_loops(coop_codelet(body))
        assert matches and matches[0].direction == "up"

    def test_max_combine_detected(self):
        body = CANONICAL.replace(
            "val += (vt.LaneId() + offset < vt.Size()) ? tmp[vt.ThreadId() + offset] : 0;",
            "val = max(val, (vt.LaneId() + offset < vt.Size()) ? tmp[vt.ThreadId() + offset] : 0);",
        )
        matches = detect_shuffle_loops(coop_codelet(body))
        assert matches and matches[0].combine == "max"

    def test_extra_statement_in_body_rejected(self):
        body = CANONICAL.replace(
            "    tmp[vt.ThreadId()] = val;\n  }",
            "    tmp[vt.ThreadId()] = val;\n    val += 0;\n  }",
        )
        assert not detect_shuffle_loops(coop_codelet(body))

    def test_non_cooperative_codelet_has_no_matches(self):
        program = load_reduction_program("add", "float")
        scalar = program.find("reduce", "scalar").codelet
        assert detect_shuffle_loops(scalar) == []


class TestRewrite:
    def test_loop_body_replaced_with_shuffle(self):
        codelet = coop_codelet(CANONICAL)
        result = apply_shuffle(codelet)
        assert result.rewrites == 1
        shuffles = [
            n for n in ast.walk(result.codelet) if isinstance(n, ast.WarpShuffle)
        ]
        assert len(shuffles) == 1
        assert shuffles[0].direction == "down"

    def test_original_codelet_untouched(self):
        codelet = coop_codelet(CANONICAL)
        apply_shuffle(codelet)
        assert not [
            n for n in ast.walk(codelet) if isinstance(n, ast.WarpShuffle)
        ]

    def test_dead_array_disabled(self):
        codelet = coop_codelet(CANONICAL)
        result = apply_shuffle(codelet)
        assert result.disabled_arrays == ["tmp"]
        decls = [
            n
            for n in ast.walk(result.codelet)
            if isinstance(n, ast.VarDecl) and n.shared
        ]
        assert not decls

    def test_producer_consumer_array_retained(self):
        """Figure 1(c): `partial` carries values between warps, so the
        shuffle pass must keep it (Listing 4 keeps partial)."""
        program = load_reduction_program("add", "float")
        coop = program.find("reduce", "coop_tree").codelet
        result = apply_shuffle(coop)
        assert result.rewrites == 2
        assert result.disabled_arrays == ["tmp"]
        kept = {
            n.name
            for n in ast.walk(result.codelet)
            if isinstance(n, ast.VarDecl) and n.shared
        }
        assert kept == {"partial"}

    def test_no_match_returns_unchanged_clone(self):
        codelet = coop_codelet("  int val = 0;\n  return val;")
        result = apply_shuffle(codelet)
        assert result.rewrites == 0
        assert result.disabled_arrays == []

    def test_max_rewrite_uses_max_combine(self):
        program = load_reduction_program("max", "float")
        coop = program.find("reduce", "coop_tree").codelet
        result = apply_shuffle(coop)
        assert result.rewrites == 2
        calls = [
            n
            for n in ast.walk(result.codelet)
            if isinstance(n, ast.Call) and n.name == "max"
        ]
        assert any(
            isinstance(c.args[1], ast.WarpShuffle) for c in calls if len(c.args) == 2
        )
