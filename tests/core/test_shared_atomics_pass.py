"""Tests for the shared-memory atomic-qualifier pass (Section III-B)."""

import pytest

from repro.core import apply_shared_atomics
from repro.core.atomics_shared import collect_atomic_shared
from repro.core.sources import load_reduction_program
from repro.lang import analyze_source, ast
from repro.lang.errors import TransformError


def coop_codelet(body):
    text = (
        "__codelet __coop\n"
        "int f(const Array<1,int> in) {\n"
        "  Vector vt();\n"
        f"{body}\n"
        "}\n"
    )
    return analyze_source(text).codelets[0].codelet


def atomic_updates(codelet):
    return [n for n in ast.walk(codelet) if isinstance(n, ast.AtomicUpdate)]


class TestCollect:
    def test_qualified_decls_found(self):
        codelet = coop_codelet(
            "  __shared _atomicAdd int a;\n"
            "  __shared _atomicMax int b[32];\n"
            "  __shared int plain[32];\n"
            "  return 0;"
        )
        assert collect_atomic_shared(codelet) == {"a": "add", "b": "max"}


class TestRewrite:
    def test_plain_write_becomes_qualifier_op(self):
        """Figure 3(b) line 16 -> Listing 3 line 27: `partial = val`
        becomes atomicAdd(&partial, val)."""
        codelet = coop_codelet(
            "  __shared _atomicAdd int t;\n  int val = 1;\n  t = val;\n  return t;"
        )
        result = apply_shared_atomics(codelet)
        assert result.rewrites == 1
        updates = atomic_updates(result.codelet)
        assert len(updates) == 1
        assert updates[0].op == "add"
        assert updates[0].space == "shared"

    def test_array_element_write_rewritten(self):
        """Histogram-style: hist[bin] += 1 with _atomicAdd (Section III-B)."""
        codelet = coop_codelet(
            "  __shared _atomicAdd int hist[64];\n"
            "  hist[vt.ThreadId() % 64] += 1;\n"
            "  return 0;"
        )
        result = apply_shared_atomics(codelet)
        assert result.rewrites == 1
        update = atomic_updates(result.codelet)[0]
        assert isinstance(update.target, ast.Index)

    def test_compound_assign_must_match_qualifier(self):
        codelet = coop_codelet(
            "  __shared _atomicMax int t;\n  t += 1;\n  return t;"
        )
        with pytest.raises(TransformError):
            apply_shared_atomics(codelet)

    def test_sub_qualifier_with_minus_assign(self):
        codelet = coop_codelet(
            "  __shared _atomicSub int t;\n  t -= 2;\n  return t;"
        )
        result = apply_shared_atomics(codelet)
        assert atomic_updates(result.codelet)[0].op == "sub"

    def test_unqualified_writes_untouched(self):
        codelet = coop_codelet(
            "  __shared int plain[32];\n"
            "  plain[vt.ThreadId() % 32] = 1;\n"
            "  return 0;"
        )
        result = apply_shared_atomics(codelet)
        assert result.rewrites == 0
        assert not atomic_updates(result.codelet)

    def test_never_written_atomic_var_rejected(self):
        codelet = coop_codelet(
            "  __shared _atomicAdd int t;\n  return t;"
        )
        with pytest.raises(TransformError):
            apply_shared_atomics(codelet)

    def test_original_untouched(self):
        codelet = coop_codelet(
            "  __shared _atomicAdd int t;\n  t = 1;\n  return t;"
        )
        apply_shared_atomics(codelet)
        assert not atomic_updates(codelet)

    def test_reads_stay_plain(self):
        codelet = coop_codelet(
            "  __shared _atomicAdd int t;\n  t = 1;\n  int x = t + 1;\n  return x;"
        )
        result = apply_shared_atomics(codelet)
        # exactly one atomic, the read `t + 1` is untouched
        assert result.rewrites == 1


class TestOnPaperCodelets:
    def test_shared_v1(self):
        program = load_reduction_program("add", "float")
        codelet = program.find("reduce", "shared_v1").codelet
        result = apply_shared_atomics(codelet)
        assert result.rewrites == 1
        assert result.atomic_symbols == {"tmp": "add"}

    def test_shared_v2(self):
        program = load_reduction_program("add", "float")
        codelet = program.find("reduce", "shared_v2").codelet
        result = apply_shared_atomics(codelet)
        assert result.rewrites == 1
        assert result.atomic_symbols == {"partial": "add"}

    def test_min_variant_uses_min_ops(self):
        program = load_reduction_program("min", "float")
        codelet = program.find("reduce", "shared_v1").codelet
        result = apply_shared_atomics(codelet)
        assert atomic_updates(result.codelet)[0].op == "min"
