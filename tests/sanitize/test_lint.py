"""Static VIR lint: catalog cleanliness and targeted defect patterns."""

import numpy as np

from repro.sanitize import lint_kernel, lint_plan
from repro.sanitize.negatives import stripped_atomic, tree_no_barrier
from repro.vir import IRBuilder, Kernel, SharedDecl


def kinds(diags):
    return {d.kind for d in diags}


class TestCatalogClean:
    def test_full_catalog_lints_clean(self, fw_add):
        from repro.core import FIG6

        for label in sorted(FIG6):
            plan = fw_add.build(label, 4096)
            diags = lint_plan(plan)
            assert not diags, (label, [d.render() for d in diags])


class TestMissingBarrier:
    def test_negative_tree_loop_flagged(self):
        diags = lint_plan(tree_no_barrier().plan)
        assert "missing-barrier-in-tree-loop" in kinds(diags)
        diag = next(d for d in diags
                    if d.kind == "missing-barrier-in-tree-loop")
        assert diag.kernel == "neg_tree_no_barrier"
        assert "ld.shared" in diag.instr
        assert diag.source == "lint"

    def _tree_kernel(self, start, with_bar):
        b = IRBuilder()
        tid = b.special("tid")
        b.st_shared("sdata", tid, tid)
        if with_bar:
            b.bar()
        s = b.mov(start)
        cond = b.fresh("cond")
        loop = b.while_(cond)
        with loop.cond:
            b.binop("gt", s, 0, dst=cond)
        with loop.body:
            guard = b.binop("lt", tid, s)
            with b.if_(guard):
                mine = b.ld_shared("sdata", tid)
                other = b.ld_shared("sdata", b.binop("add", tid, s))
                b.st_shared("sdata", tid, b.binop("add", mine, other))
            if with_bar:
                b.bar()
            b.binop("shr", s, 1, dst=s)
        return Kernel("tree", buffers=["out"],
                      shared=[SharedDecl("sdata", 2 * max(start, 16))],
                      body=b.finish())

    def test_intra_warp_loop_is_clean(self):
        # Offsets 16..1 provably stay below the warp size: the loop is
        # warp-synchronous and legal without barriers.
        assert not lint_kernel(self._tree_kernel(16, with_bar=False))

    def test_cross_warp_loop_without_barrier_flagged(self):
        diags = lint_kernel(self._tree_kernel(64, with_bar=False))
        assert kinds(diags) == {"missing-barrier-in-tree-loop"}

    def test_cross_warp_loop_with_barrier_clean(self):
        assert not lint_kernel(self._tree_kernel(64, with_bar=True))

    def test_unbounded_offset_flagged(self):
        # The stride comes from a kernel parameter: no constant bound,
        # so the pass cannot prove the exchange intra-warp.
        b = IRBuilder()
        tid = b.special("tid")
        b.st_shared("sdata", tid, tid)
        s = b.ld_param("stride")
        cond = b.fresh("cond")
        loop = b.while_(cond)
        with loop.cond:
            b.binop("gt", s, 0, dst=cond)
        with loop.body:
            v = b.ld_shared("sdata", b.binop("add", tid, s))
            b.st_shared("sdata", tid, v)
            b.binop("shr", s, 1, dst=s)
        kernel = Kernel("param_stride", params=["stride"], buffers=["out"],
                        shared=[SharedDecl("sdata", 256)], body=b.finish())
        diags = lint_kernel(kernel)
        assert kinds(diags) == {"missing-barrier-in-tree-loop"}
        assert "unbounded" in diags[0].message


class TestNonAtomicRmw:
    def test_negative_stripped_atomic_flagged(self):
        diags = lint_plan(stripped_atomic().plan)
        assert "non-atomic-rmw" in kinds(diags)
        diag = next(d for d in diags if d.kind == "non-atomic-rmw")
        assert diag.kernel == "neg_stripped_atomic"
        assert diag.buf == "acc"

    def test_single_lane_guard_exempt(self):
        # `if (tid == 0) acc[0] = acc[0] + v` is an ordinary serial
        # update, not a race.
        b = IRBuilder()
        tid = b.special("tid")
        v = b.ld_global("in", tid)
        lead = b.binop("eq", tid, 0)
        with b.if_(lead):
            old = b.ld_shared("acc", 0)
            b.st_shared("acc", 0, b.binop("add", old, v))
        kernel = Kernel("guarded", buffers=["in", "out"],
                        shared=[SharedDecl("acc", 1)], body=b.finish())
        assert not lint_kernel(kernel)

    def test_atomic_rmw_exempt(self):
        b = IRBuilder()
        tid = b.special("tid")
        v = b.ld_global("in", tid)
        b.atom_shared("add", "acc", 0, v)
        kernel = Kernel("atomic", buffers=["in", "out"],
                        shared=[SharedDecl("acc", 1)], body=b.finish())
        assert not lint_kernel(kernel)

    def test_lane_varying_index_exempt(self):
        # Per-lane slots: each lane updates its own address.
        b = IRBuilder()
        tid = b.special("tid")
        v = b.ld_global("in", tid)
        old = b.ld_shared("slots", tid)
        b.st_shared("slots", tid, b.binop("add", old, v))
        kernel = Kernel("slots", buffers=["in", "out"],
                        shared=[SharedDecl("slots", 64)], body=b.finish())
        assert not lint_kernel(kernel)
