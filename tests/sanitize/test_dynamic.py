"""Dynamic sanitizer: hazard model unit tests + catalog cleanliness."""

import numpy as np
import pytest

from repro.gpusim import Executor
from repro.runtime import ReductionFramework
from repro.sanitize import Sanitizer, run_sanitized
from repro.vir import IRBuilder, Kernel, KernelStep, SharedDecl

COMBOS = [
    ("sequential", "interpreted"),
    ("sequential", "compiled"),
    ("batched", "interpreted"),
    ("batched", "compiled"),
]
SPECS = [f"{mode}-{backend}" for mode, backend in COMBOS]


def sanitize_kernel(kernel, grid, block, mode="sequential",
                    backend="interpreted", n_in=None):
    sanitizer = Sanitizer()
    executor = Executor(mode=mode, backend=backend, sanitizer=sanitizer)
    buffers = {}
    if "in" in kernel.buffers:
        size = n_in if n_in is not None else grid * block
        executor.device.upload(
            "in", (np.arange(size) % 13).astype(np.float32)
        )
        buffers["in"] = "in"
    if "out" in kernel.buffers:
        executor.device.alloc("out", grid * block)
        buffers["out"] = "out"
    step = KernelStep(kernel, grid=grid, block=block, buffers=buffers)
    executor.run_kernel(step)
    return sanitizer


def kinds(sanitizer):
    return {diag.kind for diag in sanitizer.diagnostics}


class TestBarrierDivergence:
    def _guarded_bar_kernel(self, extra_bar):
        b = IRBuilder()
        tid = b.special("tid")
        warp = b.special("warpid")
        first = b.binop("eq", warp, 0)
        with b.if_(first):
            b.bar()
        if extra_bar:
            b.bar()
        b.st_global("out", tid, tid)
        return Kernel("bars", buffers=["out"], body=b.finish())

    @pytest.mark.parametrize("mode,backend", COMBOS)
    def test_mismatched_pairing_flagged(self, mode, backend):
        # Warp 0 hits two barriers, warp 1 only one: the block's second
        # barrier pairs different program points — undefined.
        kernel = self._guarded_bar_kernel(extra_bar=True)
        sanitizer = sanitize_kernel(kernel, 1, 64, mode, backend)
        assert "barrier-divergence" in kinds(sanitizer)

    @pytest.mark.parametrize("mode,backend", COMBOS)
    def test_arrive_or_exit_is_legal(self, mode, backend):
        # Only warp 0 ever executes the barrier; the other warps run to
        # the kernel end, which satisfies it (arrive-or-exit).
        kernel = self._guarded_bar_kernel(extra_bar=False)
        sanitizer = sanitize_kernel(kernel, 1, 64, mode, backend)
        assert "barrier-divergence" not in kinds(sanitizer)

    def test_lane_guarded_bar_arrives_for_whole_warp(self):
        # `if (laneid == 0) __syncthreads();` — every warp still arrives
        # (arrival is warp-granular), so the barrier both pairs up and
        # synchronizes the block: the cross-warp handoff below is clean.
        b = IRBuilder()
        tid = b.special("tid")
        lane = b.special("laneid")
        b.st_shared("sdata", tid, tid)
        lead = b.binop("eq", lane, 0)
        with b.if_(lead):
            b.bar()
        swapped = b.binop("sub", 63, tid)
        v = b.ld_shared("sdata", swapped)
        b.st_global("out", tid, v)
        kernel = Kernel("laneguard", buffers=["out"],
                        shared=[SharedDecl("sdata", 64)], body=b.finish())
        sanitizer = sanitize_kernel(kernel, 1, 64)
        assert sanitizer.clean, [d.render() for d in sanitizer.diagnostics]


class TestDataHazards:
    def _handoff_kernel(self, with_bar):
        # Every lane stores sdata[tid]; lanes then read the mirrored
        # slot, which crosses warps for a 64-thread block.
        b = IRBuilder()
        tid = b.special("tid")
        b.st_shared("sdata", tid, tid)
        if with_bar:
            b.bar()
        v = b.ld_shared("sdata", b.binop("sub", 63, tid))
        b.st_global("out", tid, v)
        return Kernel("handoff", buffers=["out"],
                      shared=[SharedDecl("sdata", 64)], body=b.finish())

    @pytest.mark.parametrize("mode,backend", COMBOS)
    def test_unsynchronized_cross_warp_read(self, mode, backend):
        sanitizer = sanitize_kernel(
            self._handoff_kernel(with_bar=False), 1, 64, mode, backend
        )
        assert "read-write-hazard" in kinds(sanitizer)
        diag = next(d for d in sanitizer.diagnostics
                    if d.kind == "read-write-hazard")
        assert diag.kernel == "handoff"
        assert diag.buf == "sdata"
        assert len(diag.lanes) == 2

    @pytest.mark.parametrize("mode,backend", COMBOS)
    def test_barrier_synchronizes(self, mode, backend):
        sanitizer = sanitize_kernel(
            self._handoff_kernel(with_bar=True), 1, 64, mode, backend
        )
        assert sanitizer.clean, [d.render() for d in sanitizer.diagnostics]

    def test_intra_warp_exchange_is_warp_synchronous(self):
        # A single warp swapping through shared memory with no barrier:
        # lockstep execution orders it, so no hazard.
        b = IRBuilder()
        tid = b.special("tid")
        b.st_shared("sdata", tid, tid)
        v = b.ld_shared("sdata", b.binop("sub", 31, tid))
        b.st_global("out", tid, v)
        kernel = Kernel("warpsync", buffers=["out"],
                        shared=[SharedDecl("sdata", 32)], body=b.finish())
        sanitizer = sanitize_kernel(kernel, 1, 32)
        assert sanitizer.clean

    def test_atomic_pairs_exempt_but_mixed_flagged(self):
        # All lanes atomically accumulate into acc[0]: legal. A plain
        # store to the same address right after is not.
        b = IRBuilder()
        tid = b.special("tid")
        b.atom_shared("add", "acc", 0, tid)
        kernel = Kernel("atomok", buffers=["out"],
                        shared=[SharedDecl("acc", 1)], body=b.finish())
        assert sanitize_kernel(kernel, 1, 64).clean

        b = IRBuilder()
        tid = b.special("tid")
        b.atom_shared("add", "acc", 0, tid)
        b.st_shared("acc", 0, 0.0)
        kernel = Kernel("atommixed", buffers=["out"],
                        shared=[SharedDecl("acc", 1)], body=b.finish())
        assert "write-write-hazard" in kinds(sanitize_kernel(kernel, 1, 64))

    def test_same_instruction_duplicate_store(self):
        # Two lanes store the same address in one instruction.
        b = IRBuilder()
        tid = b.special("tid")
        b.st_shared("sdata", b.binop("mod", tid, 16), tid)
        kernel = Kernel("dupst", buffers=["out"],
                        shared=[SharedDecl("sdata", 16)], body=b.finish())
        assert "write-write-hazard" in kinds(sanitize_kernel(kernel, 1, 32))


class TestShflInactiveSource:
    @pytest.mark.parametrize("mode,backend", COMBOS)
    def test_guarded_shuffle_flagged(self, mode, backend):
        b = IRBuilder()
        tid = b.special("tid")
        v = b.ld_global("in", tid)
        lo = b.binop("lt", tid, 16)
        with b.if_(lo):
            w = b.shfl(v, "down", 8)
            b.st_global("out", tid, w)
        kernel = Kernel("gshfl", buffers=["in", "out"], body=b.finish())
        sanitizer = sanitize_kernel(kernel, 1, 32, mode, backend)
        assert "shfl-inactive-source" in kinds(sanitizer)

    def test_full_mask_shuffle_clean(self):
        b = IRBuilder()
        tid = b.special("tid")
        v = b.ld_global("in", tid)
        w = b.shfl(v, "down", 8)
        b.st_global("out", tid, w)
        kernel = Kernel("fshfl", buffers=["in", "out"], body=b.finish())
        assert sanitize_kernel(kernel, 1, 32).clean

    def test_identity_fallback_not_flagged(self):
        # Lanes whose source falls outside the width segment read their
        # own value — active by definition, so never a diagnostic, even
        # under a divergent guard.
        b = IRBuilder()
        tid = b.special("tid")
        v = b.ld_global("in", tid)
        hi = b.binop("ge", tid, 24)
        with b.if_(hi):
            w = b.shfl(v, "down", 16)  # sources land past lane 31
            b.st_global("out", tid, w)
        kernel = Kernel("idshfl", buffers=["in", "out"], body=b.finish())
        assert sanitize_kernel(kernel, 1, 32).clean


class TestCatalogAndIdentity:
    @pytest.mark.parametrize("spec", SPECS)
    def test_catalog_subset_clean(self, spec, fw_add):
        data = (np.arange(3000) % 17).astype(np.float32)
        for label in ("a", "b", "m", "n", "p"):
            plan = fw_add.build(label, data.size)
            diags = run_sanitized(plan, data, spec)
            assert not diags, (label, [d.render() for d in diags])

    def test_int_catalog_subset_clean(self):
        fw = ReductionFramework(op="max", ctype="int")
        data = (np.arange(3000) % 17 - 8).astype(np.int32)
        for label in ("a", "m", "n", "p"):
            plan = fw.build(label, data.size)
            diags = run_sanitized(plan, data, "batched-compiled")
            assert not diags, (label, [d.render() for d in diags])

    @pytest.mark.parametrize("spec", SPECS)
    def test_sanitizer_off_bit_identity(self, spec, fw_add):
        """Sanitizer on vs off: identical results and event counters."""
        from repro.gpusim import parse_engine_spec

        mode, backend = parse_engine_spec(spec)
        data = (np.arange(4096) % 13).astype(np.float32)
        plan = fw_add.build("m", data.size)

        plain = Executor(mode=mode, backend=backend)
        plain.device.upload("in", data)
        ref = plain.run_plan(plan)

        sanitized = Executor(
            mode=mode, backend=backend, sanitizer=Sanitizer()
        )
        sanitized.device.upload("in", data)
        got = sanitized.run_plan(plan)

        assert got.result == ref.result
        assert len(got.steps) == len(ref.steps)
        for r, g in zip(ref.steps, got.steps):
            assert dict(g.events) == dict(r.events), r.kernel_name
