"""Every deliberately-broken codelet must be flagged (mutation tests)."""

import numpy as np

from repro.sanitize import all_negatives, check_negatives
from repro.sanitize.report import run_sanitized

ALL_SPECS = (
    "sequential-interpreted",
    "sequential-compiled",
    "batched-interpreted",
    "batched-compiled",
)


def test_every_negative_flagged_default_engines():
    reports = check_negatives()
    assert [r.name for r in reports] == [
        "tree-no-barrier", "stripped-atomic", "shfl-under-guard"
    ]
    for report in reports:
        assert report.flagged, (report.name, report.missing)


def test_every_negative_flagged_all_four_combos():
    reports = check_negatives(engines=ALL_SPECS)
    for report in reports:
        assert report.flagged, (report.name, report.missing)
        for spec in ALL_SPECS:
            assert report.dynamic[spec], (report.name, spec)


def test_diagnostics_name_kernel_instruction_and_lanes():
    for negative in all_negatives():
        data = (np.arange(negative.n) % 7).astype(np.float32)
        diags = run_sanitized(negative.plan, data, "sequential-interpreted")
        expected = set(negative.expect_dynamic)
        seen = {d.kind for d in diags}
        assert expected <= seen, (negative.name, seen)
        for diag in diags:
            assert diag.kernel.startswith("neg_")
            assert diag.instr  # formatted VIR instruction
            assert diag.lanes  # the conflicting/offending lanes
            rendered = diag.render()
            assert diag.kernel in rendered and diag.kind in rendered


def test_expected_lint_kinds():
    from repro.sanitize import lint_plan

    for negative in all_negatives():
        seen = {d.kind for d in lint_plan(negative.plan)}
        assert set(negative.expect_lint) <= seen, (negative.name, seen)
