"""Serving runtime: fusion under load, typed admission, degradation.

The acceptance scenario from the serve milestone: >= 64 concurrent
heterogeneous requests execute with strictly fewer launches than
requests (fusion ratio > 1, visible through ``repro.obs``), every
response bit-identical to sequential per-request execution, and
over-quota traffic rejected with a typed error.
"""

import threading

import numpy as np
import pytest

from repro.obs import default_metrics
from repro.serve import (
    DeadlineExceeded,
    LoadGenerator,
    QueueFull,
    QuotaExceeded,
    ReductionServer,
    RequestInvalid,
    ServerClosed,
    ServerConfig,
    SessionKey,
    prove_backpressure,
)


def _make_server(**overrides) -> ReductionServer:
    defaults = dict(window_s=0.02)
    defaults.update(overrides)
    return ReductionServer(ServerConfig(**defaults))


class TestAcceptanceLoad:
    """The headline load test: fusion + bit-exactness + telemetry."""

    def test_64_concurrent_requests_fuse_and_verify(self):
        with _make_server() as server:
            generator = LoadGenerator(server, seed=11)
            report = generator.run(
                num_requests=64, concurrency=16, max_size=4096, verify=True
            )
            stats = server.stats()
        assert report.responses == 64
        assert report.mismatches == 0
        assert not report.rejected
        # Strictly fewer launches than requests — the fusion win.
        assert 0 < report.launches < report.responses
        assert report.fusion_ratio > 1.0
        assert stats["fused_requests"] > stats["unfused_requests"]
        assert stats["fused_batches"] >= 1

    def test_fusion_ratio_visible_in_obs_metrics(self):
        with _make_server() as server:
            LoadGenerator(server, seed=2).run(
                num_requests=32, concurrency=8, verify=False
            )
            server.stats()  # refreshes the gauges
            snapshot = default_metrics().snapshot()
        assert snapshot["counters"].get("serve.launches", 0) >= 1
        assert snapshot["gauges"]["serve.fusion_ratio"] > 1.0
        assert any(
            name.startswith("serve.latency_us.")
            for name in snapshot["histograms"]
        )

    def test_empty_and_single_element_requests(self):
        with _make_server() as server:
            empty = server.submit(np.array([], dtype=np.float32))
            single = server.submit(np.array([42.5], dtype=np.float32))
            assert empty.result(timeout=30.0).value == np.float32(0.0)
            assert single.result(timeout=30.0).value == np.float32(42.5)

    def test_int_sessions_bit_exact(self):
        data = np.arange(-500, 777, dtype=np.int32)
        with _make_server() as server:
            response = server.reduce(data, op="add", ctype="int", version="m")
        assert response.value == int(data.sum())


class TestAdmissionControl:
    def test_quota_exceeded_is_typed_and_synchronous(self):
        result = prove_backpressure()
        assert result["typed_backpressure"] is True
        assert result["quota_rejections"] >= 1
        assert result["served"] + result["quota_rejections"] + \
            result["queue_rejections"] == result["submitted"]

    def test_queue_full_rejects(self):
        config = ServerConfig(
            window_s=5.0, max_queue_depth=1, tenant_quota=1000,
            max_batch_requests=2,
        )
        data = np.ones(16, dtype=np.float32)
        with ReductionServer(config) as server:
            futures = [server.submit(data)]
            rejections = 0
            # The batcher may drain a couple of items into its window;
            # a bounded queue must reject well before 64.
            for _ in range(64):
                try:
                    futures.append(server.submit(data))
                except QueueFull:
                    rejections += 1
            assert rejections >= 1
            server.close(drain=True)
            for future in futures:
                assert future.result(timeout=30.0).value == np.float32(16.0)

    def test_invalid_requests_typed(self):
        with _make_server() as server:
            data = np.ones(4, dtype=np.float32)
            with pytest.raises(RequestInvalid):
                server.submit(data, op="mean")
            with pytest.raises(RequestInvalid):
                server.submit(data, ctype="double")
            with pytest.raises(RequestInvalid):
                server.submit(data, version="z")
            with pytest.raises(RequestInvalid):
                server.submit(np.ones((2, 2), dtype=np.float32))
            with pytest.raises(RequestInvalid):
                server.submit(["not", "numbers"])
            assert server.stats()["responses"] == 0

    def test_deadline_exceeded_in_queue(self):
        # A long window holds the batch open; a microscopic deadline
        # expires while the request waits for the window to close.
        config = ServerConfig(window_s=0.3, tenant_quota=1000)
        with ReductionServer(config) as server:
            data = np.ones(8, dtype=np.float32)
            first = server.submit(data)  # opens the window
            doomed = server.submit(data, deadline_s=1e-6)
            with pytest.raises(DeadlineExceeded):
                doomed.result(timeout=30.0)
            assert first.result(timeout=30.0).value == np.float32(8.0)
        assert server.stats()["rejected_deadline"] == 1

    def test_quota_releases_after_completion(self):
        with _make_server(tenant_quota=2) as server:
            data = np.ones(8, dtype=np.float32)
            for _ in range(6):  # 3 quota-sized waves, sequentially
                a = server.submit(data, tenant="t")
                b = server.submit(data, tenant="t")
                assert a.result(timeout=30.0).value == np.float32(8.0)
                assert b.result(timeout=30.0).value == np.float32(8.0)
            assert server.stats()["rejected_quota"] == 0


class TestDegradation:
    def test_stride_version_falls_back_unfused(self):
        # Version "k" strides blocks across the whole input; segmented
        # synthesis rejects it and the batch degrades to per-request
        # execution with correct results.
        with _make_server(window_s=0.1) as server:
            rng = np.random.default_rng(5)
            payloads = [
                rng.standard_normal(int(n)).astype(np.float32)
                for n in rng.integers(1, 2048, size=8)
            ]
            futures = [server.submit(d, version="k") for d in payloads]
            responses = [f.result(timeout=60.0) for f in futures]
            stats = server.stats()
        fw = LoadGenerator(server)._reference_value
        for data, response in zip(payloads, responses):
            assert response.fused is False
            assert response.value == fw("add", "float", "k", data)
        assert stats["fallbacks"] >= 1
        assert stats["fused_requests"] == 0
        assert stats["responses"] == len(payloads)

    def test_fuse_disabled_still_serves(self):
        with _make_server(fuse=False) as server:
            report = LoadGenerator(server, seed=4).run(
                num_requests=12, concurrency=4, verify=True
            )
        assert report.responses == 12
        assert report.mismatches == 0
        assert report.fused_responses == 0


class TestLifecycle:
    def test_submit_after_close_rejected(self):
        server = _make_server()
        server.close()
        with pytest.raises(ServerClosed):
            server.submit(np.ones(4, dtype=np.float32))

    def test_close_drains_queued_work(self):
        config = ServerConfig(window_s=2.0, tenant_quota=1000)
        server = ReductionServer(config)
        data = np.ones(32, dtype=np.float32)
        futures = [server.submit(data) for _ in range(10)]
        server.close(drain=True)
        for future in futures:
            assert future.result(timeout=30.0).value == np.float32(32.0)

    def test_close_without_drain_rejects_queued(self):
        config = ServerConfig(window_s=2.0, tenant_quota=1000)
        server = ReductionServer(config)
        data = np.ones(32, dtype=np.float32)
        futures = [server.submit(data) for _ in range(10)]
        server.close(drain=False)
        outcomes = {"served": 0, "closed": 0}
        for future in futures:
            try:
                future.result(timeout=30.0)
                outcomes["served"] += 1
            except ServerClosed:
                outcomes["closed"] += 1
        # The batcher may have pulled a first batch into its window
        # before the sentinel landed; everything else must be rejected.
        assert outcomes["closed"] >= 1
        assert outcomes["served"] + outcomes["closed"] == 10

    def test_close_is_idempotent(self):
        server = _make_server()
        server.close()
        server.close()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServerConfig(window_s=-1.0)
        with pytest.raises(ValueError):
            ServerConfig(max_batch_requests=0)
        with pytest.raises(ValueError):
            ServerConfig(tenant_quota=0)
        with pytest.raises(ValueError):
            ServerConfig(engine="warp-drive")


class TestSessions:
    def test_sessions_keyed_by_op_ctype_version(self):
        with _make_server() as server:
            data = np.ones(8, dtype=np.float32)
            idata = np.ones(8, dtype=np.int32)
            server.reduce(data, op="add", version="p")
            server.reduce(data, op="max", version="p")
            server.reduce(idata, op="add", ctype="int", version="p")
            server.reduce(data, op="add", version="b")
            stats = server.stats()
        assert set(stats["sessions"]) == {
            "add-float-p", "max-float-p", "add-int-p", "add-float-b",
        }

    def test_session_key_label(self):
        assert SessionKey("min", "int", "c").label() == "min-int-c"

    def test_concurrent_submitters_many_sessions(self):
        # Hammer one server from 12 threads across 3 sessions; every
        # response must match the oracle (torn state would show up as
        # wrong values or dropped futures).
        with _make_server() as server:
            generator = LoadGenerator(server, seed=9)
            errors = []

            def storm(version, seed):
                rng = np.random.default_rng(seed)
                for _ in range(5):
                    data = rng.standard_normal(
                        int(rng.integers(0, 1024))).astype(np.float32)
                    try:
                        response = server.submit(
                            data, version=version).result(timeout=60.0)
                        expected = generator._reference_value(
                            "add", "float", version, data)
                        if response.value != expected:
                            errors.append((version, len(data)))
                    except Exception as exc:  # noqa: BLE001
                        errors.append((version, repr(exc)))

            threads = [
                threading.Thread(target=storm, args=("pbm"[i % 3], i))
                for i in range(12)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert errors == []
