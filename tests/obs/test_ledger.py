"""Tests for the append-only bench ledger (:mod:`repro.obs.ledger`).

Covers entry construction, the append/read round-trip (including
malformed and wrong-schema lines), per-metric regression detection for
all three metric kinds, the report renderer, and the ``repro bench
report`` CLI exit codes (nonzero on an injected regression fixture).
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs import ledger

REPO_ROOT = Path(__file__).resolve().parents[2]


def _bench(vector=4.0, native=2.0, chains=2, regions=18, noop_ns=450.0):
    """A minimal bench payload shaped like bench_simperf's snapshot."""
    return {
        "profile_large": {"speedup": 14.0},
        "compiled_executor": {"speedup_vs_interpreted": 4.5},
        "vector_backend": {
            "speedup_vs_compiled": vector,
            "fusion": {"fused_regions": 22, "megafused_loops": 1},
        },
        "native_backend": {
            "speedup_vs_vector": native,
            "lowering": {
                "native_regions": regions,
                "native_loops": 1,
                "native_chains": chains,
            },
        },
        "observability": {"noop_span_ns": noop_ns},
    }


def _entry(**kwargs):
    return ledger.make_entry(
        _bench(**kwargs), timestamp="2026-08-09T00:00:00+00:00", sha="deadbeef",
    )


class TestEntries:
    def test_make_entry_schema_and_metrics(self):
        entry = _entry()
        assert entry["schema"] == ledger.LEDGER_SCHEMA_VERSION
        assert entry["ts"] == "2026-08-09T00:00:00+00:00"
        assert entry["git_sha"] == "deadbeef"
        assert entry["python"] == sys.version.split()[0]
        metrics = entry["metrics"]
        assert metrics["vector_backend.speedup_vs_compiled"] == 4.0
        assert metrics["native_backend.lowering.native_chains"] == 2
        assert entry["bench"]["observability"]["noop_span_ns"] == 450.0

    def test_extract_metrics_skips_missing_not_zeroes(self):
        bench = _bench()
        del bench["native_backend"]
        metrics = ledger.extract_metrics(bench)
        assert "native_backend.speedup_vs_vector" not in metrics
        assert "native_backend.lowering.native_chains" not in metrics
        assert metrics["vector_backend.speedup_vs_compiled"] == 4.0

    def test_extract_metrics_ignores_non_numeric_leaves(self):
        bench = _bench()
        bench["vector_backend"]["speedup_vs_compiled"] = "fast"
        metrics = ledger.extract_metrics(bench)
        assert "vector_backend.speedup_vs_compiled" not in metrics

    def test_append_read_roundtrip(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        first, second = _entry(), _entry(native=2.5)
        ledger.append_entry(first, path)
        ledger.append_entry(second, path)
        entries = ledger.read_ledger(path)
        assert entries == [first, second]

    def test_read_skips_malformed_and_foreign_schema_lines(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger.append_entry(_entry(), path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("this is not json\n")
            handle.write("\n")
            handle.write(json.dumps({"schema": 999, "metrics": {}}) + "\n")
            handle.write(json.dumps(["not", "a", "dict"]) + "\n")
        ledger.append_entry(_entry(native=2.5), path)
        entries = ledger.read_ledger(path)
        assert len(entries) == 2
        assert all(
            e["schema"] == ledger.LEDGER_SCHEMA_VERSION for e in entries
        )

    def test_read_missing_file_is_empty(self, tmp_path):
        assert ledger.read_ledger(tmp_path / "nope.jsonl") == []


class TestDetectRegressions:
    def test_needs_two_entries(self):
        assert ledger.detect_regressions([_entry()]) == []
        assert ledger.detect_regressions([]) == []

    def test_clean_run_has_no_regressions(self):
        assert ledger.detect_regressions([_entry(), _entry()]) == []

    def test_ratio_drop_beyond_tolerance_regresses(self):
        entries = [_entry(native=2.0), _entry(native=1.0)]
        regressions = ledger.detect_regressions(entries)
        keys = {r["metric"] for r in regressions}
        assert "native_backend.speedup_vs_vector" in keys
        (row,) = [
            r for r in regressions
            if r["metric"] == "native_backend.speedup_vs_vector"
        ]
        assert row["kind"] == "higher"
        assert row["reference"] == 2.0
        assert "native/vector speedup regressed" in row["message"]

    def test_ratio_drop_within_tolerance_passes(self):
        # 25% band: 2.0 -> 1.6 is a 20% drop, inside the band.
        entries = [_entry(native=2.0), _entry(native=1.6)]
        assert ledger.detect_regressions(entries) == []

    def test_count_drop_always_regresses(self):
        entries = [_entry(chains=2), _entry(chains=0)]
        regressions = ledger.detect_regressions(entries)
        (row,) = [
            r for r in regressions
            if r["metric"] == "native_backend.lowering.native_chains"
        ]
        assert row["kind"] == "count"
        assert row["message"] == "native chain count dropped 2->0"

    def test_lower_is_better_metric(self):
        entries = [_entry(noop_ns=450.0), _entry(noop_ns=450.0 * 11)]
        regressions = ledger.detect_regressions(entries)
        keys = {r["metric"] for r in regressions}
        assert "observability.noop_span_ns" in keys
        # Within the 9x band nothing fires.
        entries = [_entry(noop_ns=450.0), _entry(noop_ns=450.0 * 9)]
        assert ledger.detect_regressions(entries) == []

    def test_reference_is_best_of_window_not_last(self):
        # The middle run was the best; judging against "last" alone
        # would miss the regression.
        entries = [_entry(native=1.0), _entry(native=3.0), _entry(native=2.0)]
        regressions = ledger.detect_regressions(entries)
        (row,) = [
            r for r in regressions
            if r["metric"] == "native_backend.speedup_vs_vector"
        ]
        assert row["reference"] == 3.0

    def test_window_bounds_the_comparison(self):
        # With window=1 only the immediately preceding entry counts, so
        # the old best (3.0) is out of scope and nothing regresses.
        entries = [_entry(native=3.0), _entry(native=2.0), _entry(native=1.9)]
        assert ledger.detect_regressions(entries, window=1) == []
        assert ledger.detect_regressions(entries, window=2)

    def test_metric_missing_from_history_is_skipped(self):
        old = _entry()
        del old["metrics"]["native_backend.speedup_vs_vector"]
        entries = [old, _entry(native=0.1)]
        keys = {r["metric"] for r in ledger.detect_regressions(entries)}
        assert "native_backend.speedup_vs_vector" not in keys

    def test_metric_missing_from_newest_is_skipped(self):
        new = _entry()
        del new["metrics"]["native_backend.speedup_vs_vector"]
        assert ledger.detect_regressions([_entry(), new]) == []


class TestFormatReport:
    def test_empty_ledger(self):
        lines = ledger.format_report([], [])
        assert lines[0].startswith("bench ledger: empty")

    def test_single_entry_has_no_window(self):
        lines = ledger.format_report([_entry()], [])
        assert lines[0].startswith("bench ledger: 1 entry,")
        assert any("nothing to judge against" in line for line in lines)

    def test_clean_report_lists_metrics(self):
        entries = [_entry(), _entry()]
        lines = ledger.format_report(entries, [])
        assert any(
            "native_backend.speedup_vs_vector = 2" in line for line in lines
        )
        assert any("no regressions" in line for line in lines)

    def test_regressed_report_cites_messages(self):
        entries = [_entry(chains=2), _entry(chains=0)]
        regressions = ledger.detect_regressions(entries)
        lines = ledger.format_report(entries, regressions)
        assert any(line.startswith("REGRESSED") for line in lines)
        assert any("native chain count dropped 2->0" in line for line in lines)


def _run_report(ledger_path, *extra):
    return subprocess.run(
        [sys.executable, "-m", "repro", "bench", "report",
         "--ledger", str(ledger_path), *extra],
        capture_output=True, text=True, cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )


class TestBenchReportCli:
    def test_exit_nonzero_on_injected_regression(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger.append_entry(_entry(chains=2, native=2.0), path)
        ledger.append_entry(_entry(chains=0, native=0.5), path)
        result = _run_report(path)
        assert result.returncode == 1
        assert "REGRESSED" in result.stdout
        assert "native chain count dropped 2->0" in result.stdout

    def test_exit_zero_on_clean_ledger(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger.append_entry(_entry(), path)
        ledger.append_entry(_entry(native=2.1), path)
        result = _run_report(path)
        assert result.returncode == 0
        assert "no regressions" in result.stdout

    def test_json_payload(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger.append_entry(_entry(), path)
        ledger.append_entry(_entry(chains=0), path)
        out = tmp_path / "report.json"
        result = _run_report(path, "--json", str(out))
        assert result.returncode == 1
        payload = json.loads(out.read_text())
        assert payload["entries"] == 2
        assert payload["regressions"][0]["kind"] == "count"


class TestRepoLedger:
    def test_repo_ledger_is_seeded(self):
        """The committed ledger must carry at least one real entry."""
        path = REPO_ROOT / ledger.DEFAULT_LEDGER_NAME
        entries = ledger.read_ledger(path)
        assert entries, f"{path} must hold at least one schema-valid entry"
        newest = entries[-1]
        assert newest["metrics"], "seeded entry carries watched metrics"
        assert newest["bench"], "seeded entry embeds the full bench payload"
