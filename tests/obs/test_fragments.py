"""Tests for per-fragment wall-time / fallback attribution.

Covers the :class:`FragmentProfiler` accumulator, the label derivation
from backend identity attributes, the trace shim (attribute-preserving,
numbers-identical), the cooperative ``note_fallback`` hook, and the
engine integration: with tracing on, vector/native ``exec.launch``
spans carry ``fragments`` (and ``fallbacks``) args, while events stay
bit-identical to an untraced run.
"""

import numpy as np
import pytest

from repro.codegen import Tunables
from repro.gpusim import Executor
from repro.obs import disable_tracing, enable_tracing, get_tracer
from repro.obs.fragments import (
    FragmentProfiler,
    fragment_label,
    instrument_trace,
    note_fallback,
)
from repro.runtime import ReductionFramework


class TestFragmentProfiler:
    def test_add_accumulates_calls_and_seconds(self):
        prof = FragmentProfiler()
        prof.add("fused.region#0", 1e-6)
        prof.add("fused.region#0", 2e-6)
        prof.add("native.region#1", 5e-6)
        assert prof.totals["fused.region#0"] == [2, pytest.approx(3e-6)]
        assert prof.totals["native.region#1"] == [1, pytest.approx(5e-6)]

    def test_span_args_shape_and_order(self):
        prof = FragmentProfiler()
        prof.add("b#1", 2e-6)
        prof.add("a#0", 1e-6)
        prof.note_fallback("native.loop#0", "partial-warp")
        args = prof.span_args()
        assert list(args["fragments"]) == ["a#0", "b#1"]
        assert args["fragments"]["a#0"] == {"calls": 1, "wall_us": 1.0}
        assert args["fallbacks"] == {"native.loop#0:partial-warp": 1}

    def test_no_fallbacks_key_when_clean(self):
        prof = FragmentProfiler()
        prof.add("a#0", 1e-6)
        assert "fallbacks" not in prof.span_args()


class TestFragmentLabel:
    def test_identity_attributes_win_in_priority_order(self):
        def closure(state, mask):
            pass

        closure._native = "chain"
        assert fragment_label(closure, 3) == "native.chain#3"
        del closure._native
        closure._instrs = ("x",)
        assert fragment_label(closure, 0) == "fused.region#0"
        del closure._instrs
        closure._loop_fused = True
        assert fragment_label(closure, 1) == "fused.loop#1"
        del closure._loop_fused
        closure._specialized = "loop"
        assert fragment_label(closure, 2) == "spec.loop#2"
        del closure._specialized

    def test_falls_back_to_instr_type_then_name(self):
        class Shfl:
            pass

        def closure(state, mask):
            pass

        closure._instr = Shfl()
        assert fragment_label(closure, 0) == "instr.shfl#0"
        del closure._instr
        assert fragment_label(closure, 4) == "closure#4"


class TestInstrumentTrace:
    def test_shim_preserves_attributes_and_reports_time(self):
        calls = []

        def closure(state, mask):
            calls.append((state, mask))
            return "ret"

        closure._native = "region"
        prof = FragmentProfiler()
        (wrapped,) = instrument_trace([closure], prof)
        assert wrapped._native == "region"
        assert wrapped._timed_label == "native.region#0"
        assert wrapped("s", "m") == "ret"
        assert calls == [("s", "m")]
        calls_count, seconds = prof.totals["native.region#0"]
        assert calls_count == 1 and seconds >= 0.0

    def test_profiles_even_when_closure_raises(self):
        def closure(state, mask):
            raise ValueError("boom")

        prof = FragmentProfiler()
        (wrapped,) = instrument_trace([closure], prof)
        with pytest.raises(ValueError):
            wrapped(None, None)
        assert prof.totals["closure#0"][0] == 1

    def test_original_trace_is_not_mutated(self):
        def closure(state, mask):
            pass

        trace = [closure]
        wrapped = instrument_trace(trace, FragmentProfiler())
        assert trace[0] is closure
        assert wrapped[0] is not closure


class TestNoteFallbackHook:
    def test_noop_without_profiler(self):
        class State:
            pass

        note_fallback(State(), "native.loop#0", "partial-warp")  # no raise

    def test_records_when_profiler_attached(self):
        class State:
            pass

        state = State()
        state.fragprof = FragmentProfiler()
        note_fallback(state, "native.loop#0", "partial-warp")
        assert state.fragprof.fallbacks == {"native.loop#0:partial-warp": 1}


@pytest.fixture(scope="module")
def fw():
    return ReductionFramework(op="add")


def _run(plan, data, backend):
    executor = Executor(mode="batched", backend=backend)
    executor.device.upload("in", data)
    return executor.run_plan(plan)


class TestEngineIntegration:
    @pytest.mark.parametrize("backend", ["vector"])
    def test_launch_spans_carry_fragment_args(self, fw, backend):
        n = 2048
        data = np.random.default_rng(3).random(n).astype(np.float32)
        plan = fw.build("b", n, Tunables(block=64, grid=8))
        ref = _run(plan, data, backend)

        tracer = get_tracer()
        was_enabled = tracer.enabled
        enable_tracing()
        try:
            with tracer.capture() as spans:
                got = _run(plan, data, backend)
        finally:
            if not was_enabled:
                disable_tracing()

        # Numbers and events are bit-identical with tracing on.
        assert got.result == ref.result
        for r, g in zip(ref.steps, got.steps):
            assert dict(g.events) == dict(r.events)

        launches = [s for s in spans if s.name == "exec.launch"]
        assert launches, "expected exec.launch spans"
        attributed = [s for s in launches if "fragments" in s.args]
        assert attributed, "launch spans must carry fragment attribution"
        for span in attributed:
            for label, row in span.args["fragments"].items():
                assert "#" in label
                assert row["calls"] >= 1
                assert row["wall_us"] >= 0.0

    def test_untraced_run_records_no_fragments(self, fw):
        n = 1024
        data = np.random.default_rng(4).random(n).astype(np.float32)
        plan = fw.build("b", n, Tunables(block=64, grid=8))
        tracer = get_tracer()
        assert not tracer.enabled
        before = len(tracer.spans)
        _run(plan, data, "vector")
        assert len(tracer.spans) == before
