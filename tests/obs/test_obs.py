"""Unit tests for the tracing + metrics subsystem (:mod:`repro.obs`)."""

import json
import threading

import pytest

from repro.obs import (
    MetricsRegistry,
    Span,
    Tracer,
    chrome_trace_events,
    default_metrics,
    disable_tracing,
    enable_tracing,
    get_tracer,
    text_summary,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.export import WORKER_TID_BASE
from repro.obs.tracer import _NULL_SPAN


class TestDisabledFastPath:
    def test_disabled_span_is_shared_noop(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("anything", n=1)
        assert span is _NULL_SPAN
        assert tracer.span("other") is span  # one singleton, no allocation
        with span as s:
            s.set(ignored=True)
        assert tracer.spans == []

    def test_disabled_instant_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.instant("tick", i=1)
        assert tracer.spans == []


class TestEnabledSpans:
    def test_span_records_timing_and_args(self):
        tracer = Tracer(enabled=True)
        with tracer.span("work", n=42) as span:
            span.set(extra="yes")
        (recorded,) = tracer.spans
        assert recorded.name == "work"
        assert recorded.args == {"n": 42, "extra": "yes"}
        assert recorded.dur >= 0
        assert recorded.ts > 0

    def test_nesting_depth(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1

    def test_exception_records_error_attr_and_propagates(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        (span,) = tracer.spans
        assert span.args["error"] == "ValueError"

    def test_thread_ids_are_stable_small_ints(self):
        tracer = Tracer(enabled=True)

        def work():
            with tracer.span("t"):
                pass

        threads = [threading.Thread(target=work) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        with tracer.span("main"):
            pass
        tids = {s.tid for s in tracer.spans}
        assert tids <= set(range(4))

    def test_max_spans_bound_counts_dropped(self):
        tracer = Tracer(enabled=True, max_spans=2)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer.spans) == 2
        assert tracer.dropped == 3
        tracer.clear()
        assert tracer.spans == [] and tracer.dropped == 0


class TestCaptureAndMerge:
    def test_capture_collects_only_inner_spans(self):
        tracer = Tracer(enabled=True)
        with tracer.span("before"):
            pass
        with tracer.capture() as captured:
            with tracer.span("inside"):
                pass
        with tracer.span("after"):
            pass
        assert [s.name for s in captured] == ["inside"]
        assert len(tracer.spans) == 3  # capture does not steal spans

    def test_merge_remaps_tid_and_round_trips(self):
        worker = Tracer(enabled=True)
        with worker.capture() as captured:
            with worker.span("worker.op", i=7):
                pass
        shipped = [s.as_dict() for s in captured]
        parent = Tracer(enabled=True)
        parent.merge(shipped, tid=WORKER_TID_BASE + 3)
        (merged,) = parent.spans
        assert merged.name == "worker.op"
        assert merged.tid == WORKER_TID_BASE + 3
        assert merged.args == {"i": 7}

    def test_merge_respects_max_spans(self):
        parent = Tracer(enabled=True, max_spans=1)
        spans = [Span(f"s{i}", ts=float(i)).as_dict() for i in range(3)]
        parent.merge(spans)
        assert len(parent.spans) == 1
        assert parent.dropped == 2


class TestExporters:
    def _spans(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a.one", n=1):
            with tracer.span("b.two"):
                pass
        tracer.merge(
            [Span("c.worker", ts=1.0, dur=0.5).as_dict()],
            tid=WORKER_TID_BASE,
        )
        return tracer.spans

    def test_chrome_events_structure(self):
        events = chrome_trace_events(self._spans())
        xs = [e for e in events if e["ph"] == "X"]
        metas = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in xs} == {"a.one", "b.two", "c.worker"}
        for event in xs:
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert event["cat"] == event["name"].split(".")[0]
        thread_names = {
            e["tid"]: e["args"]["name"]
            for e in metas
            if e["name"] == "thread_name"
        }
        assert thread_names[WORKER_TID_BASE] == "worker-0"
        assert 0 in thread_names  # main thread named

    def test_chrome_events_empty(self):
        assert chrome_trace_events([]) == []

    def test_write_chrome_trace_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(self._spans(), path)
        data = json.loads(path.read_text())
        assert data["displayTimeUnit"] == "ms"
        assert len(data["traceEvents"]) > 0

    def test_write_jsonl_one_object_per_span(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        spans = self._spans()
        write_jsonl(spans, path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == len(spans)
        parsed = [json.loads(line) for line in lines]
        assert {p["name"] for p in parsed} == {s.name for s in spans}

    def test_text_summary_aggregates_per_name(self):
        tracer = Tracer(enabled=True)
        for _ in range(3):
            with tracer.span("x.op"):
                pass
        lines = text_summary(tracer.spans)
        assert any("x.op" in line and "3" in line for line in lines)
        assert text_summary([]) == ["(no spans recorded)"]

    def test_numpy_args_serializable(self, tmp_path):
        import numpy as np

        tracer = Tracer(enabled=True)
        with tracer.span("np", value=np.int64(7), arr=np.float32(1.5)):
            pass
        path = tmp_path / "np.json"
        write_chrome_trace(tracer.spans, path)
        event = [
            e for e in json.loads(path.read_text())["traceEvents"]
            if e["ph"] == "X"
        ][0]
        assert event["args"]["value"] == 7


class TestSingleton:
    def test_enable_disable_mutate_in_place(self):
        tracer = get_tracer()
        was_enabled, old_path = tracer.enabled, tracer.path
        try:
            enabled = enable_tracing()
            assert enabled is tracer and tracer.enabled
            disabled = disable_tracing()
            assert disabled is tracer and not tracer.enabled
        finally:
            tracer.enabled, tracer.path = was_enabled, old_path

    def test_default_metrics_is_singleton(self):
        assert default_metrics() is default_metrics()


class TestMetricsRegistry:
    def test_counters(self):
        m = MetricsRegistry()
        m.inc("a")
        m.inc("a", 4)
        m.inc_many({"x": 2, "y": 3}, prefix="sim.")
        assert m.counter("a") == 5
        assert m.counter("sim.x") == 2
        assert m.counter("missing") == 0

    def test_gauges_and_histograms(self):
        m = MetricsRegistry()
        m.gauge("g", 1.5)
        for value in (1, 2, 4, 100):
            m.observe("h", value)
        snap = m.snapshot(include_caches=False)
        assert snap["gauges"]["g"] == 1.5
        hist = snap["histograms"]["h"]
        assert hist["count"] == 4
        assert hist["min"] == 1 and hist["max"] == 100
        assert hist["mean"] == pytest.approx(107 / 4)
        assert sum(hist["buckets"].values()) == 4

    def test_snapshot_json_serializable_with_caches(self):
        m = MetricsRegistry()
        m.inc("c")
        snap = m.snapshot(include_caches=True)
        encoded = json.loads(json.dumps(snap))
        assert encoded["counters"]["c"] == 1
        assert "profile" in encoded["caches"]
        assert "plan" in encoded["caches"]
        for section in ("profile", "plan"):
            assert "hits" in encoded["caches"][section]
            assert "entries" in encoded["caches"][section]

    def test_summary_lines_cover_everything(self):
        m = MetricsRegistry()
        m.inc("count.me")
        m.gauge("gauge.me", 2)
        m.observe("hist.me", 10)
        lines = "\n".join(m.summary_lines(include_caches=False))
        for name in ("count.me", "gauge.me", "hist.me"):
            assert name in lines
        m.clear()
        assert m.snapshot(include_caches=False) == {
            "counters": {}, "gauges": {}, "histograms": {},
        }


class TestInstrumentationIntegration:
    def test_pipeline_spans_recorded_when_enabled(self):
        """Driving the real pipeline under an enabled tracer produces
        the documented span families (module memos may suppress
        frontend/plan spans — those are asserted by the subprocess CLI
        test instead)."""
        from repro import ReductionFramework
        from repro.perf import ProfileCache

        tracer = get_tracer()
        was_enabled = tracer.enabled
        tracer.enabled = True
        before = len(tracer.spans)
        try:
            fw = ReductionFramework(op="add", cache=ProfileCache())
            fw.time(4096, "b", "kepler")
        finally:
            tracer.enabled = was_enabled
        new = tracer.spans[before:]
        names = {s.name for s in new}
        assert "sweep.point" in names
        assert "timing.model" in names
        assert "exec.launch" in names
        launch = next(s for s in new if s.name == "exec.launch")
        assert launch.args["backend"] in ("compiled", "interpreted")
        assert launch.args["grid"] >= 1
        assert "events" in launch.args
        assert launch.args["events"].get("threads", 0) > 0

    def test_executor_metrics_counters(self):
        from repro import ReductionFramework
        from repro.perf import ProfileCache

        metrics = default_metrics()
        launches_before = metrics.counter("exec.launch.batched") + (
            metrics.counter("exec.launch.sequential")
        )
        threads_before = metrics.counter("sim.threads")
        fw = ReductionFramework(op="add", cache=ProfileCache())
        fw.profile("b", 2048)
        launches_after = metrics.counter("exec.launch.batched") + (
            metrics.counter("exec.launch.sequential")
        )
        assert launches_after > launches_before
        assert metrics.counter("sim.threads") > threads_before



# -- worker-death coverage --------------------------------------------
#
# The poisoned pool entry point must be a module-level function:
# ProcessPoolExecutor pickles the callable by qualified name, and
# fork-started children resolve it against this (already imported)
# module, inheriting the monkeypatched globals below.

_DEATH_ORIGINAL_ENTRY = None
_DEATH_POISON_N = None


def _dying_profile_entry(spec):
    import os as _os

    if spec[4] == _DEATH_POISON_N:  # spec = (op, ctype, unroll, v, n, ...)
        _os._exit(1)
    return _DEATH_ORIGINAL_ENTRY(spec)


class TestWorkerDeath:
    """A pool worker dying mid-sweep must never corrupt the trace:
    spans shipped by specs that *did* complete still merge (each under
    the owning worker's stable ``worker-<slot>`` tid, exactly once),
    completed results are kept, and only the unfinished specs are
    retried — fresh process pool, then threads — with correct
    results."""

    SIZES = [1024, 2048, 4096, 8192]

    def _specs(self):
        from repro.codegen import Tunables

        return [("b", n, Tunables(block=64, grid=8)) for n in self.SIZES]

    def test_completed_worker_spans_merge_once_with_distinct_tids(self):
        # Tracer-level contract: workers 0 and 2 completed and shipped
        # spans; worker 1 died and shipped nothing. The parent merges
        # the survivors in submission order.
        shipped = {}
        for k in (0, 2):
            worker = Tracer(enabled=True)
            with worker.capture() as captured:
                with worker.span("sweep.point", worker=k):
                    pass
            shipped[k] = [s.as_dict() for s in captured]
        parent = Tracer(enabled=True)
        for k, spans in sorted(shipped.items()):
            parent.merge(spans, tid=WORKER_TID_BASE + k)
        merged = parent.spans
        assert [s.tid for s in merged] == [
            WORKER_TID_BASE, WORKER_TID_BASE + 2,
        ]
        assert len(merged) == 2  # once per surviving worker, no dupes
        assert WORKER_TID_BASE + 1 not in {s.tid for s in merged}

    def test_pool_worker_death_retries_unfinished_and_keeps_trace_clean(
        self, monkeypatch
    ):
        """Kill the process-pool worker that picks up the poisoned spec
        (``os._exit`` skips all cleanup, as a real crash would):
        map_profiles must keep every completed result, retry only the
        unfinished specs (fresh pool, then threads — where the
        unpatched ``_profile_spec`` entry point succeeds), return
        correct aligned results, and the trace must hold each sweep
        point exactly once — completed points under stable worker tids,
        retried points under real parent tids."""
        import sys

        from repro.perf import ProfileCache, default_cache, shutdown_scheduler
        from repro.perf import parallel as parallel_mod
        from repro.runtime import ReductionFramework

        serial_fw = ReductionFramework(op="add", cache=ProfileCache())
        expected = serial_fw.profile_many(self._specs(), max_workers=1)

        this_module = sys.modules[__name__]
        monkeypatch.setattr(
            this_module, "_DEATH_ORIGINAL_ENTRY",
            parallel_mod._profile_spec_traced,
        )
        monkeypatch.setattr(this_module, "_DEATH_POISON_N", 2048)
        monkeypatch.setattr(
            parallel_mod, "_profile_spec_traced", _dying_profile_entry
        )
        # The persistent pool (if an earlier test spawned it) forked
        # before the monkeypatch; drop it so the sweep's workers fork
        # now and inherit the poisoned entry point.
        shutdown_scheduler()
        # Guarantee the traced run actually profiles (the serial pass
        # above warmed the in-process default cache the pool's worker
        # frameworks share).
        default_cache().clear()

        tracer = get_tracer()
        was_enabled = tracer.enabled
        tracer.enabled = True
        before = len(tracer.spans)
        try:
            fw = ReductionFramework(op="add", cache=ProfileCache())
            results = fw.profile_many(self._specs(), max_workers=2)
        finally:
            tracer.enabled = was_enabled
            shutdown_scheduler()  # don't leak poisoned forks to later tests
        new = tracer.spans[before:]

        assert len(results) == len(expected)
        for (profile, memsets), (ref_profile, ref_memsets) in zip(
            results, expected
        ):
            assert memsets == ref_memsets
            assert profile.result == ref_profile.result
            for got_step, ref_step in zip(profile.steps, ref_profile.steps):
                assert dict(got_step.events) == dict(ref_step.events)

        # Exactly one sweep.point per spec overall: specs completed by
        # pool workers shipped theirs (merged under stable worker
        # slots), retried specs recorded theirs in the parent.
        points = [s for s in new if s.name == "sweep.point"]
        assert sorted(s.args["n"] for s in points) == self.SIZES
        worker_tids = {s.tid for s in points if s.tid >= WORKER_TID_BASE}
        assert worker_tids <= {WORKER_TID_BASE, WORKER_TID_BASE + 1}
        # The poisoned spec kills any process worker that touches it, so
        # its point can only have landed via the thread/serial retries.
        poison = [s for s in points if s.args["n"] == 2048]
        assert len(poison) == 1 and poison[0].tid < WORKER_TID_BASE

    def test_healthy_pool_merges_each_point_once(self):
        """Control run: with no deaths the process pool merges shipped
        worker spans under synthetic tids, one sweep.point per spec,
        every tid inside [WORKER_TID_BASE, WORKER_TID_BASE + w)."""
        from repro.perf import ProfileCache, default_cache
        from repro.runtime import ReductionFramework

        default_cache().clear()
        tracer = get_tracer()
        was_enabled = tracer.enabled
        tracer.enabled = True
        before = len(tracer.spans)
        try:
            fw = ReductionFramework(op="add", cache=ProfileCache())
            fw.profile_many(self._specs(), max_workers=2)
        finally:
            tracer.enabled = was_enabled
        new = tracer.spans[before:]
        points = [s for s in new if s.name == "sweep.point"]
        assert sorted(s.args["n"] for s in points) == self.SIZES
        worker_tids = {s.tid for s in points if s.tid >= WORKER_TID_BASE}
        if worker_tids:  # the pool ran as processes, not a fallback
            assert worker_tids <= {WORKER_TID_BASE, WORKER_TID_BASE + 1}


class TestHistogramUnits:
    """Satellite: log2 buckets collapse sub-unit values into bucket 0,
    so timing call sites record microseconds (``_us`` suffix) and
    ``summary_lines`` labels the unit."""

    def test_hist_unit_suffix_convention(self):
        from repro.obs.metrics import _hist_unit

        assert _hist_unit("native.compile_us") == "us"
        assert _hist_unit("span.noop_ms") == "ms"
        assert _hist_unit("payload_bytes") == "bytes"
        assert _hist_unit("pool.fanout") == ""

    def test_summary_lines_label_units(self):
        m = MetricsRegistry()
        m.observe("native.compile_us", 1234.5)
        m.observe("pool.fanout", 6)
        lines = m.summary_lines(include_caches=False)
        us_line = next(l for l in lines if "native.compile_us" in l)
        assert us_line.endswith("(us)")
        fanout_line = next(l for l in lines if "pool.fanout" in l)
        assert not fanout_line.endswith(")")

    def test_microsecond_scale_keeps_bucket_resolution(self):
        # In seconds, 3us and 800us collapse into log2 bucket 0; in
        # microseconds they land in distinguishable buckets.
        m = MetricsRegistry()
        m.observe("t_us", 3.0)
        m.observe("t_us", 800.0)
        hist = m.snapshot(include_caches=False)["histograms"]["t_us"]
        assert len(hist["buckets"]) == 2  # distinct buckets survived

    def test_native_compile_sites_record_microseconds(self):
        # The only time-valued observe() in the native path uses the
        # _us suffix (sub-unit resolution, labelled summary).
        import inspect

        from repro.gpusim.native import lower

        source = inspect.getsource(lower)
        assert '"native.compile_us"' in source
        assert '"native.compile_s"' not in source
