"""End-to-end tests for ``python -m repro trace`` / ``stats``.

The trace verb is exercised in a subprocess: in-process tests may have
already warmed the module-level frontend memo and plan cache, which
would (correctly) suppress the ``frontend.load`` / ``plan.build`` spans
a fresh process records.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _run(argv, cwd, extra_env=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_TRACE", None)  # isolate from an env-traced test run
    env.pop("REPRO_CACHE_DIR", None)  # fresh process must really miss
    if extra_env:
        env.update(extra_env)
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


@pytest.fixture(scope="module")
def traced_reduce(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("trace")
    out = tmp / "trace.json"
    proc = _run(
        ["trace", "--out", str(out), "reduce", "-n", "200000"], cwd=tmp
    )
    assert proc.returncode == 0, proc.stderr
    return proc, json.loads(out.read_text())


class TestTraceVerb:
    def test_trace_wraps_command_and_writes_chrome_json(self, traced_reduce):
        proc, data = traced_reduce
        assert "result" in proc.stdout  # the wrapped command really ran
        assert "[trace]" in proc.stdout
        assert isinstance(data["traceEvents"], list)

    def test_trace_covers_the_whole_pipeline(self, traced_reduce):
        _, data = traced_reduce
        spans = [e for e in data["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in spans}
        assert "frontend.load" in names
        assert {n for n in names if n.startswith("pass.")} >= {
            "pass.planner",
            "pass.shuffle",
            "pass.shared_atomics",
            "pass.global_atomics",
        }
        assert "plan.build" in names
        assert "plan.compile" in names
        assert "exec.launch" in names

    def test_launch_spans_carry_backend_and_events(self, traced_reduce):
        _, data = traced_reduce
        launches = [
            e for e in data["traceEvents"] if e["name"] == "exec.launch"
        ]
        assert launches
        for launch in launches:
            args = launch["args"]
            assert args["backend"] in ("compiled", "interpreted")
            assert args["mode"] in ("batched", "sequential")
            assert args["grid"] >= 1 and args["block"] >= 1
            assert args["events"]["threads"] > 0

    def test_trace_time_includes_sweep_and_model_spans(self, tmp_path):
        out = tmp_path / "t.json"
        proc = _run(
            ["trace", "--out", str(out), "time", "-n", "65536"], cwd=tmp_path
        )
        assert proc.returncode == 0, proc.stderr
        names = {
            e["name"]
            for e in json.loads(out.read_text())["traceEvents"]
            if e["ph"] == "X"
        }
        assert "sweep.point" in names
        assert "timing.model" in names

    def test_trace_without_command_errors(self, tmp_path):
        proc = _run(["trace"], cwd=tmp_path)
        assert proc.returncode == 2
        assert "usage" in proc.stderr

    def test_trace_rejects_nesting(self, tmp_path):
        proc = _run(["trace", "trace", "reduce", "-n", "1000"], cwd=tmp_path)
        assert proc.returncode == 2
        assert "nest" in proc.stderr

    def test_trace_propagates_inner_exit_code(self, tmp_path):
        out = tmp_path / "x.json"
        # unknown version -> the wrapped command raises; the trace file
        # must still be written before the error surfaces
        proc = _run(
            ["trace", "--out", str(out), "cuda", "zz"], cwd=tmp_path
        )
        assert proc.returncode != 0
        assert out.exists()


class TestEnvActivation:
    def test_repro_trace_env_writes_at_exit(self, tmp_path):
        out = tmp_path / "env.json"
        proc = _run(
            ["reduce", "-n", "100000"],
            cwd=tmp_path,
            extra_env={"REPRO_TRACE": str(out)},
        )
        assert proc.returncode == 0, proc.stderr
        data = json.loads(out.read_text())
        names = {e["name"] for e in data["traceEvents"] if e["ph"] == "X"}
        assert "exec.launch" in names and "frontend.load" in names


class TestSizeOption:
    def test_positional_and_option_equivalent(self, tmp_path):
        a = _run(["time", "4096"], cwd=tmp_path)
        b = _run(["time", "-n", "4096"], cwd=tmp_path)
        assert a.returncode == 0 and b.returncode == 0
        assert a.stdout == b.stdout

    def test_missing_size_is_an_error(self, tmp_path):
        proc = _run(["reduce"], cwd=tmp_path)
        assert proc.returncode == 2
        assert "size" in proc.stderr


class TestStatsVerb:
    def test_stats_in_process(self, capsys):
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "profile cache:" in out
        assert "plan cache:" in out

    def test_stats_json(self, capsys):
        assert main(["stats", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert set(data) >= {"counters", "gauges", "histograms", "caches"}

    def test_stats_subprocess(self, tmp_path):
        proc = _run(["stats", "--json"], cwd=tmp_path)
        assert proc.returncode == 0, proc.stderr
        data = json.loads(proc.stdout)
        assert "caches" in data


class TestStatsJsonPath:
    """``stats --json`` accepts an optional path, like ``sanitize
    --json`` (both route through the shared ``_write_json`` helper)."""

    def test_stats_json_to_file(self, tmp_path):
        out = tmp_path / "stats.json"
        proc = _run(["stats", "--json", str(out)], cwd=tmp_path)
        assert proc.returncode == 0, proc.stderr
        assert f"JSON -> {out}" in proc.stdout
        data = json.loads(out.read_text())
        assert set(data) >= {"counters", "gauges", "histograms", "caches"}

    def test_stats_json_dash_is_stdout(self, tmp_path):
        proc = _run(["stats", "--json", "-"], cwd=tmp_path)
        assert proc.returncode == 0, proc.stderr
        data = json.loads(proc.stdout)
        assert "caches" in data

    def test_sanitize_json_still_writes_files(self, tmp_path):
        out = tmp_path / "san.json"
        proc = _run(
            ["sanitize", "--versions", "b", "-n", "4096",
             "--json", str(out)],
            cwd=tmp_path,
        )
        assert proc.returncode == 0, proc.stderr
        data = json.loads(out.read_text())
        assert data, "sanitize JSON payload expected"
