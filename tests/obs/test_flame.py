"""Tests for the collapsed-stack flamegraph exporter.

The collapsed format (``frame;frame;frame <self-us>``) is what
``flamegraph.pl``, inferno and speedscope consume. Nesting is
reconstructed from each span's recorded depth, stacks are rooted at the
thread lane name, parent self-time excludes child time, and the output
is sorted — so a fixed span list yields byte-identical lines (golden
tests below).
"""

import subprocess
import sys
from pathlib import Path

from repro.obs import Tracer, collapsed_stacks, write_collapsed
from repro.obs.export import WORKER_TID_BASE
from repro.obs.tracer import Span

REPO_ROOT = Path(__file__).resolve().parents[2]

US = 1e-6


def _span(name, ts_us, dur_us, tid=0, depth=0):
    return Span(name, ts=ts_us * US, dur=dur_us * US, tid=tid, depth=depth)


class TestCollapsedStacks:
    def test_golden_nested_stack(self):
        spans = [
            _span("sweep", 0, 100, depth=0),
            _span("exec.launch", 10, 30, depth=1),
            _span("native.call", 12, 5, depth=2),
            _span("exec.launch", 50, 20, depth=1),
        ]
        assert collapsed_stacks(spans) == [
            "main;sweep 50",
            "main;sweep;exec.launch 45",
            "main;sweep;exec.launch;native.call 5",
        ]

    def test_parent_self_time_excludes_children(self):
        spans = [
            _span("outer", 0, 10, depth=0),
            _span("inner", 1, 10, depth=1),
        ]
        # The parent's entire duration is accounted to the child, so
        # only the leaf line survives (no negative or zero lines).
        assert collapsed_stacks(spans) == ["main;outer;inner 10"]

    def test_worker_tids_root_their_own_lanes(self):
        spans = [
            _span("sweep.point", 0, 7, tid=WORKER_TID_BASE, depth=0),
            _span("sweep.point", 0, 9, tid=WORKER_TID_BASE + 3, depth=0),
            _span("build", 0, 4, tid=0, depth=0),
        ]
        assert collapsed_stacks(spans) == [
            "main;build 4",
            "worker-0;sweep.point 7",
            "worker-3;sweep.point 9",
        ]

    def test_sibling_after_deep_child_pops_the_stack(self):
        # A depth-1 span arriving after a depth-2 span must not inherit
        # the depth-2 frame as a parent.
        spans = [
            _span("a", 0, 100, depth=0),
            _span("b", 1, 10, depth=1),
            _span("c", 2, 5, depth=2),
            _span("d", 20, 10, depth=1),
        ]
        lines = collapsed_stacks(spans)
        assert "main;a;d 10" in lines
        assert not any(";c;d" in line for line in lines)

    def test_empty_and_subunit_spans(self):
        assert collapsed_stacks([]) == []
        # A span under half a microsecond rounds to zero and is elided.
        assert collapsed_stacks([_span("tiny", 0, 0.2)]) == []

    def test_deterministic_for_fixed_spans(self):
        spans = [
            _span("sweep", 0, 100, depth=0),
            _span("exec.launch", 10, 30, depth=1),
        ]
        assert collapsed_stacks(spans) == collapsed_stacks(list(spans))

    def test_write_collapsed_roundtrip(self, tmp_path):
        spans = [_span("sweep", 0, 100, depth=0)]
        path = tmp_path / "flame.txt"
        count = write_collapsed(spans, path)
        lines = path.read_text().splitlines()
        assert count == len(lines) == 1
        assert lines == ["main;sweep 100"]


class TestTracerExport:
    def test_export_collapsed_from_live_tracer(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                sum(range(20000))
        path = tmp_path / "flame.txt"
        count = tracer.export_collapsed(path)
        text = path.read_text()
        assert count == len(text.splitlines())
        assert "main;outer;inner " in text


class TestCliFlame:
    def test_trace_flame_writes_collapsed_file(self, tmp_path):
        out = tmp_path / "trace.json"
        flame = tmp_path / "flame.txt"
        result = subprocess.run(
            [sys.executable, "-m", "repro", "trace",
             "--out", str(out), "--flame", str(flame),
             "time", "4096", "--versions", "b"],
            capture_output=True, text=True, cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"),
                 "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stderr
        assert out.exists()
        lines = flame.read_text().splitlines()
        assert lines, "flamegraph output must not be empty"
        assert all(line.rsplit(" ", 1)[1].isdigit() for line in lines)
        assert lines == sorted(lines)
        assert any(line.startswith("main;") for line in lines)
