"""Tests for the counter-derived explain analytics (:mod:`repro.obs.explain`).

Covers the per-launch figure-of-merit metrics, the exactly-additive
timing-component decomposition, the A/B delta attribution (including
the ISSUE acceptance pair: shared-memory tree (a) vs shuffle tree (b)),
and the deterministic text renderers (golden lines on synthetic
explanations).
"""

from collections import Counter

import pytest

from repro.gpusim import get_architecture
from repro.gpusim.events import PlanProfile, StepProfile
from repro.gpusim.timing import kernel_time, plan_components, plan_time
from repro.obs.explain import (
    COMPONENT_COUNTERS,
    diff_explanations,
    explain_diff,
    explain_variant,
    format_diff,
    format_explain,
    launch_metrics,
)
from repro.runtime import ReductionFramework

#: Shared-memory tree vs shuffle tree — the Figure 6 acceptance pair.
SHMEM_TREE, SHFL_TREE = "a", "b"
ACCEPT_N = 65536


@pytest.fixture(scope="module")
def fw():
    return ReductionFramework(op="add")


def _step(events, grid=4, block=64, **kwargs):
    return StepProfile(
        kernel_name="k", grid=grid, block=block, shared_bytes=0,
        registers=8, events=Counter(events), **kwargs,
    )


class TestLaunchMetrics:
    def test_coalescing_and_mix_ratios(self):
        metrics = launch_metrics(_step({
            "inst.alu": 60, "inst.shfl": 20, "inst.ld.global": 10,
            "inst.st.global": 5, "inst.ld.shared": 3, "inst.st.shared": 2,
            "mem.global.ld.trans": 20, "mem.global.st.trans": 5,
            "branch.divergent": 10, "inst.bar": 4, "warps": 8,
            "threads": 256, "blocks": 4,
            "atom.shared.ops": 64, "atom.global.ops": 64,
            "atom.shared.block_max_same_addr": 8,
            "atom.global.max_same_addr": 4,
        }))
        assert metrics["coalescing.ld_trans_per_req"] == 2.0
        assert metrics["coalescing.st_trans_per_req"] == 1.0
        assert metrics["divergence.per_warp_inst"] == 0.1
        assert metrics["mix.shfl_frac"] == 0.2
        assert metrics["mix.shared_frac"] == 0.05
        assert metrics["mix.atomics_per_thread"] == 0.5
        assert metrics["atomics.global_max_same_addr"] == 4
        assert metrics["atomics.shared_serial_per_block"] == 2.0
        # mix.barriers_per_warp_slot = bar * warps_per_block / warps
        assert metrics["mix.barriers_per_warp_slot"] == 4 * 2 / 8

    def test_zero_denominators_are_none_not_crash(self):
        metrics = launch_metrics(_step({}))
        assert metrics["coalescing.ld_trans_per_req"] is None
        assert metrics["divergence.per_warp_inst"] is None
        assert metrics["mix.barriers_per_warp_slot"] is None

    def test_uses_scaled_events_when_sampled(self):
        step = _step(
            {"inst.ld.global": 10, "mem.global.ld.trans": 10},
            grid=100, sampled_blocks=10,
        )
        metrics = launch_metrics(step)
        # Both numerator and denominator scale: the ratio is invariant.
        assert metrics["coalescing.ld_trans_per_req"] == 1.0
        assert metrics["events"]["inst.ld.global"] == 100.0


class TestAdditiveComponents:
    @pytest.mark.parametrize("label", ["a", "b", "e", "p"])
    @pytest.mark.parametrize("arch_name", ["kepler", "pascal"])
    def test_plan_components_sum_to_plan_time(self, fw, label, arch_name):
        profile, num_memsets = fw.profile(label, ACCEPT_N)
        arch = get_architecture(arch_name)
        components = plan_components(profile, arch, num_memsets=num_memsets)
        total = plan_time(profile, arch, num_memsets=num_memsets)
        assert sum(components.values()) == pytest.approx(total, rel=1e-12)

    def test_components_cover_every_kernel_term(self, fw):
        profile, num_memsets = fw.profile("b", ACCEPT_N)
        arch = get_architecture("pascal")
        components = plan_components(profile, arch, num_memsets=num_memsets)
        for name in (
            "compute.alu", "compute.shfl", "compute.shared",
            "compute.barrier", "memory.dram", "atomic.global_serial",
            "launch.overhead",
        ):
            assert name in components

    def test_every_component_has_a_counter_citation_entry(self):
        from repro.gpusim.timing import kernel_components

        step = _step({"inst.alu": 100, "warps": 2, "blocks": 1,
                      "threads": 64, "mem.global.bytes": 4096})
        components = kernel_components(step, get_architecture("pascal"))
        for name in components:
            assert name in COMPONENT_COUNTERS, (
                f"component {name} missing from COMPONENT_COUNTERS"
            )

    def test_breakdown_detail_carries_issue_by_class(self):
        step = _step({"inst.alu": 10, "inst.shfl": 4, "warps": 2,
                      "blocks": 1, "threads": 64})
        breakdown = kernel_time(step, get_architecture("pascal"))
        by_class = breakdown.detail["issue_by_class"]
        assert by_class["alu"] > 0
        assert by_class["shfl"] > 0
        assert sum(by_class.values()) == pytest.approx(
            breakdown.detail["issue_cycles"]
        )


class TestExplainVariant:
    def test_attributed_total_matches_model(self, fw):
        explanation = explain_variant(fw, "b", ACCEPT_N, coverage=False)
        assert explanation["attributed_total_s"] == pytest.approx(
            explanation["model_total_s"], rel=1e-12
        )

    def test_deterministic_given_fixed_profile(self, fw):
        first = explain_variant(fw, "b", ACCEPT_N, coverage=False)
        second = explain_variant(fw, "b", ACCEPT_N, coverage=False)
        assert first == second

    def test_lowering_coverage_is_a_fraction(self, fw):
        explanation = explain_variant(fw, "b", ACCEPT_N)
        lowering = explanation["lowering"]
        coverage = lowering["fuse.instruction_coverage"]
        assert coverage is not None and 0.0 < coverage <= 1.0
        assert lowering["kernels"], "per-kernel coverage rows expected"
        if lowering["native.available"]:
            assert lowering["native.lowered_fragments"] > 0

    def test_format_explain_lines(self, fw):
        lines = format_explain(explain_variant(fw, "b", ACCEPT_N))
        assert lines[0].startswith("variant (b) on Pascal")
        assert any("timing components" in line for line in lines)
        assert any("lowering:" in line for line in lines)


class TestDiffAttribution:
    def test_acceptance_pair_ranks_shuffle_shared_traffic(self, fw):
        """ISSUE acceptance: shared-memory tree (a) vs shuffle tree (b)
        must attribute the delta to shuffle/shared-traffic counters,
        and the attribution must match the model delta within 5%."""
        diff = explain_diff(fw, SHMEM_TREE, SHFL_TREE, ACCEPT_N)
        assert diff["attribution_error"] < 0.05
        top = diff["ranking"][0]
        assert top["component"] in (
            "compute.barrier", "compute.shared", "compute.shfl"
        ), f"top attribution was {top['component']}"
        assert not top["overlap_shift"]
        cited = set(top["counters"])
        assert cited & {
            "inst.bar", "inst.ld.shared", "inst.st.shared",
            "mem.shared.replays", "inst.shfl",
        }
        # The shuffle tree trades shared traffic for shuffles: shared
        # and barrier counters drop, shuffles appear.
        by_name = {row["component"]: row for row in diff["ranking"]}
        assert by_name["compute.shared"]["delta_s"] < 0
        assert by_name["compute.barrier"]["delta_s"] < 0
        assert by_name["compute.shfl"]["counters"]["inst.shfl"]["delta"] > 0

    def test_component_deltas_sum_to_model_delta(self, fw):
        diff = explain_diff(fw, SHMEM_TREE, SHFL_TREE, ACCEPT_N)
        attributed = sum(row["delta_s"] for row in diff["ranking"])
        assert attributed == pytest.approx(diff["model_delta_s"], rel=1e-9)

    def test_overlap_shift_rows_rank_below_counter_backed_rows(self, fw):
        diff = explain_diff(fw, SHMEM_TREE, SHFL_TREE, ACCEPT_N)
        shifts = [row["overlap_shift"] for row in diff["ranking"]]
        # Once an overlap-shift row appears, no counter-backed row may
        # follow it (among nonzero-delta rows, which sort first).
        nonzero = [
            row["overlap_shift"]
            for row in diff["ranking"] if row["delta_s"]
        ]
        assert nonzero == sorted(nonzero)
        assert len(shifts) == len(diff["ranking"])

    def test_faster_variant_named(self, fw):
        diff = explain_diff(fw, SHMEM_TREE, SHFL_TREE, ACCEPT_N)
        a_s = diff["a"]["model_total_s"]
        b_s = diff["b"]["model_total_s"]
        expected = SHMEM_TREE if a_s <= b_s else SHFL_TREE
        assert diff["faster"] == expected


def _synthetic_explanation(variant, components, counters, total):
    return {
        "schema": 1,
        "variant": variant,
        "arch": "Pascal P100",
        "model_total_s": total,
        "attributed_total_s": total,
        "components": components,
        "metrics": {"counters": counters, "launches": 1},
        "launches": [],
    }


class TestGoldenRenderers:
    """The renderers are pure functions of the explanation dicts, so a
    fixed input must yield byte-identical lines (determinism gate)."""

    def _diff(self):
        a = _synthetic_explanation(
            "x",
            {"compute.shared": 3e-6, "compute.shfl": 0.0,
             "memory.dram": 1e-6},
            {"inst.ld.shared": 100.0, "inst.shfl": 0.0,
             "mem.global.bytes": 4096.0},
            4e-6,
        )
        b = _synthetic_explanation(
            "y",
            {"compute.shared": 1e-6, "compute.shfl": 0.5e-6,
             "memory.dram": 1e-6},
            {"inst.ld.shared": 20.0, "inst.shfl": 64.0,
             "mem.global.bytes": 4096.0},
            2.5e-6,
        )
        return diff_explanations(a, b)

    def test_diff_golden_payload(self):
        diff = self._diff()
        assert diff["model_delta_s"] == pytest.approx(-1.5e-6)
        assert diff["faster"] == "y"
        assert [row["component"] for row in diff["ranking"]] == [
            "compute.shared", "compute.shfl", "memory.dram",
        ]
        shared = diff["ranking"][0]
        assert shared["counters"]["inst.ld.shared"] == {
            "a": 100.0, "b": 20.0, "delta": -80.0,
        }

    def test_diff_golden_lines(self):
        lines = format_diff(self._diff())
        assert lines == [
            "(x) 4.00us  vs  (y) 2.50us on Pascal P100  ->  (y) faster "
            "by 1.50us",
            "attributed 1.50us (error 0.00% of the model delta)",
            "top attributions (positive = costs (b) more):",
            "  compute.shared                -2.00us   "
            "[inst.ld.shared 100->20]",
            "  compute.shfl                  +0.50us   [inst.shfl 0->64]",
        ]
