"""Torn-update regressions in the observability layer.

Two bugs from the serving-path concurrency sweep are locked here:

* ``MetricsRegistry`` updates that span several names (a counter plus a
  histogram sample, say) used to take the lock once per name, so a
  concurrent reader could snapshot a counter that had advanced without
  its paired histogram — ``record()`` now applies the whole group under
  one lock acquisition.
* ``Tracer`` keyed thread ids by ``threading.get_ident()``, which the
  OS recycles: a short-lived thread's tid was handed to the next thread
  and their spans interleaved on one trace row.  Thread ids are now
  monotonic and thread-local.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.obs import MetricsRegistry
from repro.obs.tracer import Tracer

THREADS = 8
ROUNDS = 400


class TestMetricsNoLostUpdates:
    def test_inc_from_many_threads_loses_nothing(self):
        registry = MetricsRegistry()
        barrier = threading.Barrier(THREADS)

        def worker():
            barrier.wait()
            for _ in range(ROUNDS):
                registry.inc("hammered")
                registry.inc("weighted", 3)

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            for _ in range(THREADS):
                pool.submit(worker)
        snapshot = registry.snapshot(include_caches=False)
        assert snapshot["counters"]["hammered"] == THREADS * ROUNDS
        assert snapshot["counters"]["weighted"] == 3 * THREADS * ROUNDS

    def test_record_groups_are_never_torn(self):
        # Each record() couples a counter with a histogram sample; any
        # snapshot must observe count(batches) == count(samples) — a
        # torn read or torn write breaks the equality.
        registry = MetricsRegistry()
        stop = threading.Event()
        torn = []

        def reader():
            while not stop.is_set():
                snap = registry.snapshot(include_caches=False)
                batches = snap["counters"].get("batches", 0)
                hist = snap["histograms"].get("sizes")
                samples = hist["count"] if hist else 0
                if batches != samples:
                    torn.append((batches, samples))

        def writer():
            for _ in range(ROUNDS):
                registry.record(
                    counters={"batches": 1},
                    observations={"sizes": 7},
                )

        readers = [threading.Thread(target=reader) for _ in range(2)]
        writers = [threading.Thread(target=writer) for _ in range(4)]
        for t in readers + writers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        for t in readers:
            t.join()
        assert torn == []
        snap = registry.snapshot(include_caches=False)
        assert snap["counters"]["batches"] == 4 * ROUNDS
        assert snap["histograms"]["sizes"]["count"] == 4 * ROUNDS

    def test_observe_histogram_consistency_under_threads(self):
        registry = MetricsRegistry()

        def worker(base):
            for i in range(ROUNDS):
                registry.observe("lat", base + i)

        threads = [
            threading.Thread(target=worker, args=(b,)) for b in range(THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        hist = registry.snapshot(include_caches=False)["histograms"]["lat"]
        assert hist["count"] == THREADS * ROUNDS
        assert hist["count"] == sum(hist["buckets"].values())
        assert hist["min"] == 0
        assert hist["max"] == THREADS - 1 + ROUNDS - 1


class TestTracerThreadIds:
    def test_sequential_short_lived_threads_get_distinct_tids(self):
        # The ident-recycling regression: threads that do NOT overlap
        # in time are exactly the ones whose get_ident() values the OS
        # reuses.  Every thread must still land on its own trace row.
        tracer = Tracer(enabled=True)
        for i in range(10):
            def work(i=i):
                with tracer.span(f"job-{i}"):
                    pass
            thread = threading.Thread(target=work)
            thread.start()
            thread.join()  # fully dead before the next starts
        tids = [span.tid for span in tracer.spans]
        assert len(tids) == 10
        assert len(set(tids)) == 10, f"recycled tids: {tids}"

    def test_concurrent_threads_one_tid_each_no_interleaving(self):
        tracer = Tracer(enabled=True)
        barrier = threading.Barrier(THREADS)

        def worker(i):
            barrier.wait()
            for j in range(20):
                with tracer.span("step", worker=i, j=j):
                    pass

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            list(pool.map(worker, range(THREADS)))

        by_tid = {}
        for span in tracer.spans:
            by_tid.setdefault(span.tid, []).append(span.args["worker"])
        assert len(by_tid) == THREADS
        for tid, workers in by_tid.items():
            assert len(set(workers)) == 1, (
                f"tid {tid} mixes workers {sorted(set(workers))}"
            )
            assert len(workers) == 20

    def test_main_thread_keeps_one_tid(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        tids = {span.tid for span in tracer.spans}
        assert len(tids) == 1
