"""Golden-style tests for CUDA C emission (the paper's Listings 1-4)."""

import pytest

from repro.codegen.cuda import emit_compound_pair, emit_coop_kernel, emit_version
from repro.core import FIG6


class TestListing3Shape:
    """VA2 renders like Listing 3: shared atomics on the accumulator."""

    @pytest.fixture(scope="class")
    def text(self, fw_add=None):
        from repro import ReductionFramework

        fw = ReductionFramework("add")
        return emit_coop_kernel(fw.pre.coop_variant("VA2"), op="add")

    def test_kernel_signature(self, text):
        assert "__global__" in text
        assert "float *Return, float *input_x, int SourceSize, int ObjectSize" in text

    def test_shared_accumulator_declared_and_initialized(self, text):
        assert "__shared__ float partial;" in text
        assert "if (threadIdx.x == 0)" in text

    def test_dynamic_shared_array_is_extern(self, text):
        # Listing 3 line 9: in.Size()-sized arrays are extern __shared__
        assert "extern __shared__ float tmp[];" in text

    def test_atomic_add_on_shared(self, text):
        # Listing 3 line 27
        assert "atomicAdd(&partial, val);" in text

    def test_tree_loop_retained(self, text):
        assert "for (int offset = 32 / 2; offset > 0; offset /= 2)" in text

    def test_syncthreads_after_shared_writes(self, text):
        assert text.count("__syncthreads();") >= 3

    def test_source_size_guard(self, text):
        # Listing 3 lines 13-14
        assert "(blockIdx.x * blockDim.x + threadIdx.x) < SourceSize" in text

    def test_result_written_by_thread_zero(self, text):
        assert "Return[blockID] = val;" in text


class TestListing4Shape:
    """VS renders like Listing 4: shuffles, tmp disabled, partial kept."""

    @pytest.fixture(scope="class")
    def text(self):
        from repro import ReductionFramework

        fw = ReductionFramework("add")
        return emit_coop_kernel(fw.pre.coop_variant("VS"), op="add")

    def test_shuffles_emitted(self, text):
        assert text.count("__shfl_down(val, offset, 32)") == 2

    def test_tmp_array_disabled(self, text):
        assert "tmp" not in text

    def test_partial_array_retained_static(self, text):
        # Listing 4 line 5: partial[32], statically sized by MaxSize()
        assert "__shared__ float partial[32];" in text

    def test_warp_mapping(self, text):
        # Figure 2's CUDA equivalences
        assert "threadIdx.x % warpSize" in text
        assert "threadIdx.x / warpSize" in text


class TestListings1And2:
    @pytest.fixture(scope="class")
    def pair(self):
        from repro import ReductionFramework

        fw = ReductionFramework("add")
        return emit_compound_pair(fw.pre, "tile")

    def test_non_atomic_allocates_partials_array(self, pair):
        assert "new float[p];" in pair["non_atomic"]
        assert "(p) * sizeof(float)" in pair["non_atomic"]

    def test_atomic_allocates_single_accumulator(self, pair):
        # Listing 2: cudaMalloc of one element
        assert "cudaMalloc(&map_return_block, sizeof(float));" in pair["atomic"]
        assert "new float[1];" in pair["atomic"]

    def test_atomic_uses_block_scope_then_device_scope(self, pair):
        assert "atomicAdd_block(Return, accum);" in pair["atomic"]
        assert "atomicAdd(Return, map_return[0]);" in pair["atomic"]

    def test_non_atomic_has_no_atomics(self, pair):
        assert "atomicAdd" not in pair["non_atomic"]

    def test_spectrum_disabled_flag(self, pair):
        assert pair["spectrum_disabled"]

    def test_template_parameter(self, pair):
        for key in ("atomic", "non_atomic"):
            assert "template <unsigned int TGM_TEMPLATE_0>" in pair[key]


class TestEmitVersion:
    def test_full_program_for_coop_version(self):
        from repro import ReductionFramework

        fw = ReductionFramework("add")
        text = emit_version(fw.pre, FIG6["p"])
        assert "Figure 6 (p)" in text
        assert "__global__" in text
        assert "__shfl_down" in text

    def test_full_program_for_compound_version(self):
        from repro import ReductionFramework

        fw = ReductionFramework("add")
        text = emit_version(fw.pre, FIG6["b"])
        assert "Reduce_Grid" in text
        assert "Reduce_Thread" in text

    def test_max_reduction_uses_atomic_max(self):
        from repro import ReductionFramework

        fw = ReductionFramework("max")
        text = emit_coop_kernel(fw.pre.coop_variant("VA1"), op="max")
        assert "atomicMax(&tmp, val);" in text
        # identity padding instead of zero
        assert "-3.402823e+38f" in text or "-3.402823e38f" in text
