"""Segmented reduction synthesis: layout, keys, and bit-exactness.

The contract under test (docs/SERVING.md, ``repro.codegen.segmented``):
a fused launch over heterogeneous segments returns, for EVERY segment,
the bit-identical value a standalone per-request run of that segment
produces — including 1-element, empty and non-power-of-two segments,
for every library op, both element types, and every engine backend.
"""

import numpy as np
import pytest

from repro.codegen import Tunables, launch_geometry
from repro.codegen.segmented import (
    SegmentLayout,
    build_segmented_plan,
    build_segmented_plan_cached,
    execute_segmented_plan,
    segment_layout,
    segmented_plan_key,
)
from repro.core import FIG6, Version
from repro.core.sources import identity_value
from repro.gpusim.native import native_available
from repro.lang.errors import SynthesisError
from repro.runtime import ReductionFramework
from repro.vir import KernelStep, MemsetStep

#: The heterogeneous mix every bit-exactness test packs: 1-element,
#: empty, non-power-of-two, and a couple of "normal" sizes.
MIX_LENGTHS = (1, 0, 37, 1000, 256, 5, 0, 777)

OPS = ("add", "max", "min")
CTYPES = ("float", "int")
#: Tile-partitioned versions spanning coop/compound x atomic/partials.
VERSIONS = ("a", "b", "e", "m", "n", "p")

BACKENDS = ["interpreted", "compiled", "vector"]
if native_available():
    BACKENDS.append("native")

#: Every Figure 6 version is atomic-final; the per-segment second
#: kernel (partials) path needs a pre-pruning version.
SECOND_KERNEL_VERSION = Version(
    grid_pattern="tile",
    final_combine="second_kernel",
    block_kind="coop",
    combine="V",
)
SECOND_KERNEL_COMPOUND = Version(
    grid_pattern="tile",
    final_combine="second_kernel",
    block_kind="compound",
    block_pattern="stride",
    combine="V",
)


def _make_arrays(lengths, ctype, seed=7):
    rng = np.random.default_rng(seed)
    arrays = []
    for n in lengths:
        if ctype == "int":
            arrays.append(rng.integers(-999, 999, size=n).astype(np.int32))
        else:
            arrays.append(rng.standard_normal(n).astype(np.float32))
    return arrays


def _sequential_values(fw, version, arrays):
    """The oracle: one standalone run per segment."""
    out = []
    for data in arrays:
        if len(data) == 0:
            out.append(
                np.array(identity_value(fw.op, fw.ctype), dtype=fw.dtype)
            )
        else:
            out.append(np.array(fw.run(data, version=version).value,
                                dtype=fw.dtype))
    return out


class TestLayout:
    def test_per_segment_geometry_matches_standalone(self):
        version = FIG6["b"]
        tunables = Tunables(block=64)
        layout = segment_layout(version, MIX_LENGTHS, tunables)
        assert isinstance(layout, SegmentLayout)
        assert layout.num_segments == len(MIX_LENGTHS)
        assert layout.total == sum(MIX_LENGTHS)
        for sid, n in enumerate(MIX_LENGTHS):
            blocks = layout.first_block[sid + 1] - layout.first_block[sid]
            if n == 0:
                assert blocks == 0
                continue
            geometry = launch_geometry(version, n, tunables)
            assert blocks == geometry["grid"]
            assert layout.epb[sid] == geometry["epb"]
            assert layout.coarsen[sid] == geometry["coarsen"]

    def test_blocks_are_contiguous_per_segment(self):
        layout = segment_layout(FIG6["p"], (10, 0, 1000, 1), Tunables(block=64))
        seg_map = layout.block_map()
        assert len(seg_map) == layout.grid
        assert seg_map == sorted(seg_map)

    def test_offsets_pack_back_to_back(self):
        layout = segment_layout(FIG6["p"], MIX_LENGTHS)
        expected = 0
        for sid, n in enumerate(MIX_LENGTHS):
            assert layout.offsets[sid] == expected
            expected += n

    def test_stride_grid_version_rejected(self):
        with pytest.raises(SynthesisError, match="tile grid"):
            segment_layout(FIG6["k"], (100, 200))

    def test_negative_length_rejected(self):
        with pytest.raises(SynthesisError):
            segment_layout(FIG6["p"], (10, -1))

    def test_no_segments_rejected(self):
        with pytest.raises(SynthesisError):
            segment_layout(FIG6["p"], ())

    def test_int32_overflow_rejected(self):
        with pytest.raises(SynthesisError, match="int32"):
            segment_layout(FIG6["p"], (2**31 - 1, 100))


class TestPlanStructure:
    @pytest.fixture(scope="class")
    def fw(self):
        return ReductionFramework(op="add")

    def test_atomic_version_memset_plus_main(self, fw):
        plan = build_segmented_plan(fw.pre, FIG6["p"], MIX_LENGTHS)
        assert plan.meta["segmented"] is True
        assert plan.meta["num_segments"] == len(MIX_LENGTHS)
        kinds = [type(step) for step in plan.steps]
        assert kinds == [MemsetStep, KernelStep]
        assert plan.scratch["out"] == len(MIX_LENGTHS)

    def test_partials_version_two_kernels(self, fw):
        plan = build_segmented_plan(fw.pre, SECOND_KERNEL_VERSION, MIX_LENGTHS)
        kernel_steps = plan.kernel_steps()
        assert len(kernel_steps) == 2
        # The second kernel runs one block per segment.
        assert kernel_steps[-1].grid == len(MIX_LENGTHS)
        assert "partials" in plan.scratch

    def test_all_empty_segments_still_produce_identity(self, fw):
        for version in (FIG6["a"], SECOND_KERNEL_VERSION):
            plan = build_segmented_plan(fw.pre, version, (0, 0, 0))
            results, _ = execute_segmented_plan(plan, [np.array([])] * 3)
            identity = np.float32(identity_value("add", "float"))
            assert list(results) == [identity] * 3

    def test_key_varies_with_lengths_and_backend(self, fw):
        base = segmented_plan_key(fw.pre, FIG6["p"], (1, 2, 3))
        assert base != segmented_plan_key(fw.pre, FIG6["p"], (1, 2, 4))
        assert base != segmented_plan_key(fw.pre, FIG6["a"], (1, 2, 3))
        assert base != segmented_plan_key(
            fw.pre, FIG6["p"], (1, 2, 3), backend="vector"
        )
        assert base == segmented_plan_key(fw.pre, FIG6["p"], [1, 2, 3])

    def test_cached_build_returns_same_object(self, fw):
        a = build_segmented_plan_cached(fw.pre, FIG6["p"], (64, 32))
        b = build_segmented_plan_cached(fw.pre, FIG6["p"], (64, 32))
        assert a is b

    def test_execute_rejects_mismatched_data(self, fw):
        plan = build_segmented_plan(fw.pre, FIG6["p"], (4, 4))
        with pytest.raises(ValueError, match="do not match"):
            execute_segmented_plan(
                plan, [np.zeros(4, np.float32), np.zeros(5, np.float32)]
            )


class TestBitExactness:
    """Fused == sequential, bit for bit, across the whole matrix."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("ctype", CTYPES)
    @pytest.mark.parametrize("op", OPS)
    def test_mix_all_versions(self, op, ctype, backend):
        fw = ReductionFramework(op=op, ctype=ctype, engine=backend)
        arrays = _make_arrays(MIX_LENGTHS, ctype)
        for label in VERSIONS:
            version = fw.resolve(label)
            plan = build_segmented_plan_cached(
                fw.pre, version, MIX_LENGTHS, backend=backend
            )
            results, profile = execute_segmented_plan(
                plan, arrays, backend=backend
            )
            expected = _sequential_values(fw, label, arrays)
            for sid in range(len(arrays)):
                assert results[sid] == expected[sid], (
                    f"segment {sid} (n={MIX_LENGTHS[sid]}) of "
                    f"{op}/{ctype}/{label} on {backend}: fused "
                    f"{results[sid]!r} != sequential {expected[sid]!r}"
                )
            # One fused plan must launch less than one plan per segment.
            nonempty = sum(1 for n in MIX_LENGTHS if n)
            assert plan.num_kernel_launches() < nonempty

    @pytest.mark.parametrize(
        "version", (SECOND_KERNEL_VERSION, SECOND_KERNEL_COMPOUND),
        ids=("coop", "compound"),
    )
    def test_second_kernel_path(self, version):
        fw = ReductionFramework(op="add")
        arrays = _make_arrays(MIX_LENGTHS, "float")
        plan = build_segmented_plan_cached(fw.pre, version, MIX_LENGTHS)
        results, _ = execute_segmented_plan(plan, arrays)
        for sid, data in enumerate(arrays):
            if len(data) == 0:
                expected = np.float32(identity_value("add", "float"))
            else:
                expected = np.float32(fw.run(data, version=version).value)
            assert results[sid] == expected

    def test_single_element_segments(self):
        fw = ReductionFramework(op="add")
        lengths = (1, 1, 1, 1)
        arrays = _make_arrays(lengths, "float")
        plan = build_segmented_plan_cached(fw.pre, fw.resolve("p"), lengths)
        results, _ = execute_segmented_plan(plan, arrays)
        for sid, data in enumerate(arrays):
            assert results[sid] == data[0]

    def test_float_rounding_order_preserved(self):
        # A sum whose value depends on association order: catches any
        # layout drift that reorders the reduction tree.
        fw = ReductionFramework(op="add")
        rng = np.random.default_rng(3)
        data = (rng.standard_normal(10_000) * 10.0 ** rng.integers(
            -6, 6, size=10_000)).astype(np.float32)
        lengths = (len(data),)
        plan = build_segmented_plan_cached(fw.pre, fw.resolve("b"), lengths)
        results, _ = execute_segmented_plan(plan, [data])
        assert results[0] == np.float32(fw.run(data, version="b").value)
