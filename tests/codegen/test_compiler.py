"""Unit tests for the generic codelet→VIR compiler."""

import numpy as np
import pytest

from repro.codegen.compiler import CodeletToVIR, GlobalView, RegisterPartials
from repro.gpusim.device import Device
from repro.gpusim.engine import Executor
from repro.lang import analyze_source
from repro.lang.errors import LoweringError
from repro.vir import Imm, IRBuilder, Kernel, KernelStep


def compile_coop(body, binding_factory, block=64, header=None, identity=0.0):
    """Compile a coop codelet and run it on one block; returns (ret, dev)."""
    header = header or "int f(const Array<1,float> in)"
    text = f"__codelet __coop\n{header} {{\n  Vector vt();\n{body}\n}}"
    codelet = analyze_source(text).codelets[0].codelet
    b = IRBuilder()
    binding = binding_factory(b)
    compiler = CodeletToVIR(b, codelet, binding, identity=identity, prefix="t")
    ret = compiler.compile()
    tid = b.special("tid")
    z = b.binop("eq", tid, 0)
    with b.if_(z):
        b.st_global("out", 0, ret)
    kernel = Kernel(
        "t", params=[], buffers=["in", "out"],
        shared=compiler.shared_decls, body=b.finish(),
    )
    device = Device()
    return kernel, device


def run_one_block(kernel, device, data, block=64):
    device.upload("in", np.asarray(data, dtype=np.float32))
    if "out" not in device:
        device.alloc("out", 1)
    executor = Executor(device=device)
    step = KernelStep(
        kernel, grid=1, block=block,
        buffers={name: name for name in kernel.buffers},
    )
    executor.run_kernel(step)
    return float(device.get("out")[0])


def global_view(n, block):
    def factory(b):
        return GlobalView(
            buf="in", base=Imm(0), stride=Imm(1), size=Imm(n), size_static=block
        )
    return factory


class TestCooperativeLowering:
    def test_va1_style_atomic_accumulate(self, rng):
        body = """
  __shared _atomicAdd float t;
  float val = 0.0f;
  val = (vt.ThreadId() < in.Size()) ? in[vt.ThreadId()] : 0.0f;
  t = val;
  return t;
"""
        from repro.core.atomics_shared import apply_shared_atomics
        header = "float f(const Array<1,float> in)"
        text = f"__codelet __coop\n{header} {{\n  Vector vt();\n{body}\n}}"
        codelet = analyze_source(text).codelets[0].codelet
        codelet = apply_shared_atomics(codelet).codelet
        b = IRBuilder()
        binding = GlobalView(buf="in", base=Imm(0), stride=Imm(1),
                             size=Imm(48), size_static=64)
        compiler = CodeletToVIR(b, codelet, binding, identity=0.0, prefix="t")
        ret = compiler.compile()
        tid = b.special("tid")
        with b.if_(b.binop("eq", tid, 0)):
            b.st_global("out", 0, ret)
        kernel = Kernel("t", buffers=["in", "out"],
                        shared=compiler.shared_decls, body=b.finish())
        data = rng.random(48).astype(np.float32)
        device = Device()
        result = run_one_block(kernel, device, data)
        assert result == pytest.approx(float(data.sum()), rel=1e-5)

    def test_vector_methods_lower_to_specials(self):
        body = "  return vt.ThreadId() + vt.LaneId() * 0 + vt.VectorId() * 0;"
        kernel, device = compile_coop(body, global_view(64, 64))
        device.alloc("out", 1)
        # thread 0 writes its ThreadId (0)
        result = run_one_block(kernel, device, np.zeros(64))
        assert result == 0.0

    def test_maxsize_is_warp_constant(self):
        body = "  return vt.MaxSize() + vt.Size();"
        kernel, device = compile_coop(body, global_view(64, 64))
        result = run_one_block(kernel, device, np.zeros(64))
        assert result == 64.0  # 32 + 32

    def test_guarded_ternary_load_stays_in_bounds(self):
        # in.Size() is 10 but the block has 64 threads: the unguarded
        # load would be out of bounds; the compiler must predicate it.
        body = """
  float val = (vt.ThreadId() < in.Size()) ? in[vt.ThreadId()] : 0.0f;
  return val;
"""
        kernel, device = compile_coop(
            body, global_view(10, 64), header="float f(const Array<1,float> in)"
        )
        result = run_one_block(kernel, device, np.arange(10, dtype=np.float32))
        assert result == 0.0  # thread 0's element

    def test_register_partials_only_thread_id(self):
        text = (
            "__codelet __coop\nfloat f(const Array<1,float> in) {\n"
            "  Vector vt();\n  return in[vt.LaneId()];\n}"
        )
        codelet = analyze_source(text).codelets[0].codelet
        b = IRBuilder()
        val = b.mov(Imm(1.0))
        binding = RegisterPartials(value=val, count=64)
        compiler = CodeletToVIR(b, codelet, binding, prefix="t")
        with pytest.raises(LoweringError, match="ThreadId"):
            compiler.compile()

    def test_shared_dim_must_be_static(self):
        text = (
            "__codelet __coop\nfloat f(const Array<1,float> in) {\n"
            "  Vector vt();\n"
            "  __shared float tmp[in.Size()];\n"
            "  return 0.0f;\n}"
        )
        codelet = analyze_source(text).codelets[0].codelet
        b = IRBuilder()
        binding = GlobalView(buf="in", base=Imm(0), stride=Imm(1),
                             size=Imm(64), size_static=None)
        compiler = CodeletToVIR(b, codelet, binding, prefix="t")
        with pytest.raises(LoweringError, match="static"):
            compiler.compile()

    def test_barriers_inserted_after_shared_writes(self):
        from repro.vir import Bar, walk_instrs

        body = """
  __shared float tmp[vt.MaxSize()];
  tmp[vt.LaneId()] = 1.0f;
  return tmp[0];
"""
        kernel, _ = compile_coop(
            body, global_view(32, 32),
            header="float f(const Array<1,float> in)", block=32,
        )
        bars = [i for i in walk_instrs(kernel.body) if isinstance(i, Bar)]
        # one after the init loop, one after the store
        assert len(bars) >= 2

    def test_extra_params_rejected(self):
        text = (
            "__codelet __coop\nfloat f(const Array<1,float> in, int k) {\n"
            "  Vector vt();\n  return 0.0f;\n}"
        )
        codelet = analyze_source(text).codelets[0].codelet
        b = IRBuilder()
        binding = GlobalView(buf="in", base=Imm(0), stride=Imm(1),
                             size=Imm(64), size_static=64)
        with pytest.raises(LoweringError, match="parameter"):
            CodeletToVIR(b, codelet, binding, prefix="t").compile()


class TestScalarLowering:
    def test_serial_loop_with_stride_view(self, rng):
        text = """
__codelet
float f(const Array<1,float> in) {
  unsigned len = in.Size();
  float acc = 0.0f;
  for (unsigned i = 0; i < len; i += 1) {
    acc += in[i];
  }
  return acc;
}
"""
        codelet = analyze_source(text).codelets[0].codelet
        b = IRBuilder()
        tid = b.special("tid")
        # thread t reduces elements {t, t+32, t+64, ...} of 128 elements
        count = b.mov(Imm(4))
        binding = GlobalView(buf="in", base=tid, stride=Imm(32), size=count,
                             size_static=None)
        compiler = CodeletToVIR(b, codelet, binding, prefix="s")
        val = compiler.compile()
        b.st_global("out", tid, val)
        kernel = Kernel("s", buffers=["in", "out"], body=b.finish())
        data = rng.random(128).astype(np.float32)
        device = Device()
        device.upload("in", data)
        device.alloc("out", 32)
        executor = Executor(device=device)
        executor.run_kernel(
            KernelStep(kernel, grid=1, block=32,
                       buffers={"in": "in", "out": "out"})
        )
        expected = data.reshape(4, 32).sum(axis=0)
        np.testing.assert_allclose(device.get("out"), expected, rtol=1e-5)
