"""Tests for version synthesis: geometry, plan structure, correctness."""

import numpy as np
import pytest

from repro.codegen.synthesize import Tunables, build_plan, launch_geometry
from repro.core import FIG6, Version
from repro.lang.errors import SynthesisError
from repro.vir import KernelStep, MemsetStep


class TestTunables:
    def test_block_must_be_warp_multiple(self):
        with pytest.raises(SynthesisError):
            Tunables(block=100)

    def test_block_range(self):
        with pytest.raises(SynthesisError):
            Tunables(block=2048)
        with pytest.raises(SynthesisError):
            Tunables(block=0)

    def test_grid_positive(self):
        with pytest.raises(SynthesisError):
            Tunables(grid=0)


class TestGeometry:
    def test_coop_block_covers_input(self):
        geometry = launch_geometry(FIG6["p"], 10_000, Tunables(block=256))
        assert geometry["grid"] == -(-10_000 // 256)
        assert geometry["epb"] == 256
        assert geometry["coarsen"] == 1

    def test_compound_coarsening(self):
        geometry = launch_geometry(FIG6["b"], 1_000_000, Tunables(block=256))
        assert geometry["grid"] <= 1024
        assert geometry["coarsen"] >= 2
        assert geometry["grid"] * geometry["epb"] >= 1_000_000

    def test_compound_with_explicit_grid(self):
        geometry = launch_geometry(
            FIG6["b"], 100_000, Tunables(block=128, grid=64)
        )
        assert geometry["grid"] == 64
        assert geometry["epb"] == geometry["coarsen"] * 128

    def test_n_must_be_positive(self):
        with pytest.raises(SynthesisError):
            launch_geometry(FIG6["p"], 0, Tunables())

    def test_tiny_input_single_block(self):
        geometry = launch_geometry(FIG6["p"], 5, Tunables(block=64))
        assert geometry["grid"] == 1


class TestPlanStructure:
    def test_atomic_version_single_kernel_with_memset(self, fw_add):
        plan = build_plan(fw_add.pre, FIG6["p"], 1000)
        kinds = [type(step).__name__ for step in plan.steps]
        assert kinds == ["MemsetStep", "KernelStep"]
        assert plan.num_kernel_launches() == 1

    def test_second_kernel_version_two_launches(self, fw_add):
        version = Version(
            grid_pattern="tile",
            final_combine="second_kernel",
            block_kind="coop",
            combine="V",
        )
        plan = build_plan(fw_add.pre, version, 1000)
        assert plan.num_kernel_launches() == 2
        assert "partials" in plan.scratch

    def test_plan_meta_records_version(self, fw_add):
        plan = build_plan(fw_add.pre, FIG6["m"], 1000)
        assert plan.meta["label"] == "m"
        assert plan.meta["op"] == "add"
        assert plan.meta["version"] == FIG6["m"].identifier

    def test_kernel_meta_flags(self, fw_add):
        plan = build_plan(fw_add.pre, FIG6["p"], 1000)
        kernel = plan.kernel_steps()[0].kernel
        assert kernel.meta["uses_shuffle"]
        assert kernel.meta["uses_shared_atomic"]
        assert kernel.meta["load_pattern"] == "scalar"

    def test_shuffle_variant_has_shfl_instructions(self, fw_add):
        from repro.vir import Shfl, walk_instrs

        plan = build_plan(fw_add.pre, FIG6["m"], 1000)
        kernel = plan.kernel_steps()[0].kernel
        shfls = [i for i in walk_instrs(kernel.body) if isinstance(i, Shfl)]
        assert shfls

    def test_shared_atomic_variant_has_atom_shared(self, fw_add):
        from repro.vir import AtomShared, walk_instrs

        plan = build_plan(fw_add.pre, FIG6["n"], 1000)
        kernel = plan.kernel_steps()[0].kernel
        atoms = [i for i in walk_instrs(kernel.body) if isinstance(i, AtomShared)]
        assert atoms

    def test_shuffle_variant_smaller_shared_footprint(self, fw_add):
        """Listing 4's point: VS disables tmp, shrinking shared memory."""
        tree = build_plan(fw_add.pre, FIG6["l"], 1000)  # V
        shuffle = build_plan(fw_add.pre, FIG6["m"], 1000)  # VS
        tree_bytes = tree.kernel_steps()[0].kernel.shared_bytes()
        shuffle_bytes = shuffle.kernel_steps()[0].kernel.shared_bytes()
        assert shuffle_bytes < tree_bytes

    def test_va1_minimal_shared_footprint(self, fw_add):
        plan = build_plan(fw_add.pre, FIG6["n"], 1000)
        assert plan.kernel_steps()[0].kernel.shared_bytes() == 4  # 1 float

    def test_memset_initializes_to_identity_for_max(self, fw_max):
        plan = build_plan(fw_max.pre, FIG6["p"], 1000)
        memset = [s for s in plan.steps if isinstance(s, MemsetStep)][0]
        assert memset.value < -1e38


class TestCorrectnessSpotChecks:
    @pytest.mark.parametrize("label", ["a", "e", "k", "m", "n", "p"])
    def test_odd_sizes(self, fw_add, run_plan, rng, label):
        for n in (1, 31, 33, 255, 257, 1023):
            data = rng.random(n).astype(np.float32)
            plan = build_plan(fw_add.pre, FIG6[label], n)
            result = run_plan(plan, data)
            assert result == pytest.approx(float(data.sum(dtype=np.float64)),
                                           rel=1e-4), (label, n)

    def test_negative_values_max(self, fw_max, run_plan, rng):
        data = (-rng.random(500) - 1.0).astype(np.float32)
        plan = build_plan(fw_max.pre, FIG6["p"], 500)
        assert run_plan(plan, data) == pytest.approx(float(data.max()), rel=1e-6)

    def test_negative_values_min(self, fw_min, run_plan, rng):
        data = (rng.random(500) - 0.5).astype(np.float32)
        plan = build_plan(fw_min.pre, FIG6["n"], 500)
        assert run_plan(plan, data) == pytest.approx(float(data.min()), abs=1e-6)

    def test_all_block_sizes(self, fw_add, run_plan, rng):
        data = rng.random(5000).astype(np.float32)
        expected = float(data.sum(dtype=np.float64))
        for block in (32, 64, 128, 256, 512, 1024):
            plan = build_plan(fw_add.pre, FIG6["p"], 5000, Tunables(block=block))
            assert run_plan(plan, data) == pytest.approx(expected, rel=1e-4), block

    def test_constant_input(self, fw_add, run_plan):
        data = np.full(4096, 0.5, dtype=np.float32)
        plan = build_plan(fw_add.pre, FIG6["e"], 4096)
        assert run_plan(plan, data) == pytest.approx(2048.0, rel=1e-5)
