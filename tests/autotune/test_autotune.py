"""Tests for the autotuner and the DySel-style runtime selector."""

import numpy as np
import pytest

from repro.autotune import (
    DynamicSelector,
    best_tuned_version,
    configurations,
    tune_all,
    tune_version,
)
from repro.codegen.synthesize import Tunables
from repro.core import FIG6


class TestConfigurations:
    def test_coop_versions_ignore_grid(self, fw_add):
        configs = configurations(FIG6["p"], blocks=(64, 256), grids=(None, 128))
        assert len(configs) == 2
        assert all(c.grid is None for c in configs)

    def test_compound_versions_sweep_grid(self):
        configs = configurations(FIG6["b"], blocks=(64, 256), grids=(None, 128))
        assert len(configs) == 4


class TestTuneVersion:
    def test_returns_best_of_trials(self, fw_add):
        result = tune_version(
            fw_add, "p", 4096, "maxwell", blocks=(64, 256), grids=(None,)
        )
        assert result.time_s == min(t for _, t in result.trials)
        assert isinstance(result.tunables, Tunables)
        assert len(result.trials) == 2

    def test_compound_grid_tuning_helps_large(self, fw_add):
        """At large sizes the partition count matters (thread coarsening)."""
        result = tune_version(
            fw_add, "b", 4_194_304, "kepler",
            blocks=(256,), grids=(None, 32, 1024),
        )
        times = [t for _, t in result.trials]
        assert max(times) > result.time_s  # the sweep found a real winner


class TestTuneAll:
    def test_covers_candidates(self, fw_add):
        results = tune_all(
            fw_add, 1024, "maxwell", candidates=["n", "p"],
            blocks=(64,), grids=(None,),
        )
        assert set(results) == {"n", "p"}

    def test_best_tuned_version(self, fw_add):
        key, tunables, seconds = best_tuned_version(
            fw_add, 1024, "maxwell", candidates=["l", "n", "p"],
            blocks=(64, 256), grids=(None,),
        )
        assert key in ("l", "n", "p")
        assert seconds > 0


class TestDynamicSelector:
    @pytest.fixture(scope="class")
    def selector(self):
        from repro import ReductionFramework

        fw = ReductionFramework("add")
        return DynamicSelector.build(
            fw,
            "maxwell",
            sizes=(256, 65_536, 1_048_576),
            candidates=["n", "m", "p", "b"],
            blocks=(64, 256),
            grids=(None,),
        )

    def test_table_sorted_by_size(self, selector):
        sizes = [entry.max_n for entry in selector.entries]
        assert sizes == sorted(sizes)

    def test_select_picks_covering_bucket(self, selector):
        assert selector.select(100).max_n == 256
        assert selector.select(70_000).max_n == 1_048_576
        # beyond the largest bucket, the last entry is used
        assert selector.select(10 ** 9).max_n == 1_048_576

    def test_reduce_runs_selected_version(self, selector, rng):
        data = rng.random(5000).astype(np.float32)
        result = selector.reduce(data)
        assert result.value == pytest.approx(float(data.sum()), rel=1e-4)

    def test_empty_selector_rejected(self, fw_add):
        empty = DynamicSelector(framework=fw_add, arch="maxwell")
        with pytest.raises(RuntimeError):
            empty.select(10)


class TestExplainPruning:
    """The tuner/selector must cite the explain attribution — the same
    component/counter ranking as ``repro explain --diff`` — when one
    candidate prunes another."""

    def test_cites_counters_for_the_margin(self, fw_add):
        from repro.autotune import explain_pruning

        results = tune_all(
            fw_add, 65_536, "pascal", candidates=["a", "b"],
            blocks=(64,), grids=(8,),
        )
        why = explain_pruning(fw_add, results, 65_536, "pascal")
        assert {why["winner"], why["runner_up"]} == {
            results["a"].version_key and fw_add.resolve("a").identifier,
            fw_add.resolve("b").identifier,
        }
        assert why["margin_s"] > 0  # a real pruning margin
        assert why["cited"], "pruning must cite component attributions"
        for row in why["cited"]:
            assert row["delta_s"] != 0
            assert row["component"] in {
                r["component"] for r in why["diff"]["ranking"]
            }
        # The diff is the timing model's own verdict: the cited deltas
        # are drawn from a ranking that sums to the model delta.
        attributed = sum(
            row["delta_s"] for row in why["diff"]["ranking"]
        )
        assert attributed == pytest.approx(
            why["diff"]["model_delta_s"], rel=1e-9
        )

    def test_winner_matches_best_tuned_version(self, fw_add):
        from repro.autotune import explain_pruning

        candidates = ["n", "p"]
        results = tune_all(
            fw_add, 4096, "maxwell", candidates=candidates,
            blocks=(64, 256), grids=(None,),
        )
        key, _, _ = best_tuned_version(
            fw_add, 4096, "maxwell", candidates=candidates,
            blocks=(64, 256), grids=(None,),
        )
        why = explain_pruning(fw_add, results, 4096, "maxwell")
        assert why["winner"] == fw_add.resolve(key).identifier

    def test_needs_two_candidates(self, fw_add):
        from repro.autotune import explain_pruning

        results = tune_all(
            fw_add, 1024, "maxwell", candidates=["p"],
            blocks=(64,), grids=(None,),
        )
        with pytest.raises(ValueError):
            explain_pruning(fw_add, results, 1024, "maxwell")

    def test_selector_explains_its_bucket(self):
        from repro import ReductionFramework

        fw = ReductionFramework("add")
        selector = DynamicSelector.build(
            fw, "maxwell", sizes=(4096,), candidates=["n", "p"],
            blocks=(64, 256), grids=(None,),
        )
        why = selector.explain(4096, candidates=["n", "p"])
        entry = selector.select(4096)
        assert why["winner"] == fw.resolve(entry.version_key).identifier
        assert why["cited"]
