"""Quickstart: compile the reduction DSL, inspect the AST passes, run
synthesized versions on the simulator, and look at the generated CUDA.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ReductionFramework, Tunables
from repro.codegen import emit_coop_kernel


def main():
    # 1. Compile the DSL library (Figures 1 and 3 of the paper) and run
    #    the pre-processing pipeline: the three AST passes generate the
    #    warp-shuffle and atomic code variants automatically.
    fw = ReductionFramework(op="add")
    print("=== pre-processing pipeline (Figure 5) ===")
    for line in fw.pre.log:
        print(" ", line)

    # 2. The search space of synthesizable code versions (Section IV-B).
    print(f"\npruned search space: {len(fw.versions)} versions "
          f"(paper: 30), catalog: {sorted(fw.catalog)}")

    # 3. Reduce an array with a few Figure 6 versions.
    rng = np.random.default_rng(0)
    data = rng.random(100_000).astype(np.float32)
    print(f"\nnumpy reference sum: {data.sum():.3f}")
    for label in ("l", "m", "n", "p", "b"):
        result = fw.run(data, version=label)
        print(f"  version ({label})  {result.version.identifier:<22} "
              f"-> {result.value:.3f}")

    # 4. Tunable launch parameters (Section IV-C).
    tuned = fw.run(data, version="b", tunables=Tunables(block=128, grid=256))
    print(f"\nversion (b) with block=128, grid=256 -> {tuned.value:.3f}")

    # 5. Modelled wall time on the paper's three GPUs.
    print("\nmodelled time of version (p) at n=100000:")
    for arch in ("kepler", "maxwell", "pascal"):
        print(f"  {arch:>8}: {fw.time(len(data), 'p', arch) * 1e6:8.1f} us")

    # 6. The generated CUDA for the shuffle variant (Listing 4's shape).
    print("\n=== CUDA for the warp-shuffle variant (VS) ===")
    print(emit_coop_kernel(fw.pre.coop_variant("VS"), op="add"))


if __name__ == "__main__":
    main()
