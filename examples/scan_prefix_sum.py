"""Device-wide inclusive scan — the second algorithm the paper's intro
motivates with parallel reduction [14].

Compares the classic Kogge-Stone shared-memory block scan against the
warp-shuffle block scan (the Section II-A-1 primitive, here used in its
``__shfl_up`` form).

Run:  python examples/scan_prefix_sum.py
"""

import numpy as np

from repro.apps import Scan


def main():
    rng = np.random.default_rng(11)
    data = rng.random(50_000).astype(np.float32)
    reference = np.cumsum(data, dtype=np.float64)

    for strategy in ("shared", "shuffle"):
        scan = Scan(strategy=strategy)
        out, profile = scan.run(data)
        max_err = float(np.max(np.abs(out - reference) / np.maximum(1, reference)))
        events = profile.steps[0].events
        print(
            f"strategy={strategy:<8} max rel err {max_err:.2e}  "
            f"(shuffles: {events.get('inst.shfl', 0):>5}, "
            f"barriers: {events['inst.bar']:>5}, "
            f"kernels: {profile.num_launches()})"
        )

    print("\nmodelled time of a 1M-element scan:")
    print(f"{'arch':>8} {'shared(us)':>11} {'shuffle(us)':>12} {'speedup':>8}")
    for arch in ("kepler", "maxwell", "pascal"):
        t_shared = Scan(strategy="shared").time(1_000_000, arch)
        t_shuffle = Scan(strategy="shuffle").time(1_000_000, arch)
        print(f"{arch:>8} {t_shared * 1e6:>11.1f} {t_shuffle * 1e6:>12.1f} "
              f"{t_shared / t_shuffle:>8.2f}")


if __name__ == "__main__":
    main()
