"""Autotuning and DySel-style runtime selection.

Reproduces the paper's tuning flow (Section IV-C): sweep the __tunable
block/grid parameters per code version, then build a runtime selection
table that picks the best tuned version per input size — the dynamic
kernel selection the paper cites as [33].

Run:  python examples/autotune_reduction.py
"""

import numpy as np

from repro import ReductionFramework
from repro.autotune import DynamicSelector, tune_version


def main():
    fw = ReductionFramework(op="add")
    arch = "maxwell"

    # 1. Tune one version: the sweep over block/grid configurations.
    print(f"Tuning version (b) at n=4194304 on {arch}:")
    result = tune_version(
        fw, "b", 4_194_304, arch, blocks=(64, 128, 256), grids=(None, 128, 512)
    )
    for tunables, seconds in sorted(result.trials, key=lambda t: t[1]):
        marker = " <- best" if tunables == result.tunables else ""
        print(
            f"  block={tunables.block:>4} grid={str(tunables.grid):>5}: "
            f"{seconds * 1e6:8.1f} us{marker}"
        )

    # 2. Build the runtime selection table across sizes.
    print(f"\nDynamic selection table on {arch}:")
    selector = DynamicSelector.build(
        fw,
        arch,
        sizes=(1024, 65_536, 1_048_576, 16_777_216),
        candidates=["n", "m", "p", "b", "e"],
        blocks=(64, 128, 256),
        grids=(None, 512),
    )
    for entry in selector.entries:
        print(
            f"  n <= {entry.max_n:>9}: version ({entry.version_key}) "
            f"block={entry.tunables.block} grid={entry.tunables.grid} "
            f"-> {entry.time_s * 1e6:.1f} us"
        )

    # 3. Use the selector end-to-end on real data.
    rng = np.random.default_rng(1)
    for n in (3000, 300_000):
        data = rng.random(n).astype(np.float32)
        run = selector.reduce(data)
        assert abs(run.value - data.sum()) / data.sum() < 1e-4
        print(
            f"\nreduce(n={n}): selector chose ({run.label}), "
            f"result {run.value:.2f} (numpy {data.sum():.2f})"
        )


if __name__ == "__main__":
    main()
