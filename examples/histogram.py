"""Histogram with shared-memory atomic arrays.

The paper motivates the ``_atomicAdd`` qualifier with histogramming
[12], [13]: per-block histograms live in shared memory and every update
must be atomic. The histogram codelet is written in the DSL, the
shared-atomic AST pass (Section III-B) rewrites its ``+=`` into atomic
updates, and the library lowers it onto the simulator. The example also
compares the privatized strategy against direct global atomics.

Run:  python examples/histogram.py
"""

import numpy as np

from repro.apps import Histogram, histogram_source, reference_histogram

BINS = 64


def main():
    print("=== the DSL codelet (before the shared-atomic pass) ===")
    print(histogram_source(BINS))

    n = 200_000
    rng = np.random.default_rng(7)
    keys = rng.integers(0, 1_000_000, size=n).astype(np.int32)
    expected = reference_histogram(keys, BINS)

    for strategy in ("shared", "global"):
        hist = Histogram(bins=BINS, strategy=strategy)
        counts, profile = hist.run(keys)
        assert (counts == expected).all(), f"{strategy} histogram mismatch!"
        events = profile.steps[0].events
        print(
            f"strategy={strategy:<7} OK  "
            f"(shared atomics: {events.get('atom.shared.ops', 0):>7}, "
            f"global atomics: {events.get('atom.global.ops', 0):>7})"
        )

    print(f"\ntotal={expected.sum()}, min bin={expected.min()}, "
          f"max bin={expected.max()}")

    print("\nprivatization speedup (global-atomic time / shared time):")
    for arch in ("kepler", "maxwell", "pascal"):
        shared = Histogram(bins=BINS, strategy="shared").time(n, arch)
        direct = Histogram(bins=BINS, strategy="global").time(n, arch)
        print(f"  {arch:>8}: {direct / shared:5.1f}x "
              f"({shared * 1e6:.1f} us vs {direct * 1e6:.1f} us)")


if __name__ == "__main__":
    main()
