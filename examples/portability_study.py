"""Performance-portability study: one DSL source, three GPU generations.

Reproduces the core finding of the paper at example scale: the best
synthesized code version changes with the microarchitecture (Kepler's
software shared atomics vs Maxwell/Pascal's native support), and the
framework beats the hand-written CUB baseline for small/medium arrays
while staying within tens of percent for large ones.

Run:  python examples/portability_study.py
"""

from repro import ReductionFramework, Tunables, cub_time, kokkos_time, openmp_time

SIZES = (256, 4096, 65536, 1048576, 16777216)
ARCHS = ("kepler", "maxwell", "pascal")


def tuned(fw, label, n, arch):
    version = fw.resolve(label)
    blocks = (64, 128, 256)
    grids = (None,) if version.block_kind == "coop" else (None, 512)
    return min(
        fw.time(n, version, arch, Tunables(block=b, grid=g))
        for b in blocks
        for g in grids
    )


def main():
    fw = ReductionFramework(op="add")
    candidates = ("l", "m", "n", "p", "a", "b", "e")

    print("Best synthesized version per architecture and size")
    print("(speedup is over the CUB baseline; >1 means faster than CUB)\n")
    header = f"{'n':>10}" + "".join(f"  {arch:>16}" for arch in ARCHS)
    print(header + f"  {'OpenMP':>8}  {'Kokkos':>8}")
    for n in SIZES:
        cells = []
        for arch in ARCHS:
            times = {label: tuned(fw, label, n, arch) for label in candidates}
            winner = min(times, key=times.get)
            speedup = cub_time(n, arch) / times[winner]
            cells.append(f"  {speedup:>11.2f} ({winner})")
        omp = cub_time(n, ARCHS[0]) / openmp_time(n)
        kok = cub_time(n, ARCHS[0]) / kokkos_time(n, ARCHS[0])
        print(f"{n:>10}" + "".join(cells) + f"  {omp:>8.2f}  {kok:>8.2f}")

    print(
        "\nNote how the winner flips: Kepler avoids shared atomics under\n"
        "contention (software lock loop) and prefers the pure-shuffle (m),\n"
        "while Maxwell/Pascal's native shared atomics favour (n)/(p); at\n"
        "large sizes every architecture switches to the thread-coarsening\n"
        "compound versions (a/b/e)."
    )


if __name__ == "__main__":
    main()
