"""Reproduces the search-space numbers of Section IV-B and Figure 6.

Paper targets:

* original Tangram: 10 versions (ours: 6 — our composition rules model
  fewer internal Tangram combinations; see EXPERIMENTS.md);
* extended space: 89 versions (ours: 60, same order of magnitude);
* pruned space: **30 versions, all using global atomics** — reproduced
  exactly, because the pruning rule (drop every version needing a second
  kernel) is structural;
* Figure 6: 16 named versions, 8 best-performing.
"""

from conftest import once, write_table

from repro.core import (
    BEST8,
    FIG6,
    enumerate_versions,
    prune_versions,
    search_space_summary,
)


def build_table():
    summary = search_space_summary()
    lines = [
        "Search space (Section IV-B)          ours   paper",
        f"  original Tangram versions          {summary['original']:>4}      10",
        f"  full extended space                {summary['total']:>4}      89",
        f"  using only global atomics          {summary['with_global_atomics_only']:>4}      10",
        f"  using shared-memory atomics        {summary['with_shared_atomics']:>4}      38",
        f"  using warp shuffles                {summary['with_shuffle']:>4}      31",
        f"  after pruning (no 2nd kernel)      {summary['pruned_total']:>4}      30",
        "",
        "Figure 6 catalog (16 versions; * = paper's 8 best):",
    ]
    for label in sorted(FIG6):
        star = "*" if label in BEST8 else " "
        lines.append(f"  ({label}) {star} {FIG6[label].identifier}")
    return summary, lines


def test_search_space_table(benchmark):
    summary, lines = once(benchmark, build_table)
    write_table("search_space", lines)
    assert summary["pruned_total"] == 30  # exact paper match
    assert summary["pruned_all_use_global_atomics"]
    assert len(FIG6) == 16
    assert len(BEST8) == 8


def test_enumeration_throughput(benchmark):
    """How fast the variant enumerator runs (compile-time cost)."""
    versions = benchmark(lambda: prune_versions(enumerate_versions()))
    assert len(versions) == 30
