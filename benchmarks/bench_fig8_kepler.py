"""Reproduces Figure 8: per-size detail on the Kepler K40c.

Paper claims checked:

* small arrays (64-1K): version (p) — shared-atomic + shuffle — wins,
  because the tuned configuration leaves a single active warp per block
  so the software shared atomic is uncontended;
* medium arrays (1K-4M): version (m) — pure shuffle — wins, because
  Kepler's lock-update-unlock shared atomics serialize under contention;
* large arrays (>4M): the compound thread-coarsening versions (b)/(e)
  win among Tangram codes, but CUB is faster (vector loads) and Kokkos
  fastest (staged kernels).
"""

from conftest import once, write_table
from detail import build_detail, render_detail, winner_competitive

PLOTTED = ("p", "m", "b", "e")


def test_fig8_kepler_detail(benchmark, fw):
    rows = once(benchmark, build_detail, fw, "kepler", PLOTTED)
    write_table("fig8_kepler", render_detail("Figure 8", "kepler", PLOTTED, rows))

    by_n = {row["n"]: row for row in rows}
    # small: (p) wins (or is within 10% of our winner)
    assert winner_competitive(rows, 256, "p")
    # medium: (m) wins outright at 65K; near the crossover to the
    # compound versions it must stay competitive (the paper's Fig. 8
    # shows (m) through 4M; our model crosses over slightly earlier)
    assert winner_competitive(rows, 65536, "m")
    for n in (262144, 1048576):
        assert winner_competitive(rows, n, "m", tolerance=1.5), n
    # large: compound shuffle versions (b)/(e) win among Tangram
    for n in (16777216, 268435456):
        assert by_n[n]["winner"] in ("b", "e"), n
    # Kokkos overtakes CUB beyond ~10M (paper: ~2.5x)
    assert by_n[16777216]["kokkos"] > 2.0
    assert by_n[268435456]["kokkos"] > 2.0
    # Kokkos is poor at small sizes (three kernel launches)
    assert by_n[256]["kokkos"] < 2.0
    # OpenMP leads everything below 4K on Kepler
    assert by_n[1024]["openmp"] > by_n[1024]["speedups"][by_n[1024]["winner"]]
