"""Ablation benches for the design choices DESIGN.md calls out.

1. **Warp-shuffle pass** on/off: (l) vs (m) and (o) vs (p) — how much
   the automatically detected shuffles buy.
2. **Shared-atomic pass** on/off: (m) vs (n)/(p) on Maxwell vs Kepler —
   the microarchitecture dependence of the qualifier.
3. **Global-atomic final combine** vs second kernel — quantifies the
   pruning rule of Section IV-B.
4. **Architecture counterfactual**: Kepler with native shared atomics —
   shows the timing model responds to the microarchitecture flag, not to
   curve fitting.
"""

import dataclasses

from conftest import once, tuned_time, write_table

from repro.core import Version
from repro.gpusim import KEPLER, get_architecture
from repro.gpusim.timing import plan_time

SIZES = (4096, 65536, 1048576)


def shuffle_ablation(fw):
    rows = []
    for arch in ("kepler", "maxwell"):
        for n in SIZES:
            tree = tuned_time(fw, "l", n, arch)  # V (no shuffle)
            shuffled = tuned_time(fw, "m", n, arch)  # VS
            rows.append((arch, n, tree / shuffled))
    return rows


def test_shuffle_pass_ablation(benchmark, fw):
    rows = once(benchmark, shuffle_ablation, fw)
    lines = ["Ablation: warp-shuffle pass (V -> VS speedup)", ""]
    for arch, n, gain in rows:
        lines.append(f"  {arch:>8} n={n:>8}: {gain:.2f}x")
    write_table("ablation_shuffle", lines)
    # the pass always helps, and helps more at larger sizes
    assert all(gain > 1.0 for _, _, gain in rows)
    assert max(gain for _, _, gain in rows) > 1.3


def shared_atomic_ablation(fw):
    rows = []
    for arch in ("kepler", "maxwell", "pascal"):
        for n in SIZES:
            no_atomic = tuned_time(fw, "m", n, arch)  # VS
            with_atomic = tuned_time(fw, "p", n, arch)  # VA2S
            rows.append((arch, n, no_atomic / with_atomic))
    return rows


def test_shared_atomic_pass_ablation(benchmark, fw):
    rows = once(benchmark, shared_atomic_ablation, fw)
    lines = [
        "Ablation: shared-atomic qualifier (VS -> VA2S speedup; <1 means",
        "the atomic hurts, as on Kepler's software shared atomics)",
        "",
    ]
    for arch, n, gain in rows:
        lines.append(f"  {arch:>8} n={n:>8}: {gain:.2f}x")
    write_table("ablation_shared_atomic", lines)
    by_arch = {}
    for arch, n, gain in rows:
        by_arch.setdefault(arch, []).append(gain)
    # Kepler: software shared atomics — the qualifier hurts at scale
    assert min(by_arch["kepler"]) < 1.0
    # Maxwell/Pascal: native support — the qualifier helps (or is neutral)
    assert all(g >= 0.99 for g in by_arch["maxwell"])
    assert all(g >= 0.99 for g in by_arch["pascal"])


def pruning_ablation(fw):
    atomic = Version(
        grid_pattern="tile", final_combine="global_atomic",
        block_kind="coop", combine="V",
    )
    two_kernel = Version(
        grid_pattern="tile", final_combine="second_kernel",
        block_kind="coop", combine="V",
    )
    rows = []
    for n in (256, 4096, 65536):
        t_atomic = fw.time(n, atomic, "kepler")
        t_second = fw.time(n, two_kernel, "kepler")
        rows.append((n, t_second / t_atomic))
    return rows


def test_pruning_rule_ablation(benchmark, fw):
    rows = once(benchmark, pruning_ablation, fw)
    lines = [
        "Ablation: global-atomic final combine vs second kernel",
        "(the paper prunes all second-kernel versions as consistently slow)",
        "",
    ]
    for n, ratio in rows:
        lines.append(f"  n={n:>8}: second kernel is {ratio:.2f}x slower")
    write_table("ablation_pruning", lines)
    assert all(ratio > 1.0 for _, ratio in rows)


def counterfactual(fw):
    """Kepler, but with Maxwell-style native shared atomics."""
    kepler_native = dataclasses.replace(
        KEPLER,
        native_shared_atomics=True,
        shared_atomic_cpi=2.5,
        shared_atomic_same_addr_cpi=2.0,
    )
    n = 1048576
    real = {k: tuned_time(fw, k, n, KEPLER) for k in ("m", "n", "p")}
    hypothetical = {k: tuned_time(fw, k, n, kepler_native) for k in ("m", "n", "p")}
    return real, hypothetical


def test_architecture_counterfactual(benchmark, fw):
    real, hypothetical = once(benchmark, counterfactual, fw)
    lines = [
        "Counterfactual: Kepler with native shared atomics (n=1M)",
        "",
        f"{'version':>8} {'real Kepler':>14} {'native-atomic Kepler':>22}",
    ]
    for k in ("m", "n", "p"):
        lines.append(
            f"{k:>8} {real[k] * 1e6:>12.1f}us {hypothetical[k] * 1e6:>20.1f}us"
        )
    write_table("ablation_counterfactual", lines)
    # shared-atomic versions improve dramatically; the pure-shuffle
    # version is indifferent to the flag
    assert hypothetical["n"] < real["n"] / 3
    assert hypothetical["p"] < real["p"]
    assert abs(hypothetical["m"] - real["m"]) / real["m"] < 0.01
    # and the winner flips from (m) to a shared-atomic version
    assert min(real, key=real.get) == "m"
    assert min(hypothetical, key=hypothetical.get) in ("n", "p")


def aggregation_ablation(fw):
    """VA1 vs VA1A (warp-aggregated): the Section III-D extension."""
    from repro.core import Version

    va1a = Version(
        grid_pattern="tile", final_combine="global_atomic",
        block_kind="coop", combine="VA1A",
    )
    rows = []
    for arch in ("kepler", "maxwell", "pascal"):
        for n in SIZES:
            plain = tuned_time(fw, "n", n, arch)
            aggregated = tuned_time(fw, va1a, n, arch)
            rows.append((arch, n, plain / aggregated))
    return rows


def test_warp_aggregation_ablation(benchmark, fw):
    rows = once(benchmark, aggregation_ablation, fw)
    lines = [
        "Ablation: warp-aggregated atomics (VA1 -> VA1A speedup),",
        "the paper's Section III-D future-work extension [25]",
        "",
    ]
    for arch, n, gain in rows:
        lines.append(f"  {arch:>8} n={n:>8}: {gain:.2f}x")
    write_table("ablation_aggregation", lines)
    by_arch = {}
    for arch, n, gain in rows:
        by_arch.setdefault(arch, []).append(gain)
    # Kepler's software shared atomics gain the most (the [25] trick)
    assert max(by_arch["kepler"]) > 3.0
    # native-atomic architectures gain mildly from less serialization
    assert max(by_arch["maxwell"]) > 1.02


def unroll_ablation():
    """Rolled vs unrolled tree/shuffle loops (Section III-A, [34])."""
    from repro import ReductionFramework

    rolled_fw = ReductionFramework("add")
    unrolled_fw = ReductionFramework("add", unroll=True)
    rows = []
    for arch in ("kepler", "maxwell"):
        for n in SIZES:
            rolled = tuned_time(rolled_fw, "m", n, arch)
            unrolled = tuned_time(unrolled_fw, "m", n, arch)
            rows.append((arch, n, rolled / unrolled))
    return rows


def test_unroll_ablation(benchmark):
    rows = once(benchmark, unroll_ablation)
    lines = [
        "Ablation: loop unrolling on version (m) (rolled/unrolled time)",
        "",
    ]
    for arch, n, gain in rows:
        lines.append(f"  {arch:>8} n={n:>8}: {gain:.2f}x")
    write_table("ablation_unroll", lines)
    assert all(gain >= 0.999 for _, _, gain in rows)
    assert max(gain for _, _, gain in rows) > 1.05
