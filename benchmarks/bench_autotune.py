"""Reproduces the tuning run of Section IV-C.

"All Tangram code versions are tuned using __tunable parameters to
determine optimal block and grid dimensions. This is done with a simple
script that runs all versions with different tuning parameters for the
biggest problem size. It takes about 20 minutes."

Ours runs the same sweep against the timing model (seconds, not 20
minutes — the sweep itself is the reproduced artifact). The bench also
builds the DySel-style dynamic selection table [33].
"""

import time

from conftest import ARCHS, once, write_table

from repro.autotune import DynamicSelector, tune_all

#: The paper tunes at the biggest problem size.
BIGGEST = 268_435_456

#: Keep the sweep cheap: tuning decisions at the biggest size are made
#: by the coarsening/grid dimensions, which this grid covers.
BLOCKS = (128, 256)
GRIDS = (None, 1024)


def run_tuning(fw):
    started = time.perf_counter()
    results = tune_all(
        fw, BIGGEST, "kepler", candidates=list(fw.catalog),
        blocks=BLOCKS, grids=GRIDS,
    )
    elapsed = time.perf_counter() - started
    return results, elapsed


def test_tuning_sweep_biggest_size(benchmark, fw):
    results, elapsed = once(benchmark, run_tuning, fw)
    lines = [
        f"Tuning sweep at n={BIGGEST} on Kepler "
        f"(paper: ~20 min on hardware; ours: {elapsed:.1f}s on the model)",
        "",
        f"{'version':>8} {'block':>6} {'grid':>6} {'time(us)':>10}",
    ]
    for label in sorted(results):
        r = results[label]
        lines.append(
            f"{label:>8} {r.tunables.block:>6} {str(r.tunables.grid):>6} "
            f"{r.time_s * 1e6:>10.1f}"
        )
    write_table("autotune", lines)

    # every version found a strictly-best configuration
    for label, result in results.items():
        times = [t for _, t in result.trials]
        assert result.time_s == min(times)
    # compound versions should beat coop versions at the biggest size
    best = min(results, key=lambda k: results[k].time_s)
    assert fw.resolve(best).block_kind == "compound"


def test_dynamic_selector_table(benchmark, fw):
    selector = once(
        benchmark,
        DynamicSelector.build,
        fw,
        "maxwell",
        (1024, 65536, 4194304),
        ["n", "m", "p", "b", "e"],
        (64, 256),
        (None,),
    )
    lines = ["DySel-style selection table (Maxwell):", ""]
    for entry in selector.entries:
        lines.append(
            f"  n <= {entry.max_n:>9}: version ({entry.version_key}) "
            f"block={entry.tunables.block} -> {entry.time_s * 1e6:.1f}us"
        )
    write_table("selector_maxwell", lines)
    # the winner changes across the size range (performance portability)
    winners = {entry.version_key for entry in selector.entries}
    assert len(winners) >= 2
