"""Shared builder for the per-architecture detail figures (Figs. 8-10)."""

from conftest import PAPER_SIZES, tuned_time

from repro import cub_time, kokkos_time, openmp_time


def build_detail(fw, arch, plotted):
    """Rows of one detail figure: speedup over CUB per plotted version."""
    rows = []
    for n in PAPER_SIZES:
        t_cub = cub_time(n, arch)
        times = {label: tuned_time(fw, label, n, arch) for label in plotted}
        winner = min(times, key=times.get)
        rows.append(
            {
                "n": n,
                "cub": t_cub,
                "times": times,
                "speedups": {label: t_cub / t for label, t in times.items()},
                "kokkos": t_cub / kokkos_time(n, arch),
                "openmp": t_cub / openmp_time(n),
                "winner": winner,
                "winner_time": times[winner],
            }
        )
    return rows


def render_detail(name, arch, plotted, rows):
    lines = [
        f"{name} — {arch}: speedup over CUB per Tangram version "
        f"(higher is better)",
        "",
        f"{'n':>12}"
        + "".join(f"({label})".rjust(8) for label in plotted)
        + f"{'Kokkos':>9}{'OpenMP':>9}  winner",
    ]
    for row in rows:
        cells = "".join(f"{row['speedups'][label]:>8.2f}" for label in plotted)
        lines.append(
            f"{row['n']:>12}{cells}{row['kokkos']:>9.2f}{row['openmp']:>9.2f}"
            f"  ({row['winner']})"
        )
    return lines


def winner_competitive(rows, n, expected_label, tolerance=1.10):
    """True when the paper's winner is within ``tolerance`` of our best —
    honest matching for near-tie cases."""
    row = next(r for r in rows if r["n"] == n)
    if row["winner"] == expected_label:
        return True
    expected = row["times"].get(expected_label)
    return expected is not None and expected <= row["winner_time"] * tolerance
