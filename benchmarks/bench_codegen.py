"""Compiler-throughput benches: how fast the toolchain itself runs.

Not a paper figure, but standard for a compiler artifact: time the
frontend (lex+parse+analyze), the pre-processing pipeline (the three AST
passes, Figure 5), kernel synthesis, and CUDA emission. These use
pytest-benchmark's statistics for real timing numbers.
"""

from repro.codegen import build_plan, emit_version
from repro.core import FIG6, preprocess
from repro.core.sources import load_reduction_program, reduction_source
from repro.lang import analyze_source


def test_frontend_throughput(benchmark):
    source = reduction_source("add", "float")
    analyzed = benchmark(analyze_source, source)
    assert len(analyzed.codelets) == 6


def test_pipeline_throughput(benchmark):
    analyzed = load_reduction_program("add", "float")
    result = benchmark(preprocess, analyzed)
    assert len(result.coop) == 6  # the paper's five + the VA1A extension


def test_synthesis_throughput(benchmark, fw):
    plan = benchmark(build_plan, fw.pre, FIG6["p"], 1_000_000)
    assert plan.num_kernel_launches() == 1


def test_cuda_emission_throughput(benchmark, fw):
    text = benchmark(emit_version, fw.pre, FIG6["p"])
    assert "__shfl_down" in text
