"""Extension bench: histogram privatization study (Sections I, III-B).

Not a paper figure, but the paper's motivating application for the
shared-atomic qualifier: per-block privatized histograms in shared
memory vs direct global atomics, across the three architectures. The
shape to expect: privatization wins under contention everywhere, and
the advantage is largest where shared atomics are natively supported.
"""

from conftest import once, write_table

from repro.apps import Histogram

SIZES = (16_384, 262_144, 4_194_304)
ARCHS = ("kepler", "maxwell", "pascal")


def build_study():
    rows = []
    for arch in ARCHS:
        for n in SIZES:
            shared = Histogram(bins=64, strategy="shared").time(n, arch)
            direct = Histogram(bins=64, strategy="global").time(n, arch)
            rows.append((arch, n, shared, direct, direct / shared))
    return rows


def test_histogram_privatization(benchmark):
    rows = once(benchmark, build_study)
    lines = [
        "Histogram: shared-memory privatization vs direct global atomics",
        "(64 bins; speedup = global/shared, higher favours privatization)",
        "",
        f"{'arch':>8} {'n':>9} {'shared(us)':>11} {'global(us)':>11} {'speedup':>8}",
    ]
    for arch, n, shared, direct, gain in rows:
        lines.append(
            f"{arch:>8} {n:>9} {shared * 1e6:>11.1f} {direct * 1e6:>11.1f} "
            f"{gain:>8.2f}"
        )
    write_table("histogram_privatization", lines)
    # privatization wins at scale on every architecture
    for arch, n, _, _, gain in rows:
        if n >= 262_144:
            assert gain > 1.5, (arch, n)
