"""Reproduces Figure 9: per-size detail on the Maxwell GTX980.

Paper claims checked:

* small arrays (64-65K): version (n) — all threads atomically updating a
  single shared accumulator — wins, *because Maxwell added native
  hardware support for shared-memory atomics* (the paper's headline
  microarchitecture-dictates-algorithm example);
* medium arrays (65K-4M): version (p) — shuffle + shared atomic — wins;
* large arrays: compound coarsening versions win among Tangram; CUB ~7%
  faster; Kokkos ~2.7x over CUB.
"""

from conftest import once, write_table
from detail import build_detail, render_detail, winner_competitive

PLOTTED = ("n", "p", "k", "c", "a")


def test_fig9_maxwell_detail(benchmark, fw):
    rows = once(benchmark, build_detail, fw, "maxwell", PLOTTED)
    write_table("fig9_maxwell", render_detail("Figure 9", "maxwell", PLOTTED, rows))

    by_n = {row["n"]: row for row in rows}
    # small: (n) wins thanks to native shared atomics
    for n in (256, 4096):
        assert winner_competitive(rows, n, "n"), n
    # medium: (p) wins
    assert winner_competitive(rows, 262144, "p", tolerance=1.05)
    # near the compound-version crossover (p) stays within 15%
    assert winner_competitive(rows, 1048576, "p", tolerance=1.15)
    # large: compound versions (a)/(c)/(k) competitive winners
    for n in (16777216, 268435456):
        assert by_n[n]["winner"] in ("a", "c", "k"), n
    # CUB slightly faster at large sizes (paper: ~7%)
    assert 0.8 < by_n[268435456]["speedups"][by_n[268435456]["winner"]] < 1.0
    # Kokkos > 2x CUB at large sizes (paper: ~2.7x)
    assert by_n[67108864]["kokkos"] > 2.2
