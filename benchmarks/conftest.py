"""Shared infrastructure for the figure/table reproduction benchmarks.

Each ``bench_*`` file regenerates one table or figure of the paper's
evaluation (Section IV). Results are printed and also written to
``benchmarks/out/<name>.txt`` so EXPERIMENTS.md can reference them.

The profiles behind the timing model are architecture-independent and
live in the unified :mod:`repro.perf` cache. The harness enables the
cache's on-disk tier under ``benchmarks/out/cache/`` (override with
``REPRO_CACHE_DIR``), so a *repeat* benchmark run skips re-simulation
entirely — delete that directory or run ``python -m repro cache --clear``
to force cold numbers.
"""

import os
from pathlib import Path

import pytest

_OUT = Path(__file__).parent / "out"
os.environ.setdefault("REPRO_CACHE_DIR", str(_OUT / "cache"))

from repro import ReductionFramework, Tunables  # noqa: E402  (after env setup)

#: The paper's x-axis: array sizes from 64 to ~260M 32-bit elements.
PAPER_SIZES = [
    64,
    256,
    1024,
    4096,
    16384,
    65536,
    262144,
    1048576,
    4194304,
    16777216,
    67108864,
    268435456,
]

#: Compact tuning grid used by the benches (the paper tunes block/grid
#: per version; this small grid captures the decisions that matter).
TUNE_BLOCKS = (64, 128, 256)
TUNE_GRIDS = (None, 512)

ARCHS = ("kepler", "maxwell", "pascal")

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def fw():
    return ReductionFramework(op="add")


def tuned_time(fw, label, n, arch):
    """Best modelled time of a version over the bench tuning grid."""
    version = fw.resolve(label)
    best = float("inf")
    for block in TUNE_BLOCKS:
        if version.block_kind == "coop":
            grids = (None,)
        else:
            grids = TUNE_GRIDS
        for grid in grids:
            seconds = fw.time(n, version, arch, Tunables(block=block, grid=grid))
            best = min(best, seconds)
    return best


def best_tuned(fw, n, arch, candidates):
    """(label, seconds) of the fastest tuned candidate."""
    times = {label: tuned_time(fw, label, n, arch) for label in candidates}
    label = min(times, key=times.get)
    return label, times[label]


def write_table(name: str, lines) -> str:
    """Print a table and persist it under benchmarks/out/."""
    text = "\n".join(lines)
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {os.path.relpath(path)}]")
    return text


def once(benchmark, func, *args, **kwargs):
    """Run an expensive table computation exactly once under the
    pytest-benchmark harness."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
