"""Reproduces Figure 7: best Tangram-synthesized version vs the CUB
baseline on Kepler/Maxwell/Pascal, plus the OpenMP CPU line.

Paper shapes checked:

* Tangram beats CUB significantly (2-6x) below ~1M elements on every
  architecture;
* Tangram is 7-38% *slower* than CUB above ~4M elements;
* OpenMP is ~4x faster than CUB below 65K and far slower at 260M;
* average speedup over CUB across the sweep is ~2x.
"""

import statistics

from conftest import ARCHS, PAPER_SIZES, best_tuned, once, write_table

from repro import cub_time, openmp_time


def build_figure(fw):
    candidates = list(fw.catalog)
    table = {}
    for arch in ARCHS:
        rows = []
        for n in PAPER_SIZES:
            label, t_tgm = best_tuned(fw, n, arch, candidates)
            t_cub = cub_time(n, arch)
            rows.append(
                {
                    "n": n,
                    "label": label,
                    "tangram": t_tgm,
                    "cub": t_cub,
                    "speedup": t_cub / t_tgm,
                    "omp_speedup": t_cub / openmp_time(n),
                }
            )
        table[arch] = rows
    return table


def render(table):
    lines = ["Figure 7 — speedup over CUB baseline (higher is better)", ""]
    header = f"{'n':>12}" + "".join(f"  {arch:>14}" for arch in ARCHS) + f"  {'OpenMP':>8}"
    lines.append(header)
    for i, n in enumerate(PAPER_SIZES):
        cells = "".join(
            f"  {table[arch][i]['speedup']:>10.2f}({table[arch][i]['label']})"
            for arch in ARCHS
        )
        omp = table[ARCHS[0]][i]["omp_speedup"]
        lines.append(f"{n:>12}{cells}  {omp:>8.2f}")
    for arch in ARCHS:
        speedups = [row["speedup"] for row in table[arch]]
        lines.append(
            f"  {arch}: geo-mean {statistics.geometric_mean(speedups):.2f}x, "
            f"max {max(speedups):.2f}x"
        )
    return lines


def test_fig7_best_vs_cub(benchmark, fw):
    table = once(benchmark, build_figure, fw)
    write_table("fig7_best_vs_cub", render(table))

    for arch in ARCHS:
        rows = {row["n"]: row for row in table[arch]}
        # small & medium arrays: clear wins over CUB
        for n in (256, 4096, 65536):
            assert rows[n]["speedup"] > 1.8, (arch, n)
        # large arrays: CUB's vector loads win, but within the paper's band
        for n in (16777216, 268435456):
            assert 0.6 < rows[n]["speedup"] < 1.0, (arch, n)
        # average ~2x, like the paper's headline number
        geo = statistics.geometric_mean(r["speedup"] for r in table[arch])
        assert 1.5 < geo < 3.0, arch
        # OpenMP ~4x faster than CUB below 65K
        assert 2.5 < rows[16384]["omp_speedup"] < 7.0
        # OpenMP collapses at 260M
        assert rows[268435456]["omp_speedup"] < 1.0
