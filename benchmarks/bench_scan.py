"""Extension bench: scan block-strategy study (Section I's Scan [14]).

Shape to expect: the warp-shuffle block scan beats the Kogge-Stone
shared-memory scan on every architecture (fewer barriers, no shared
round trips), with the largest advantage on Kepler, whose barriers and
shared accesses are relatively costlier at its lower clock.
"""

from conftest import once, write_table

from repro.apps import Scan

SIZES = (65_536, 1_048_576, 8_388_608)
ARCHS = ("kepler", "maxwell", "pascal")


def build_study():
    rows = []
    for arch in ARCHS:
        for n in SIZES:
            shared = Scan(strategy="shared").time(n, arch)
            shuffle = Scan(strategy="shuffle").time(n, arch)
            rows.append((arch, n, shared, shuffle, shared / shuffle))
    return rows


def test_scan_strategies(benchmark):
    rows = once(benchmark, build_study)
    lines = [
        "Scan: Kogge-Stone shared-memory block scan vs warp-shuffle scan",
        "(speedup = shared/shuffle, higher favours the shuffle primitive)",
        "",
        f"{'arch':>8} {'n':>9} {'shared(us)':>11} {'shuffle(us)':>12} {'speedup':>8}",
    ]
    for arch, n, shared, shuffle, gain in rows:
        lines.append(
            f"{arch:>8} {n:>9} {shared * 1e6:>11.1f} {shuffle * 1e6:>12.1f} "
            f"{gain:>8.2f}"
        )
    write_table("scan_strategies", lines)
    assert all(gain > 1.0 for _, _, _, _, gain in rows)
