"""Reproduces Figure 10: per-size detail on the Pascal P100.

Paper claims checked:

* Pascal's improved (scoped) atomics make the shared-atomic cooperative
  codelets the best versions: (n) for small arrays, (p) for medium;
* Tangram is competitive with the OpenMP CPU even for small arrays
  (Pascal's higher clock), and 3-6x faster in the 4K-65K range;
* large arrays: CUB ~27% faster than Tangram, Kokkos ~2.2x over CUB.
"""

from conftest import once, write_table
from detail import build_detail, render_detail, winner_competitive

PLOTTED = ("n", "p", "e")


def test_fig10_pascal_detail(benchmark, fw):
    rows = once(benchmark, build_detail, fw, "pascal", PLOTTED)
    write_table("fig10_pascal", render_detail("Figure 10", "pascal", PLOTTED, rows))

    by_n = {row["n"]: row for row in rows}
    # small: (n); medium: (p) — the scoped-atomic-friendly codelets
    for n in (256, 1024):
        assert winner_competitive(rows, n, "n"), n
    assert winner_competitive(rows, 262144, "p", tolerance=1.05)
    # near the compound-version crossover (p) stays within 15%
    assert winner_competitive(rows, 1048576, "p", tolerance=1.15)
    # large: the compound coarsening version (e)
    for n in (67108864, 268435456):
        assert by_n[n]["winner"] == "e", n
        # paper: ~27% slower than CUB -> speedup ~0.73-0.85 band
        assert 0.65 < by_n[n]["speedups"]["e"] < 0.95, n
    # Tangram competitive with OpenMP at small sizes on Pascal
    small = by_n[1024]
    assert small["speedups"][small["winner"]] >= small["openmp"] * 0.9
    # and clearly faster in the 4K-65K range
    mid = by_n[16384]
    assert mid["speedups"][mid["winner"]] > mid["openmp"]
    # Kokkos ~2.2x over CUB at large sizes
    assert by_n[268435456]["kokkos"] > 1.9
