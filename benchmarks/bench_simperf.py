"""Search-infrastructure performance snapshot (not a paper figure).

Measures the mechanisms of docs/PERFORMANCE.md on this machine:

1. batched vs sequential block execution of one large unsampled
   profiling launch (n = 1M, grid 64 — the ISSUE acceptance case),
   using the tree-walking interpreter backend for continuity with the
   original measurement;
2. the closure-compiled executor on the same launch: warm (plan built
   and kernels compiled beforehand, the steady-state of any sweep) and
   cold (frontend plan build + closure compilation, the one-time cost
   the plan cache amortizes away);
3. the vector backend (fused-region mega-expressions + megafused
   loops, see ``repro.gpusim.fuse``) on the same launch, with the
   one-time fusion cost and the fusion statistics recorded;
4. the native backend (generated C compiled into per-plan shared
   libraries, see ``repro.gpusim.native``) on the same launch, with
   the one-time lower+compile cost and the lowering statistics — this
   leg is skipped (and recorded as unavailable) on hosts without a C
   toolchain;
5. cold vs warm ``best_version`` sweeps through the unified profile
   cache across several paper sizes;
6. the disabled-tracer fast path of :mod:`repro.obs` — instrumentation
   must cost nothing when ``REPRO_TRACE`` is unset, so the per-call
   overhead of a no-op ``tracer.span()`` is measured and bounded;
7. sweep scaling: the work-stealing scheduler (persistent pool,
   cost-ordered dispatch) vs the legacy batch-synchronous fan-out
   (fresh pool + blocking ``pool.map`` per sweep call) on a
   straggler-heavy spec mix — the speedup is asserted only on
   multi-core hosts (on one core any schedule is work-conserving) but
   always recorded.

Results go to ``BENCH_searchspace.json`` at the repository root (the
committed snapshot of record), and every run also appends one
schema-versioned line to ``BENCH_ledger.jsonl`` — the trajectory the
regression judgement reads. Headline ratios asserted as absolute
floors: batched >= 2x sequential, compiled >= 2x the batched
interpreter, vector >= 3x compiled, native >= 2x vector, and the warm
sweep still beats cold (the compiled executor made cold points so
cheap — ~0.1 ms each — that the old 5x cache ratio is now bounded by
the timing-model floor, not by simulation). Relative regressions are
judged per-metric against the ledger's trailing window by
``repro.obs.ledger.detect_regressions`` (which also powers ``repro
bench report``), replacing the old single 25%-of-committed-ratio guard
with attributed messages — a fallen ratio names the ratio, a dropped
structure count (fused regions, megafused loops, native chains) names
the count.
"""

import gc
import json
import time
from pathlib import Path

import numpy as np

from conftest import once, write_table
from repro import ReductionFramework, Tunables
from repro.codegen import build_plan
from repro.gpusim import Executor, compile_kernel, fuse_kernel
from repro.obs import ledger
from repro.perf import ProfileCache

SNAPSHOT_PATH = Path(__file__).parent.parent / "BENCH_searchspace.json"
LEDGER_PATH = Path(__file__).parent.parent / ledger.DEFAULT_LEDGER_NAME

#: Sweep sizes for the cold/warm cache measurement (a representative
#: slice of conftest.PAPER_SIZES; larger sizes profile sampled anyway).
SWEEP_SIZES = (4096, 65536, 1048576)

#: The ISSUE acceptance case: a large launch profiled *unsampled*.
LARGE_N = 1 << 20
LARGE_TUNABLES = Tunables(block=256, grid=64)


def _profile_large(mode: str, backend: str, reps: int = 3) -> float:
    """Seconds to profile version (b) at LARGE_N, fully executed.

    ``fw.build`` goes through the (backend-keyed) plan cache, which
    pre-warms every kernel's backend artifact — so the compiled and
    vector backends are measured *warm*, with no compilation or region
    fusion inside the timed region (the one-time cold cost is measured
    separately by :func:`_compile_cold` / :func:`_fuse_cold`).

    Min-of-``reps``: single launches jitter enough (GC, allocator,
    first-touch caches) to flap the headline ratios across runs. The
    sub-100ms backends need more reps to reach steady state — their
    first few launches pay allocator warm-up that the slow interpreter
    legs amortize within one launch — so callers bump ``reps`` there.
    """
    fw = ReductionFramework(
        op="add", cache=ProfileCache(), engine=f"{mode}-{backend}"
    )
    plan = fw.build("b", LARGE_N, LARGE_TUNABLES)
    executor = Executor(mode=mode, backend=backend)
    executor.device.alloc("in", LARGE_N, dtype=np.float32)
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        executor.run_plan(plan)  # grid 64 <= sampling threshold
        best = min(best, time.perf_counter() - start)
    return best


def _profile_large_pair(backends=("compiled", "vector"), reps: int = 25):
    """Warm per-backend seconds for the LARGE_N profile, interleaved.

    The headline backend-vs-backend ratios are asserted hard, so the
    legs are timed *alternately* within the same loop: machine drift
    (load spikes, frequency scaling) then hits every backend in the
    same phase and cancels out of the ratio, where back-to-back
    min-of-N blocks would let a slow phase land on only one leg.
    """
    runs = {}
    for backend in backends:
        fw = ReductionFramework(
            op="add", cache=ProfileCache(), engine=f"batched-{backend}"
        )
        plan = fw.build("b", LARGE_N, LARGE_TUNABLES)
        executor = Executor(mode="batched", backend=backend)
        executor.device.alloc("in", LARGE_N, dtype=np.float32)
        executor.run_plan(plan)  # untimed warm-up launch
        runs[backend] = (executor, plan, [])
    # Collector hygiene, same for every leg: a gen-2 pass landing mid
    # launch adds a constant ~0.2ms that is pure heap-size noise, and a
    # constant added to both sides of a ratio always drags it toward 1.
    gc.collect()
    gc.disable()
    try:
        for _ in range(reps):
            for executor, plan, times in runs.values():
                start = time.perf_counter()
                executor.run_plan(plan)
                times.append(time.perf_counter() - start)
    finally:
        gc.enable()
    return tuple(min(runs[backend][2]) for backend in backends)


def _compile_cold() -> float:
    """Seconds for an uncached plan build + closure compilation (the
    one-time cost a plan-cache miss pays before the first run)."""
    fw = ReductionFramework(op="add", cache=ProfileCache())
    version = fw.resolve("b")
    start = time.perf_counter()
    plan = build_plan(fw.pre, version, LARGE_N, LARGE_TUNABLES)
    for step in plan.kernel_steps():
        compile_kernel(step.kernel)
    return time.perf_counter() - start


def _fuse_cold():
    """Seconds for region fusion on freshly compiled kernels (the
    extra one-time cost a vector-keyed plan-cache miss pays on top of
    closure compilation), plus the fusion statistics of the main
    reduction kernel — the numbers ``repro stats`` surfaces."""
    fw = ReductionFramework(op="add", cache=ProfileCache())
    version = fw.resolve("b")
    plan = build_plan(fw.pre, version, LARGE_N, LARGE_TUNABLES)
    kernels = [step.kernel for step in plan.kernel_steps()]
    for kernel in kernels:
        compile_kernel(kernel)  # fusion input, not part of the cost
    start = time.perf_counter()
    for kernel in kernels:
        fuse_kernel(kernel)
    elapsed = time.perf_counter() - start
    stats = fuse_kernel(kernels[0]).stats
    return elapsed, {
        "fused_regions": stats["fused_regions"],
        "fused_instructions": stats["fused_instructions"],
        "max_region_len": stats["max_region_len"],
        "dead_stores": stats["dead_stores"],
        "megafused_loops": stats["specialized"]["loop"],
        "specialized": dict(stats["specialized"]),
    }


def _lower_cold():
    """Seconds for native lowering + C compilation on freshly compiled
    and fused kernels (the extra one-time cost a native-keyed
    plan-cache miss pays on top of fusion; the `.so` disk cache
    amortizes the compile across processes), plus the lowering
    statistics of the main reduction kernel."""
    from repro.gpusim.native import lower_kernel

    fw = ReductionFramework(op="add", cache=ProfileCache())
    version = fw.resolve("b")
    plan = build_plan(fw.pre, version, LARGE_N, LARGE_TUNABLES)
    kernels = [step.kernel for step in plan.kernel_steps()]
    for kernel in kernels:
        compile_kernel(kernel)  # lowering input, not part of the cost
        fuse_kernel(kernel)
    start = time.perf_counter()
    lowered = [lower_kernel(kernel) for kernel in kernels]
    elapsed = time.perf_counter() - start
    stats = lowered[0].stats
    return elapsed, {
        key: stats[key]
        for key in (
            "native_regions", "native_loops", "native_shfls",
            "native_chains", "native_fallbacks",
        )
    }


def _sweep(fw) -> float:
    """Seconds for a best_version sweep over the Figure 6 catalog.

    Serial (max_workers=1) so the cold/warm ratio isolates the profile
    cache rather than worker-pool spawn variance — the compiled executor
    made each cold point cheap enough that pool startup would dominate.
    """
    start = time.perf_counter()
    for n in SWEEP_SIZES:
        fw.best_version(n, "kepler", max_workers=1)
    return time.perf_counter() - start


#: Workers for the sweep-scaling leg (2: the smallest pool where
#: dispatch order can matter, and available on every CI runner).
SCALING_WORKERS = 2

#: Straggler-heavy batches per leg (distinct cold specs each, so the
#: comparison is spawn + schedule, never cache luck).
SCALING_BATCHES = 3

#: Small specs per batch; together they roughly match the one large
#: straggler, the worst case for submission-order dispatch.
SCALING_SMALLS = 12

#: Floor asserted for work-stealing vs batch-map on multi-core hosts:
#: LPT dispatch overlaps the straggler with the small tail and the
#: persistent pool amortizes two of the three spawns, so well above
#: this in practice; single-core hosts only record the number.
SCALING_FLOOR = 1.05


def _scaling_specs(leg: int, batch: int):
    """One straggler-heavy spec batch, unique per (leg, batch).

    Twelve small unsampled profiles followed by ONE large unsampled
    straggler *last* — the submission order that serializes the tail
    under blocking ``pool.map`` and that cost-ordered dispatch fixes.
    Sizes are perturbed per leg/batch so every point is a cold miss in
    both the parent cache and the workers' in-process caches.
    """
    fw = ReductionFramework(op="add", cache=ProfileCache())
    version = fw.resolve("b")
    salt = leg * SCALING_BATCHES + batch
    tunables = Tunables(block=256, grid=64)  # grid 64: unsampled
    specs = [
        ("add", "float", False, version, 65536 + 16 * salt + k, tunables,
         None)
        for k in range(SCALING_SMALLS)
    ]
    specs.append(
        ("add", "float", False, version, LARGE_N + salt, tunables, None)
    )
    return specs


def _sweep_scaling():
    """Wall seconds: legacy batch-map fan-out vs the work-stealing
    scheduler over the same straggler-heavy workload."""
    import os
    from concurrent.futures import ProcessPoolExecutor

    from repro.perf import map_profiles, shutdown_scheduler
    from repro.perf.parallel import _profile_spec

    # Legacy behavior, reproduced faithfully: every sweep call spawned
    # a fresh pool and consumed a blocking map in submission order.
    start = time.perf_counter()
    for batch in range(SCALING_BATCHES):
        with ProcessPoolExecutor(max_workers=SCALING_WORKERS) as pool:
            list(pool.map(_profile_spec, _scaling_specs(0, batch)))
    batch_pool_s = time.perf_counter() - start

    # The scheduler pays its own pool spawn inside the timed region
    # (shutdown first), then reuses it across the remaining batches.
    shutdown_scheduler()
    start = time.perf_counter()
    for batch in range(SCALING_BATCHES):
        map_profiles(_scaling_specs(1, batch), max_workers=SCALING_WORKERS)
    work_stealing_s = time.perf_counter() - start
    shutdown_scheduler()

    return {
        "workers": SCALING_WORKERS,
        "batches": SCALING_BATCHES,
        "specs_per_batch": SCALING_SMALLS + 1,
        "cpus": os.cpu_count(),
        "batch_pool_s": round(batch_pool_s, 4),
        "work_stealing_s": round(work_stealing_s, 4),
        "speedup_vs_batch": round(batch_pool_s / work_stealing_s, 2),
    }


#: Iterations for the no-op tracer micro-bench (large enough that the
#: per-call quotient is stable, small enough to stay in the noise of the
#: full bench run).
NOOP_SPAN_ITERS = 200_000

#: Ceiling on the disabled-tracer per-span cost. A no-op span is one
#: attribute read plus returning a shared singleton — tens of
#: nanoseconds; 2 microseconds leaves two orders of magnitude of slack
#: for slow CI boxes while still catching any accidental allocation or
#: timestamping on the disabled path.
NOOP_SPAN_CEILING_S = 2e-6


def _noop_tracer_overhead() -> float:
    """Per-call seconds of ``tracer.span()`` with tracing disabled."""
    from repro.obs import get_tracer

    tracer = get_tracer()
    was_enabled = tracer.enabled
    tracer.enabled = False  # force the fast path even if REPRO_TRACE set
    try:
        with tracer.span("bench.warmup"):
            pass
        start = time.perf_counter()
        for _ in range(NOOP_SPAN_ITERS):
            with tracer.span("bench.noop", n=LARGE_N, mode="batched"):
                pass
        elapsed = time.perf_counter() - start
    finally:
        tracer.enabled = was_enabled
    return elapsed / NOOP_SPAN_ITERS


def measure():
    from repro.gpusim.native import native_available, unavailable_reason

    # The native ratio gets its own interleaved pair, timed FIRST:
    # vector is re-timed alongside native so drift cancels out of
    # *this* ratio too (the earlier vector number pairs with
    # compiled), and the pair runs before the interpreter legs bloat
    # the heap — their per-lane index arrays leave the allocator in a
    # state that adds a constant ~0.1ms to every later launch, which
    # compresses the fastest pair's ratio the most.
    have_native = native_available()
    if have_native:
        vector_vs_native_s, native_s = _profile_large_pair(
            ("vector", "native")
        )

    sequential_s = _profile_large("sequential", "interpreted")
    batched_s = _profile_large("batched", "interpreted")
    compiled_s, vector_s = _profile_large_pair()
    compile_cold_s = _compile_cold()
    fuse_cold_s, fusion = _fuse_cold()

    if have_native:
        lower_cold_s, lowering = _lower_cold()
        native_section = {
            "available": True,
            "version": "b",
            "n": LARGE_N,
            "vector_warm_s": round(vector_vs_native_s, 4),
            "native_warm_s": round(native_s, 4),
            "lower_cold_s": round(lower_cold_s, 4),
            "speedup_vs_vector": round(vector_vs_native_s / native_s, 2),
            "lowering": lowering,
        }
    else:
        native_section = {
            "available": False,
            "reason": unavailable_reason(),
        }

    fw = ReductionFramework(op="add", cache=ProfileCache())
    cold_s = _sweep(fw)
    warm_s = _sweep(fw)  # same framework: every profile now cached

    sweep_scaling = _sweep_scaling()

    noop_span_s = _noop_tracer_overhead()

    stats = fw.cache.stats
    return {
        "bench": "simperf",
        "versions_swept": len(fw.catalog),
        "sweep_sizes": list(SWEEP_SIZES),
        "profile_large": {
            "version": "b",
            "n": LARGE_N,
            "block": LARGE_TUNABLES.block,
            "grid": LARGE_TUNABLES.grid,
            "sequential_s": round(sequential_s, 4),
            "batched_s": round(batched_s, 4),
            "speedup": round(sequential_s / batched_s, 2),
        },
        "compiled_executor": {
            "version": "b",
            "n": LARGE_N,
            "interpreted_s": round(batched_s, 4),
            "compiled_warm_s": round(compiled_s, 4),
            "compile_cold_s": round(compile_cold_s, 4),
            "speedup_vs_interpreted": round(batched_s / compiled_s, 2),
        },
        "vector_backend": {
            "version": "b",
            "n": LARGE_N,
            "vector_warm_s": round(vector_s, 4),
            "fuse_cold_s": round(fuse_cold_s, 4),
            "speedup_vs_compiled": round(compiled_s / vector_s, 2),
            "fusion": fusion,
        },
        "native_backend": native_section,
        "best_version_sweep": {
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "speedup": round(cold_s / warm_s, 2),
            "cache": stats.as_dict(),
        },
        "sweep_scaling": sweep_scaling,
        "observability": {
            "noop_span_ns": round(noop_span_s * 1e9, 1),
            "iters": NOOP_SPAN_ITERS,
            "ceiling_ns": NOOP_SPAN_CEILING_S * 1e9,
        },
    }


def test_simperf_snapshot(benchmark):
    data = once(benchmark, measure)
    SNAPSHOT_PATH.write_text(json.dumps(data, indent=2) + "\n")
    # Append this run to the trajectory and judge it against the
    # trailing window *before* asserting, so a failing run is still on
    # record (the ledger is append-only; a red run is data too).
    ledger.append_entry(ledger.make_entry(data), LEDGER_PATH)
    regressions = ledger.detect_regressions(ledger.read_ledger(LEDGER_PATH))
    large = data["profile_large"]
    compiled = data["compiled_executor"]
    vector = data["vector_backend"]
    native = data["native_backend"]
    sweep = data["best_version_sweep"]
    scaling = data["sweep_scaling"]
    if native["available"]:
        native_lines = [
            f"  native (generated-C) backend on the same launch:",
            f"    vector {native['vector_warm_s']:.3f}s   "
            f"native {native['native_warm_s']:.3f}s   "
            f"({native['speedup_vs_vector']:.1f}x; one-time lower+compile "
            f"{native['lower_cold_s']:.3f}s; "
            f"{native['lowering']['native_regions']} regions, "
            f"{native['lowering']['native_loops']} loop(s), "
            f"{native['lowering']['native_chains']} chain(s))",
        ]
    else:
        native_lines = [
            f"  native backend: unavailable ({native['reason']})",
        ]
    write_table(
        "simperf",
        [
            "Search-infrastructure snapshot (see docs/PERFORMANCE.md)",
            f"  unsampled profile, n={large['n']}, grid={large['grid']}:",
            f"    sequential {large['sequential_s']:.3f}s   "
            f"batched {large['batched_s']:.3f}s   "
            f"({large['speedup']:.1f}x)",
            f"  compiled executor on the same launch:",
            f"    interpreted {compiled['interpreted_s']:.3f}s   "
            f"compiled {compiled['compiled_warm_s']:.3f}s   "
            f"({compiled['speedup_vs_interpreted']:.1f}x; "
            f"one-time compile {compiled['compile_cold_s']:.3f}s)",
            f"  vector (fused-region) backend on the same launch:",
            f"    compiled {compiled['compiled_warm_s']:.3f}s   "
            f"vector {vector['vector_warm_s']:.3f}s   "
            f"({vector['speedup_vs_compiled']:.1f}x; one-time fuse "
            f"{vector['fuse_cold_s']:.3f}s; "
            f"{vector['fusion']['fused_regions']} regions, "
            f"{vector['fusion']['megafused_loops']} megafused loop(s))",
            *native_lines,
            f"  best_version sweep over {data['versions_swept']} versions"
            f" x {len(data['sweep_sizes'])} sizes:",
            f"    cold {sweep['cold_s']:.3f}s   warm {sweep['warm_s']:.3f}s"
            f"   ({sweep['speedup']:.1f}x)",
            f"  sweep scaling, {scaling['batches']} straggler-heavy "
            f"batches x {scaling['specs_per_batch']} specs, "
            f"{scaling['workers']} workers ({scaling['cpus']} cpu(s)):",
            f"    batch-map {scaling['batch_pool_s']:.3f}s   "
            f"work-stealing {scaling['work_stealing_s']:.3f}s   "
            f"({scaling['speedup_vs_batch']:.2f}x)",
            f"  disabled tracer: "
            f"{data['observability']['noop_span_ns']:.0f}ns per span "
            f"(ceiling {data['observability']['ceiling_ns']:.0f}ns)",
            f"  [snapshot written to {SNAPSHOT_PATH.name}; "
            f"ledger entry appended to {LEDGER_PATH.name}]",
        ],
    )
    assert large["speedup"] >= 2.0, "batched profiling must beat sequential 2x"
    assert (
        compiled["speedup_vs_interpreted"] >= 2.0
    ), "compiled dispatch must beat the interpreter 2x"
    assert vector["speedup_vs_compiled"] >= 3.0, (
        "the fused-region vector backend must beat the compiled "
        "backend 3x on the 1M profile (ISSUE acceptance)"
    )
    if native["available"]:
        assert native["speedup_vs_vector"] >= 2.0, (
            "the native codegen backend must beat the vector backend "
            "2x warm on the 1M profile (ISSUE acceptance)"
        )
    # Relative regression judgement: per-metric against the ledger's
    # trailing window, with attribution — speedup ratios compare with a
    # tolerance band (they are ratios, not absolute seconds, so the
    # checks hold across machines), structure counts (fused regions,
    # megafused loops, native chains) flag on any drop.
    assert not regressions, (
        "bench ledger regressions vs trailing window:\n  "
        + "\n  ".join(r["message"] for r in regressions)
    )
    # Cold profiling collapsed from ~0.5s to ~10ms with the compiled
    # executor + plan cache, so warm/cold is no longer simulation-bound;
    # assert the cache still pays (warm faster, saved > spent) instead
    # of the old 5x ratio.
    assert sweep["speedup"] >= 1.2, "warm-cache sweep must still beat cold"
    # On one core any schedule is work-conserving (both legs run the
    # same total simulation back to back), so the ordering win only
    # exists with real parallelism; the number is recorded regardless.
    if (scaling["cpus"] or 1) >= 2:
        assert scaling["speedup_vs_batch"] >= SCALING_FLOOR, (
            "work-stealing sweep must beat the batch-synchronous "
            f"pool.map fan-out on a straggler-heavy mix "
            f"(got {scaling['speedup_vs_batch']}x, floor {SCALING_FLOOR}x)"
        )
    cache = sweep["cache"]
    assert cache["time_saved_s"] >= cache["compute_time_s"]
    noop_ns = data["observability"]["noop_span_ns"]
    assert noop_ns < NOOP_SPAN_CEILING_S * 1e9, (
        f"disabled tracer costs {noop_ns:.0f}ns per span — the no-op "
        f"fast path regressed (ceiling {NOOP_SPAN_CEILING_S * 1e9:.0f}ns)"
    )
