"""Search-infrastructure performance snapshot (not a paper figure).

Measures the three mechanisms of docs/PERFORMANCE.md on this machine:

1. batched vs sequential block execution of one large unsampled
   profiling launch (n = 1M, grid 64 — the ISSUE acceptance case);
2. cold vs warm ``best_version`` sweeps through the unified profile
   cache across several paper sizes.

Results go to ``BENCH_searchspace.json`` at the repository root so the
speedups are tracked alongside the code. Both headline ratios are
asserted: warm sweep >= 5x cold, batched profiling >= 2x sequential.
"""

import json
import time
from pathlib import Path

import numpy as np

from conftest import once, write_table
from repro import ReductionFramework, Tunables
from repro.gpusim import Executor
from repro.perf import ProfileCache

SNAPSHOT_PATH = Path(__file__).parent.parent / "BENCH_searchspace.json"

#: Sweep sizes for the cold/warm cache measurement (a representative
#: slice of conftest.PAPER_SIZES; larger sizes profile sampled anyway).
SWEEP_SIZES = (4096, 65536, 1048576)

#: The ISSUE acceptance case: a large launch profiled *unsampled*.
LARGE_N = 1 << 20
LARGE_TUNABLES = Tunables(block=256, grid=64)


def _profile_large(mode: str) -> float:
    """Seconds to profile version (b) at LARGE_N, fully executed."""
    fw = ReductionFramework(op="add", cache=ProfileCache())
    plan = fw.build("b", LARGE_N, LARGE_TUNABLES)
    executor = Executor(mode=mode)
    executor.device.alloc("in", LARGE_N, dtype=np.float32)
    start = time.perf_counter()
    executor.run_plan(plan)  # grid 64 <= sampling threshold: unsampled
    return time.perf_counter() - start


def _sweep(fw) -> float:
    """Seconds for a best_version sweep over the Figure 6 catalog."""
    start = time.perf_counter()
    for n in SWEEP_SIZES:
        fw.best_version(n, "kepler")
    return time.perf_counter() - start


def measure():
    sequential_s = _profile_large("sequential")
    batched_s = _profile_large("batched")

    fw = ReductionFramework(op="add", cache=ProfileCache())
    cold_s = _sweep(fw)
    warm_s = _sweep(fw)  # same framework: every profile now cached

    stats = fw.cache.stats
    return {
        "bench": "simperf",
        "versions_swept": len(fw.catalog),
        "sweep_sizes": list(SWEEP_SIZES),
        "profile_large": {
            "version": "b",
            "n": LARGE_N,
            "block": LARGE_TUNABLES.block,
            "grid": LARGE_TUNABLES.grid,
            "sequential_s": round(sequential_s, 4),
            "batched_s": round(batched_s, 4),
            "speedup": round(sequential_s / batched_s, 2),
        },
        "best_version_sweep": {
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "speedup": round(cold_s / warm_s, 2),
            "cache": stats.as_dict(),
        },
    }


def test_simperf_snapshot(benchmark):
    data = once(benchmark, measure)
    SNAPSHOT_PATH.write_text(json.dumps(data, indent=2) + "\n")
    large = data["profile_large"]
    sweep = data["best_version_sweep"]
    write_table(
        "simperf",
        [
            "Search-infrastructure snapshot (see docs/PERFORMANCE.md)",
            f"  unsampled profile, n={large['n']}, grid={large['grid']}:",
            f"    sequential {large['sequential_s']:.3f}s   "
            f"batched {large['batched_s']:.3f}s   "
            f"({large['speedup']:.1f}x)",
            f"  best_version sweep over {data['versions_swept']} versions"
            f" x {len(data['sweep_sizes'])} sizes:",
            f"    cold {sweep['cold_s']:.3f}s   warm {sweep['warm_s']:.3f}s"
            f"   ({sweep['speedup']:.1f}x)",
            f"  [snapshot written to {SNAPSHOT_PATH.name}]",
        ],
    )
    assert large["speedup"] >= 2.0, "batched profiling must beat sequential 2x"
    assert sweep["speedup"] >= 5.0, "warm-cache sweep must beat cold 5x"
