"""Setuptools shim.

This environment has no ``wheel`` package and no network access, so the
PEP 517/660 build path (which pip uses whenever ``pyproject.toml`` carries
a ``[build-system]`` table) cannot produce an editable wheel. Keeping an
explicit ``setup.py`` lets ``pip install -e .`` use the legacy
``setup.py develop`` code path, which works offline.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Automatic Generation of Warp-Level Primitives and "
        "Atomic Instructions for Fast and Portable Parallel Reduction on "
        "GPUs' (CGO 2019)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
)
