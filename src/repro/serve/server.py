"""Long-lived reduction server: intake, admission control, sessions.

:class:`ReductionServer` is the zero-dependency serving entry point::

    from repro.serve import ReductionServer

    with ReductionServer() as server:
        future = server.submit(data, op="add", version="p")
        response = future.result()          # ReduceResponse
        value = server.reduce(data).value   # synchronous sugar

``submit`` is the async intake: it validates, admits and enqueues in
the caller's thread (microseconds) and returns a
:class:`concurrent.futures.Future`; callers *are* the thread pool.
Requests route to multi-tenant **sessions** keyed by (op, ctype,
version); each session's :class:`~repro.serve.scheduler.SessionScheduler`
fuses concurrent requests into single segmented launches.

Admission control happens here, synchronously, with typed errors
(:mod:`repro.serve.errors`):

* **per-tenant quota** — at most ``tenant_quota`` requests in flight
  per tenant; the excess is rejected with :class:`QuotaExceeded`, never
  queued, so one tenant cannot starve the rest;
* **bounded queues** — a full session queue rejects with
  :class:`QueueFull` (backpressure, global per session);
* **deadlines** — per-request (or ``default_deadline_s``) queue-wait
  budgets, enforced by the scheduler with :class:`DeadlineExceeded`;
* **validation** — unknown op/ctype/version or non-1-D data rejects
  with :class:`RequestInvalid`.

Live telemetry flows through :func:`repro.obs.default_metrics` under
the ``serve.*`` namespace; :meth:`ReductionServer.stats` additionally
returns this server's own consistent counter snapshot (the registry is
process-wide and may aggregate several servers).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from ..core.sources import LIBRARY_OPS
from ..core.variants import FIG6
from ..gpusim import parse_engine_spec
from ..obs import default_metrics
from .errors import QueueFull, QuotaExceeded, RequestInvalid, ServerClosed
from .request import ReduceRequest, ReduceResponse, SessionKey, _Pending
from .scheduler import SessionScheduler

#: Counter names a server tracks (and mirrors under ``serve.*``).
_COUNTER_FIELDS = (
    "requests",
    "responses",
    "launches",
    "batches",
    "fused_batches",
    "fused_requests",
    "unfused_requests",
    "fallbacks",
    "errors",
    "rejected_quota",
    "rejected_queue",
    "rejected_deadline",
    "rejected_invalid",
    "rejected_closed",
)


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of one :class:`ReductionServer`."""

    #: Fusion window: how long the batcher waits for co-travellers
    #: after the first request of a batch arrives.
    window_s: float = 0.002
    #: Caps on one fused batch.
    max_batch_requests: int = 64
    max_batch_elements: int = 1 << 22
    #: Bounded intake queue per session (backpressure beyond this).
    max_queue_depth: int = 256
    #: Max in-flight (queued + executing) requests per tenant.
    tenant_quota: int = 64
    #: Queue-wait budget applied when a request has none of its own.
    default_deadline_s: float = None
    #: Engine spec for every session ("auto", "batched-interpreted",
    #: "sequential-native", ... — see ``parse_engine_spec``).
    engine: str = "auto"
    #: Master switch for cross-request fusion (off = always unfused).
    fuse: bool = True
    #: ``close()`` default: finish queued work (True) or reject it.
    drain_on_close: bool = True

    def __post_init__(self):
        parse_engine_spec(self.engine)  # fail fast on a bad spec
        if self.window_s < 0:
            raise ValueError("window_s must be >= 0")
        if self.max_batch_requests < 1:
            raise ValueError("max_batch_requests must be >= 1")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.tenant_quota < 1:
            raise ValueError("tenant_quota must be >= 1")


class ReductionServer:
    """Multi-tenant reduction-as-a-service runtime (in-process)."""

    def __init__(self, config: ServerConfig = None):
        self.config = config or ServerConfig()
        self._lock = threading.Lock()
        self._sessions = {}
        self._inflight = {}  # tenant -> in-flight request count
        self._counters = {name: 0 for name in _COUNTER_FIELDS}
        self._closed = False
        self._started_at = time.perf_counter()

    # -- intake --------------------------------------------------------

    def submit(
        self,
        data,
        op: str = "add",
        ctype: str = "float",
        version: str = "p",
        tenant: str = "default",
        deadline_s: float = None,
    ) -> Future:
        """Validate, admit and enqueue one request; returns its Future.

        Raises the typed admission errors synchronously — a rejected
        request never occupies queue space."""
        request = ReduceRequest(
            data=self._validate_data(data, op, ctype, version),
            op=op,
            ctype=ctype,
            version=version,
            tenant=tenant,
            deadline_s=(
                deadline_s if deadline_s is not None
                else self.config.default_deadline_s
            ),
        )
        pending = _Pending(request=request)
        if request.deadline_s is not None:
            pending.deadline_at = pending.submitted_at + request.deadline_s

        with self._lock:
            if self._closed:
                raise ServerClosed("server is closed")
            inflight = self._inflight.get(tenant, 0)
            if inflight >= self.config.tenant_quota:
                self._counters["rejected_quota"] += 1
                default_metrics().inc("serve.rejected.quota")
                raise QuotaExceeded(tenant, self.config.tenant_quota)
            self._inflight[tenant] = inflight + 1
            scheduler = self._session_locked(request.key())

        if not scheduler.try_enqueue(pending):
            with self._lock:
                self._inflight[tenant] -= 1
                self._counters["rejected_queue"] += 1
            default_metrics().inc("serve.rejected.queue")
            raise QueueFull(request.key().label(), self.config.max_queue_depth)

        with self._lock:
            self._counters["requests"] += 1
        default_metrics().inc("serve.requests")
        return pending.future

    def reduce(self, data, **kwargs) -> ReduceResponse:
        """Synchronous :meth:`submit` (blocks for the response)."""
        return self.submit(data, **kwargs).result()

    # -- lifecycle -----------------------------------------------------

    def close(self, drain: bool = None) -> None:
        """Stop intake, then stop every session's batcher thread.

        ``drain=True`` (the config default) finishes queued requests
        first; ``drain=False`` rejects them with ServerClosed."""
        drain = self.config.drain_on_close if drain is None else drain
        with self._lock:
            if self._closed:
                return
            self._closed = True
            sessions = list(self._sessions.values())
        for scheduler in sessions:
            scheduler.close(drain=drain)
        for scheduler in sessions:
            scheduler.join(timeout=60.0)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    # -- telemetry -----------------------------------------------------

    def stats(self) -> dict:
        """Consistent snapshot of this server's counters + derived
        ratios; also refreshes the ``serve.fusion_ratio`` gauge."""
        with self._lock:
            counters = dict(self._counters)
            sessions = {
                key.label(): scheduler.queue_depth
                for key, scheduler in self._sessions.items()
            }
            inflight = {
                tenant: count
                for tenant, count in self._inflight.items()
                if count
            }
        responses = counters["responses"]
        launches = counters["launches"]
        fusion_ratio = (responses / launches) if launches else 0.0
        snapshot = {
            "uptime_s": time.perf_counter() - self._started_at,
            "sessions": sessions,
            "tenants_inflight": inflight,
            "fusion_ratio": fusion_ratio,
            **counters,
        }
        default_metrics().record(gauges={
            "serve.fusion_ratio": round(fusion_ratio, 4),
            "serve.sessions": len(sessions),
        })
        return snapshot

    # -- internals -----------------------------------------------------

    def _validate_data(self, data, op, ctype, version) -> np.ndarray:
        if op not in LIBRARY_OPS:
            raise RequestInvalid(
                f"op must be one of {LIBRARY_OPS}, got {op!r}"
            )
        if ctype not in ("float", "int"):
            raise RequestInvalid(f"ctype must be 'float' or 'int', got {ctype!r}")
        if version not in FIG6:
            raise RequestInvalid(
                f"version must be a Figure 6 label (a-p), got {version!r}"
            )
        dtype = np.int32 if ctype == "int" else np.float32
        try:
            array = np.ascontiguousarray(data, dtype=dtype)
        except (TypeError, ValueError) as exc:
            raise RequestInvalid(f"bad request data: {exc}") from exc
        if array.ndim != 1:
            raise RequestInvalid(
                f"request data must be 1-D, got {array.ndim}-D"
            )
        return array

    def _session_locked(self, key: SessionKey) -> SessionScheduler:
        scheduler = self._sessions.get(key)
        if scheduler is None:
            scheduler = SessionScheduler(
                key, self.config, account=self._account,
                on_finish=self._finish,
            )
            self._sessions[key] = scheduler
        return scheduler

    def _account(self, **deltas) -> None:
        """Scheduler callback: fold counter deltas in atomically."""
        with self._lock:
            for name, delta in deltas.items():
                self._counters[name] += delta
        rejected = {
            name: delta for name, delta in deltas.items()
            if name.startswith("rejected_") or name == "errors"
        }
        if rejected:
            default_metrics().record(counters={
                "serve." + name.replace("rejected_", "rejected."): delta
                for name, delta in rejected.items()
            })

    def _finish(self, pending: _Pending) -> None:
        """Scheduler callback on any request resolution: quota release."""
        tenant = pending.request.tenant
        with self._lock:
            count = self._inflight.get(tenant, 0)
            if count > 0:
                self._inflight[tenant] = count - 1
