"""Per-session batching scheduler: the cross-request launch fusion core.

One :class:`SessionScheduler` exists per (op, ctype, version) session.
It owns a bounded intake queue and a single batcher thread that

1. blocks until a request arrives,
2. keeps collecting requests for at most ``window_s`` seconds (or until
   the batch hits its request/element caps),
3. packs the survivors as heterogeneous segments of ONE segmented
   reduction plan (:mod:`repro.codegen.segmented`) and executes them as
   a single launch through the configured engine backend,
4. resolves each request's Future with a per-segment result that is
   bit-identical to what a standalone run of that request returns.

Degradation is graceful and silent: when segmented synthesis rejects
the version (stride grid patterns), or fused execution fails for any
reason, the batch re-executes unfused — one standalone plan per request
— and only the ``fallback`` counters tell the difference.  A batch of
one skips fusion entirely (there is nothing to fuse).

The batcher thread is the only thread that touches the framework and
executor state for its session; everything it shares with submitters is
either the thread-safe queue or per-request Futures.
"""

from __future__ import annotations

import queue
import threading
import time

import numpy as np

from ..codegen.segmented import (
    build_segmented_plan_cached,
    execute_segmented_plan,
)
from ..core.sources import identity_value
from ..lang.errors import SynthesisError
from ..obs import default_metrics
from ..runtime.session import ReductionFramework
from .errors import DeadlineExceeded, RequestInvalid, ServerClosed
from .request import ReduceResponse, SessionKey, _Pending

#: Queue sentinel: wakes the batcher for shutdown.
_CLOSE = object()


class SessionScheduler:
    """Batching scheduler for one (op, ctype, version) session."""

    def __init__(self, key: SessionKey, config, account, on_finish):
        self.key = key
        self.config = config
        #: Server accounting callback: ``account(**counter_deltas)``.
        self._account = account
        #: Server per-request completion callback (quota release).
        self._on_finish = on_finish
        self._queue = queue.Queue(maxsize=config.max_queue_depth)
        self._saw_close = False
        self._drain = config.drain_on_close
        self._fw = None
        self._fw_error = None
        self._thread = threading.Thread(
            target=self._loop, name=f"serve-{key.label()}", daemon=True
        )
        self._thread.start()

    # -- submitter side ------------------------------------------------

    def try_enqueue(self, pending: _Pending) -> bool:
        """Non-blocking enqueue; False means the bounded queue is full."""
        try:
            self._queue.put_nowait(pending)
        except queue.Full:
            return False
        self._gauge_depth()
        return True

    def close(self, drain: bool) -> None:
        """Ask the batcher to stop; pending work is drained or rejected
        per ``drain``. The sentinel bypasses the bound on purpose."""
        self._drain = drain
        self._queue.put(_CLOSE)

    def join(self, timeout: float = None) -> None:
        self._thread.join(timeout=timeout)

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    # -- batcher thread ------------------------------------------------

    def _loop(self) -> None:
        while not self._saw_close:
            item = self._queue.get()
            if item is _CLOSE:
                self._saw_close = True
                break
            batch = self._collect(item)
            self._gauge_depth()
            if self._saw_close and not self._drain:
                # Close raced into the collection window: these requests
                # were never executed, so a no-drain close rejects them
                # like the rest of the queue.
                for pending in batch:
                    self._reject(pending, ServerClosed("server closed"))
                    self._account(rejected_closed=1)
            else:
                self._execute(batch)
        self._shutdown_drain()

    def _collect(self, first: _Pending) -> list:
        """The fusion window: bounded in time, requests and elements."""
        config = self.config
        batch = [first]
        total = len(first.request.data)
        deadline = time.perf_counter() + config.window_s
        while (
            len(batch) < config.max_batch_requests
            and total < config.max_batch_elements
        ):
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                break
            try:
                item = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if item is _CLOSE:
                self._saw_close = True
                break
            batch.append(item)
            total += len(item.request.data)
        return batch

    def _shutdown_drain(self) -> None:
        """After the close sentinel: finish or reject whatever queued."""
        leftovers = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _CLOSE:
                leftovers.append(item)
        if not leftovers:
            return
        if self._drain:
            config = self.config
            for start in range(0, len(leftovers), config.max_batch_requests):
                self._execute(leftovers[start:start + config.max_batch_requests])
        else:
            for pending in leftovers:
                self._reject(pending, ServerClosed("server closed"))
                self._account(rejected_closed=1)

    # -- execution -----------------------------------------------------

    def _framework(self) -> ReductionFramework:
        if self._fw_error is not None:
            raise self._fw_error
        if self._fw is None:
            try:
                self._fw = ReductionFramework(
                    op=self.key.op,
                    ctype=self.key.ctype,
                    engine=self.config.engine,
                )
                self._fw.resolve(self.key.version)
            except (ValueError, KeyError) as exc:
                self._fw = None
                self._fw_error = RequestInvalid(str(exc))
                raise self._fw_error from exc
        return self._fw

    def _execute(self, batch: list) -> None:
        now = time.perf_counter()
        live = []
        for pending in batch:
            if pending.expired(now):
                self._reject(
                    pending, DeadlineExceeded(now - pending.submitted_at)
                )
                self._account(rejected_deadline=1)
            else:
                live.append(pending)
        if not live:
            return

        try:
            fw = self._framework()
        except RequestInvalid as exc:
            for pending in live:
                self._reject(pending, exc)
                self._account(rejected_invalid=1)
            return

        fused = False
        if self.config.fuse and len(live) > 1:
            fused = self._execute_fused(fw, live)
        if not fused:
            self._execute_unfused(fw, live, batch_size=len(live))

    def _execute_fused(self, fw, live) -> bool:
        """One segmented launch for the whole batch; False → caller
        falls back to unfused execution (graceful degradation)."""
        arrays = [pending.request.data for pending in live]
        lengths = [len(a) for a in arrays]
        try:
            plan = build_segmented_plan_cached(
                fw.pre,
                fw.resolve(self.key.version),
                lengths,
                backend=fw.engine_backend,
            )
            results, profile = execute_segmented_plan(
                plan, arrays, mode=fw.engine_mode, backend=fw.engine_backend
            )
        except SynthesisError:
            # The version cannot be segment-fused (stride grid pattern).
            self._account(fallbacks=1)
            return False
        except Exception:
            # Any fused-path failure degrades to per-request execution
            # rather than failing the batch.
            self._account(fallbacks=1)
            return False
        launches = len(profile.steps)
        batch_elements = int(sum(lengths))
        now = time.perf_counter()
        latencies = {}
        for index, pending in enumerate(live):
            response = ReduceResponse(
                value=float(results[index]),
                n=lengths[index],
                fused=True,
                batch_size=len(live),
                latency_s=now - pending.submitted_at,
                plan_name=plan.name,
            )
            self._resolve(pending, response)
        self._account(
            responses=len(live),
            fused_requests=len(live),
            launches=launches,
            batches=1,
            fused_batches=1,
        )
        self._metrics_batch(
            live, fused=True, launches=launches, elements=batch_elements
        )
        return True

    def _execute_unfused(self, fw, live, batch_size: int) -> None:
        launches = 0
        served = 0
        elements = 0
        for pending in live:
            data = pending.request.data
            try:
                value, plan_name, request_launches = self._run_one(fw, data)
            except Exception as exc:  # surfaced to the one caller
                self._reject(pending, exc)
                self._account(errors=1)
                continue
            launches += request_launches
            served += 1
            elements += len(data)
            response = ReduceResponse(
                value=value,
                n=len(data),
                fused=False,
                batch_size=batch_size,
                latency_s=time.perf_counter() - pending.submitted_at,
                plan_name=plan_name,
            )
            self._resolve(pending, response)
        if served:
            self._account(
                responses=served,
                unfused_requests=served,
                launches=launches,
                batches=1,
            )
            self._metrics_batch(
                live[:served], fused=False, launches=launches,
                elements=elements,
            )

    def _run_one(self, fw, data: np.ndarray):
        """Standalone execution of one request (the unfused path and the
        reference semantics for fused results)."""
        if len(data) == 0:
            # An empty reduction is the operator identity — the same
            # value an empty segment produces in a fused launch.
            identity = identity_value(self.key.op, self.key.ctype)
            return float(np.array(identity, dtype=fw.dtype)), "", 0
        result = fw.run(data, version=self.key.version)
        return result.value, result.plan_name, len(result.profile.steps)

    # -- resolution & telemetry ---------------------------------------

    def _resolve(self, pending: _Pending, response: ReduceResponse) -> None:
        pending.future.set_result(response)
        self._on_finish(pending)

    def _reject(self, pending: _Pending, error: Exception) -> None:
        pending.future.set_exception(error)
        self._on_finish(pending)

    def _metrics_batch(self, live, fused: bool, launches: int,
                       elements: int) -> None:
        """One grouped registry update per executed batch."""
        kind = "fused" if fused else "unfused"
        latency_key = f"serve.latency_us.{self.key.label()}"
        observations = {
            "serve.batch_segments": len(live),
            "serve.batch_elements": elements,
        }
        metrics = default_metrics()
        metrics.record(
            counters={
                f"serve.batches.{kind}": 1,
                f"serve.requests.{kind}": len(live),
                "serve.launches": launches,
            },
            observations=observations,
        )
        # Latency samples are per request; observe() them individually
        # (record() takes one value per histogram name).
        now = time.perf_counter()
        for pending in live:
            metrics.observe(
                latency_key, (now - pending.submitted_at) * 1e6
            )

    def _gauge_depth(self) -> None:
        default_metrics().gauge(
            f"serve.queue_depth.{self.key.label()}", self._queue.qsize()
        )
