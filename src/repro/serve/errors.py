"""Typed rejection errors of the serving runtime.

Every way the server refuses work has its own exception class so
clients (and tests, and the load generator) can react per cause —
retry-with-backoff on :class:`QueueFull`, shed load on
:class:`QuotaExceeded`, give up on :class:`DeadlineExceeded`.  All of
them derive from :class:`ServeError`; none of them is ever used for a
*successful* degraded path (fused → unfused fallback is silent except
for its metrics).
"""

from __future__ import annotations


class ServeError(Exception):
    """Base class of every serving-layer rejection."""


class RequestInvalid(ServeError):
    """The request itself is malformed (unknown op/ctype/version, bad
    data shape) — retrying it unchanged can never succeed."""


class QuotaExceeded(ServeError):
    """The tenant already has its full quota of requests in flight.

    Raised synchronously at submission — the request is *rejected*, not
    queued, so one tenant cannot grow the queue without bound."""

    def __init__(self, tenant: str, quota: int):
        super().__init__(
            f"tenant {tenant!r} is at its in-flight quota ({quota})"
        )
        self.tenant = tenant
        self.quota = quota


class QueueFull(ServeError):
    """The session's bounded intake queue is full (backpressure).

    Distinct from :class:`QuotaExceeded`: this is global pressure on
    one (op, ctype, version) session, not one tenant's overuse."""

    def __init__(self, session: str, depth: int):
        super().__init__(
            f"session {session!r} queue is full ({depth} waiting)"
        )
        self.session = session
        self.depth = depth


class DeadlineExceeded(ServeError):
    """The request's deadline passed before its batch executed."""

    def __init__(self, waited_s: float):
        super().__init__(
            f"request deadline exceeded after {waited_s * 1e3:.2f} ms in queue"
        )
        self.waited_s = waited_s


class ServerClosed(ServeError):
    """The server is shut (or shutting) down and takes no new work."""
