"""Reduction-as-a-service: long-lived serving with launch fusion.

The serving runtime turns the batch-oriented framework into an online
system: concurrent small reduction requests are admitted under
per-tenant quotas and bounded queues, batched within a fusion window,
and executed as heterogeneous segments of ONE segmented-reduction
launch (:mod:`repro.codegen.segmented`) — bit-identical to sequential
per-request execution, with strictly fewer launches.

See ``docs/SERVING.md`` for architecture and semantics.
"""

from .client import DEFAULT_MIX, LoadGenerator, LoadReport, prove_backpressure
from .errors import (
    DeadlineExceeded,
    QueueFull,
    QuotaExceeded,
    RequestInvalid,
    ServeError,
    ServerClosed,
)
from .request import ReduceRequest, ReduceResponse, SessionKey
from .scheduler import SessionScheduler
from .server import ReductionServer, ServerConfig

__all__ = [
    "DEFAULT_MIX",
    "DeadlineExceeded",
    "LoadGenerator",
    "LoadReport",
    "QueueFull",
    "QuotaExceeded",
    "ReduceRequest",
    "ReduceResponse",
    "ReductionServer",
    "RequestInvalid",
    "ServeError",
    "ServerClosed",
    "ServerConfig",
    "SessionKey",
    "SessionScheduler",
    "prove_backpressure",
]
