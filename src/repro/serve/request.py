"""Request/response records exchanged with :class:`ReductionServer`."""

from __future__ import annotations

import time
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class SessionKey:
    """What multi-tenant sessions are keyed by: one key, one scheduler,
    one fused plan family."""

    op: str
    ctype: str
    version: str

    def label(self) -> str:
        return f"{self.op}-{self.ctype}-{self.version}"


@dataclass
class ReduceRequest:
    """One reduction submitted to the server."""

    data: np.ndarray
    op: str = "add"
    ctype: str = "float"
    version: str = "p"
    tenant: str = "default"
    #: Seconds the request may wait in queue before execution; ``None``
    #: waits indefinitely.
    deadline_s: float = None

    def key(self) -> SessionKey:
        return SessionKey(op=self.op, ctype=self.ctype, version=self.version)


@dataclass
class ReduceResponse:
    """Outcome of one served reduction."""

    value: float  #: reduction result (float() of the device element)
    n: int  #: element count of the request
    fused: bool  #: whether it executed inside a fused segmented launch
    batch_size: int  #: requests in the launch that produced it
    latency_s: float  #: submit → completion wall time
    plan_name: str  #: plan that computed it ("" for empty requests)


@dataclass
class _Pending:
    """Internal queue record tying a request to its Future."""

    request: ReduceRequest
    future: Future = field(default_factory=Future)
    submitted_at: float = field(default_factory=time.perf_counter)
    #: Absolute perf_counter deadline, or None.
    deadline_at: float = None

    def expired(self, now: float = None) -> bool:
        if self.deadline_at is None:
            return False
        return (now if now is not None else time.perf_counter()) > self.deadline_at
