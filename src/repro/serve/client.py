"""Load generator: concurrent mixed-size traffic against a server.

This is both the serve smoke-test driver (CI) and a measurement tool:
it fires heterogeneous requests from a thread pool, verifies every
response bit-for-bit against offline sequential execution, and reports
latencies plus the server's fusion counters.

Payloads are pre-generated from a seeded RNG in the submitting thread,
so a given (seed, mix, sizes) configuration always produces the same
requests — only the interleaving varies with scheduling.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..core.sources import identity_value
from ..runtime.session import ReductionFramework
from .errors import QueueFull, QuotaExceeded, ServeError
from .server import ReductionServer, ServerConfig

#: Default (op, ctype, version) mix exercised by the generator; includes
#: coop/compound and atomic/partials version shapes.
DEFAULT_MIX = (
    ("add", "float", "p"),
    ("add", "float", "a"),
    ("add", "int", "m"),
    ("max", "float", "b"),
    ("min", "int", "n"),
)


@dataclass
class LoadReport:
    """Outcome of one load-generation run."""

    requests_sent: int = 0
    responses: int = 0
    fused_responses: int = 0
    mismatches: int = 0
    rejected: dict = field(default_factory=dict)
    latencies_s: list = field(default_factory=list)
    wall_s: float = 0.0
    server_stats: dict = field(default_factory=dict)

    @property
    def launches(self) -> int:
        return self.server_stats.get("launches", 0)

    @property
    def fusion_ratio(self) -> float:
        return self.server_stats.get("fusion_ratio", 0.0)

    def percentile(self, q: float) -> float:
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(np.array(self.latencies_s), q))

    def as_dict(self) -> dict:
        return {
            "requests_sent": self.requests_sent,
            "responses": self.responses,
            "fused_responses": self.fused_responses,
            "mismatches": self.mismatches,
            "rejected": dict(self.rejected),
            "wall_s": round(self.wall_s, 6),
            "latency_p50_ms": round(self.percentile(50) * 1e3, 3),
            "latency_p95_ms": round(self.percentile(95) * 1e3, 3),
            "latency_max_ms": round(self.percentile(100) * 1e3, 3),
            "launches": self.launches,
            "fusion_ratio": round(self.fusion_ratio, 4),
            "server": self.server_stats,
        }


class LoadGenerator:
    """Drives one server with concurrent heterogeneous requests."""

    def __init__(
        self,
        server: ReductionServer,
        seed: int = 0,
        tenants=("tenant-a", "tenant-b", "tenant-c"),
        mix=DEFAULT_MIX,
    ):
        self.server = server
        self.seed = seed
        self.tenants = tuple(tenants)
        self.mix = tuple(mix)
        self._reference_fws = {}

    # -- reference (offline, sequential) -------------------------------

    def _reference_value(self, op, ctype, version, data) -> float:
        """Sequential per-request execution — the bit-exactness oracle."""
        fw = self._reference_fws.get((op, ctype))
        if fw is None:
            fw = self._reference_fws[(op, ctype)] = ReductionFramework(
                op=op, ctype=ctype, engine=self.server.config.engine
            )
        if len(data) == 0:
            return float(np.array(identity_value(op, ctype), dtype=fw.dtype))
        return fw.run(data, version=version).value

    # -- load ----------------------------------------------------------

    def build_payloads(self, num_requests, min_size=0, max_size=4096):
        """Deterministic request list: (tenant, op, ctype, version, data)."""
        rng = np.random.default_rng(self.seed)
        payloads = []
        for index in range(num_requests):
            op, ctype, version = self.mix[index % len(self.mix)]
            tenant = self.tenants[index % len(self.tenants)]
            n = int(rng.integers(min_size, max_size + 1))
            if ctype == "int":
                data = rng.integers(-1000, 1000, size=n).astype(np.int32)
            else:
                data = rng.standard_normal(n).astype(np.float32)
            payloads.append((tenant, op, ctype, version, data))
        return payloads

    def run(
        self,
        num_requests: int = 64,
        concurrency: int = 16,
        min_size: int = 0,
        max_size: int = 4096,
        verify: bool = True,
        deadline_s: float = None,
    ) -> LoadReport:
        """Submit ``num_requests`` from ``concurrency`` threads; verify
        each response against offline sequential execution."""
        payloads = self.build_payloads(num_requests, min_size, max_size)
        report = LoadReport()
        start = time.perf_counter()

        def issue(payload):
            tenant, op, ctype, version, data = payload
            try:
                future = self.server.submit(
                    data, op=op, ctype=ctype, version=version,
                    tenant=tenant, deadline_s=deadline_s,
                )
                return payload, future.result(timeout=120.0), None
            except ServeError as exc:
                return payload, None, exc

        with ThreadPoolExecutor(max_workers=concurrency) as pool:
            outcomes = list(pool.map(issue, payloads))

        report.requests_sent = len(payloads)
        for payload, response, error in outcomes:
            if error is not None:
                name = type(error).__name__
                report.rejected[name] = report.rejected.get(name, 0) + 1
                continue
            report.responses += 1
            report.fused_responses += int(response.fused)
            report.latencies_s.append(response.latency_s)
            if verify:
                tenant, op, ctype, version, data = payload
                expected = self._reference_value(op, ctype, version, data)
                if response.value != expected:
                    report.mismatches += 1
        report.wall_s = time.perf_counter() - start
        report.server_stats = self.server.stats()
        return report


def prove_backpressure(engine: str = "auto") -> dict:
    """Demonstrate typed quota rejection: a dedicated tiny server with a
    long fusion window and a quota of 2 receives 6 rapid submissions
    from one tenant — the window keeps the first requests in flight, so
    the rest MUST be rejected with :class:`QuotaExceeded` (never queued).
    """
    config = ServerConfig(
        window_s=0.25, tenant_quota=2, max_queue_depth=4, engine=engine
    )
    submitted, quota_rejections, queue_rejections = 0, 0, 0
    futures = []
    with ReductionServer(config) as server:
        data = np.arange(64, dtype=np.float32)
        for _ in range(6):
            submitted += 1
            try:
                futures.append(server.submit(data, tenant="greedy"))
            except QuotaExceeded:
                quota_rejections += 1
            except QueueFull:
                queue_rejections += 1
        values = [f.result(timeout=60.0).value for f in futures]
    return {
        "submitted": submitted,
        "quota_rejections": quota_rejections,
        "queue_rejections": queue_rejections,
        "served": len(values),
        "typed_backpressure": quota_rejections >= 1,
    }


__all__ = [
    "DEFAULT_MIX",
    "LoadGenerator",
    "LoadReport",
    "prove_backpressure",
]
