"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``passes``    — show the pre-processing pipeline log (Figure 5);
* ``variants``  — list the Figure 6 catalog and search-space counts;
* ``cuda``      — emit the CUDA C for one version (Listings 1-4 style);
* ``reduce``    — run a reduction on random data on the simulator;
* ``time``      — modelled wall times across architectures;
* ``tune``      — sweep tunable parameters for one version;
* ``sweep``     — profile a tuning grid (optionally one shard of it)
  into a cache tier, for cross-process/host sweeps;
* ``sanitize``  — race/barrier-divergence sanitizer over the catalog;
* ``cache``     — inspect or clear the unified profile cache, or
  ``cache merge`` shard tiers into the main cache;
* ``trace``     — run any command with tracing on, write a Chrome trace
  (and, with ``--flame``, a collapsed-stack flamegraph);
* ``stats``     — dump the metrics-registry snapshot;
* ``explain``   — counter-derived "why" analytics for one variant, or
  an A/B diff attributing the timing-model delta to counters;
* ``bench``     — report on the append-only bench ledger
  (``BENCH_ledger.jsonl``) with per-metric regression attribution.

Set ``REPRO_CACHE_DIR`` to persist profiles on disk across invocations;
``--cache-stats`` on ``time``/``tune`` prints hit/miss/time-saved
statistics for the invocation. Set ``REPRO_TRACE=<path>`` to trace any
invocation (or any library use) without the ``trace`` verb.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _add_common(parser):
    parser.add_argument(
        "--op", choices=("add", "max", "min"), default="add",
        help="reduction operator (default: add)",
    )


def _add_size(parser):
    """Input size: positional (``reduce 1000``) or ``-n`` (``reduce -n
    1000``) — the option form reads naturally under the ``trace`` verb."""
    parser.add_argument("n", type=int, nargs="?", default=None,
                        help="input size (elements)")
    parser.add_argument("-n", "--size", type=int, dest="n_opt", default=None,
                        help="input size (alternative to the positional)")


def _resolve_size(args, parser) -> None:
    if args.n is None:
        args.n = args.n_opt
    if args.n is None:
        parser.error(f"{args.command}: input size required (positional or -n)")


def _engine_spec(value: str) -> str:
    """argparse type for ``--engine``: validate, keep the raw spec."""
    from .gpusim import parse_engine_spec

    try:
        parse_engine_spec(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))
    return value


def _engine_help() -> str:
    """``--engine`` help text, listing backends from the live registry."""
    from .gpusim import EXECUTION_MODES, backend_names

    modes = " | ".join(EXECUTION_MODES)
    backends = " | ".join(backend_names())
    return (f"simulator engine spec: an execution mode ({modes}), a "
            f"dispatch backend ({backends}), or mode-backend (default: "
            "auto, i.e. compiled dispatch)")


def _write_json(payload, path, label) -> None:
    """Emit a JSON payload: to ``path``, or stdout when path is ``-``
    or None (shared by every ``--json`` option)."""
    import json

    text = json.dumps(payload, indent=2, default=str)
    if path in (None, "-"):
        print(text)
    else:
        with open(path, "w") as handle:
            handle.write(text)
            handle.write("\n")
        print(f"[{label}] JSON -> {path}")


def _framework(args):
    from .runtime import ReductionFramework

    return ReductionFramework(
        op=args.op,
        unroll=getattr(args, "unroll", False),
        engine=getattr(args, "engine", None) or "auto",
    )


def cmd_passes(args) -> int:
    fw = _framework(args)
    for line in fw.pre.log:
        print(line)
    return 0


def cmd_variants(args) -> int:
    from .core import BEST8, FIG6, search_space_summary

    summary = search_space_summary()
    print(f"full space: {summary['total']} versions; pruned: "
          f"{summary['pruned_total']} (all with global-atomic combine)")
    print("\nFigure 6 catalog (* = the paper's best performers):")
    for label in sorted(FIG6):
        star = "*" if label in BEST8 else " "
        print(f"  ({label}) {star} {FIG6[label].identifier}")
    return 0


def cmd_cuda(args) -> int:
    from .codegen import emit_version

    fw = _framework(args)
    print(emit_version(fw.pre, fw.resolve(args.version)))
    return 0


def _print_cache_stats() -> None:
    from .perf import default_cache, default_plan_cache

    stats = default_cache().stats
    print(
        f"[cache] hits={stats.hits} (disk {stats.disk_hits}) "
        f"misses={stats.misses} stores={stats.stores} "
        f"simulation saved={stats.time_saved_s:.2f}s "
        f"spent={stats.compute_time_s:.2f}s"
    )
    plan_stats = default_plan_cache().stats
    print(
        f"[plan cache] hits={plan_stats.hits} "
        f"misses={plan_stats.misses} stores={plan_stats.stores} "
        f"build saved={plan_stats.time_saved_s:.2f}s "
        f"spent={plan_stats.compute_time_s:.2f}s"
    )


def cmd_reduce(args) -> int:
    from .codegen import Tunables

    fw = _framework(args)
    rng = np.random.default_rng(args.seed)
    data = rng.random(args.n).astype(np.float32)
    tunables = Tunables(block=args.block, grid=args.grid) if (
        args.block or args.grid
    ) else None
    if tunables is None and args.block:
        tunables = Tunables(block=args.block)
    result = fw.run(
        data, version=args.version, tunables=tunables, engine_mode=args.engine
    )
    reference = {
        "add": float(data.sum(dtype=np.float64)),
        "max": float(data.max()),
        "min": float(data.min()),
    }[args.op]
    error = abs(result.value - reference) / max(1e-12, abs(reference))
    print(f"version ({args.version}) {result.version.identifier}")
    print(f"result    = {result.value!r}")
    print(f"reference = {reference!r}  (relative error {error:.2e})")
    launches = result.profile.num_launches()
    print(f"kernel launches: {launches}")
    return 0 if error < 1e-3 else 1


def cmd_time(args) -> int:
    from .runtime import cub_time, kokkos_time, openmp_time

    fw = _framework(args)
    labels = args.versions.split(",") if args.versions else ["m", "n", "p", "b"]
    print(f"{'arch':>8}" + "".join(f"  ({label})".rjust(12) for label in labels)
          + f"{'CUB':>12}{'Kokkos':>12}{'OpenMP':>12}")
    for arch in ("kepler", "maxwell", "pascal"):
        cells = "".join(
            f"{fw.time(args.n, label, arch) * 1e6:>12.1f}" for label in labels
        )
        print(
            f"{arch:>8}{cells}{cub_time(args.n, arch) * 1e6:>12.1f}"
            f"{kokkos_time(args.n, arch) * 1e6:>12.1f}"
            f"{openmp_time(args.n) * 1e6:>12.1f}"
        )
    print("(microseconds, modelled)")
    if args.cache_stats:
        _print_cache_stats()
    return 0


def cmd_tune(args) -> int:
    from .autotune import tune_version

    fw = _framework(args)
    result = tune_version(
        fw, args.version, args.n, args.arch, max_workers=args.jobs
    )
    print(f"tuning version ({args.version}) at n={args.n} on {args.arch}:")
    for tunables, seconds in sorted(result.trials, key=lambda t: t[1]):
        marker = "  <- best" if tunables == result.tunables else ""
        print(f"  block={tunables.block:>4} grid={str(tunables.grid):>5}: "
              f"{seconds * 1e6:>9.1f} us{marker}")
    if args.cache_stats:
        _print_cache_stats()
    return 0


def cmd_sweep(args) -> int:
    import time as _time

    from .autotune.tuner import DEFAULT_BLOCKS, DEFAULT_GRIDS, sweep_specs
    from .perf import ProfileCache, default_cache
    from .perf.shard import (
        build_manifest,
        parse_shard,
        shard_of,
        tier_path,
        write_manifest,
    )
    from .runtime import ReductionFramework

    try:
        shard_index, shard_count = (
            parse_shard(args.shard) if args.shard else (0, 1)
        )
    except ValueError as exc:
        print(f"repro sweep: {exc}", file=sys.stderr)
        return 2
    if args.sizes:
        sizes = [int(token) for token in args.sizes.split(",") if token]
    elif args.n is not None:
        sizes = [args.n]
    else:
        print("repro sweep: input size required (-n or --sizes)",
              file=sys.stderr)
        return 2
    blocks = (
        tuple(int(token) for token in args.blocks.split(","))
        if args.blocks else DEFAULT_BLOCKS
    )
    grids = (
        tuple(
            None if token.lower() == "none" else int(token)
            for token in args.grids.split(",")
        )
        if args.grids else DEFAULT_GRIDS
    )
    candidates = args.versions.split(",") if args.versions else None

    tier = None
    if args.shard_dir:
        tier = tier_path(args.shard_dir, shard_index, shard_count)
        cache = ProfileCache(disk_dir=tier)
    elif args.shard:
        print("repro sweep: --shard requires --shard-dir (each shard "
              "writes a private mergeable tier)", file=sys.stderr)
        return 2
    else:
        cache = default_cache()
    fw = ReductionFramework(
        op=args.op,
        unroll=args.unroll,
        engine=args.engine or "auto",
        cache=cache,
    )
    specs = sweep_specs(fw, sizes, candidates, blocks, grids)
    keyed = [
        (fw.profile_key(version, n, tunables, None), (version, n, tunables))
        for version, n, tunables in specs
    ]
    mine = [
        (key, spec)
        for key, spec in keyed
        if shard_of(key, shard_count) == shard_index
    ]
    start = _time.perf_counter()
    if mine:
        fw.profile_many([spec for _, spec in mine], max_workers=args.jobs)
    wall = _time.perf_counter() - start
    print(f"[sweep] shard {shard_index}/{shard_count}: "
          f"{len(mine)}/{len(specs)} grid points in {wall:.3f}s")
    stats = cache.stats.as_dict()
    print("[sweep] cache: " + ", ".join(f"{k}={v}" for k, v in stats.items()))
    if tier is not None:
        manifest = build_manifest(
            shard_index,
            shard_count,
            [key for key, _ in mine],
            grid={
                "op": args.op,
                "unroll": bool(args.unroll),
                "sizes": sizes,
                "versions": candidates if candidates else "catalog",
                "blocks": list(blocks),
                "grids": list(grids),
            },
            wall_s=wall,
            cache_stats=stats,
        )
        path = write_manifest(tier, manifest)
        print(f"[sweep] tier -> {tier} (manifest {path.name})")
    return 0


def cmd_sanitize(args) -> int:
    from .sanitize import (
        check_negatives,
        format_negative,
        format_variant,
        report_json,
        sweep_catalog,
    )

    from .sanitize import default_engines

    engines = (
        tuple(args.engine.split(",")) if args.engine else default_engines()
    )
    versions = args.versions.split(",") if args.versions else None
    ops = (args.op,) if args.op != "all" else ("add", "max", "min")
    ctypes = (args.ctype,) if args.ctype != "all" else ("float", "int")
    print(f"sanitizing catalog at n={args.n} "
          f"(ops={','.join(ops)} ctypes={','.join(ctypes)} "
          f"engines={','.join(engines)} lint={'on' if args.lint else 'off'})")
    reports = sweep_catalog(
        args.n, versions=versions, ops=ops, ctypes=ctypes,
        engines=engines, lint=args.lint,
    )
    for report in reports:
        for line in format_variant(report):
            print(line)
    dirty = [r for r in reports if not r.clean]
    negative_reports = []
    if args.negatives:
        print("negative codelets (each must be flagged):")
        negative_reports = check_negatives(engines)
        for report in negative_reports:
            for line in format_negative(report):
                print(line)
    unflagged = [r for r in negative_reports if not r.flagged]
    if args.json:
        _write_json(
            report_json(reports, negative_reports, args.n),
            args.json, "sanitize",
        )
    print(
        f"[sanitize] {len(reports) - len(dirty)}/{len(reports)} variants "
        f"clean"
        + (f"; {len(unflagged)}/{len(negative_reports)} negatives "
           f"unflagged" if negative_reports else "")
    )
    return 1 if (dirty or unflagged) else 0


def cmd_cache(args) -> int:
    from .perf import default_cache, default_plan_cache

    if args.action == "merge":
        import os

        from .perf import CACHE_DIR_ENV
        from .perf.shard import ShardConflictError, merge_tiers

        if not args.sources:
            print("repro cache merge: at least one source tier required",
                  file=sys.stderr)
            return 2
        dest = args.dest or os.environ.get(CACHE_DIR_ENV)
        if not dest:
            print("repro cache merge: no destination (pass --dest or set "
                  f"{CACHE_DIR_ENV})", file=sys.stderr)
            return 2
        try:
            stats = merge_tiers(args.sources, dest)
        except ShardConflictError as exc:
            print(f"[cache] CONFLICT: {exc}", file=sys.stderr)
            return 1
        print(f"[cache] merged {stats['merged']} entries into {dest} "
              f"({stats['identical']} identical, {stats['corrupt']} corrupt; "
              f"{stats['examined']} examined from {stats['sources']} tiers)")
        return 0

    cache = default_cache()
    if args.clear:
        cache.clear(memory=True, disk=True)
        default_plan_cache().clear(memory=True)
        print("cache cleared (memory + disk)")
        return 0
    info = cache.disk_info()
    if info["dir"]:
        print(f"disk tier: {info['dir']}")
        print(f"  entries: {info['entries']}")
        print(f"  size:    {info['bytes'] / 1024:.1f} KiB")
    else:
        print("disk tier: disabled (set REPRO_CACHE_DIR to enable)")
    print(f"memory tier: {len(cache)}/{cache.max_entries} entries")
    stats = cache.stats.as_dict()
    print("this process: " + ", ".join(f"{k}={v}" for k, v in stats.items()))
    plans = default_plan_cache()
    print(f"plan cache (memory only): {len(plans)}/{plans.max_entries} entries")
    plan_stats = plans.stats.as_dict()
    print(
        "this process: "
        + ", ".join(f"{k}={v}" for k, v in plan_stats.items())
    )
    return 0


def cmd_trace(args) -> int:
    from .obs import enable_tracing, text_summary

    if not args.rest:
        print("usage: repro trace [--out PATH] <command ...>", file=sys.stderr)
        return 2
    if args.rest[0] == "trace":
        print("repro trace: cannot nest trace invocations", file=sys.stderr)
        return 2
    tracer = enable_tracing()
    # This verb writes the trace itself; clearing ``path`` disarms the
    # REPRO_TRACE atexit hook so the file is never written twice.
    tracer.path = None
    inner = _dispatch_args(build_parser(), args.rest)
    try:
        code = inner.func(inner)
    finally:
        count = tracer.export_chrome(args.out)
        print(f"[trace] {count} spans -> {args.out}"
              + (f" ({tracer.dropped} dropped)" if tracer.dropped else ""))
        if args.flame:
            stacks = tracer.export_collapsed(args.flame)
            print(f"[trace] {stacks} collapsed stacks -> {args.flame}")
        for line in text_summary(tracer.spans):
            print(f"[trace] {line}")
    return code


def cmd_stats(args) -> int:
    from .obs import default_metrics

    metrics = default_metrics()
    if args.json is not False:
        _write_json(metrics.snapshot(), args.json, "stats")
    else:
        for line in metrics.summary_lines():
            print(line)
    return 0


def cmd_serve(args) -> int:
    """In-process serving demo: server + load generator + backpressure
    probe, with machine-checkable JSON for CI."""
    from .serve import LoadGenerator, ReductionServer, ServerConfig
    from .serve import prove_backpressure

    config = ServerConfig(
        window_s=args.window_ms / 1e3,
        max_batch_requests=args.max_batch,
        tenant_quota=args.quota,
        engine=args.engine or "auto",
    )
    server = ReductionServer(config)
    generator = LoadGenerator(server, seed=args.seed)
    try:
        report = generator.run(
            num_requests=args.requests,
            concurrency=args.concurrency,
            min_size=args.min_size,
            max_size=args.max_size,
            verify=not args.no_verify,
        )
    finally:
        server.close()
    backpressure = prove_backpressure(engine=args.engine or "auto")
    payload = report.as_dict()
    payload["backpressure"] = backpressure

    stats = payload["server"]
    print(f"[serve] {report.requests_sent} requests from "
          f"{args.concurrency} threads ({payload['wall_s']:.3f}s wall)")
    print(f"[serve] responses={report.responses} "
          f"fused={report.fused_responses} launches={report.launches} "
          f"fusion_ratio={payload['fusion_ratio']}")
    print(f"[serve] latency p50={payload['latency_p50_ms']}ms "
          f"p95={payload['latency_p95_ms']}ms "
          f"max={payload['latency_max_ms']}ms")
    print(f"[serve] batches={stats['batches']} "
          f"(fused={stats['fused_batches']}) fallbacks={stats['fallbacks']} "
          f"rejected={sum(v for k, v in stats.items() if k.startswith('rejected_'))}")
    print(f"[serve] verify: mismatches={report.mismatches} "
          f"(bit-exact vs sequential per-request runs)")
    print(f"[serve] backpressure probe: "
          f"{backpressure['quota_rejections']}/{backpressure['submitted']} "
          f"rejected with QuotaExceeded")
    if args.json is not False:
        _write_json(payload, args.json, "serve")

    failed = report.mismatches or not backpressure["typed_backpressure"]
    if report.responses and report.launches >= report.responses:
        print("[serve] WARNING: no launch fusion observed "
              f"(launches={report.launches} >= responses={report.responses})")
        failed = True
    return 1 if failed else 0


def cmd_explain(args) -> int:
    from .obs.explain import (
        explain_diff,
        explain_variant,
        format_diff,
        format_explain,
    )

    fw = _framework(args)
    if args.diff:
        diff = explain_diff(fw, args.diff[0], args.diff[1], args.n, args.arch)
        for line in format_diff(diff, top=args.top):
            print(line)
        payload = diff
    else:
        if not args.version:
            print("repro explain: a variant label or --diff A B is required",
                  file=sys.stderr)
            return 2
        explanation = explain_variant(
            fw, args.version, args.n, args.arch,
            coverage=not args.no_coverage,
        )
        for line in format_explain(explanation):
            print(line)
        payload = explanation
    if args.json:
        _write_json(payload, args.json, "explain")
    return 0


def cmd_bench_report(args) -> int:
    from .obs.ledger import detect_regressions, format_report, read_ledger

    entries = read_ledger(args.ledger)
    regressions = detect_regressions(entries, window=args.window)
    for line in format_report(entries, regressions, window=args.window):
        print(line)
    if args.json:
        _write_json(
            {
                "ledger": args.ledger,
                "entries": len(entries),
                "regressions": regressions,
            },
            args.json, "bench",
        )
    return 1 if regressions else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Automatic Generation of Warp-Level Primitives "
            "and Atomic Instructions for Fast and Portable Parallel "
            "Reduction on GPUs' (CGO 2019)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("passes", help="show the Figure 5 pipeline log")
    _add_common(p)
    p.add_argument("--unroll", action="store_true")
    p.set_defaults(func=cmd_passes)

    p = sub.add_parser("variants", help="list the version catalog")
    p.set_defaults(func=cmd_variants)

    p = sub.add_parser("cuda", help="emit CUDA C for one version")
    _add_common(p)
    p.add_argument("version", help="Figure 6 label (a-p)")
    p.set_defaults(func=cmd_cuda)

    p = sub.add_parser("reduce", help="run a reduction on random data")
    _add_common(p)
    _add_size(p)
    p.add_argument("--version", default="p")
    p.add_argument("--block", type=int, default=None)
    p.add_argument("--grid", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--engine", default="auto", type=_engine_spec,
                   help=_engine_help())
    p.set_defaults(func=cmd_reduce)

    p = sub.add_parser("time", help="modelled times across architectures")
    _add_common(p)
    _add_size(p)
    p.add_argument("--versions", default=None,
                   help="comma-separated labels (default: m,n,p,b)")
    p.add_argument("--engine", default="auto", type=_engine_spec,
                   help="simulator engine spec used for profiling (see "
                        "'reduce --engine')")
    p.add_argument("--cache-stats", action="store_true",
                   help="print profile-cache statistics afterwards")
    p.set_defaults(func=cmd_time)

    p = sub.add_parser("tune", help="sweep tunables for one version")
    _add_common(p)
    _add_size(p)
    p.add_argument("--version", default="b")
    p.add_argument("--arch", default="kepler",
                   choices=("kepler", "maxwell", "pascal"))
    p.add_argument("--jobs", type=int, default=None,
                   help="parallel profiling workers (default: auto)")
    p.add_argument("--cache-stats", action="store_true",
                   help="print profile-cache statistics afterwards")
    p.set_defaults(func=cmd_tune)

    p = sub.add_parser(
        "sweep",
        help="profile a tuning grid (or one shard of it) into a cache "
             "tier",
        description=(
            "Profile the canonical tune_all grid — sizes × version "
            "catalog × tunables — through the work-stealing scheduler. "
            "With --shard i/k and --shard-dir the grid is partitioned "
            "deterministically by profile-key hash, and this process "
            "profiles only its slice into a private mergeable disk "
            "tier (DIR/shard-<i>of<k>) plus a manifest; fold tiers "
            "back together with 'repro cache merge'. Without --shard "
            "the whole grid is profiled into the default cache "
            "(REPRO_CACHE_DIR)."
        ),
    )
    _add_common(p)
    p.add_argument("-n", "--size", type=int, dest="n", default=None,
                   help="single input size (elements)")
    p.add_argument("--sizes", default=None,
                   help="comma-separated input sizes (overrides -n)")
    p.add_argument("--versions", default=None,
                   help="comma-separated Figure 6 labels "
                        "(default: the full catalog)")
    p.add_argument("--blocks", default=None,
                   help="comma-separated block sizes (default: the "
                        "tuner's grid)")
    p.add_argument("--grids", default=None,
                   help="comma-separated grid sizes, 'none' for "
                        "size-derived (default: the tuner's grid)")
    p.add_argument("--unroll", action="store_true")
    p.add_argument("--shard", default=None, metavar="I/K",
                   help="profile only shard I of K (e.g. 0/2); requires "
                        "--shard-dir")
    p.add_argument("--shard-dir", default=None, dest="shard_dir",
                   metavar="DIR",
                   help="write this shard's tier + manifest under DIR")
    p.add_argument("--jobs", type=int, default=None,
                   help="parallel profiling workers (default: auto)")
    p.add_argument("--engine", default="auto", type=_engine_spec,
                   help="simulator engine spec used for profiling (see "
                        "'reduce --engine')")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "sanitize",
        help="run the SIMT sanitizer over generated variants",
        description=(
            "Execute generated variants under the dynamic race/"
            "barrier-divergence sanitizer and the static VIR lint. "
            "Exits non-zero when any stock variant produces a "
            "diagnostic or any negative codelet goes unflagged."
        ),
    )
    _add_size(p)
    p.add_argument("--op", choices=("all", "add", "max", "min"),
                   default="all", help="reduction operator(s) to sweep "
                   "(default: all)")
    p.add_argument("--ctype", choices=("all", "float", "int"),
                   default="all", help="element type(s) to sweep "
                   "(default: all)")
    p.add_argument("--versions", default=None,
                   help="comma-separated Figure 6 labels "
                        "(default: the full catalog)")
    from .sanitize.report import DEFAULT_ENGINES

    p.add_argument("--engine", default=None,
                   help="comma-separated engine specs to execute under "
                        f"(default: {','.join(DEFAULT_ENGINES)}, plus "
                        "batched-native when a C toolchain is present)")
    p.add_argument("--no-lint", dest="lint", action="store_false",
                   help="skip the static VIR lint pass")
    p.add_argument("--negatives", action="store_true",
                   help="also run the deliberately-broken codelets and "
                        "require each to be flagged")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the full report as JSON")
    p.set_defaults(func=cmd_sanitize)

    p = sub.add_parser(
        "cache",
        help="inspect/clear the profile cache, or merge shard tiers",
        description=(
            "Without arguments: show cache statistics. 'repro cache "
            "merge TIER...' folds shard tiers (from 'repro sweep "
            "--shard') into the destination tier — idempotently, "
            "erroring out when two tiers disagree about one key's "
            "profile."
        ),
    )
    p.add_argument("action", nargs="?", choices=("show", "merge"),
                   default="show",
                   help="'show' (default) or 'merge'")
    p.add_argument("sources", nargs="*", metavar="TIER",
                   help="source tier directories for 'merge'")
    p.add_argument("--dest", default=None, metavar="DIR",
                   help="merge destination (default: REPRO_CACHE_DIR)")
    p.add_argument("--clear", action="store_true",
                   help="drop every cached profile (memory + disk)")
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser(
        "trace",
        help="run any repro command with tracing on, write a Chrome trace",
        description=(
            "Wrap any other repro command, e.g. 'repro trace reduce -n "
            "1000000'. Writes a Chrome trace_event JSON (open it in "
            "chrome://tracing or https://ui.perfetto.dev) and prints a "
            "per-span summary."
        ),
    )
    p.add_argument("--out", default="trace.json",
                   help="output path for the Chrome trace (default: "
                        "trace.json)")
    p.add_argument("--flame", default=None, metavar="PATH",
                   help="also write a collapsed-stack flamegraph "
                        "(flamegraph.pl / speedscope input)")
    p.add_argument("rest", nargs=argparse.REMAINDER,
                   help="the repro command to run under tracing")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "stats", help="dump the observability metrics snapshot"
    )
    p.add_argument("--json", nargs="?", const="-", default=False,
                   metavar="PATH",
                   help="emit the full snapshot as JSON, to PATH or "
                        "stdout when no path is given")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "serve",
        help="reduction-as-a-service demo: fused serving under load",
        description=(
            "Start an in-process ReductionServer, drive it with the "
            "load generator (concurrent mixed-size requests across "
            "several sessions and tenants), verify every response "
            "bit-for-bit against sequential per-request execution, "
            "and run the typed-backpressure probe. Exits non-zero on "
            "any mismatch, missing backpressure, or absent fusion."
        ),
    )
    p.add_argument("--requests", type=int, default=64,
                   help="requests to issue (default: 64)")
    p.add_argument("--concurrency", type=int, default=16,
                   help="submitting threads (default: 16)")
    p.add_argument("--window-ms", type=float, default=20.0,
                   dest="window_ms",
                   help="fusion window in milliseconds (default: 20)")
    p.add_argument("--quota", type=int, default=64,
                   help="per-tenant in-flight quota (default: 64)")
    p.add_argument("--max-batch", type=int, default=64, dest="max_batch",
                   help="max requests fused into one launch (default: 64)")
    p.add_argument("--min-size", type=int, default=0, dest="min_size",
                   help="smallest request, elements (default: 0)")
    p.add_argument("--max-size", type=int, default=4096, dest="max_size",
                   help="largest request, elements (default: 4096)")
    p.add_argument("--seed", type=int, default=0,
                   help="payload RNG seed (default: 0)")
    p.add_argument("--engine", default="auto", type=_engine_spec,
                   help="engine spec for every session (see "
                        "'reduce --engine')")
    p.add_argument("--no-verify", action="store_true", dest="no_verify",
                   help="skip the bit-exactness check against "
                        "sequential execution")
    p.add_argument("--json", nargs="?", const="-", default=False,
                   metavar="PATH",
                   help="emit the full report as JSON, to PATH or "
                        "stdout when no path is given")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "explain",
        help="counter-derived 'why' analytics for one variant, or an "
             "A/B timing-delta attribution",
        description=(
            "Derive the paper's figure-of-merit metrics (coalescing "
            "efficiency, divergence ratio, shuffle/shared/barrier mix, "
            "atomic contention, lowering coverage) from the recorded "
            "event counters, and — with --diff — rank which counters "
            "account for the timing-model delta between two variants."
        ),
    )
    _add_common(p)
    p.add_argument("version", nargs="?", default=None,
                   help="Figure 6 label to explain (omit with --diff)")
    p.add_argument("-n", "--size", type=int, dest="n", default=65536,
                   help="input size in elements (default: 65536)")
    p.add_argument("--diff", nargs=2, metavar=("A", "B"), default=None,
                   help="attribute the timing delta between two labels")
    p.add_argument("--arch", default="pascal",
                   choices=("kepler", "maxwell", "pascal"))
    p.add_argument("--top", type=int, default=6,
                   help="attribution rows to print with --diff "
                        "(default: 6)")
    p.add_argument("--no-coverage", action="store_true",
                   help="skip the fuse/native lowering-coverage pass")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="also write the full payload as JSON "
                        "('-' for stdout)")
    p.add_argument("--engine", default="auto", type=_engine_spec,
                   help="simulator engine spec used for profiling (see "
                        "'reduce --engine')")
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser(
        "bench",
        help="bench-ledger reports (BENCH_ledger.jsonl)",
    )
    bench_sub = p.add_subparsers(dest="bench_command", required=True)
    b = bench_sub.add_parser(
        "report",
        help="judge the newest ledger entry against the trailing window",
        description=(
            "Read the append-only bench ledger and compare the newest "
            "entry's watched metrics against the best of the trailing "
            "window. Exits non-zero when any metric regressed, with "
            "per-metric attribution (which ratio fell, which structure "
            "count dropped)."
        ),
    )
    from .obs.ledger import DEFAULT_WINDOW, default_ledger_path

    b.add_argument("--ledger", default=default_ledger_path(),
                   help="ledger path (default: ./BENCH_ledger.jsonl)")
    b.add_argument("--window", type=int, default=DEFAULT_WINDOW,
                   help=f"trailing entries to judge against (default: "
                        f"{DEFAULT_WINDOW})")
    b.add_argument("--json", default=None, metavar="PATH",
                   help="also write the report as JSON ('-' for stdout)")
    b.set_defaults(func=cmd_bench_report)
    return parser


def _dispatch_args(parser, argv):
    """Parse ``argv`` and normalize post-parse derived fields."""
    args = parser.parse_args(argv)
    if hasattr(args, "n_opt"):
        _resolve_size(args, parser)
    return args


def main(argv=None) -> int:
    parser = build_parser()
    args = _dispatch_args(parser, argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
