"""Convenience builder for emitting VIR instruction sequences."""

from __future__ import annotations

from .instructions import (
    AtomGlobal,
    AtomShared,
    Bar,
    BinOp,
    Comment,
    If,
    LdGlobal,
    LdParam,
    LdShared,
    Mov,
    Reg,
    Sel,
    Shfl,
    Special,
    StGlobal,
    StShared,
    UnOp,
    While,
    as_operand,
)


class IRBuilder:
    """Emits into a current instruction list; supports nested regions.

    Typical use::

        b = IRBuilder()
        tid = b.special("tid")
        with b.if_(b.binop("lt", tid, n)):
            value = b.ld_global("in", tid)
        ...
        kernel_body = b.finish()
    """

    def __init__(self, prefix: str = "r"):
        self._prefix = prefix
        self._counter = 0
        self._body = []
        self._stack = [self._body]

    # -- registers ------------------------------------------------------

    def fresh(self, hint: str = None) -> Reg:
        self._counter += 1
        name = f"{hint or self._prefix}{self._counter}"
        return Reg(name)

    # -- emission ---------------------------------------------------------

    @property
    def current(self) -> list:
        return self._stack[-1]

    def emit(self, instr):
        self.current.append(instr)
        return instr

    def comment(self, text: str) -> None:
        self.emit(Comment(text))

    def binop(self, op: str, a, b, dst: Reg = None) -> Reg:
        dst = dst or self.fresh()
        self.emit(BinOp(dst, op, a, b))
        return dst

    def unop(self, op: str, a, dst: Reg = None) -> Reg:
        dst = dst or self.fresh()
        self.emit(UnOp(dst, op, a))
        return dst

    def mov(self, a, dst: Reg = None) -> Reg:
        dst = dst or self.fresh()
        self.emit(Mov(dst, a))
        return dst

    def sel(self, cond, a, b, dst: Reg = None) -> Reg:
        dst = dst or self.fresh()
        self.emit(Sel(dst, cond, a, b))
        return dst

    def special(self, kind: str, dst: Reg = None) -> Reg:
        dst = dst or self.fresh(kind)
        self.emit(Special(dst, kind))
        return dst

    def ld_param(self, name: str, dst: Reg = None) -> Reg:
        dst = dst or self.fresh(name)
        self.emit(LdParam(dst, name))
        return dst

    def ld_global(self, buf: str, idx, dst: Reg = None) -> Reg:
        dst = dst or self.fresh()
        self.emit(LdGlobal(dst, buf, idx))
        return dst

    def ld_global_vec(self, buf: str, idx, width: int) -> list:
        dsts = [self.fresh() for _ in range(width)]
        self.emit(LdGlobal(dsts, buf, idx, width=width))
        return dsts

    def st_global(self, buf: str, idx, src) -> None:
        self.emit(StGlobal(buf, idx, src))

    def ld_shared(self, buf: str, idx, dst: Reg = None) -> Reg:
        dst = dst or self.fresh()
        self.emit(LdShared(dst, buf, idx))
        return dst

    def st_shared(self, buf: str, idx, src) -> None:
        self.emit(StShared(buf, idx, src))

    def atom_global(self, op: str, buf: str, idx, src, scope: str = "device"):
        self.emit(AtomGlobal(op, buf, idx, src, scope))

    def atom_shared(self, op: str, buf: str, idx, src):
        self.emit(AtomShared(op, buf, idx, src))

    def shfl(self, src: Reg, mode: str, offset, width: int = 32, dst: Reg = None) -> Reg:
        dst = dst or self.fresh("shfl")
        self.emit(Shfl(dst, src, mode, offset, width))
        return dst

    def bar(self) -> None:
        self.emit(Bar())

    # -- structured regions ------------------------------------------------

    def if_(self, cond: Reg) -> "_Region":
        instr = If(cond=cond)
        self.emit(instr)
        return _Region(self, instr.then)

    def else_(self, if_instr: If) -> "_Region":
        return _Region(self, if_instr.otherwise)

    def if_else(self, cond: Reg):
        """Returns ``(if_instr, then_region, else_region)``."""
        instr = If(cond=cond)
        self.emit(instr)
        return instr, _Region(self, instr.then), _Region(self, instr.otherwise)

    def while_(self, cond_reg: Reg) -> "_WhileRegions":
        instr = While(cond_block=[], cond=cond_reg, body=[])
        self.emit(instr)
        return _WhileRegions(
            cond=_Region(self, instr.cond_block), body=_Region(self, instr.body)
        )

    def finish(self) -> list:
        if len(self._stack) != 1:
            raise RuntimeError("unclosed VIR region at finish()")
        return self._body


class _Region:
    """Context manager redirecting emission into a nested region."""

    def __init__(self, builder: IRBuilder, target: list):
        self._builder = builder
        self._target = target

    def __enter__(self):
        self._builder._stack.append(self._target)
        return self

    def __exit__(self, exc_type, exc, tb):
        popped = self._builder._stack.pop()
        if popped is not self._target:
            raise RuntimeError("mismatched VIR region nesting")
        return False


class _WhileRegions:
    def __init__(self, cond: _Region, body: _Region):
        self.cond = cond
        self.body = body


def imm(value):
    """Public alias for creating immediates in callers' code."""
    return as_operand(value)
