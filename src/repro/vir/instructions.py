"""VIR — a structured virtual SIMT instruction set.

The synthesized codelets are lowered to VIR, which the GPU simulator in
:mod:`repro.gpusim` executes. VIR mirrors the slice of PTX the paper's
generated CUDA touches:

* per-thread virtual registers and ALU ops;
* special registers (``tid``, ``ctaid``, ``ntid``, ``nctaid``,
  ``laneid``, ``warpid``);
* global/shared loads and stores (with optional vectorized global loads,
  the CUB "vector loads" optimization [37]);
* atomics on global and shared memory with device/block scope
  (Section III-A/III-B of the paper);
* warp shuffles (``shfl.down``/``up``/``xor``/``idx``, Section III-C);
* block barriers;
* **structured** control flow (``If``/``While``) instead of raw branches —
  this gives the simulator exact SIMT reconvergence semantics via lane
  masks, the same model hardware implements with a reconvergence stack.

Instructions are plain dataclasses; the printer in
:mod:`repro.vir.printer` renders a stable text format used in golden
tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# -- operands -----------------------------------------------------------


@dataclass(frozen=True)
class Reg:
    """A per-thread virtual register."""

    name: str

    def __str__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True)
class Imm:
    """An immediate constant (int, float, or bool)."""

    value: object

    def __str__(self) -> str:
        return repr(self.value)


Operand = (Reg, Imm)


def as_operand(value):
    """Coerce Python scalars to :class:`Imm`; pass operands through."""
    if isinstance(value, (Reg, Imm)):
        return value
    if isinstance(value, (bool, int, float)):
        return Imm(value)
    raise TypeError(f"cannot use {value!r} as a VIR operand")


# -- opcode tables --------------------------------------------------------

BINARY_OPS = frozenset(
    {
        "add", "sub", "mul", "div", "idiv", "mod", "min", "max",
        "and", "or", "xor", "shl", "shr",
        "lt", "le", "gt", "ge", "eq", "ne",
        "land", "lor",
    }
)

UNARY_OPS = frozenset({"neg", "lnot", "bnot"})

ATOMIC_OPS = frozenset({"add", "sub", "min", "max"})

SHFL_MODES = frozenset({"down", "up", "xor", "idx"})

SPECIAL_KINDS = frozenset({"tid", "ctaid", "ntid", "nctaid", "laneid", "warpid"})

ATOMIC_SCOPES = frozenset({"device", "block", "system"})


# -- instructions ---------------------------------------------------------


@dataclass
class Instr:
    """Base class for all VIR instructions."""


@dataclass
class BinOp(Instr):
    dst: Reg
    op: str
    a: object
    b: object

    def __post_init__(self):
        if self.op not in BINARY_OPS:
            raise ValueError(f"unknown binary op {self.op!r}")
        self.a = as_operand(self.a)
        self.b = as_operand(self.b)


@dataclass
class UnOp(Instr):
    dst: Reg
    op: str
    a: object

    def __post_init__(self):
        if self.op not in UNARY_OPS:
            raise ValueError(f"unknown unary op {self.op!r}")
        self.a = as_operand(self.a)


@dataclass
class Mov(Instr):
    dst: Reg
    a: object

    def __post_init__(self):
        self.a = as_operand(self.a)


@dataclass
class Sel(Instr):
    """``dst = cond ? a : b`` — branch-free select."""

    dst: Reg
    cond: object
    a: object
    b: object

    def __post_init__(self):
        self.cond = as_operand(self.cond)
        self.a = as_operand(self.a)
        self.b = as_operand(self.b)


@dataclass
class Special(Instr):
    """Read a special (hardware) register."""

    dst: Reg
    kind: str

    def __post_init__(self):
        if self.kind not in SPECIAL_KINDS:
            raise ValueError(f"unknown special register {self.kind!r}")


@dataclass
class LdParam(Instr):
    """Load a host-provided scalar kernel parameter (uniform)."""

    dst: Reg
    name: str


@dataclass
class LdGlobal(Instr):
    """Load ``width`` consecutive elements starting at ``idx``.

    ``dst`` is a single register when ``width == 1``, otherwise a list of
    ``width`` registers (the float4-style vectorized load).
    """

    dst: object
    buf: str
    idx: object
    width: int = 1

    def __post_init__(self):
        self.idx = as_operand(self.idx)
        if self.width == 1:
            if not isinstance(self.dst, Reg):
                raise ValueError("scalar LdGlobal needs a single Reg dst")
        else:
            if not (isinstance(self.dst, list) and len(self.dst) == self.width):
                raise ValueError("vector LdGlobal needs one dst per element")


@dataclass
class StGlobal(Instr):
    buf: str
    idx: object
    src: object

    def __post_init__(self):
        self.idx = as_operand(self.idx)
        self.src = as_operand(self.src)


@dataclass
class LdShared(Instr):
    dst: Reg
    buf: str
    idx: object

    def __post_init__(self):
        self.idx = as_operand(self.idx)


@dataclass
class StShared(Instr):
    buf: str
    idx: object
    src: object

    def __post_init__(self):
        self.idx = as_operand(self.idx)
        self.src = as_operand(self.src)


@dataclass
class AtomGlobal(Instr):
    """Atomic read-modify-write on global memory.

    ``scope`` follows the Pascal scoped-atomics model: ``device`` is the
    default; ``block`` maps to ``atomicAdd_block``; ``system`` to
    ``atomicAdd_system`` (Section II-A-2).
    """

    op: str
    buf: str
    idx: object
    src: object
    scope: str = "device"

    def __post_init__(self):
        if self.op not in ATOMIC_OPS:
            raise ValueError(f"unknown atomic op {self.op!r}")
        if self.scope not in ATOMIC_SCOPES:
            raise ValueError(f"unknown atomic scope {self.scope!r}")
        self.idx = as_operand(self.idx)
        self.src = as_operand(self.src)


@dataclass
class AtomShared(Instr):
    op: str
    buf: str
    idx: object
    src: object

    def __post_init__(self):
        if self.op not in ATOMIC_OPS:
            raise ValueError(f"unknown atomic op {self.op!r}")
        self.idx = as_operand(self.idx)
        self.src = as_operand(self.src)


@dataclass
class Shfl(Instr):
    """Warp shuffle: exchange register values inside one warp."""

    dst: Reg
    src: Reg
    mode: str
    offset: object
    width: int = 32

    def __post_init__(self):
        if self.mode not in SHFL_MODES:
            raise ValueError(f"unknown shuffle mode {self.mode!r}")
        self.offset = as_operand(self.offset)
        if self.width not in (1, 2, 4, 8, 16, 32):
            raise ValueError("shuffle width must be a power of two <= 32")


@dataclass
class Bar(Instr):
    """Block-wide barrier (``__syncthreads``)."""


@dataclass
class If(Instr):
    cond: Reg
    then: list = field(default_factory=list)
    otherwise: list = field(default_factory=list)


@dataclass
class While(Instr):
    """Structured loop.

    Each iteration first executes ``cond_block`` (which must set
    ``cond``), then — for lanes where ``cond`` holds — the ``body``.
    Lanes whose condition is false stay inactive until every lane in the
    block is done (SIMT reconvergence).
    """

    cond_block: list
    cond: Reg
    body: list = field(default_factory=list)


@dataclass
class Comment(Instr):
    text: str


def walk_instrs(body: list):
    """Yield every instruction in a body, descending into regions."""
    for instr in body:
        yield instr
        if isinstance(instr, If):
            yield from walk_instrs(instr.then)
            yield from walk_instrs(instr.otherwise)
        elif isinstance(instr, While):
            yield from walk_instrs(instr.cond_block)
            yield from walk_instrs(instr.body)
