"""Static analysis over VIR: uniform-constant evaluation and trip counts.

The closure compiler in :mod:`repro.gpusim.compile` unrolls structured
loops whose trip counts are statically known — the Listing 4 reduction
tree loops, whose induction registers are seeded from immediates and
stepped with constant arithmetic (``offset >>= 1`` style). This module
provides the conservative abstract interpreter that proves it:

* a register is tracked as a **uniform constant** when every lane of
  every block provably holds the same scalar value at that program
  point (it was written unconditionally from immediates / other uniform
  constants);
* anything else — special registers, loads, shuffles, parameters,
  writes under divergent control flow — poisons the destination to
  :data:`UNKNOWN`.

Scalar evaluation mirrors the engine's numpy semantics exactly for the
cases it accepts (C-style floor division, bool-as-int coercion); any
case where Python and numpy could disagree (division by zero, NaN
ordering, out-of-range shifts) conservatively returns ``UNKNOWN``, so a
failed analysis can never change observable behaviour — the loop simply
stays a loop.
"""

from __future__ import annotations

import math

from .instructions import (
    BinOp,
    Comment,
    If,
    Imm,
    Mov,
    Reg,
    Sel,
    UnOp,
    While,
    walk_instrs,
)

#: Sentinel for "not a compile-time uniform constant".
UNKNOWN = object()


def written_regs(body) -> set:
    """Names of every register written anywhere in ``body`` (nested too)."""
    regs = set()
    for instr in walk_instrs(body):
        dst = getattr(instr, "dst", None)
        if isinstance(dst, Reg):
            regs.add(dst.name)
        elif isinstance(dst, list):
            regs.update(r.name for r in dst if isinstance(r, Reg))
    return regs


def _read(operand, env):
    if isinstance(operand, Imm):
        return operand.value
    if isinstance(operand, Reg):
        return env.get(operand.name, UNKNOWN)
    return UNKNOWN


def _as_arith(value):
    """numpy arithmetic coerces bool operands to ints (_coerce_bool)."""
    if isinstance(value, bool):
        return int(value)
    return value


def _is_int_like(value) -> bool:
    return isinstance(value, (int, bool))


def _apply_binop(op, a, b):
    """Scalar twin of the engine's ``_np_binop``; UNKNOWN when unsure."""
    if isinstance(a, float) and math.isnan(a):
        return UNKNOWN
    if isinstance(b, float) and math.isnan(b):
        return UNKNOWN
    if op == "lt":
        return a < b
    if op == "le":
        return a <= b
    if op == "gt":
        return a > b
    if op == "ge":
        return a >= b
    if op == "eq":
        return a == b
    if op == "ne":
        return a != b
    if op == "land":
        return bool(a) and bool(b)
    if op == "lor":
        return bool(a) or bool(b)
    a = _as_arith(a)
    b = _as_arith(b)
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return a * b
    if op == "min":
        return min(a, b)
    if op == "max":
        return max(a, b)
    if op == "div":
        if b == 0:
            return UNKNOWN  # numpy warns and yields 0/inf; stay conservative
        if _is_int_like(a) and _is_int_like(b):
            return a // b  # floor division, like the engine's _int_div
        return a / b
    if op == "idiv":
        if b == 0:
            return UNKNOWN
        return a // b  # floor division regardless of operand dtype
    if op == "mod":
        if b == 0:
            return UNKNOWN
        return a % b
    if not (_is_int_like(a) and _is_int_like(b)):
        return UNKNOWN  # bitwise ops on floats never appear in valid VIR
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "shl":
        return a << b if 0 <= b < 64 else UNKNOWN
    if op == "shr":
        return a >> b if 0 <= b < 64 else UNKNOWN
    return UNKNOWN


def _apply_unop(op, a):
    if isinstance(a, float) and math.isnan(a):
        return UNKNOWN
    if op == "neg":
        return -_as_arith(a)
    if op == "lnot":
        return not a
    if op == "bnot":
        if not _is_int_like(a):
            return UNKNOWN
        return ~_as_arith(a)
    return UNKNOWN


def eval_const_instr(instr, env) -> None:
    """Abstractly execute one instruction over a uniform-constant env.

    ``env`` maps register name -> scalar value (or UNKNOWN). Whatever
    cannot be proven uniform-constant poisons its destinations; the env
    is mutated in place.
    """
    if isinstance(instr, Comment):
        return
    if isinstance(instr, Mov):
        env[instr.dst.name] = _read(instr.a, env)
        return
    if isinstance(instr, BinOp):
        a = _read(instr.a, env)
        b = _read(instr.b, env)
        if a is UNKNOWN or b is UNKNOWN:
            env[instr.dst.name] = UNKNOWN
        else:
            env[instr.dst.name] = _apply_binop(instr.op, a, b)
        return
    if isinstance(instr, UnOp):
        a = _read(instr.a, env)
        env[instr.dst.name] = UNKNOWN if a is UNKNOWN else _apply_unop(instr.op, a)
        return
    if isinstance(instr, Sel):
        cond = _read(instr.cond, env)
        a = _read(instr.a, env)
        b = _read(instr.b, env)
        if UNKNOWN in (cond, a, b):
            env[instr.dst.name] = UNKNOWN
        else:
            env[instr.dst.name] = a if cond else b
        return
    if isinstance(instr, (If, While)):
        # Writes under (possibly) divergent control are not uniform.
        for name in written_regs([instr]):
            env[name] = UNKNOWN
        return
    dst = getattr(instr, "dst", None)
    if isinstance(dst, Reg):
        env[dst.name] = UNKNOWN
    elif isinstance(dst, list):
        for reg in dst:
            if isinstance(reg, Reg):
                env[reg.name] = UNKNOWN


def eval_const_body(body, env) -> None:
    """Abstractly execute a straight-line body (mutates ``env``)."""
    for instr in body:
        eval_const_instr(instr, env)


#: Special registers that hold the same value in every lane of a block.
UNIFORM_SPECIALS = frozenset({"ctaid", "ntid", "nctaid"})


def eval_uniform_instr(instr, env) -> None:
    """Abstractly track *block-uniformity* of registers.

    ``env`` maps register name -> ``True`` when every lane of a block
    provably holds the same value at that program point, ``False``
    otherwise. This complements :func:`eval_const_instr` (which tracks
    the uniform *value* when it is also a compile-time constant): a
    register seeded from ``ld.param`` or ``%ctaid`` is uniform without
    being constant. The sanitizer's static lint uses it to decide
    whether a shared-memory address is provably written by every active
    lane of a region (a uniform index under a multi-lane mask).

    Conservative like its twin: loads, shuffles, atomics and writes
    under (possibly divergent) ``If``/``While`` control poison their
    destinations to non-uniform.
    """
    from .instructions import LdParam, Special

    if isinstance(instr, Comment):
        return
    if isinstance(instr, Mov):
        env[instr.dst.name] = _uniform_operand(instr.a, env)
        return
    if isinstance(instr, BinOp):
        env[instr.dst.name] = (
            _uniform_operand(instr.a, env) and _uniform_operand(instr.b, env)
        )
        return
    if isinstance(instr, UnOp):
        env[instr.dst.name] = _uniform_operand(instr.a, env)
        return
    if isinstance(instr, Sel):
        env[instr.dst.name] = (
            _uniform_operand(instr.cond, env)
            and _uniform_operand(instr.a, env)
            and _uniform_operand(instr.b, env)
        )
        return
    if isinstance(instr, Special):
        env[instr.dst.name] = instr.kind in UNIFORM_SPECIALS
        return
    if isinstance(instr, LdParam):
        env[instr.dst.name] = True
        return
    if isinstance(instr, (If, While)):
        for name in written_regs([instr]):
            env[name] = False
        return
    dst = getattr(instr, "dst", None)
    if isinstance(dst, Reg):
        env[dst.name] = False
    elif isinstance(dst, list):
        for reg in dst:
            if isinstance(reg, Reg):
                env[reg.name] = False


def _uniform_operand(operand, env) -> bool:
    if isinstance(operand, Imm):
        return True
    if isinstance(operand, Reg):
        return env.get(operand.name, False)
    return False


def uniform_trip_count(loop: While, env, max_trips: int = 256):
    """Trip count of a ``While`` whose condition is uniform-constant.

    Simulates the loop's condition block and body over a copy of the
    uniform-constant environment. Returns ``(trips, env_after)`` when
    the loop provably executes its body exactly ``trips`` times for
    every lane of every block (``env_after`` is the register state after
    the final condition evaluation); ``(None, None)`` otherwise.
    """
    env = dict(env)
    trips = 0
    while trips <= max_trips:
        eval_const_body(loop.cond_block, env)
        cond = env.get(loop.cond.name, UNKNOWN)
        if cond is UNKNOWN:
            return None, None
        if not cond:
            return trips, env
        eval_const_body(loop.body, env)
        trips += 1
    return None, None
