"""Stable text rendering of VIR kernels, used for debugging and golden tests."""

from __future__ import annotations

from .instructions import (
    AtomGlobal,
    AtomShared,
    Bar,
    BinOp,
    Comment,
    If,
    LdGlobal,
    LdParam,
    LdShared,
    Mov,
    Sel,
    Shfl,
    Special,
    StGlobal,
    StShared,
    UnOp,
    While,
)
from .program import Kernel, KernelStep, MemsetStep, Plan


def format_instr(instr, indent: int = 0) -> str:
    pad = "  " * indent
    if isinstance(instr, Comment):
        return f"{pad}; {instr.text}"
    if isinstance(instr, BinOp):
        return f"{pad}{instr.dst} = {instr.op} {instr.a}, {instr.b}"
    if isinstance(instr, UnOp):
        return f"{pad}{instr.dst} = {instr.op} {instr.a}"
    if isinstance(instr, Mov):
        return f"{pad}{instr.dst} = mov {instr.a}"
    if isinstance(instr, Sel):
        return f"{pad}{instr.dst} = sel {instr.cond}, {instr.a}, {instr.b}"
    if isinstance(instr, Special):
        return f"{pad}{instr.dst} = %{instr.kind}"
    if isinstance(instr, LdParam):
        return f"{pad}{instr.dst} = ld.param [{instr.name}]"
    if isinstance(instr, LdGlobal):
        if instr.width == 1:
            return f"{pad}{instr.dst} = ld.global [{instr.buf} + {instr.idx}]"
        dsts = ", ".join(str(d) for d in instr.dst)
        return (
            f"{pad}{{{dsts}}} = ld.global.v{instr.width} "
            f"[{instr.buf} + {instr.idx}]"
        )
    if isinstance(instr, StGlobal):
        return f"{pad}st.global [{instr.buf} + {instr.idx}], {instr.src}"
    if isinstance(instr, LdShared):
        return f"{pad}{instr.dst} = ld.shared [{instr.buf} + {instr.idx}]"
    if isinstance(instr, StShared):
        return f"{pad}st.shared [{instr.buf} + {instr.idx}], {instr.src}"
    if isinstance(instr, AtomGlobal):
        return (
            f"{pad}atom.global.{instr.scope}.{instr.op} "
            f"[{instr.buf} + {instr.idx}], {instr.src}"
        )
    if isinstance(instr, AtomShared):
        return f"{pad}atom.shared.{instr.op} [{instr.buf} + {instr.idx}], {instr.src}"
    if isinstance(instr, Shfl):
        return (
            f"{pad}{instr.dst} = shfl.{instr.mode} {instr.src}, "
            f"{instr.offset}, w={instr.width}"
        )
    if isinstance(instr, Bar):
        return f"{pad}bar.sync"
    if isinstance(instr, If):
        lines = [f"{pad}if {instr.cond} {{"]
        lines += [format_instr(i, indent + 1) for i in instr.then]
        if instr.otherwise:
            lines.append(f"{pad}}} else {{")
            lines += [format_instr(i, indent + 1) for i in instr.otherwise]
        lines.append(f"{pad}}}")
        return "\n".join(lines)
    if isinstance(instr, While):
        lines = [f"{pad}while {{"]
        lines += [format_instr(i, indent + 1) for i in instr.cond_block]
        lines.append(f"{pad}}} test {instr.cond} {{")
        lines += [format_instr(i, indent + 1) for i in instr.body]
        lines.append(f"{pad}}}")
        return "\n".join(lines)
    raise TypeError(f"cannot print {type(instr).__name__}")


def format_kernel(kernel: Kernel) -> str:
    header = (
        f".kernel {kernel.name}"
        f"(params: {', '.join(kernel.params) or '-'};"
        f" buffers: {', '.join(kernel.buffers) or '-'})"
    )
    lines = [header]
    for decl in kernel.shared:
        lines.append(f"  .shared {decl.name}[{decl.size}]")
    lines += [format_instr(i, 1) for i in kernel.body]
    return "\n".join(lines)


def format_plan(plan: Plan) -> str:
    lines = [f".plan {plan.name} -> {plan.result_buffer}[{plan.result_index}]"]
    for name, size in sorted(plan.scratch.items()):
        lines.append(f"  .scratch {name}[{size}]")
    for step in plan.steps:
        if isinstance(step, MemsetStep):
            lines.append(f"  memset {step.buffer}, {step.value}")
        elif isinstance(step, KernelStep):
            args = ", ".join(f"{k}={v}" for k, v in sorted(step.args.items()))
            bufs = ", ".join(f"{k}->{v}" for k, v in sorted(step.buffers.items()))
            lines.append(
                f"  launch {step.kernel.name}<<<{step.grid}, {step.block}>>>"
                f"({args}) [{bufs}]"
            )
    return "\n".join(lines)
