"""Kernels and host-side launch plans.

A :class:`Kernel` is a VIR body plus its interface (scalar params, global
buffer params, shared-memory declarations). A :class:`Plan` is the host
orchestration for one reduction call: scratch allocations, memsets, and a
sequence of kernel launches — the analogue of the ``Reduce_Grid`` host
code in Listings 1 and 2 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .instructions import LdParam, Reg, walk_instrs


@dataclass
class SharedDecl:
    """One ``__shared__`` buffer of ``size`` elements."""

    name: str
    size: int

    def __post_init__(self):
        if self.size < 1:
            raise ValueError(f"shared buffer {self.name!r} needs size >= 1")


@dataclass
class Kernel:
    name: str
    params: list = field(default_factory=list)  # scalar param names
    buffers: list = field(default_factory=list)  # global buffer param names
    shared: list = field(default_factory=list)  # SharedDecl
    body: list = field(default_factory=list)  # Instr
    meta: dict = field(default_factory=dict)

    def shared_bytes(self, element_size: int = 4) -> int:
        return sum(decl.size for decl in self.shared) * element_size

    def register_count(self) -> int:
        """Number of distinct virtual registers (occupancy proxy)."""
        regs = set()
        for instr in walk_instrs(self.body):
            for value in vars(instr).values():
                if isinstance(value, Reg):
                    regs.add(value.name)
                elif isinstance(value, list):
                    regs.update(v.name for v in value if isinstance(v, Reg))
        return len(regs)

    def instruction_count(self) -> int:
        return sum(1 for _ in walk_instrs(self.body))

    def validate(self) -> None:
        """Cheap structural checks; raises ``ValueError`` on problems."""
        shared_names = {decl.name for decl in self.shared}
        if len(shared_names) != len(self.shared):
            raise ValueError(f"kernel {self.name!r}: duplicate shared buffers")
        buffer_names = set(self.buffers)
        param_names = set(self.params)
        for instr in walk_instrs(self.body):
            if isinstance(instr, LdParam) and instr.name not in param_names:
                raise ValueError(
                    f"kernel {self.name!r}: unknown param {instr.name!r}"
                )
            buf = getattr(instr, "buf", None)
            if buf is None:
                continue
            kind = type(instr).__name__
            if "Shared" in kind:
                if buf not in shared_names:
                    raise ValueError(
                        f"kernel {self.name!r}: unknown shared buffer {buf!r}"
                    )
            else:
                if buf not in buffer_names:
                    raise ValueError(
                        f"kernel {self.name!r}: unknown global buffer {buf!r}"
                    )


# -- host plan -------------------------------------------------------------


@dataclass
class MemsetStep:
    """Fill a device buffer with a constant before launching."""

    buffer: str
    value: float = 0.0


@dataclass
class KernelStep:
    """One kernel launch: ``kernel<<<grid, block>>>(args, buffers)``."""

    kernel: Kernel
    grid: int
    block: int
    args: dict = field(default_factory=dict)  # param name -> host scalar
    buffers: dict = field(default_factory=dict)  # kernel buffer -> device name

    def __post_init__(self):
        if self.grid < 1 or self.block < 1:
            raise ValueError(
                f"launch of {self.kernel.name!r} needs positive grid/block, "
                f"got <<<{self.grid}, {self.block}>>>"
            )
        missing = set(self.kernel.params) - set(self.args)
        if missing:
            raise ValueError(
                f"launch of {self.kernel.name!r} missing args: {sorted(missing)}"
            )
        unbound = set(self.kernel.buffers) - set(self.buffers)
        if unbound:
            raise ValueError(
                f"launch of {self.kernel.name!r} missing buffers: {sorted(unbound)}"
            )


@dataclass
class Plan:
    """Host orchestration for one synthesized reduction call."""

    name: str
    steps: list = field(default_factory=list)  # MemsetStep | KernelStep
    scratch: dict = field(default_factory=dict)  # device buffer name -> size
    result_buffer: str = "out"
    result_index: int = 0
    meta: dict = field(default_factory=dict)

    def kernel_steps(self) -> list:
        return [step for step in self.steps if isinstance(step, KernelStep)]

    def num_kernel_launches(self) -> int:
        return len(self.kernel_steps())

    def validate(self) -> None:
        for step in self.kernel_steps():
            step.kernel.validate()
