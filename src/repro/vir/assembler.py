"""VIR assembler: parse the printer's text format back into kernels.

Together with :mod:`repro.vir.printer` this gives VIR a stable textual
round trip — useful for golden tests, for inspecting synthesized
kernels, and for hand-authoring small kernels in text (the way one
would write PTX snippets).

Grammar = exactly what :func:`repro.vir.printer.format_kernel` emits.
"""

from __future__ import annotations

import re

from .instructions import (
    AtomGlobal,
    AtomShared,
    Bar,
    BinOp,
    BINARY_OPS,
    Comment,
    If,
    Imm,
    LdGlobal,
    LdParam,
    LdShared,
    Mov,
    Reg,
    Sel,
    Shfl,
    Special,
    SPECIAL_KINDS,
    StGlobal,
    StShared,
    UNARY_OPS,
    UnOp,
    While,
)
from .program import Kernel, SharedDecl


class AssemblyError(Exception):
    """Raised on malformed VIR text."""

    def __init__(self, message: str, line_no: int = None, line: str = None):
        location = f" (line {line_no}: {line.strip()!r})" if line else ""
        super().__init__(f"{message}{location}")


_HEADER = re.compile(
    r"^\.kernel\s+(?P<name>\w+)\(params:\s*(?P<params>[^;]*);"
    r"\s*buffers:\s*(?P<buffers>[^)]*)\)$"
)
_SHARED = re.compile(r"^\.shared\s+(?P<name>\w+)\[(?P<size>\d+)\]$")
_ADDR = re.compile(r"^\[(?P<buf>\w+)\s*\+\s*(?P<idx>.+)\]$")


def _parse_operand(text: str):
    text = text.strip()
    if text.startswith("%"):
        return Reg(text[1:])
    if text == "True":
        return Imm(True)
    if text == "False":
        return Imm(False)
    try:
        return Imm(int(text))
    except ValueError:
        pass
    try:
        return Imm(float(text))
    except ValueError:
        raise AssemblyError(f"bad operand {text!r}") from None


def _parse_reg(text: str) -> Reg:
    operand = _parse_operand(text)
    if not isinstance(operand, Reg):
        raise AssemblyError(f"expected a register, got {text!r}")
    return operand


def _parse_addr(text: str):
    match = _ADDR.match(text.strip())
    if not match:
        raise AssemblyError(f"bad address {text!r}")
    return match.group("buf"), _parse_operand(match.group("idx"))


def _split_args(text: str):
    return [part.strip() for part in text.split(",") if part.strip()]


class _Parser:
    def __init__(self, lines):
        self.lines = lines
        self.pos = 0

    def peek(self):
        return self.lines[self.pos] if self.pos < len(self.lines) else None

    def next(self):
        line = self.peek()
        if line is None:
            raise AssemblyError("unexpected end of input")
        self.pos += 1
        return line

    # -- structure ------------------------------------------------------

    def parse_kernel(self) -> Kernel:
        header = self.next().strip()
        match = _HEADER.match(header)
        if not match:
            raise AssemblyError(f"bad kernel header {header!r}")
        params = [] if match.group("params").strip() == "-" else _split_args(
            match.group("params")
        )
        buffers = [] if match.group("buffers").strip() == "-" else _split_args(
            match.group("buffers")
        )
        shared = []
        while self.peek() is not None and self.peek().strip().startswith(".shared"):
            decl = _SHARED.match(self.next().strip())
            if not decl:
                raise AssemblyError("bad .shared declaration")
            shared.append(SharedDecl(decl.group("name"), int(decl.group("size"))))
        body = self.parse_body(stop_tokens=())
        return Kernel(
            name=match.group("name"),
            params=params,
            buffers=buffers,
            shared=shared,
            body=body,
        )

    def parse_body(self, stop_tokens) -> list:
        instrs = []
        while True:
            line = self.peek()
            if line is None:
                if stop_tokens:
                    raise AssemblyError("unterminated region")
                return instrs
            stripped = line.strip()
            if stripped in stop_tokens or any(
                stripped.startswith(token) for token in stop_tokens if token
            ):
                return instrs
            self.next()
            if not stripped:
                continue
            instrs.append(self.parse_instr(stripped))

    def parse_instr(self, text: str):
        if text.startswith(";"):
            return Comment(text[1:].strip())
        if text == "bar.sync":
            return Bar()
        if text.startswith("if "):
            return self._parse_if(text)
        if text.startswith("while {"):
            return self._parse_while()
        if text.startswith("st.global"):
            addr, src = self._addr_and_value(text, "st.global")
            return StGlobal(addr[0], addr[1], src)
        if text.startswith("st.shared"):
            addr, src = self._addr_and_value(text, "st.shared")
            return StShared(addr[0], addr[1], src)
        if text.startswith("atom.shared."):
            op, addr, src = self._parse_atom(text, "atom.shared.")
            return AtomShared(op, addr[0], addr[1], src)
        if text.startswith("atom.global."):
            rest = text[len("atom.global."):]
            scope, rest = rest.split(".", 1)
            op, addr, src = self._parse_atom("atom." + rest, "atom.")
            return AtomGlobal(op, addr[0], addr[1], src, scope=scope)
        if "=" in text:
            return self._parse_assignment(text)
        raise AssemblyError(f"cannot parse instruction {text!r}")

    def _addr_and_value(self, text: str, mnemonic: str):
        rest = text[len(mnemonic):].strip()
        addr_text, _, value_text = rest.rpartition(",")
        return _parse_addr(addr_text), _parse_operand(value_text)

    def _parse_atom(self, text: str, prefix: str):
        rest = text[len(prefix):]
        op, rest = rest.split(" ", 1)
        addr_text, _, value_text = rest.rpartition(",")
        return op, _parse_addr(addr_text), _parse_operand(value_text)

    def _parse_assignment(self, text: str):
        lhs_text, rhs = (part.strip() for part in text.split("=", 1))
        if lhs_text.startswith("{"):
            regs = [_parse_reg(r) for r in _split_args(lhs_text.strip("{}"))]
            match = re.match(r"ld\.global\.v(\d+)\s+(.*)", rhs)
            if not match:
                raise AssemblyError(f"bad vector load {rhs!r}")
            buf, idx = _parse_addr(match.group(2))
            return LdGlobal(regs, buf, idx, width=int(match.group(1)))
        dst = _parse_reg(lhs_text)
        if rhs.startswith("%") and rhs[1:] in SPECIAL_KINDS:
            return Special(dst, rhs[1:])
        if rhs.startswith("ld.param"):
            name = re.match(r"ld\.param\s+\[(\w+)\]", rhs)
            if not name:
                raise AssemblyError(f"bad ld.param {rhs!r}")
            return LdParam(dst, name.group(1))
        if rhs.startswith("ld.global"):
            buf, idx = _parse_addr(rhs[len("ld.global"):].strip())
            return LdGlobal(dst, buf, idx)
        if rhs.startswith("ld.shared"):
            buf, idx = _parse_addr(rhs[len("ld.shared"):].strip())
            return LdShared(dst, buf, idx)
        if rhs.startswith("shfl."):
            match = re.match(
                r"shfl\.(\w+)\s+(%\w+),\s*(.+),\s*w=(\d+)", rhs
            )
            if not match:
                raise AssemblyError(f"bad shuffle {rhs!r}")
            return Shfl(
                dst,
                _parse_reg(match.group(2)),
                match.group(1),
                _parse_operand(match.group(3)),
                width=int(match.group(4)),
            )
        if rhs.startswith("mov "):
            return Mov(dst, _parse_operand(rhs[4:]))
        if rhs.startswith("sel "):
            args = _split_args(rhs[4:])
            if len(args) != 3:
                raise AssemblyError(f"sel takes 3 operands, got {rhs!r}")
            return Sel(dst, *[_parse_operand(a) for a in args])
        mnemonic, _, operands = rhs.partition(" ")
        if mnemonic in BINARY_OPS:
            args = _split_args(operands)
            if len(args) != 2:
                raise AssemblyError(f"{mnemonic} takes 2 operands, got {rhs!r}")
            return BinOp(dst, mnemonic, *[_parse_operand(a) for a in args])
        if mnemonic in UNARY_OPS:
            return UnOp(dst, mnemonic, _parse_operand(operands))
        raise AssemblyError(f"unknown instruction {rhs!r}")

    def _parse_if(self, text: str):
        match = re.match(r"if\s+(%\w+)\s*\{$", text)
        if not match:
            raise AssemblyError(f"bad if header {text!r}")
        cond = _parse_reg(match.group(1))
        then = self.parse_body(stop_tokens=("}", "} else {"))
        closer = self.next().strip()
        otherwise = []
        if closer == "} else {":
            otherwise = self.parse_body(stop_tokens=("}",))
            closer = self.next().strip()
        if closer != "}":
            raise AssemblyError(f"expected '}}', got {closer!r}")
        return If(cond, then, otherwise)

    def _parse_while(self):
        cond_block = self.parse_body(stop_tokens=("} test",))
        test_line = self.next().strip()
        match = re.match(r"\}\s*test\s+(%\w+)\s*\{$", test_line)
        if not match:
            raise AssemblyError(f"bad while test {test_line!r}")
        cond = _parse_reg(match.group(1))
        body = self.parse_body(stop_tokens=("}",))
        closer = self.next().strip()
        if closer != "}":
            raise AssemblyError(f"expected '}}', got {closer!r}")
        return While(cond_block, cond, body)


def parse_kernel(text: str) -> Kernel:
    """Parse one kernel from its printed text form."""
    lines = [line for line in text.splitlines() if line.strip()]
    parser = _Parser(lines)
    kernel = parser.parse_kernel()
    if parser.peek() is not None:
        raise AssemblyError(f"trailing input: {parser.peek().strip()!r}")
    return kernel
