"""Process-wide hierarchical span tracer.

Design constraints, in priority order:

1. **Zero overhead when disabled.** Instrumented code calls
   ``get_tracer().span(name, **attrs)`` unconditionally; a disabled
   tracer returns one shared :class:`_NullSpan` singleton whose
   ``__enter__``/``__exit__``/``set`` are empty methods — no timestamp
   is read, no dict is touched, nothing allocates per call beyond the
   keyword dict the caller builds. All instrumentation sits at
   operation granularity (per launch, per pass, per plan build), never
   inside the simulator's per-instruction loops.
2. **Deterministic cross-process merge.** Sweep workers capture the
   spans they record (:meth:`Tracer.capture`) and ship them back as
   plain dicts; the parent merges them in submission order with a
   synthetic worker thread id. ``time.perf_counter`` is
   ``CLOCK_MONOTONIC`` on Linux — system-wide, so parent and worker
   timestamps land on one consistent timeline.
3. **Bounded memory.** A tracer keeps at most ``max_spans`` spans and
   counts the overflow in :attr:`Tracer.dropped`.

Activation: set ``REPRO_TRACE=<path>`` to enable the process tracer and
write a Chrome ``trace_event`` JSON to ``<path>`` at interpreter exit,
or call :func:`enable_tracing` (what ``python -m repro trace`` does).
"""

from __future__ import annotations

import atexit
import os
import threading
import time

#: Environment variable: when set, tracing is on for the whole process
#: and the trace is written to the variable's value at exit.
TRACE_ENV = "REPRO_TRACE"

#: Default bound on retained spans (overflow increments ``dropped``).
DEFAULT_MAX_SPANS = 1_000_000


class _NullSpan:
    """Shared no-op span: the disabled tracer's entire fast path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set(self, **attrs):
        pass


_NULL_SPAN = _NullSpan()


class Span:
    """One timed, attributed operation; also its own context manager."""

    __slots__ = ("name", "ts", "dur", "tid", "depth", "args", "_tracer")

    def __init__(self, name, ts=0.0, dur=0.0, tid=0, depth=0, args=None,
                 tracer=None):
        self.name = name
        self.ts = ts
        self.dur = dur
        self.tid = tid
        self.depth = depth
        self.args = args if args is not None else {}
        self._tracer = tracer

    def set(self, **attrs) -> None:
        """Attach (or overwrite) structured attributes."""
        self.args.update(attrs)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "ts": self.ts,
            "dur": self.dur,
            "tid": self.tid,
            "depth": self.depth,
            "args": dict(self.args),
        }

    @classmethod
    def from_dict(cls, data: dict, tid=None) -> "Span":
        return cls(
            name=data["name"],
            ts=data.get("ts", 0.0),
            dur=data.get("dur", 0.0),
            tid=data.get("tid", 0) if tid is None else tid,
            depth=data.get("depth", 0),
            args=dict(data.get("args", ())),
        )

    def __enter__(self):
        tracer = self._tracer
        local = tracer._local
        self.depth = getattr(local, "depth", 0)
        local.depth = self.depth + 1
        self.ts = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.dur = time.perf_counter() - self.ts
        tracer = self._tracer
        tracer._local.depth = self.depth
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        tracer._record(self)
        return False

    def __repr__(self):
        return (
            f"Span({self.name!r}, ts={self.ts:.6f}, dur={self.dur:.6f}, "
            f"tid={self.tid}, args={self.args!r})"
        )


class _Capture:
    """Context manager collecting spans recorded by the current thread."""

    def __init__(self, tracer):
        self._tracer = tracer
        self.spans = []

    def __enter__(self):
        local = self._tracer._local
        stack = getattr(local, "captures", None)
        if stack is None:
            stack = local.captures = []
        stack.append(self.spans)
        return self.spans

    def __exit__(self, exc_type, exc, tb):
        self._tracer._local.captures.remove(self.spans)
        return False


class Tracer:
    """Records spans process-wide; thread-safe; enable/disable in place."""

    def __init__(self, enabled: bool = False, path: str = None,
                 max_spans: int = DEFAULT_MAX_SPANS):
        self.enabled = enabled
        #: Where the atexit hook (env activation) writes the trace;
        #: ``None`` disables the hook.
        self.path = path
        self.max_spans = max_spans
        self.dropped = 0
        self._lock = threading.Lock()
        self._spans = []
        self._local = threading.local()
        self._next_tid = 0

    # -- recording -----------------------------------------------------

    def span(self, name: str, **args):
        """A context-managed span — the shared no-op when disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(name, tid=self._tid(), args=args, tracer=self)

    def instant(self, name: str, **args) -> None:
        """Record a zero-duration event (a point on the timeline)."""
        if not self.enabled:
            return
        span = Span(name, ts=time.perf_counter(), tid=self._tid(),
                    depth=getattr(self._local, "depth", 0), args=args,
                    tracer=self)
        self._record(span)

    def _tid(self) -> int:
        # Stored on the thread-local, not keyed by threading.get_ident():
        # the OS recycles idents after a thread exits, so an ident-keyed
        # table hands a dead thread's tid to an unrelated new thread and
        # their spans interleave on one trace row. A thread-local id
        # assigned from a monotonic counter is unique for the lifetime
        # of the trace.
        tid = getattr(self._local, "tid", None)
        if tid is None:
            with self._lock:
                tid = self._next_tid
                self._next_tid += 1
            self._local.tid = tid
        return tid

    def _record(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self.dropped += 1
            else:
                self._spans.append(span)
        captures = getattr(self._local, "captures", None)
        if captures:
            for bucket in captures:
                bucket.append(span)

    # -- worker capture / merge ---------------------------------------

    def capture(self) -> _Capture:
        """Collect the spans this thread records inside a ``with`` block
        (used by sweep workers to ship their spans to the parent)."""
        return _Capture(self)

    def merge(self, span_dicts, tid: int = None) -> None:
        """Append spans serialized by :meth:`Span.as_dict` (e.g. from a
        worker process), optionally remapping them onto one thread id.
        Call in submission order for a deterministic merged trace."""
        spans = [Span.from_dict(d, tid=tid) for d in span_dicts]
        with self._lock:
            for span in spans:
                if len(self._spans) >= self.max_spans:
                    self.dropped += 1
                else:
                    self._spans.append(span)

    # -- inspection / lifecycle ---------------------------------------

    @property
    def spans(self) -> list:
        """Snapshot of recorded spans (chronology of completion)."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0

    def export_chrome(self, path) -> int:
        """Write the Chrome ``trace_event`` JSON; returns span count."""
        from .export import write_chrome_trace

        spans = self.spans
        write_chrome_trace(spans, path)
        return len(spans)

    def export_jsonl(self, path) -> int:
        from .export import write_jsonl

        spans = self.spans
        write_jsonl(spans, path)
        return len(spans)

    def export_collapsed(self, path) -> int:
        """Write a collapsed-stack flamegraph (``flamegraph.pl`` /
        speedscope input); returns the number of stack lines."""
        from .export import write_collapsed

        return write_collapsed(self.spans, path)


# ---------------------------------------------------------------------
# process-wide singleton
# ---------------------------------------------------------------------

_tracer = None
_tracer_lock = threading.Lock()


def get_tracer() -> Tracer:
    """The process tracer (created on first use; env-activated)."""
    global _tracer
    if _tracer is None:
        with _tracer_lock:
            if _tracer is None:
                path = os.environ.get(TRACE_ENV) or None
                tracer = Tracer(enabled=bool(path), path=path)
                if path:
                    atexit.register(_write_at_exit)
                _tracer = tracer
    return _tracer


def enable_tracing(path: str = None) -> Tracer:
    """Turn the process tracer on (keeps already-recorded spans)."""
    tracer = get_tracer()
    tracer.enabled = True
    if path is not None:
        tracer.path = path
    return tracer


def disable_tracing() -> Tracer:
    """Turn the process tracer off (spans stay until :meth:`clear`)."""
    tracer = get_tracer()
    tracer.enabled = False
    return tracer


def _write_at_exit() -> None:
    tracer = _tracer
    if tracer is None or not tracer.path:
        return
    spans = tracer.spans
    if not spans:
        return
    try:
        tracer.export_chrome(tracer.path)
    except OSError:
        pass  # tracing is best-effort; never fail the real work at exit
