"""Process-wide metrics registry: counters, gauges, histograms.

The registry is always on — every operation is a couple of dict updates
under a lock, at operation granularity (per launch / per sweep / per
compile), so it costs nothing measurable next to the work it counts.
It aggregates what the ad-hoc signals used to scatter:

* simulator event totals per :data:`repro.gpusim.events.EVENT_KEYS`
  (``sim.<key>`` counters, fed by the executor after every launch);
* batched-vs-sequential launch counts (``exec.launch.batched`` /
  ``exec.launch.sequential``);
* compiled-trace lengths (``compile.trace_len`` histogram) and compile
  counts;
* sweep fan-out sizes and pool usage from :mod:`repro.perf.parallel`
  (``pool.fanout`` histogram, ``pool.parallel`` / ``pool.serial``);
* work-stealing scheduler health (``sweep.sched.dispatched`` /
  ``completed`` / ``retried`` / ``steals`` / ``pool_spawns`` /
  ``pool_reuses`` counters, the ``sweep.sched.queue_depth`` histogram
  of work left at each completion, and the ``sweep.worker_util`` gauge
  — worker busy-time over ``workers × wall`` for the last sweep);
* profile/plan cache statistics, pulled live from
  ``repro.perf.default_cache`` / ``default_plan_cache`` at snapshot
  time so they can never drift from the caches' own accounting.

``python -m repro stats`` dumps a snapshot; ``python -m repro trace``
appends one to its run summary.
"""

from __future__ import annotations

import threading


def _bucket(value: float) -> int:
    """Power-of-two histogram bucket index (0 for values < 1)."""
    bucket = 0
    value = int(value)
    while value > 1:
        value >>= 1
        bucket += 1
    return bucket


class MetricsRegistry:
    """Thread-safe named counters, gauges and histograms."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters = {}
        self._gauges = {}
        self._hists = {}

    # -- updates -------------------------------------------------------

    def inc(self, name: str, value=1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def inc_many(self, mapping, prefix: str = "") -> None:
        """Add every (name, value) of a mapping (e.g. an event Counter)."""
        with self._lock:
            counters = self._counters
            for key, value in mapping.items():
                name = prefix + key
                counters[name] = counters.get(name, 0) + int(value)

    def gauge(self, name: str, value) -> None:
        with self._lock:
            self._gauges[name] = value

    def record(self, counters=None, gauges=None, observations=None) -> None:
        """Apply a group of updates under ONE lock acquisition.

        Concurrent launch paths (the executor, the serve scheduler)
        publish several logically-coupled metrics per event — a launch
        counter plus its event totals, a batch counter plus its latency
        sample.  Separate ``inc``/``observe`` calls leave a window where
        a concurrent ``snapshot`` sees one update without the other
        (a torn read); grouping them keeps every snapshot consistent.
        """
        with self._lock:
            if counters:
                table = self._counters
                for name, value in counters.items():
                    table[name] = table.get(name, 0) + int(value)
            if gauges:
                self._gauges.update(gauges)
            if observations:
                for name, value in observations.items():
                    self._observe_locked(name, value)

    def observe(self, name: str, value) -> None:
        """Record one histogram sample (count/total/min/max + log2 buckets).

        The buckets are power-of-two, so every value below 1 collapses
        into bucket 0 — record timings in a fixed sub-second unit
        (microseconds, with a ``_us`` name suffix so
        :meth:`summary_lines` labels the unit), never in raw seconds.
        """
        with self._lock:
            self._observe_locked(name, value)

    def _observe_locked(self, name: str, value) -> None:
        hist = self._hists.get(name)
        if hist is None:
            hist = self._hists[name] = {
                "count": 0, "total": 0.0,
                "min": float("inf"), "max": float("-inf"),
                "buckets": {},
            }
        hist["count"] += 1
        hist["total"] += value
        hist["min"] = min(hist["min"], value)
        hist["max"] = max(hist["max"], value)
        bucket = _bucket(value)
        hist["buckets"][bucket] = hist["buckets"].get(bucket, 0) + 1

    # -- reads ---------------------------------------------------------

    def counter(self, name: str):
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self, include_caches: bool = True) -> dict:
        """One JSON-serializable view of everything the registry holds."""
        with self._lock:
            counters = dict(sorted(self._counters.items()))
            gauges = dict(sorted(self._gauges.items()))
            hists = {}
            for name, hist in sorted(self._hists.items()):
                count = hist["count"]
                hists[name] = {
                    "count": count,
                    "total": hist["total"],
                    "min": hist["min"] if count else 0,
                    "max": hist["max"] if count else 0,
                    "mean": hist["total"] / count if count else 0,
                    "buckets": {
                        f"<2^{b + 1}": n
                        for b, n in sorted(hist["buckets"].items())
                    },
                }
        data = {"counters": counters, "gauges": gauges, "histograms": hists}
        if include_caches:
            data["caches"] = _cache_stats()
        return data

    def summary_lines(self, include_caches: bool = True) -> list:
        """Human-readable snapshot, one metric per line."""
        snap = self.snapshot(include_caches=include_caches)
        lines = []
        if snap["counters"]:
            lines.append("counters:")
            lines.extend(
                f"  {name} = {value}" for name, value in snap["counters"].items()
            )
        if snap["gauges"]:
            lines.append("gauges:")
            lines.extend(
                f"  {name} = {value}" for name, value in snap["gauges"].items()
            )
        if snap["histograms"]:
            lines.append("histograms:")
            for name, hist in snap["histograms"].items():
                unit = _hist_unit(name)
                lines.append(
                    f"  {name}: count={hist['count']} mean={hist['mean']:.2f} "
                    f"min={hist['min']} max={hist['max']}"
                    + (f" ({unit})" if unit else "")
                )
        for cache_name, stats in snap.get("caches", {}).items():
            lines.append(f"{cache_name} cache:")
            lines.extend(f"  {key} = {value}" for key, value in stats.items())
        if not lines:
            lines.append("(no metrics recorded)")
        return lines

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._hists.clear()


def _hist_unit(name: str) -> str:
    """Histogram display unit, derived from the name's suffix convention."""
    for suffix, unit in (("_us", "us"), ("_ms", "ms"), ("_bytes", "bytes")):
        if name.endswith(suffix):
            return unit
    return ""


def _cache_stats() -> dict:
    """Live statistics of the process-wide profile and plan caches."""
    try:  # runtime import: obs must stay importable standalone
        from ..perf import default_cache, default_plan_cache
    except ImportError:  # pragma: no cover - only hit in partial installs
        return {}
    profile = default_cache()
    plan = default_plan_cache()
    stats = {
        "profile": profile.stats.as_dict(),
        "plan": plan.stats.as_dict(),
    }
    stats["profile"]["entries"] = len(profile)
    stats["plan"]["entries"] = len(plan)
    disk = profile.disk_info()
    if disk["dir"]:
        stats["profile"]["disk_entries"] = disk["entries"]
        stats["profile"]["disk_bytes"] = disk["bytes"]
    return stats


# ---------------------------------------------------------------------
# process-wide singleton
# ---------------------------------------------------------------------

_metrics = None
_metrics_lock = threading.Lock()


def default_metrics() -> MetricsRegistry:
    """The process metrics registry shared by every subsystem."""
    global _metrics
    if _metrics is None:
        with _metrics_lock:
            if _metrics is None:
                _metrics = MetricsRegistry()
    return _metrics
