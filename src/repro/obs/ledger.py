"""Append-only bench ledger with per-metric regression attribution.

``BENCH_searchspace.json`` is the *snapshot of record* — the committed,
human-reviewed numbers of the last blessed run.  The ledger is the
*trajectory*: every ``benchmarks/bench_simperf.py`` run appends one
schema-versioned JSON line to ``BENCH_ledger.jsonl`` (backend timings,
fusion/lowering structure, toolchain tag, git sha), and
``python -m repro bench report`` judges the newest entry against the
best of the trailing window **per metric**, replacing the old single
25%-ratio guard with attributed output:

    native_backend.speedup_vs_vector regressed: 1.40x vs 2.10x best ...
    native_backend.lowering.native_chains dropped 2->0

Two metric kinds need different treatment:

* **ratios** (``kind="higher"`` / ``"lower"``) are timing-derived and
  machine-noisy, so each carries a tolerance band;
* **structure counts** (``kind="count"`` — fused regions, megafused
  loops, native chains) are deterministic properties of the generated
  code, so *any* drop is a regression and the message cites the exact
  counter ("the lowering lost its chains"), which is precisely the
  attribution a timing ratio alone cannot give.

Everything is a pure function of the ledger lines, so reports are
deterministic and golden-testable.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from dataclasses import dataclass

#: Bump when the entry layout changes; readers skip newer-schema lines.
LEDGER_SCHEMA_VERSION = 1

#: Ledger file name at the repository root (next to BENCH_searchspace).
DEFAULT_LEDGER_NAME = "BENCH_ledger.jsonl"

#: Trailing entries (before the newest) the report compares against.
DEFAULT_WINDOW = 5


@dataclass(frozen=True)
class WatchedMetric:
    """One metric the regression report judges.

    ``kind``: ``"higher"`` — bigger is better, regression when the value
    falls more than ``tolerance`` (fractional) below the window's best;
    ``"lower"`` — smaller is better, symmetric; ``"count"`` — a
    deterministic structure count, any drop below the window's best is a
    regression (no tolerance).
    """

    key: str
    kind: str
    tolerance: float = 0.0
    label: str = ""

    @property
    def name(self) -> str:
        return self.label or self.key


#: The per-metric watchlist (keys are dotted paths into the bench
#: payload; missing keys — e.g. native metrics on a toolchain-less host
#: — are skipped, never treated as zero).
WATCHED_METRICS = (
    WatchedMetric("profile_large.speedup", "higher", 0.25,
                  "batched/sequential speedup"),
    WatchedMetric("compiled_executor.speedup_vs_interpreted", "higher", 0.25,
                  "compiled/interpreted speedup"),
    WatchedMetric("vector_backend.speedup_vs_compiled", "higher", 0.25,
                  "vector/compiled speedup"),
    WatchedMetric("native_backend.speedup_vs_vector", "higher", 0.25,
                  "native/vector speedup"),
    WatchedMetric("best_version_sweep.speedup", "higher", 0.40,
                  "warm/cold sweep speedup"),
    # Wide band: the win is scheduling (straggler overlap + persistent
    # workers), which degenerates to ~1x on single-core CI runners.
    WatchedMetric("sweep_scaling.speedup_vs_batch", "higher", 0.40,
                  "work-stealing/batch-map sweep speedup"),
    WatchedMetric("vector_backend.fusion.fused_regions", "count",
                  label="fused region count"),
    WatchedMetric("vector_backend.fusion.megafused_loops", "count",
                  label="megafused loop count"),
    WatchedMetric("native_backend.lowering.native_regions", "count",
                  label="native region count"),
    WatchedMetric("native_backend.lowering.native_loops", "count",
                  label="native loop count"),
    WatchedMetric("native_backend.lowering.native_chains", "count",
                  label="native chain count"),
    # The disabled-tracer cost has an absolute ceiling in the bench
    # itself; the ledger only flags order-of-magnitude blowups.
    WatchedMetric("observability.noop_span_ns", "lower", 9.0,
                  "disabled-tracer span cost (ns)"),
)


def default_ledger_path(root=None) -> str:
    return os.path.join(root or os.getcwd(), DEFAULT_LEDGER_NAME)


def _lookup(payload: dict, dotted: str):
    value = payload
    for part in dotted.split("."):
        if not isinstance(value, dict) or part not in value:
            return None
        value = value[part]
    return value if isinstance(value, (int, float)) else None


def extract_metrics(bench: dict) -> dict:
    """The watched metrics present in one bench payload."""
    metrics = {}
    for watched in WATCHED_METRICS:
        value = _lookup(bench, watched.key)
        if value is not None:
            metrics[watched.key] = value
    return metrics


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _toolchain_tag() -> str:
    try:  # runtime import: obs must stay importable standalone
        from ..gpusim.native import native_available
        from ..gpusim.native.toolchain import detect_toolchain
    except ImportError:  # pragma: no cover - partial installs
        return None
    if not native_available():
        return None
    return detect_toolchain().tag


def make_entry(bench: dict, timestamp: str = None, sha: str = None) -> dict:
    """One schema-versioned ledger record for a bench payload."""
    if timestamp is None:
        import datetime

        timestamp = (
            datetime.datetime.now(datetime.timezone.utc)
            .isoformat(timespec="seconds")
        )
    return {
        "schema": LEDGER_SCHEMA_VERSION,
        "ts": timestamp,
        "git_sha": sha if sha is not None else _git_sha(),
        "toolchain": _toolchain_tag(),
        "python": sys.version.split()[0],
        "metrics": extract_metrics(bench),
        "bench": bench,
    }


def append_entry(entry: dict, path: str) -> None:
    """Append one record; the ledger is append-only by construction."""
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True))
        handle.write("\n")


def read_ledger(path: str) -> list:
    """Parse the ledger, oldest first; unknown schemas and malformed
    lines are skipped (the ledger outlives any one reader version)."""
    entries = []
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError:
        return entries
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            continue
        if (
            isinstance(entry, dict)
            and entry.get("schema") == LEDGER_SCHEMA_VERSION
        ):
            entries.append(entry)
    return entries


def detect_regressions(entries: list, window: int = DEFAULT_WINDOW) -> list:
    """Judge the newest entry against the trailing window, per metric.

    Returns one dict per regressed metric: ``{"metric", "kind",
    "value", "reference", "window", "message"}`` — empty when the
    newest entry holds up, or when there is nothing to compare against.
    A metric missing from either side (native backend absent, say) is
    skipped rather than read as zero.
    """
    if len(entries) < 2:
        return []
    newest = entries[-1].get("metrics", {})
    trailing = entries[-1 - window:-1]
    regressions = []
    for watched in WATCHED_METRICS:
        value = newest.get(watched.key)
        history = [
            e.get("metrics", {}).get(watched.key)
            for e in trailing
        ]
        history = [v for v in history if v is not None]
        if value is None or not history:
            continue
        if watched.kind == "lower":
            reference = min(history)
            regressed = value > reference * (1.0 + watched.tolerance)
            message = (
                f"{watched.name} regressed: {value:g} vs {reference:g} "
                f"best of last {len(history)} run(s) "
                f"(tolerance +{watched.tolerance:.0%})"
            )
        elif watched.kind == "count":
            reference = max(history)
            regressed = value < reference
            message = (
                f"{watched.name} dropped "
                f"{reference:g}->{value:g}"
            )
        else:  # "higher"
            reference = max(history)
            regressed = value < reference * (1.0 - watched.tolerance)
            message = (
                f"{watched.name} regressed: {value:g}x vs {reference:g}x "
                f"best of last {len(history)} run(s) "
                f"(tolerance -{watched.tolerance:.0%})"
            )
        if regressed:
            regressions.append({
                "metric": watched.key,
                "kind": watched.kind,
                "value": value,
                "reference": reference,
                "window": len(history),
                "message": message,
            })
    return regressions


def format_report(entries: list, regressions: list,
                  window: int = DEFAULT_WINDOW) -> list:
    """Human-readable report lines for ``repro bench report``."""
    if not entries:
        return ["bench ledger: empty (run benchmarks/bench_simperf.py "
                "to append the first entry)"]
    newest = entries[-1]
    lines = [
        f"bench ledger: {len(entries)} entr"
        + ("y" if len(entries) == 1 else "ies")
        + f", newest {newest.get('ts')} "
        f"(sha {str(newest.get('git_sha'))[:12]}, "
        f"toolchain {newest.get('toolchain') or 'none'})"
    ]
    for watched in WATCHED_METRICS:
        value = newest.get("metrics", {}).get(watched.key)
        if value is not None:
            lines.append(f"  {watched.key} = {value:g}")
    if len(entries) < 2:
        lines.append("no trailing window yet — nothing to judge against")
    elif regressions:
        lines.append(
            f"REGRESSED vs trailing window (last {window} before newest):"
        )
        lines.extend(f"  {r['message']}" for r in regressions)
    else:
        lines.append(
            f"no regressions vs trailing window "
            f"(last {min(window, len(entries) - 1)} before newest)"
        )
    return lines
