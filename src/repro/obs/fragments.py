"""Per-fragment wall-time and fallback attribution for backend traces.

The vector and native backends execute a kernel as a short trace of
*fragments* — fused-region mega-expressions, megafused loops, native
shuffle chains — each a closure called as ``fn(state, mask)``.  When a
launch is slower than the backend promises, the question is always
"which fragment, and did it actually run natively or fall back?".

This module answers it without touching the hot path:

* :func:`instrument_trace` wraps each *top-level* closure of a trace
  with a wall-clock shim feeding a :class:`FragmentProfiler`.  The
  executor only instruments when the tracer is enabled, and the wrapped
  trace is a per-launch copy — the backend's memoized original is never
  mutated, so disabled runs execute the exact same closures as before.
* The native wrappers' guard-miss ``fallback(...)`` sites call
  :func:`note_fallback`, which is a single ``getattr`` + ``None`` check
  on the run state — fallbacks are already the slow path, and the cause
  tally only accumulates when a profiler is attached.

The executor attaches the result to the launch span
(``exec.launch`` args ``fragments`` / ``fallbacks``), so Chrome traces,
the collapsed-stack flamegraph pipeline and tests all see per-fragment
wall time and *why* a native fragment degraded to its vector closure.
"""

from __future__ import annotations

import time


class FragmentProfiler:
    """Accumulates per-fragment calls/wall-time and fallback causes
    for one launch (not thread-safe: one profiler per launch, and a
    launch's chunks run on one thread)."""

    __slots__ = ("totals", "fallbacks")

    def __init__(self):
        self.totals = {}  # label -> [calls, seconds]
        self.fallbacks = {}  # "label:cause" -> count

    def add(self, label: str, seconds: float) -> None:
        entry = self.totals.get(label)
        if entry is None:
            entry = self.totals[label] = [0, 0.0]
        entry[0] += 1
        entry[1] += seconds

    def note_fallback(self, label: str, cause: str) -> None:
        key = f"{label}:{cause}"
        self.fallbacks[key] = self.fallbacks.get(key, 0) + 1

    def span_args(self) -> dict:
        """JSON-friendly summary for the launch span's args."""
        args = {
            "fragments": {
                label: {
                    "calls": calls,
                    "wall_us": round(seconds * 1e6, 2),
                }
                for label, (calls, seconds) in sorted(self.totals.items())
            }
        }
        if self.fallbacks:
            args["fallbacks"] = dict(sorted(self.fallbacks.items()))
        return args


def fragment_label(closure, index: int) -> str:
    """Stable display label for one top-level trace closure, derived
    from the identity attributes the backends hang on their wrappers."""
    native = getattr(closure, "_native", None)
    if native is not None:
        base = f"native.{native}"
    elif getattr(closure, "_instrs", None) is not None:
        base = "fused.region"
    elif getattr(closure, "_loop_fused", False):
        base = "fused.loop"
    else:
        specialized = getattr(closure, "_specialized", None)
        if specialized is not None:
            base = f"spec.{specialized}"
        else:
            instr = getattr(closure, "_instr", None)
            if instr is not None:
                base = f"instr.{type(instr).__name__.lower()}"
            else:
                base = getattr(closure, "__name__", "closure")
    return f"{base}#{index}"


def instrument_trace(trace, profiler: FragmentProfiler) -> list:
    """A copy of ``trace`` whose top-level closures report wall time.

    Wrapper functions re-expose the original closure's attribute dict,
    so identity-attribute consumers (labels, tests) see through the
    shim; sub-traces captured inside control-flow closures are *not*
    wrapped — a fragment's time includes everything it runs.
    """
    wrapped = []
    for index, closure in enumerate(trace):
        wrapped.append(
            _timed(closure, profiler, fragment_label(closure, index))
        )
    return wrapped


def _timed(closure, profiler, label):
    def run(state, mask):
        start = time.perf_counter()
        try:
            return closure(state, mask)
        finally:
            profiler.add(label, time.perf_counter() - start)

    run.__dict__.update(closure.__dict__)
    run.__name__ = getattr(closure, "__name__", "closure")
    run._timed_label = label
    return run


def note_fallback(state, label: str, cause: str) -> None:
    """Record a guard-miss cause on the launch's profiler, if any.

    Called from native wrappers at their ``fallback(...)`` sites;
    ``state`` is the executing block/batch run, which carries a
    ``fragprof`` attribute only while the executor is tracing.
    """
    profiler = getattr(state, "fragprof", None)
    if profiler is not None:
        profiler.note_fallback(label, cause)
