"""Trace exporters: Chrome ``trace_event`` JSON, JSONL, text summary.

The Chrome format is the ``traceEvents`` array of complete (``"ph":
"X"``) events understood by ``chrome://tracing`` and
https://ui.perfetto.dev — open the produced file directly. Timestamps
are microseconds relative to the earliest span, durations microseconds;
thread rows carry ``thread_name`` metadata so sweep workers (merged by
:meth:`repro.obs.tracer.Tracer.merge`) appear as ``worker-<k>`` lanes.
"""

from __future__ import annotations

import json

#: Synthetic tid base for spans merged from worker processes.
WORKER_TID_BASE = 1000


def _json_default(value):
    """Best-effort serializer for span attributes (numpy scalars etc.)."""
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    return str(value)


def chrome_trace_events(spans) -> list:
    """Spans → list of Chrome ``trace_event`` dicts (one "X" per span)."""
    if not spans:
        return []
    t0 = min(span.ts for span in spans)
    events = []
    tids = set()
    for span in spans:
        tids.add(span.tid)
        events.append({
            "name": span.name,
            "cat": span.name.split(".", 1)[0],
            "ph": "X",
            "ts": (span.ts - t0) * 1e6,
            "dur": span.dur * 1e6,
            "pid": 0,
            "tid": span.tid,
            "args": dict(span.args),
        })
    meta = [{
        "name": "process_name",
        "ph": "M",
        "pid": 0,
        "tid": 0,
        "args": {"name": "repro"},
    }]
    for tid in sorted(tids):
        if tid >= WORKER_TID_BASE:
            thread_name = f"worker-{tid - WORKER_TID_BASE}"
        elif tid == 0:
            thread_name = "main"
        else:
            thread_name = f"thread-{tid}"
        meta.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": thread_name},
        })
    # Stable order: metadata first, then spans by start time (ties keep
    # recording order, so the export is deterministic for a given trace).
    events.sort(key=lambda event: event["ts"])
    return meta + events


def write_chrome_trace(spans, path) -> None:
    """Write ``{"traceEvents": [...]}`` JSON loadable by chrome://tracing."""
    payload = {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, default=_json_default)
        handle.write("\n")


def write_jsonl(spans, path) -> None:
    """One JSON object per span, in recording order (stream-friendly)."""
    with open(path, "w", encoding="utf-8") as handle:
        for span in spans:
            handle.write(json.dumps(span.as_dict(), default=_json_default))
            handle.write("\n")


def _thread_name(tid: int) -> str:
    if tid >= WORKER_TID_BASE:
        return f"worker-{tid - WORKER_TID_BASE}"
    if tid == 0:
        return "main"
    return f"thread-{tid}"


def collapsed_stacks(spans) -> list:
    """Spans → collapsed-stack lines (``frame;frame;frame <self-us>``).

    The format consumed by ``flamegraph.pl``, speedscope and inferno:
    one line per unique stack, the count being the stack's *self* time
    in integer microseconds. Nesting is reconstructed per thread from
    the recorded ``depth``; each thread's stacks are rooted at its lane
    name (``main`` / ``worker-<k>``), matching the Chrome export. The
    output is sorted, so a fixed trace yields byte-identical lines.
    """
    by_tid = {}
    for span in spans:
        by_tid.setdefault(span.tid, []).append(span)
    totals = {}
    for tid in sorted(by_tid):
        # Sort by start time; a parent enters before its children, and
        # on identical timestamps the shallower frame is the parent.
        ordered = sorted(by_tid[tid], key=lambda s: (s.ts, s.depth))
        stack = [_thread_name(tid)]
        for span in ordered:
            # depth is 0-based from the thread's outermost frame; frame
            # 0 of the stack is the synthetic thread root.
            del stack[span.depth + 1:]
            parent = ";".join(stack)
            stack.append(span.name)
            path = ";".join(stack)
            self_us = span.dur * 1e6
            totals[path] = totals.get(path, 0.0) + self_us
            # A child's time is not the parent's self time.
            totals[parent] = totals.get(parent, 0.0) - self_us
    lines = []
    for path in sorted(totals):
        value = int(round(totals[path]))
        if value > 0:
            lines.append(f"{path} {value}")
    return lines


def write_collapsed(spans, path) -> int:
    """Write collapsed stacks to ``path``; returns the line count."""
    lines = collapsed_stacks(spans)
    with open(path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line)
            handle.write("\n")
    return len(lines)


def text_summary(spans) -> list:
    """Per-span-name aggregate lines (count, total/mean/max duration)."""
    if not spans:
        return ["(no spans recorded)"]
    groups = {}
    for span in spans:
        entry = groups.setdefault(span.name, [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += span.dur
        entry[2] = max(entry[2], span.dur)
    width = max(len(name) for name in groups)
    lines = [f"{'span':<{width}}  {'count':>7}  {'total':>10}  "
             f"{'mean':>10}  {'max':>10}"]
    for name, (count, total, peak) in sorted(
        groups.items(), key=lambda item: -item[1][1]
    ):
        lines.append(
            f"{name:<{width}}  {count:>7}  {total * 1e3:>8.2f}ms  "
            f"{total / count * 1e3:>8.3f}ms  {peak * 1e3:>8.3f}ms"
        )
    return lines
