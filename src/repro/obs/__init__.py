"""Observability layer: structured tracing + metrics for the pipeline.

Zero-dependency (stdlib only) and zero-cost when disabled: the tracer
hands out a shared no-op span object unless tracing was switched on via
the ``REPRO_TRACE`` environment variable, :func:`enable_tracing`, or the
``python -m repro trace`` CLI verb. Every stage of the synthesis →
simulation pipeline is instrumented at *operation* granularity
(frontend load, preprocessing passes, plan build/compile, kernel
launches, timing-model evaluations, sweep points) — never per simulated
instruction — so the enabled overhead stays small and the disabled
overhead is unmeasurable (guarded by ``benchmarks/bench_simperf.py``).

See ``docs/OBSERVABILITY.md`` for the span catalog, the metrics
registry, and how to load traces in ``chrome://tracing`` / Perfetto.
"""

from .export import (
    chrome_trace_events,
    collapsed_stacks,
    text_summary,
    write_chrome_trace,
    write_collapsed,
    write_jsonl,
)
from .metrics import MetricsRegistry, default_metrics
from .tracer import (
    TRACE_ENV,
    Span,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
)

__all__ = [
    "MetricsRegistry",
    "Span",
    "TRACE_ENV",
    "Tracer",
    "chrome_trace_events",
    "collapsed_stacks",
    "default_metrics",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "text_summary",
    "write_chrome_trace",
    "write_collapsed",
    "write_jsonl",
]
