"""Counter-derived performance explanations ("why is A faster than B").

The paper's whole evaluation (Figures 7-10) argues through *attribution*:
a variant wins because it trades shared-memory traffic for shuffles,
because its atomics hit distinct addresses, because it diverges less.
``repro.obs`` records the raw material — per-launch event counters in
:class:`~repro.gpusim.events.StepProfile` — and this module derives the
paper's figure-of-merit metrics from them:

* **coalescing efficiency** — 128B transactions per warp-level global
  memory request (1.0 = perfectly coalesced);
* **divergence ratio** — divergent branch tests per warp instruction;
* **instruction mix** — the barrier / shuffle / shared / atomic blend;
* **atomic contention** — launch-wide same-address pressure (global)
  and per-block serialization (shared);
* **lowering coverage** — how much of the closure trace the fused
  vector backend and the native C backend actually absorbed.

On top of the metrics sits an A/B **attribution**: the analytic timing
model's per-launch terms are decomposed into *exactly additive*
components (:func:`repro.gpusim.timing.plan_components`), so the
per-component deltas between two variants sum to the model's timing
delta to float round-off, and ranking them by magnitude names the
counters that account for the win.  ``python -m repro explain <variant>``
and ``repro explain --diff a b`` expose this; the autotuner and the
DySel selector attach the same attribution to their pruning decisions.

Everything here is a pure function of profiles already recorded, so
explanations are deterministic given a fixed trace (golden-tested in
``tests/obs/test_explain.py``).
"""

from __future__ import annotations

#: Version stamp on every explain JSON payload.
EXPLAIN_SCHEMA_VERSION = 1

#: The event counters that drive each timing-model component — the
#: "citation" attached to every attribution row (see
#: :func:`repro.gpusim.timing.kernel_components` for the component split).
COMPONENT_COUNTERS = {
    "compute.alu": ("inst.alu",),
    "compute.shfl": ("inst.shfl",),
    "compute.global_issue": ("inst.ld.global", "inst.st.global"),
    "compute.shared": ("inst.ld.shared", "inst.st.shared", "mem.shared.replays"),
    "compute.barrier": ("inst.bar",),
    "compute.atomic_issue": ("atom.global.ops", "atom.shared.warp_serial"),
    "memory.dram": (
        "mem.global.bytes", "mem.global.ld.trans", "mem.global.st.trans",
    ),
    "atomic.global_serial": ("atom.global.max_same_addr",),
    "atomic.shared_serial": ("atom.shared.block_max_same_addr",),
    "launch.overhead": (),
    "host.overhead": (),
}


def _ratio(num, den):
    return num / den if den else None


def launch_metrics(step) -> dict:
    """Figure-of-merit metrics of one kernel launch (scaled events)."""
    events = step.scaled()
    ld_req = events.get("inst.ld.global", 0)
    st_req = events.get("inst.st.global", 0)
    warp_insts = (
        events.get("inst.alu", 0)
        + events.get("inst.shfl", 0)
        + ld_req
        + st_req
        + events.get("inst.ld.shared", 0)
        + events.get("inst.st.shared", 0)
    )
    threads = events.get("threads", 0)
    blocks = events.get("blocks", 0) or step.grid
    atomics = events.get("atom.shared.ops", 0) + events.get(
        "atom.global.ops", 0
    )
    return {
        "kernel": step.kernel_name,
        "grid": step.grid,
        "block": step.block,
        "mode": step.meta.get("exec.mode"),
        "backend": step.meta.get("exec.backend"),
        "coalescing.ld_trans_per_req": _ratio(
            events.get("mem.global.ld.trans", 0), ld_req
        ),
        "coalescing.st_trans_per_req": _ratio(
            events.get("mem.global.st.trans", 0), st_req
        ),
        "divergence.per_warp_inst": _ratio(
            events.get("branch.divergent", 0), warp_insts
        ),
        "mix.shfl_frac": _ratio(events.get("inst.shfl", 0), warp_insts),
        "mix.shared_frac": _ratio(
            events.get("inst.ld.shared", 0) + events.get("inst.st.shared", 0),
            warp_insts,
        ),
        "mix.barriers_per_warp_slot": _ratio(
            events.get("inst.bar", 0) * step.warps_per_block,
            events.get("warps", 0),
        ),
        "mix.atomics_per_thread": _ratio(atomics, threads),
        "atomics.global_max_same_addr": events.get(
            "atom.global.max_same_addr", 0
        ),
        "atomics.shared_serial_per_block": _ratio(
            events.get("atom.shared.block_max_same_addr", 0), blocks
        ),
        "events": {key: float(value) for key, value in sorted(events.items())},
    }


def profile_metrics(profile) -> dict:
    """Launch metrics aggregated over every step of a plan profile."""
    totals = {}
    for step in profile.steps:
        for key, value in step.scaled().items():
            totals[key] = totals.get(key, 0) + value
    ld_req = totals.get("inst.ld.global", 0)
    warp_insts = sum(
        totals.get(key, 0)
        for key in (
            "inst.alu", "inst.shfl", "inst.ld.global", "inst.st.global",
            "inst.ld.shared", "inst.st.shared",
        )
    )
    return {
        "launches": len(profile.steps),
        "coalescing.ld_trans_per_req": _ratio(
            totals.get("mem.global.ld.trans", 0), ld_req
        ),
        "divergence.per_warp_inst": _ratio(
            totals.get("branch.divergent", 0), warp_insts
        ),
        "mix.shfl_frac": _ratio(totals.get("inst.shfl", 0), warp_insts),
        "mix.shared_frac": _ratio(
            totals.get("inst.ld.shared", 0) + totals.get("inst.st.shared", 0),
            warp_insts,
        ),
        "atomics.global_max_same_addr": totals.get(
            "atom.global.max_same_addr", 0
        ),
        "counters": {k: float(v) for k, v in sorted(totals.items())},
    }


def explain_profile(profile, num_memsets, arch, label=None) -> dict:
    """One variant's full explanation from an executed plan profile."""
    from ..gpusim.timing import plan_components, plan_time

    components = plan_components(profile, arch, num_memsets=num_memsets)
    model_total = plan_time(profile, arch, num_memsets=num_memsets)
    return {
        "schema": EXPLAIN_SCHEMA_VERSION,
        "variant": label if label is not None else profile.plan_name,
        "arch": arch.name,
        "model_total_s": model_total,
        "attributed_total_s": sum(components.values()),
        "components": {k: components[k] for k in sorted(components)},
        "metrics": profile_metrics(profile),
        "launches": [launch_metrics(step) for step in profile.steps],
    }


def lowering_coverage(framework, version, n, tunables=None) -> dict:
    """Fuse/native lowering coverage of one variant's plan.

    Region fusion is pure Python and memoized, so it is computed for
    every backend; native lowering stats are only reported when the C
    toolchain is present (compilation happens at plan-build time anyway
    for the native backend, and the ``.so`` disk cache amortizes it).
    """
    from ..gpusim.compile import compile_kernel
    from ..gpusim.fuse import fuse_kernel

    plan = framework.build(version, n, tunables)
    coverage = {"kernels": []}
    fused_total = instr_total = 0
    for step in plan.kernel_steps():
        compiled = compile_kernel(step.kernel)
        fused = fuse_kernel(step.kernel)
        stats = fused.stats
        entry = {
            "kernel": step.kernel.name,
            "instructions": stats.get("instructions", 0),
            "closures": len(compiled.trace),
            "fused_regions": stats.get("fused_regions", 0),
            "fused_instructions": stats.get("fused_instructions", 0),
            "megafused_loops": stats.get("specialized", {}).get("loop", 0),
        }
        fused_total += entry["fused_instructions"]
        instr_total += entry["instructions"]
        coverage["kernels"].append(entry)
    # Megafused loop bodies count their fused instructions once per
    # specialization, which can push the raw ratio past 1; clamp so the
    # reported share stays a fraction of the straight-line trace.
    frac = _ratio(fused_total, instr_total)
    coverage["fuse.instruction_coverage"] = (
        min(frac, 1.0) if frac is not None else None
    )
    from ..gpusim.native import native_available

    if native_available():
        from ..gpusim.native import lower_kernel

        regions = lowered = chains = loops = fallbacks = 0
        for step, entry in zip(plan.kernel_steps(), coverage["kernels"]):
            stats = lower_kernel(step.kernel).stats
            entry.update(
                native_regions=stats.get("native_regions", 0),
                native_loops=stats.get("native_loops", 0),
                native_chains=stats.get("native_chains", 0),
                native_fallbacks=stats.get("native_fallbacks", 0),
            )
            regions += stats.get("regions", 0)
            lowered += (
                stats.get("native_regions", 0)
                + stats.get("native_loops", 0)
                + stats.get("native_shfls", 0)
                + stats.get("native_chains", 0)
            )
            chains += stats.get("native_chains", 0)
            loops += stats.get("native_loops", 0)
            fallbacks += stats.get("native_fallbacks", 0)
        coverage["native.available"] = True
        coverage["native.lowered_fragments"] = lowered
        coverage["native.chains"] = chains
        coverage["native.loops"] = loops
        coverage["native.fallback_closures"] = fallbacks
    else:
        coverage["native.available"] = False
    return coverage


def explain_variant(
    framework,
    version,
    n: int,
    arch="pascal",
    tunables=None,
    sample_limit=None,
    coverage: bool = True,
) -> dict:
    """Explain one Figure-6 variant at size ``n`` on one architecture."""
    from ..gpusim import get_architecture
    from ..gpusim.arch import Architecture

    if not isinstance(arch, Architecture):
        arch = get_architecture(arch)
    resolved = framework.resolve(version)
    profile, num_memsets = framework.profile(
        resolved, n, tunables, sample_limit=sample_limit
    )
    label = version if isinstance(version, str) else resolved.identifier
    explanation = explain_profile(profile, num_memsets, arch, label=label)
    explanation["identifier"] = resolved.identifier
    explanation["n"] = int(n)
    if coverage:
        explanation["lowering"] = lowering_coverage(
            framework, resolved, n, tunables
        )
    return explanation


def diff_explanations(a: dict, b: dict) -> dict:
    """Rank which timing-model components (and the counters behind
    them) account for the delta between two explanations.

    The component deltas sum to ``b.model_total_s - a.model_total_s``
    to float round-off (see :func:`repro.gpusim.timing.kernel_components`),
    so the ranking *is* the timing model's own verdict, not a heuristic.
    """
    counters_a = a["metrics"]["counters"]
    counters_b = b["metrics"]["counters"]
    names = sorted(set(a["components"]) | set(b["components"]))
    ranking = []
    for name in names:
        a_s = a["components"].get(name, 0.0)
        b_s = b["components"].get(name, 0.0)
        cited = {}
        for key in COMPONENT_COUNTERS.get(name, ()):
            ca = counters_a.get(key, 0.0)
            cb = counters_b.get(key, 0.0)
            if ca or cb:
                cited[key] = {"a": ca, "b": cb, "delta": cb - ca}
        # A nonzero time delta whose cited counters did NOT move means
        # the dominant-term overlap weight flipped between the variants
        # (see kernel_components): real model time, but not evidence of
        # changed traffic — ranked below counter-backed rows.
        overlap_shift = bool(
            (b_s - a_s)
            and cited
            and all(info["delta"] == 0 for info in cited.values())
        )
        ranking.append({
            "component": name,
            "a_s": a_s,
            "b_s": b_s,
            "delta_s": b_s - a_s,
            "overlap_shift": overlap_shift,
            "counters": cited,
        })
    ranking.sort(
        key=lambda row: (
            row["overlap_shift"], -abs(row["delta_s"]), row["component"]
        )
    )
    model_delta = b["model_total_s"] - a["model_total_s"]
    attributed = sum(row["delta_s"] for row in ranking)
    return {
        "schema": EXPLAIN_SCHEMA_VERSION,
        "a": {"variant": a["variant"], "model_total_s": a["model_total_s"]},
        "b": {"variant": b["variant"], "model_total_s": b["model_total_s"]},
        "arch": a["arch"],
        "model_delta_s": model_delta,
        "attributed_delta_s": attributed,
        "attribution_error": (
            abs(attributed - model_delta) / abs(model_delta)
            if model_delta else 0.0
        ),
        "faster": (
            a["variant"] if a["model_total_s"] <= b["model_total_s"]
            else b["variant"]
        ),
        "ranking": ranking,
    }


def explain_diff(
    framework, version_a, version_b, n: int, arch="pascal", tunables=None,
    sample_limit=None,
) -> dict:
    """A/B attribution between two variants (``repro explain --diff``)."""
    a = explain_variant(
        framework, version_a, n, arch, tunables, sample_limit, coverage=False
    )
    b = explain_variant(
        framework, version_b, n, arch, tunables, sample_limit, coverage=False
    )
    return diff_explanations(a, b)


# ---------------------------------------------------------------------
# text renderers (CLI)
# ---------------------------------------------------------------------


def _fmt_seconds(seconds) -> str:
    return f"{seconds * 1e6:.2f}us"


def format_explain(explanation: dict) -> list:
    """Human-readable lines for one variant's explanation."""
    lines = [
        f"variant ({explanation['variant']}) on {explanation['arch']}"
        + (f" at n={explanation['n']}" if "n" in explanation else "")
        + f": modelled {_fmt_seconds(explanation['model_total_s'])}"
    ]
    metrics = explanation["metrics"]
    lines.append(f"  launches: {metrics['launches']}")
    for key in (
        "coalescing.ld_trans_per_req", "divergence.per_warp_inst",
        "mix.shfl_frac", "mix.shared_frac",
    ):
        value = metrics.get(key)
        if value is not None:
            lines.append(f"  {key} = {value:.4f}")
    lines.append(
        f"  atomics.global_max_same_addr = "
        f"{metrics['atomics.global_max_same_addr']:.0f}"
    )
    lines.append("  timing components (additive):")
    components = explanation["components"]
    for name in sorted(components, key=lambda k: -components[k]):
        if components[name]:
            lines.append(
                f"    {name:<24} {_fmt_seconds(components[name]):>12}"
            )
    lowering = explanation.get("lowering")
    if lowering:
        frac = lowering.get("fuse.instruction_coverage")
        lines.append(
            "  lowering: fuse coverage "
            + (f"{frac:.0%}" if frac is not None else "n/a")
            + (
                f", native fragments {lowering['native.lowered_fragments']}"
                f" ({lowering['native.chains']} chain(s), "
                f"{lowering['native.loops']} loop(s))"
                if lowering.get("native.available")
                else ", native unavailable"
            )
        )
    return lines


def format_diff(diff: dict, top: int = 6) -> list:
    """Human-readable lines for an A/B attribution."""
    a, b = diff["a"], diff["b"]
    lines = [
        f"({a['variant']}) {_fmt_seconds(a['model_total_s'])}  vs  "
        f"({b['variant']}) {_fmt_seconds(b['model_total_s'])} on "
        f"{diff['arch']}  ->  ({diff['faster']}) faster by "
        f"{_fmt_seconds(abs(diff['model_delta_s']))}",
        f"attributed {_fmt_seconds(abs(diff['attributed_delta_s']))} "
        f"(error {diff['attribution_error']:.2%} of the model delta)",
        "top attributions (positive = costs (b) more):",
    ]
    for row in diff["ranking"][:top]:
        if not row["delta_s"]:
            continue
        cited = ", ".join(
            f"{key} {info['a']:.0f}->{info['b']:.0f}"
            for key, info in row["counters"].items()
        )
        tag = "   (overlap shift)" if row["overlap_shift"] else ""
        lines.append(
            f"  {row['component']:<24} {row['delta_s'] * 1e6:>+10.2f}us"
            + (f"   [{cited}]" if cited else "")
            + tag
        )
    return lines
