"""CPU baseline models (the paper's OpenMP comparison point)."""

from .openmp import POWER8, CpuSystem, openmp_reduce, openmp_reduce_time

__all__ = ["POWER8", "CpuSystem", "openmp_reduce", "openmp_reduce_time"]
