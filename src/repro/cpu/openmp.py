"""OpenMP CPU reduction baseline (Section IV-A's comparison point).

The paper runs ``#pragma omp parallel for reduction(+:...)`` on an IBM
Minsky system: two dual-socket 8-core 3.5 GHz POWER8+ CPUs (gcc 5.4.0,
OpenMP 4.0). We model it analytically — fork/join overhead plus the
max of the compute and memory-bandwidth bounds — and also provide a
functional numpy execution path so examples can cross-check results.

Calibration targets from the paper (Section IV-C):

* ~4x faster than CUB below 65K elements on every GPU architecture;
* fastest below ~4K elements vs Kepler/Maxwell Tangram code;
* clearly slower than every GPU at tens of millions of elements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CpuSystem:
    """Analytic CPU model with a cache-capacity bandwidth split.

    POWER8+ has an unusually deep cache hierarchy (large L3 plus
    Centaur eDRAM buffers), so arrays up to tens of megabytes stream at
    cache-like bandwidth while DRAM-resident arrays are far slower —
    this is what makes the paper's OpenMP baseline excellent below ~1M
    elements yet clearly slower than every GPU at hundreds of millions.
    """

    name: str
    cores: int
    clock_ghz: float
    cache_bandwidth_gbps: float
    dram_bandwidth_gbps: float
    cache_bytes: int
    simd_lanes: int  # 32-bit lanes per core per cycle
    fork_join_overhead_us: float
    per_core_spinup_us: float

    def reduction_time(self, n: int, itemsize: int = 4) -> float:
        """Seconds for an n-element parallel reduction."""
        if n < 0:
            raise ValueError("n must be non-negative")
        overhead = (
            self.fork_join_overhead_us + self.cores * self.per_core_spinup_us
        ) * 1e-6
        compute = n / (self.cores * self.simd_lanes * self.clock_ghz * 1e9)
        total_bytes = n * itemsize
        cached = min(total_bytes, self.cache_bytes)
        beyond = total_bytes - cached
        memory = (
            cached / (self.cache_bandwidth_gbps * 1e9)
            + beyond / (self.dram_bandwidth_gbps * 1e9)
        )
        return overhead + max(compute, memory)


#: The paper's IBM Minsky host: 2x dual-socket 8-core 3.5 GHz POWER8+.
POWER8 = CpuSystem(
    name="POWER8+ (OpenMP 4.0)",
    cores=16,
    clock_ghz=3.5,
    cache_bandwidth_gbps=280.0,
    dram_bandwidth_gbps=32.0,
    cache_bytes=64 * 1024 * 1024,
    simd_lanes=4,
    fork_join_overhead_us=6.2,
    per_core_spinup_us=0.02,
)


def openmp_reduce(data: np.ndarray, op: str = "add") -> float:
    """Functional CPU reduction (numpy), mirroring the OpenMP semantics."""
    if op == "add":
        return float(np.sum(data, dtype=np.float64))
    if op == "max":
        return float(np.max(data))
    if op == "min":
        return float(np.min(data))
    raise ValueError(f"unsupported OpenMP reduction op {op!r}")


def openmp_reduce_time(n: int, system: CpuSystem = POWER8) -> float:
    """Modelled wall time of the OpenMP reduction, in seconds."""
    return system.reduction_time(n)
