"""Unified profile/plan cache for the simulation hot path.

One content-hash-keyed store replaces the three disjoint caches the
runtime used to carry (the per-instance ``ReductionFramework`` profile
cache, the module-global baseline cache, and the ad-hoc reuse in the
benchmark harness). A key hashes *everything that determines a profile*
— operator, element ctype, version identifier, input size, tunables,
unroll flag and the preprocessing-pass configuration — so two framework
instances built the same way share work, and a stale entry can never be
returned after any of those inputs change.

Two tiers:

* **memory** — a bounded LRU (``max_entries``); eviction keeps long
  sweeps from growing without bound;
* **disk** (optional) — pickled entries under a directory, written
  atomically (``os.replace``) so concurrent writers — parallel sweep
  workers or several benchmark processes — can share one cache safely.
  Enable it by passing ``disk_dir`` or setting ``REPRO_CACHE_DIR``.

Statistics (hits, misses, time saved) are tracked per process and
surfaced through ``python -m repro cache``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

#: Default bound on in-memory entries (LRU eviction beyond this).
DEFAULT_MAX_ENTRIES = 4096

#: Environment variable enabling the on-disk tier for the default cache.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_DISK_SUFFIX = ".profile.pkl"


def content_key(**fields) -> str:
    """Stable content hash of keyword fields (order-independent)."""
    blob = repr(sorted(fields.items()))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Per-process counters for one :class:`ProfileCache`."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    stores: int = 0
    evictions: int = 0
    #: Simulation seconds spent computing entries on misses.
    compute_time_s: float = 0.0
    #: Simulation seconds *not* re-spent thanks to hits (sum of the
    #: recorded compute cost of every hit entry).
    time_saved_s: float = 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "stores": self.stores,
            "evictions": self.evictions,
            "compute_time_s": round(self.compute_time_s, 6),
            "time_saved_s": round(self.time_saved_s, 6),
        }


@dataclass
class _Entry:
    value: object
    cost_s: float = 0.0


@dataclass
class ProfileCache:
    """Bounded, thread-safe, optionally disk-backed profile store."""

    max_entries: int = DEFAULT_MAX_ENTRIES
    disk_dir: object = None  # str | Path | None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self):
        if self.max_entries < 1:
            raise ValueError("max_entries must be positive")
        self._lock = threading.RLock()
        self._mem = OrderedDict()  # key -> _Entry
        if self.disk_dir is not None:
            self.disk_dir = Path(self.disk_dir)
            self.disk_dir.mkdir(parents=True, exist_ok=True)

    # -- core API -----------------------------------------------------

    def get(self, key: str):
        """Cached value for ``key`` or ``None`` (which is never a value)."""
        with self._lock:
            entry = self._mem.get(key)
            if entry is not None:
                self._mem.move_to_end(key)
                self.stats.hits += 1
                self.stats.time_saved_s += entry.cost_s
                return entry.value
            if not self.disk_dir:
                self.stats.misses += 1
                return None
        # Disk probe outside the lock: unpickling an entry must not
        # stall every other thread's memory-tier hit behind file I/O
        # (the serve scheduler hits this path from several worker
        # threads at once).
        entry = self._disk_load(key)
        with self._lock:
            current = self._mem.get(key)
            if current is not None:
                # A concurrent put/get landed while we probed the disk;
                # its in-process object wins (callers may rely on
                # sharing the id-keyed memos hanging off it).
                self._mem.move_to_end(key)
                self.stats.hits += 1
                self.stats.time_saved_s += current.cost_s
                return current.value
            if entry is not None:
                self._insert(key, entry)
                self.stats.hits += 1
                self.stats.disk_hits += 1
                self.stats.time_saved_s += entry.cost_s
                return entry.value
            self.stats.misses += 1
            return None

    def put(self, key: str, value, cost_s: float = 0.0) -> None:
        entry = _Entry(value=value, cost_s=cost_s)
        with self._lock:
            self._insert(key, entry)
            self.stats.stores += 1
            self.stats.compute_time_s += cost_s
        # Pickle + write happen after the lock is released; the disk
        # tier is content-addressed so concurrent writers of one key
        # race benignly (os.replace is atomic, last writer wins with
        # identical content).
        self._disk_store(key, entry)

    def get_or_compute(self, key: str, compute):
        """Return the cached value, or compute, record its cost, store."""
        value = self.get(key)
        if value is not None:
            return value
        start = time.perf_counter()
        value = compute()
        self.put(key, value, cost_s=time.perf_counter() - start)
        return value

    def touch(self, keys) -> None:
        """Re-establish LRU recency for ``keys`` (first → least recent).

        The work-stealing sweep inserts profiles in *completion* order,
        which varies run to run; callers that promised deterministic
        merge semantics (``profile_many``) touch the keys in submission
        order afterwards so the memory tier's recency order — and hence
        which entries a bounded cache evicts next — is independent of
        scheduling. Unknown keys are skipped; no stats are recorded.
        """
        with self._lock:
            for key in keys:
                if key in self._mem:
                    self._mem.move_to_end(key)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._mem:
                return True
        # stat() outside the lock, same rationale as get().
        return self._disk_path(key).is_file() if self.disk_dir else False

    def __len__(self) -> int:
        with self._lock:
            return len(self._mem)

    def clear(self, memory: bool = True, disk: bool = False) -> None:
        with self._lock:
            if memory:
                self._mem.clear()
        if disk and self.disk_dir:
            for path in self.disk_dir.glob(f"*{_DISK_SUFFIX}"):
                try:
                    path.unlink()
                except OSError:
                    pass

    # -- introspection -------------------------------------------------

    def disk_info(self) -> dict:
        """Entry count and total bytes of the disk tier (zeros if off)."""
        if not self.disk_dir or not self.disk_dir.is_dir():
            return {"dir": str(self.disk_dir or ""), "entries": 0, "bytes": 0}
        entries = 0
        total_bytes = 0
        for path in self.disk_dir.glob(f"*{_DISK_SUFFIX}"):
            try:
                # stat() individually: a concurrent clear(disk=True) or
                # corrupt-entry unlink may remove files mid-walk.
                total_bytes += path.stat().st_size
            except OSError:
                continue
            entries += 1
        return {
            "dir": str(self.disk_dir),
            "entries": entries,
            "bytes": total_bytes,
        }

    # -- internals -----------------------------------------------------

    def _insert(self, key: str, entry: _Entry) -> None:
        self._mem[key] = entry
        self._mem.move_to_end(key)
        while len(self._mem) > self.max_entries:
            self._mem.popitem(last=False)
            self.stats.evictions += 1

    def _disk_path(self, key: str) -> Path:
        return self.disk_dir / f"{key}{_DISK_SUFFIX}"

    def _disk_load(self, key: str):
        if not self.disk_dir:
            return None
        path = self._disk_path(key)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            return _Entry(value=payload["value"], cost_s=payload.get("cost_s", 0.0))
        except FileNotFoundError:
            return None
        except Exception:
            # A truncated/corrupt file (e.g. killed writer on a non-POSIX
            # filesystem) is a miss; drop it so it gets rewritten.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def _disk_store(self, key: str, entry: _Entry) -> None:
        if not self.disk_dir:
            return
        path = self._disk_path(key)
        try:
            fd, tmp_name = tempfile.mkstemp(
                dir=str(self.disk_dir), prefix=".tmp-", suffix=_DISK_SUFFIX
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(
                        {"value": entry.value, "cost_s": entry.cost_s},
                        handle,
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                os.replace(tmp_name, path)  # atomic on POSIX
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            pass  # disk tier is best-effort; memory tier already holds it


# ---------------------------------------------------------------------
# process-wide default cache
# ---------------------------------------------------------------------

_default_cache = None
_default_lock = threading.Lock()


def default_cache() -> ProfileCache:
    """The process-wide cache shared by frameworks, baselines, benches.

    The disk tier is enabled when ``REPRO_CACHE_DIR`` is set at first
    use (or after :func:`configure`).
    """
    global _default_cache
    with _default_lock:
        if _default_cache is None:
            _default_cache = ProfileCache(
                disk_dir=os.environ.get(CACHE_DIR_ENV) or None
            )
        return _default_cache


#: Default bound on cached built plans (each holds kernels + compiled
#: closure traces; hundreds cover any realistic sweep grid).
DEFAULT_PLAN_ENTRIES = 512

_default_plan_cache = None


def default_plan_cache() -> ProfileCache:
    """The process-wide cache of *built plans*.

    Keys hash everything that determines a synthesized plan — operator,
    element ctype, version identifier, input size, tunables and the
    preprocessing pass log (see
    :func:`repro.codegen.synthesize.plan_key`); values are fully built
    :class:`~repro.vir.program.Plan` objects whose kernels carry
    memoized compiled closure traces and batchability summaries. Memory
    tier only: the whole point is sharing the in-process objects (and
    their id-keyed memos), so a pickled copy would be useless.
    """
    global _default_plan_cache
    with _default_lock:
        if _default_plan_cache is None:
            _default_plan_cache = ProfileCache(max_entries=DEFAULT_PLAN_ENTRIES)
        return _default_plan_cache


def configure(max_entries: int = None, disk_dir=None) -> ProfileCache:
    """Replace the default cache (e.g. to turn the disk tier on/off)."""
    global _default_cache
    with _default_lock:
        current = _default_cache
        _default_cache = ProfileCache(
            max_entries=(
                max_entries
                if max_entries is not None
                else (current.max_entries if current else DEFAULT_MAX_ENTRIES)
            ),
            disk_dir=disk_dir,
        )
        return _default_cache
