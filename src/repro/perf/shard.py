"""Mergeable shard tiers for cross-process / cross-host sweeps.

A sharded sweep (``repro sweep --shard i/k --shard-dir DIR``) partitions
the tuning grid *deterministically by profile key*: every spec's
content hash (see :func:`repro.perf.cache.content_key`) maps to exactly
one of ``k`` shards via :func:`shard_of`, so any number of processes —
on any number of hosts sharing nothing but the grid parameters — cover
the grid exactly once between them. Each shard profiles its slice into
a private disk-cache tier (``DIR/shard-<i>of<k>``, ordinary
:class:`~repro.perf.cache.ProfileCache` disk format) and drops a
manifest next to it recording the spec hashes, cost statistics and the
producing git revision.

``repro cache merge DIR...`` (and :func:`merge_tiers`) folds shard
tiers into a destination tier — normally the main ``REPRO_CACHE_DIR``.
The fold is **idempotent** (an entry already present with an identical
profile is skipped) and **conflict-checked**: the same key carrying a
*different* profile value means two runs disagreed about a
deterministic simulation result — a version skew or corruption — and
raises :exc:`ShardConflictError` instead of silently clobbering either
side. Entry identity compares the pickled profile *value* only; the
stored compute cost is wall-clock timing and legitimately differs
between hosts.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import tempfile
import time
from hashlib import sha256
from pathlib import Path

from .cache import _DISK_SUFFIX

#: Manifest filename written inside each shard tier directory.
SHARD_MANIFEST_NAME = "shard-manifest.json"

#: Manifest schema version (bump on incompatible layout changes).
MANIFEST_SCHEMA = 1


class ShardConflictError(RuntimeError):
    """Two tiers hold *different* profiles for the same cache key."""


def parse_shard(text: str):
    """Parse an ``i/k`` shard designator into ``(index, count)``.

    ``index`` is zero-based and must satisfy ``0 <= index < count``.
    """
    try:
        index_text, count_text = str(text).split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ValueError(
            f"shard must look like 'i/k' (e.g. '0/2'), got {text!r}"
        ) from None
    if count < 1 or not 0 <= index < count:
        raise ValueError(
            f"shard index must be in [0, {count}), got {text!r}"
        )
    return index, count


def shard_of(key: str, count: int) -> int:
    """Deterministic shard owning a cache key (stable across hosts).

    Uses the leading hex digits of the content hash itself, so the
    partition depends only on the key — not on Python's seeded
    ``hash()``, the process, or the platform.
    """
    if count < 1:
        raise ValueError("shard count must be positive")
    return int(key[:8], 16) % count


def tier_path(shard_dir, index: int, count: int) -> Path:
    """Directory for one shard's private cache tier."""
    return Path(shard_dir) / f"shard-{index}of{count}"


def _git_sha() -> str:
    import subprocess

    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except Exception:
        pass
    return "unknown"


def build_manifest(
    shard_index: int,
    shard_count: int,
    keys,
    grid: dict,
    wall_s: float,
    cache_stats: dict,
) -> dict:
    """Manifest payload for one completed shard sweep."""
    keys = sorted(keys)
    return {
        "schema": MANIFEST_SCHEMA,
        "shard": {"index": shard_index, "count": shard_count},
        "points": len(keys),
        "keys": keys,
        "grid": dict(grid),
        "cost": {
            "wall_s": round(float(wall_s), 6),
            "compute_time_s": cache_stats.get("compute_time_s", 0.0),
            "time_saved_s": cache_stats.get("time_saved_s", 0.0),
            "misses": cache_stats.get("misses", 0),
            "hits": cache_stats.get("hits", 0),
        },
        "git_sha": _git_sha(),
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }


def write_manifest(tier_dir, manifest: dict) -> Path:
    path = Path(tier_dir) / SHARD_MANIFEST_NAME
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path


def read_manifest(tier_dir) -> dict:
    return json.loads((Path(tier_dir) / SHARD_MANIFEST_NAME).read_text())


def entry_value_digest(path) -> str:
    """Content digest of one disk entry's profile *value*.

    Re-pickles ``payload["value"]`` alone so the digest ignores the
    stored ``cost_s`` (timing — never comparable across runs). Returns
    ``None`` for unreadable/corrupt entries.
    """
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        blob = pickle.dumps(payload["value"], protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return None
    return sha256(blob).hexdigest()


def iter_tier_entries(root):
    """Yield ``(key, path)`` for every disk entry under ``root``
    (recursively — a shard dir holding several tiers works too)."""
    root = Path(root)
    for path in sorted(root.rglob(f"*{_DISK_SUFFIX}")):
        name = path.name
        if name.startswith(".tmp-"):
            continue
        yield name[: -len(_DISK_SUFFIX)], path


def tier_digest(root) -> dict:
    """``{key: value_digest}`` for a tier — the bit-identity fingerprint
    CI compares between a sharded+merged sweep and a single-process one.
    Corrupt entries are omitted."""
    digests = {}
    for key, path in iter_tier_entries(root):
        digest = entry_value_digest(path)
        if digest is not None:
            digests[key] = digest
    return digests


def merge_tiers(sources, dest) -> dict:
    """Fold shard tiers into ``dest`` (idempotent, conflict-checked).

    For every entry in every source tier: absent from ``dest`` → copied
    (atomically, tmp + ``os.replace``); present with an identical value
    digest → counted and skipped; present with a *different* digest →
    :exc:`ShardConflictError`. Corrupt source entries are skipped and
    counted. Returns ``{"sources", "examined", "merged", "identical",
    "corrupt"}``.
    """
    dest = Path(dest)
    dest.mkdir(parents=True, exist_ok=True)
    dest_resolved = dest.resolve()
    stats = {
        "sources": 0,
        "examined": 0,
        "merged": 0,
        "identical": 0,
        "corrupt": 0,
    }
    for root in sources:
        stats["sources"] += 1
        for key, path in iter_tier_entries(root):
            if path.parent.resolve() == dest_resolved:
                continue  # dest nested under a source dir: not a copy
            stats["examined"] += 1
            digest = entry_value_digest(path)
            if digest is None:
                stats["corrupt"] += 1
                continue
            target = dest / path.name
            if target.exists():
                existing = entry_value_digest(target)
                if existing == digest:
                    stats["identical"] += 1
                    continue
                if existing is not None:
                    raise ShardConflictError(
                        f"cache key {key} has conflicting profiles: "
                        f"{path} (value digest {digest[:12]}) vs "
                        f"{target} (value digest {existing[:12]}); "
                        "refusing to merge — check for version skew "
                        "between shard producers"
                    )
                # corrupt destination entry: replace it
            fd, tmp_name = tempfile.mkstemp(
                dir=str(dest), prefix=".tmp-", suffix=_DISK_SUFFIX
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    with open(path, "rb") as source_handle:
                        shutil.copyfileobj(source_handle, handle)
                os.replace(tmp_name, target)
                stats["merged"] += 1
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
    return stats
