"""Performance layer: unified profile cache + parallel sweep evaluation.

See :mod:`repro.perf.cache` for the content-hash-keyed two-tier cache
and :mod:`repro.perf.parallel` for the profiling pool. The batched
simulator itself lives in :mod:`repro.gpusim.engine`; ``docs/PERFORMANCE.md``
describes how the three pieces compose.
"""

from .cache import (
    CACHE_DIR_ENV,
    CacheStats,
    DEFAULT_MAX_ENTRIES,
    DEFAULT_PLAN_ENTRIES,
    ProfileCache,
    configure,
    content_key,
    default_cache,
    default_plan_cache,
)
from .parallel import (
    MAX_WORKERS_ENV,
    WORKER_CAP_ENV,
    SweepScheduler,
    default_scheduler,
    map_profiles,
    resolve_workers,
    shutdown_scheduler,
)
from .shard import (
    ShardConflictError,
    merge_tiers,
    parse_shard,
    shard_of,
    tier_digest,
)

__all__ = [
    "CACHE_DIR_ENV",
    "CacheStats",
    "DEFAULT_MAX_ENTRIES",
    "DEFAULT_PLAN_ENTRIES",
    "MAX_WORKERS_ENV",
    "WORKER_CAP_ENV",
    "ProfileCache",
    "ShardConflictError",
    "SweepScheduler",
    "configure",
    "content_key",
    "default_cache",
    "default_plan_cache",
    "default_scheduler",
    "map_profiles",
    "merge_tiers",
    "parse_shard",
    "resolve_workers",
    "shard_of",
    "shutdown_scheduler",
    "tier_digest",
]
