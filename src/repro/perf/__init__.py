"""Performance layer: unified profile cache + parallel sweep evaluation.

See :mod:`repro.perf.cache` for the content-hash-keyed two-tier cache
and :mod:`repro.perf.parallel` for the profiling pool. The batched
simulator itself lives in :mod:`repro.gpusim.engine`; ``docs/PERFORMANCE.md``
describes how the three pieces compose.
"""

from .cache import (
    CACHE_DIR_ENV,
    CacheStats,
    DEFAULT_MAX_ENTRIES,
    DEFAULT_PLAN_ENTRIES,
    ProfileCache,
    configure,
    content_key,
    default_cache,
    default_plan_cache,
)
from .parallel import MAX_WORKERS_ENV, map_profiles, resolve_workers

__all__ = [
    "CACHE_DIR_ENV",
    "CacheStats",
    "DEFAULT_MAX_ENTRIES",
    "DEFAULT_PLAN_ENTRIES",
    "MAX_WORKERS_ENV",
    "ProfileCache",
    "configure",
    "content_key",
    "default_cache",
    "default_plan_cache",
    "map_profiles",
    "resolve_workers",
]
