"""Work-stealing sweep scheduler over a persistent worker pool.

Event profiles are architecture-independent and every (version × size ×
tunables) point is independent of every other, so the sweep behind
``best_version`` / ``tune_all`` / ``DynamicSelector.build`` is
embarrassingly parallel.  Historically the fan-out was a blocking
``pool.map`` that tore the pool down after every call: workers rebuilt
their frameworks each sweep, specs ran in submission order so a large
unsampled profile submitted last serialized the tail, and one worker
death re-ran the *whole* spec list through the next pool class.

:class:`SweepScheduler` replaces that with:

* a **persistent, lazily-spawned process pool** shared by every
  ``map_profiles`` / ``profile_many`` / ``tune_all`` /
  ``DynamicSelector.build`` call in the process (workers keep their
  per-``(op, ctype, unroll)`` framework memo warm across sweeps);
* **cost-ordered work stealing** — specs go into the pool's shared
  queue ordered by :func:`predicted_cost` (largest unsampled profiles
  first), and idle workers pull the next spec the moment they finish,
  so stragglers start early instead of anchoring the tail (LPT
  scheduling);
* **streaming completion** — each finished profile is handed to the
  caller's ``on_result`` callback immediately (the parent inserts it
  into the shared cache without waiting for the sweep), while the
  returned list stays aligned with ``specs``;
* **per-future fault tolerance** — when a worker dies mid-sweep
  (``BrokenProcessPool``), completed results are kept and only the
  unfinished specs are re-dispatched: first on a fresh process pool,
  then on threads, finally serially (where a genuine error propagates
  with its original traceback).

Worker spans ship back with the worker's **pid**, which the parent maps
to a stable ``worker-<slot>`` trace lane — one real worker is one lane,
regardless of which specs it stole.

Scheduler telemetry flows through :mod:`repro.obs`:
``sweep.sched.dispatched`` / ``completed`` / ``retried`` / ``steals``
counters, the ``sweep.sched.queue_depth`` histogram, pool
``pool_spawns`` / ``pool_reuses`` counters and the ``sweep.worker_util``
gauge — all surfaced by ``python -m repro stats``.
"""

from __future__ import annotations

import atexit
import os
import threading
import time

#: Environment override for the worker count (0/1 forces serial).
MAX_WORKERS_ENV = "REPRO_MAX_WORKERS"

#: Environment override for the auto-selection cap (see
#: :func:`worker_cap`); ``REPRO_MAX_WORKERS`` always wins outright.
WORKER_CAP_ENV = "REPRO_WORKER_CAP"

#: Default upper bound on auto-selected workers. Overridable via
#: ``REPRO_WORKER_CAP`` so sharded sweeps on >8-core hosts can use the
#: whole machine without pinning an exact count.
DEFAULT_WORKER_CAP = 8

#: Below this many outstanding profiles a pool costs more than it saves.
MIN_PARALLEL_SPECS = 4

#: Mirrors of the sampling policy in ``repro.runtime.session``
#: (``_profile_plan``): launches whose grid exceeds the limit are
#: profiled on a few sampled blocks, everything else runs unsampled.
#: The cost heuristic only needs the same order of magnitude.
_SAMPLING_GRID_LIMIT = 64
_SAMPLE_BLOCKS = 3

_worker_frameworks = {}


def worker_cap() -> int:
    """The auto-selection cap: ``REPRO_WORKER_CAP`` or the default 8."""
    env = os.environ.get(WORKER_CAP_ENV)
    if env is not None:
        try:
            cap = int(env)
        except ValueError:
            cap = 0
        if cap > 0:
            return cap
    return DEFAULT_WORKER_CAP


def resolve_workers(max_workers=None) -> int:
    """Effective worker count: explicit arg > env var > capped cpu count."""
    if max_workers is None:
        env = os.environ.get(MAX_WORKERS_ENV)
        if env is not None:
            try:
                max_workers = int(env)
            except ValueError:
                max_workers = None
    if max_workers is None:
        max_workers = min(os.cpu_count() or 1, worker_cap())
    return max(1, int(max_workers)) if max_workers > 0 else 1


def _profile_spec(spec):
    """Worker entry point: profile one (version, n, tunables) point.

    ``spec`` is ``(op, ctype, unroll, version, n, tunables,
    sample_limit)`` with a picklable frozen-dataclass version/tunables.
    Returns ``(profile, num_memsets, cost_s)``.
    """
    op, ctype, unroll, version, n, tunables, sample_limit = spec
    framework = _worker_frameworks.get((op, ctype, unroll))
    if framework is None:
        from ..runtime.session import ReductionFramework

        framework = ReductionFramework(op=op, ctype=ctype, unroll=unroll)
        _worker_frameworks[(op, ctype, unroll)] = framework
    start = time.perf_counter()
    profile, num_memsets = framework.profile(
        version, n, tunables, sample_limit=sample_limit
    )
    return profile, num_memsets, time.perf_counter() - start


def _profile_spec_traced(spec):
    """Process-pool entry point: ``_profile_spec`` plus the spans the
    worker recorded and the worker's pid, shipped back as plain values
    so the parent can merge the spans onto that worker's stable trace
    lane (``time.perf_counter`` is CLOCK_MONOTONIC on Linux, so
    forked-worker timestamps line up with the parent's).
    """
    from ..obs import get_tracer

    with get_tracer().capture() as captured:
        result = _profile_spec(spec)
    return result + ([span.as_dict() for span in captured], os.getpid())


def predicted_cost(spec) -> float:
    """Relative simulation cost of one spec (unitless heuristic).

    Cost scales with simulated lanes × per-lane loop trips: an
    *unsampled* profile (small explicit grid) touches every element
    (cost ≈ n), a sampled one touches ``_SAMPLE_BLOCKS`` blocks' worth.
    The scheduler only needs the *order* right — largest unsampled
    points first — so stragglers start before the cheap tail.
    """
    n = int(spec[4])
    tunables = spec[5]
    sample_limit = spec[6]
    block = getattr(tunables, "block", None) or 256
    grid = getattr(tunables, "grid", None) or max(1, -(-n // block))
    if sample_limit is not None:
        blocks = min(grid, max(1, int(sample_limit)))
    elif grid > _SAMPLING_GRID_LIMIT:
        blocks = _SAMPLE_BLOCKS
    else:
        blocks = grid
    per_block_elems = max(block, -(-n // grid))
    return float(blocks) * per_block_elems


def dispatch_order(specs) -> list:
    """Spec indices in dispatch order: descending predicted cost,
    submission index as the deterministic tie-break."""
    return sorted(
        range(len(specs)), key=lambda i: (-predicted_cost(specs[i]), i)
    )


class _PoolUnavailable(Exception):
    """Raised when a pool class cannot even be constructed here."""


class SweepScheduler:
    """Persistent work-stealing dispatcher for profiling sweeps.

    One instance (the module singleton behind :func:`map_profiles`)
    owns one lazily-created :class:`ProcessPoolExecutor` that survives
    across sweep calls with the same effective worker count; a call
    requesting a different count recreates it.  Thread-safe: concurrent
    ``run`` calls share the pool's task queue.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._pool = None
        self._workers = 0
        #: pid -> stable worker slot for trace-lane attribution; reset
        #: whenever the pool is recreated so slots stay within
        #: [0, workers).
        self._slots = {}

    # -- pool lifecycle ------------------------------------------------

    def _ensure_pool(self, workers, metrics):
        from concurrent.futures import ProcessPoolExecutor

        with self._lock:
            if self._pool is not None and self._workers == workers:
                metrics.inc("sweep.sched.pool_reuses")
                return self._pool
            self._shutdown_locked()
            try:
                self._pool = ProcessPoolExecutor(max_workers=workers)
            except Exception:
                raise _PoolUnavailable
            self._workers = workers
            self._slots = {}
            metrics.inc("sweep.sched.pool_spawns")
            return self._pool

    def _discard(self, pool) -> None:
        """Drop a (possibly broken) pool so the next wave respawns."""
        with self._lock:
            if self._pool is not pool:
                return
            self._shutdown_locked()

    def _shutdown_locked(self) -> None:
        pool, self._pool = self._pool, None
        self._workers = 0
        self._slots = {}
        if pool is not None:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass

    def shutdown(self) -> None:
        """Tear the persistent pool down (tests, interpreter exit)."""
        with self._lock:
            self._shutdown_locked()

    def _slot(self, pid: int) -> int:
        with self._lock:
            return self._slots.setdefault(pid, len(self._slots))

    # -- the sweep -----------------------------------------------------

    def run(self, specs, max_workers=None, on_result=None):
        """Profile every spec; results aligned with ``specs``.

        ``on_result(index, result)`` — when given — is invoked in
        *completion* order, once per spec, as each profile lands (the
        streaming cache-insert hook). The aligned return list is
        unchanged from the historical contract.
        """
        from ..obs import default_metrics

        specs = list(specs)
        metrics = default_metrics()
        metrics.observe("pool.fanout", len(specs))
        workers = resolve_workers(max_workers)
        if workers <= 1 or len(specs) < MIN_PARALLEL_SPECS:
            metrics.inc("pool.serial")
            return _run_serial(specs, on_result)
        workers = min(workers, len(specs))
        start = time.perf_counter()
        results = [None] * len(specs)
        pending = dispatch_order(specs)
        dispatched_once = set()
        # Wave plan: the persistent process pool, one fresh process pool
        # (per-future retry after a worker death), threads, then serial.
        for kind in ("process", "process", "thread"):
            if not pending:
                break
            retried = [i for i in pending if i in dispatched_once]
            if retried:
                metrics.inc("sweep.sched.retried", len(retried))
            try:
                pending = self._run_wave(
                    kind, specs, pending, results, workers, on_result,
                    metrics, dispatched_once,
                )
            except _PoolUnavailable:
                continue
        if pending:
            metrics.inc(
                "sweep.sched.retried",
                len([i for i in pending if i in dispatched_once]),
            )
        for index in pending:  # last resort; a real error propagates
            results[index] = _profile_spec(specs[index])
            if on_result is not None:
                on_result(index, results[index])
        metrics.inc("pool.parallel")
        wall = time.perf_counter() - start
        busy = sum(r[2] for r in results if r is not None)
        if wall > 0:
            metrics.gauge(
                "sweep.worker_util",
                round(min(1.0, busy / (workers * wall)), 4),
            )
        return results

    def _run_wave(self, kind, specs, order, results, workers, on_result,
                  metrics, dispatched_once):
        """Dispatch ``order`` on one pool; returns the indices that did
        not finish (still in cost order). Successful results are
        recorded/streamed as they complete; a broken process pool is
        discarded so the next wave starts fresh."""
        from concurrent.futures import as_completed

        from ..obs import get_tracer
        from ..obs.export import WORKER_TID_BASE

        if kind == "process":
            pool = self._ensure_pool(workers, metrics)
            entry = _profile_spec_traced
        else:
            from concurrent.futures import ThreadPoolExecutor

            try:
                pool = ThreadPoolExecutor(max_workers=workers)
            except Exception:
                raise _PoolUnavailable
            entry = _profile_spec
        tracer = get_tracer()
        submitted = {}
        failed = False
        try:
            for index in order:
                try:
                    submitted[pool.submit(entry, specs[index])] = index
                except Exception:
                    failed = True
                    break  # pool already broken; the rest retries later
            dispatched_once.update(submitted.values())
            metrics.inc("sweep.sched.dispatched", len(submitted))
            unfinished = [
                i for i in order
                if i not in set(submitted.values())
            ]
            by_pid = {}
            queued = len(submitted)
            for future in as_completed(submitted):
                index = submitted[future]
                queued -= 1
                try:
                    item = future.result()
                except Exception:
                    failed = True
                    unfinished.append(index)
                    continue
                if kind == "process":
                    *result, spans, pid = item
                    result = tuple(result)
                    tracer.merge(
                        spans, tid=WORKER_TID_BASE + self._slot(pid)
                    )
                    by_pid[pid] = by_pid.get(pid, 0) + 1
                else:
                    result = item
                results[index] = result
                metrics.record(
                    counters={"sweep.sched.completed": 1},
                    observations={"sweep.sched.queue_depth": queued},
                )
                if on_result is not None:
                    on_result(index, result)
            if kind == "process" and by_pid:
                # A "steal" is a completion beyond the even share a
                # static partition would have handed that worker.
                fair = -(-sum(by_pid.values()) // workers)
                steals = sum(max(0, c - fair) for c in by_pid.values())
                if steals:
                    metrics.inc("sweep.sched.steals", steals)
        finally:
            if kind == "thread":
                pool.shutdown(wait=True)
            elif failed:
                self._discard(pool)
        position = {index: rank for rank, index in enumerate(order)}
        unfinished.sort(key=position.__getitem__)
        return unfinished


def _run_serial(specs, on_result):
    results = []
    for index, spec in enumerate(specs):
        result = _profile_spec(spec)
        results.append(result)
        if on_result is not None:
            on_result(index, result)
    return results


# ---------------------------------------------------------------------
# process-wide scheduler singleton
# ---------------------------------------------------------------------

_scheduler = None
_scheduler_lock = threading.Lock()


def default_scheduler() -> SweepScheduler:
    """The process-wide scheduler shared by every sweep entry point."""
    global _scheduler
    if _scheduler is None:
        with _scheduler_lock:
            if _scheduler is None:
                _scheduler = SweepScheduler()
                atexit.register(shutdown_scheduler)
    return _scheduler


def shutdown_scheduler() -> None:
    """Close the persistent pool (no-op when none was ever created).

    Tests call this before monkeypatching worker entry points so the
    next sweep forks fresh workers that inherit the patched globals.
    """
    scheduler = _scheduler
    if scheduler is not None:
        scheduler.shutdown()


def map_profiles(specs, max_workers=None, on_result=None):
    """Profile every spec, in parallel when it pays off.

    Returns results aligned with ``specs`` (deterministic order).
    ``on_result(index, result)`` streams each completed profile to the
    caller the moment it lands — in completion order — so the parent
    can insert it into the shared cache while the sweep is still
    running. Falls back transparently: persistent process pool → fresh
    process pool (unfinished specs only) → threads → serial. Worker
    spans merge into the parent trace under the owning worker's stable
    ``worker-<slot>`` lane (process pools only — thread pools share the
    parent tracer, so their spans are already recorded).
    """
    return default_scheduler().run(
        specs, max_workers=max_workers, on_result=on_result
    )
