"""Parallel fan-out of profiling work over a ``concurrent.futures`` pool.

Event profiles are architecture-independent and every (version × size ×
tunables) point is independent of every other, so the sweep behind
``best_version`` / ``tune_all`` / ``DynamicSelector.build`` is
embarrassingly parallel. Workers each hold a lazily-built
:class:`~repro.runtime.session.ReductionFramework` (keyed by
``(op, ctype, unroll)``) and return plain ``(profile, num_memsets,
cost_s)`` tuples; the parent merges results into the shared
:mod:`repro.perf.cache` in submission order, so the cache contents are
deterministic regardless of completion order.

Process pools give real parallelism (the simulator is partly
GIL-bound); when processes are unavailable — or on a single-CPU box —
the sweep degrades gracefully to threads and then to serial execution,
always producing identical results.
"""

from __future__ import annotations

import os
import time

#: Environment override for the worker count (0/1 forces serial).
MAX_WORKERS_ENV = "REPRO_MAX_WORKERS"

#: Upper bound on auto-selected workers.
_WORKER_CAP = 8

#: Below this many outstanding profiles a pool costs more than it saves.
MIN_PARALLEL_SPECS = 4

_worker_frameworks = {}


def resolve_workers(max_workers=None) -> int:
    """Effective worker count: explicit arg > env var > cpu count."""
    if max_workers is None:
        env = os.environ.get(MAX_WORKERS_ENV)
        if env is not None:
            try:
                max_workers = int(env)
            except ValueError:
                max_workers = None
    if max_workers is None:
        max_workers = min(os.cpu_count() or 1, _WORKER_CAP)
    return max(1, int(max_workers)) if max_workers > 0 else 1


def _profile_spec(spec):
    """Worker entry point: profile one (version, n, tunables) point.

    ``spec`` is ``(op, ctype, unroll, version, n, tunables,
    sample_limit)`` with a picklable frozen-dataclass version/tunables.
    Returns ``(profile, num_memsets, cost_s)``.
    """
    op, ctype, unroll, version, n, tunables, sample_limit = spec
    framework = _worker_frameworks.get((op, ctype, unroll))
    if framework is None:
        from ..runtime.session import ReductionFramework

        framework = ReductionFramework(op=op, ctype=ctype, unroll=unroll)
        _worker_frameworks[(op, ctype, unroll)] = framework
    start = time.perf_counter()
    profile, num_memsets = framework.profile(
        version, n, tunables, sample_limit=sample_limit
    )
    return profile, num_memsets, time.perf_counter() - start


def _profile_spec_traced(spec):
    """Process-pool entry point: ``_profile_spec`` plus the spans the
    worker recorded, shipped back as dicts so the parent can merge them
    into its own trace (``time.perf_counter`` is CLOCK_MONOTONIC on
    Linux, so forked-worker timestamps line up with the parent's).
    """
    from ..obs import get_tracer

    with get_tracer().capture() as captured:
        result = _profile_spec(spec)
    return result + ([span.as_dict() for span in captured],)


def map_profiles(specs, max_workers=None):
    """Profile every spec, in parallel when it pays off.

    Returns results aligned with ``specs`` (deterministic order). Falls
    back transparently: processes → threads → serial. Worker spans are
    merged into the parent trace in submission order under synthetic
    ``worker-<k>`` thread ids (process pools only — thread pools share
    the parent tracer, so their spans are already recorded).
    """
    from ..obs import default_metrics, get_tracer

    specs = list(specs)
    metrics = default_metrics()
    metrics.observe("pool.fanout", len(specs))
    workers = resolve_workers(max_workers)
    if workers <= 1 or len(specs) < MIN_PARALLEL_SPECS:
        metrics.inc("pool.serial")
        return [_profile_spec(spec) for spec in specs]
    workers = min(workers, len(specs))
    from concurrent.futures import ProcessPoolExecutor

    for pool_cls in _pool_classes():
        is_process = issubclass(pool_cls, ProcessPoolExecutor)
        entry = _profile_spec_traced if is_process else _profile_spec
        try:
            with pool_cls(max_workers=workers) as pool:
                results = list(pool.map(entry, specs))
        except Exception:
            continue
        metrics.inc("pool.parallel")
        if is_process:
            from ..obs.export import WORKER_TID_BASE

            tracer = get_tracer()
            stripped = []
            for index, item in enumerate(results):
                *result, spans = item
                tracer.merge(spans, tid=WORKER_TID_BASE + index % workers)
                stripped.append(tuple(result))
            results = stripped
        return results
    metrics.inc("pool.serial")
    return [_profile_spec(spec) for spec in specs]


def _pool_classes():
    from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

    return (ProcessPoolExecutor, ThreadPoolExecutor)
