"""repro — reproduction of *Automatic Generation of Warp-Level Primitives
and Atomic Instructions for Fast and Portable Parallel Reduction on GPUs*
(Garcia De Gonzalo et al., CGO 2019).

The package implements, in pure Python:

* a Tangram-like kernel-synthesis DSL (:mod:`repro.lang`);
* the paper's three AST transformation passes — global-memory atomics,
  shared-memory atomic qualifiers, and automatic warp-shuffle detection
  (:mod:`repro.core`);
* generic lowering of transformed codelets to a virtual SIMT ISA and
  CUDA C emission (:mod:`repro.codegen`);
* a functional GPU simulator with per-architecture analytic timing for
  Kepler/Maxwell/Pascal (:mod:`repro.gpusim`);
* CUB-like, Kokkos-like and OpenMP baselines (:mod:`repro.baselines`,
  :mod:`repro.cpu`);
* an autotuner and runtime version selector (:mod:`repro.autotune`).

Quick start::

    import numpy as np
    from repro import ReductionFramework

    fw = ReductionFramework(op="add")
    data = np.random.rand(10_000).astype(np.float32)
    print(fw.run(data, version="p").value)     # Figure 6 version (p)
    print(fw.time(len(data), "p", "maxwell"))  # modelled seconds
"""

from .core import (
    BEST8,
    FIG6,
    Version,
    enumerate_versions,
    fig6_label,
    prune_versions,
    search_space_summary,
)
from .codegen import Tunables
from .gpusim import ARCHITECTURES, KEPLER, MAXWELL, PASCAL, get_architecture
from .runtime import (
    ReduceResult,
    ReductionFramework,
    cub_time,
    kokkos_time,
    openmp_time,
)

__version__ = "1.0.0"

__all__ = [
    "ARCHITECTURES",
    "BEST8",
    "FIG6",
    "KEPLER",
    "MAXWELL",
    "PASCAL",
    "ReduceResult",
    "ReductionFramework",
    "Tunables",
    "Version",
    "__version__",
    "cub_time",
    "enumerate_versions",
    "fig6_label",
    "get_architecture",
    "kokkos_time",
    "openmp_time",
    "prune_versions",
    "search_space_summary",
]
