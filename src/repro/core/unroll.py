"""AST pass: loop unrolling (the future-work item of Section III-A,
citing optimal GPGPU loop unrolling [34]).

"We can use similar pre-processing steps with AST passes to enable other
advanced optimizations, such as loop unrolling [34]. We leave them for
future work."

This pass unrolls ``for`` loops whose trip count is statically known —
in the reduction codelets, the tree/shuffle loops
``for (offset = MaxSize()/2; offset > 0; offset /= 2)`` have exactly 5
iterations. Each iteration's body is cloned with the iterator replaced
by its constant value, removing per-iteration condition/step overhead
(and, downstream, the VIR loop machinery).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang import ast

#: Loops longer than this are left rolled (code-size guard).
MAX_UNROLL = 64

_WARP = 32


@dataclass
class UnrollResult:
    codelet: ast.Codelet
    loops_unrolled: int = 0
    iterations_expanded: int = 0


def _static_value(expr: ast.Expr, vector: str = None):
    """Evaluate compile-time-constant integer expressions.

    ``Vector.MaxSize()``/``Size()`` are the warp size, as in Figure 2 —
    but only on the codelet's Vector object; ``in.Size()`` is runtime.
    """
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if (
        isinstance(expr, ast.MethodCall)
        and expr.method in ("MaxSize", "Size")
        and isinstance(expr.obj, ast.Ident)
        and expr.obj.name == vector
    ):
        return _WARP
    if isinstance(expr, ast.Unary) and expr.op == "-":
        inner = _static_value(expr.operand, vector)
        return None if inner is None else -inner
    if isinstance(expr, ast.Binary):
        lhs = _static_value(expr.lhs, vector)
        rhs = _static_value(expr.rhs, vector)
        if lhs is None or rhs is None:
            return None
        if expr.op == "+":
            return lhs + rhs
        if expr.op == "-":
            return lhs - rhs
        if expr.op == "*":
            return lhs * rhs
        if expr.op == "/" and rhs != 0:
            return lhs // rhs
        if expr.op == "%" and rhs != 0:
            return lhs % rhs
        return None
    return None


def _trip_values(loop: ast.For, vector: str = None):
    """Iterator values per iteration, or ``None`` if not static."""
    init = loop.init
    if not (isinstance(init, ast.VarDecl) and init.init is not None):
        return None, None
    iterator = init.name
    value = _static_value(init.init, vector)
    if value is None:
        return None, None
    cond = loop.cond
    if not (
        isinstance(cond, ast.Binary)
        and isinstance(cond.lhs, ast.Ident)
        and cond.lhs.name == iterator
    ):
        return None, None
    bound = _static_value(cond.rhs, vector)
    if bound is None or cond.op not in ("<", "<=", ">", ">="):
        return None, None
    step = loop.step
    if not (
        isinstance(step, ast.Assign)
        and isinstance(step.target, ast.Ident)
        and step.target.name == iterator
    ):
        return None, None
    delta = _static_value(step.value, vector)
    if delta is None:
        return None, None

    values = []
    current = value
    for _ in range(MAX_UNROLL + 1):
        if cond.op == "<" and not current < bound:
            break
        if cond.op == "<=" and not current <= bound:
            break
        if cond.op == ">" and not current > bound:
            break
        if cond.op == ">=" and not current >= bound:
            break
        values.append(current)
        if step.op == "+=":
            current += delta
        elif step.op == "-=":
            current -= delta
        elif step.op == "*=" and delta > 1:
            current *= delta
        elif step.op == "/=" and delta > 1:
            current //= delta
        elif step.op == ">>=" and delta >= 1:
            current >>= delta
        else:
            return None, None
    if len(values) > MAX_UNROLL or not values:
        return None, None
    return iterator, values


class _IteratorSubstituter(ast.NodeTransformer):
    def __init__(self, name: str, value: int):
        self.name = name
        self.value = value

    def visit_Ident(self, node: ast.Ident):
        if node.name == self.name:
            return ast.IntLiteral(value=self.value, span=node.span)
        return node


def _body_modifies(loop: ast.For, iterator: str) -> bool:
    for node in ast.walk(loop.body):
        if (
            isinstance(node, ast.Assign)
            and isinstance(node.target, ast.Ident)
            and node.target.name == iterator
        ):
            return True
        if isinstance(node, ast.VarDecl) and node.name == iterator:
            return True  # shadowing — bail out conservatively
    return False


class _Unroller(ast.NodeTransformer):
    def __init__(self, vector: str = None):
        self.vector = vector
        self.loops = 0
        self.iterations = 0

    def visit_For(self, node: ast.For):
        self.generic_visit(node)  # unroll inner loops first
        iterator, values = _trip_values(node, self.vector)
        if iterator is None or _body_modifies(node, iterator):
            return node
        statements = []
        for value in values:
            clone = node.body.clone()
            _IteratorSubstituter(iterator, value).visit(clone)
            statements.extend(clone.stmts)
        self.loops += 1
        self.iterations += len(values)
        return statements


def _find_vector_name(codelet: ast.Codelet):
    for node in ast.walk(codelet):
        if isinstance(node, ast.VarDecl) and str(node.declared_type) == "Vector":
            return node.name
    return None


def apply_unroll(codelet: ast.Codelet) -> UnrollResult:
    """Return a transformed **clone** with static loops fully unrolled."""
    clone = codelet.clone()
    unroller = _Unroller(vector=_find_vector_name(clone))
    unroller.visit(clone)
    return UnrollResult(
        codelet=clone,
        loops_unrolled=unroller.loops,
        iterations_expanded=unroller.iterations,
    )
