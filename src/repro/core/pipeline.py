"""Pre-processing pipeline for code-variant generation (Figure 5).

``preprocess`` runs the paper's pipeline over an analyzed reduction
program:

1. *Planner* — semantic analysis & codelet classification (already done
   by :mod:`repro.lang.semantic`);
2. *General transformations* — metadata gathering (reduction operator,
   partition patterns; argument linking and index calculation happen at
   lowering);
3. *CUDA-specific transformations* — the three new AST passes. Whenever
   a pass produces a new variant it is recorded, exactly the "new
   variant?" loop of Figure 5.

The result is the full set of cooperative codelet variants
(V, VS, VA1, VA2, VA2S) and both flavours (atomic / non-atomic) of each
compound codelet, ready for synthesis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang import AnalyzedProgram, ast
from ..lang.errors import TransformError
from ..obs import get_tracer
from .atomics_global import (
    GlobalAtomicResult,
    apply_global_atomic,
    infer_reduction_op,
)
from .aggregate import apply_warp_aggregation
from .atomics_shared import apply_shared_atomics
from .shuffle import apply_shuffle
from .unroll import apply_unroll

#: Cooperative codelet scheme keys (the legend of Figure 6).
COOP_KEYS = ("V", "VS", "VA1", "VA2", "VA2S")

#: Extension variants beyond the paper's Figure 6 (Section III-D's
#: future-work list): VA1A = VA1 with warp-aggregated atomics [25].
EXTENSION_COOP_KEYS = ("VA1A",)


@dataclass
class CoopVariant:
    """One cooperative codelet variant produced by the pipeline."""

    key: str
    codelet: ast.Codelet
    uses_shuffle: bool = False
    uses_shared_atomic: bool = False
    shared_atomic_op: str = None
    disabled_arrays: list = field(default_factory=list)
    unrolled: bool = False

    @property
    def description(self) -> str:
        return {
            "V": "cooperative tree-based (Figure 1c)",
            "VS": "cooperative + warp shuffle (Listing 4)",
            "VA1": "single shared atomic accumulator (Figure 3a)",
            "VA2": "two-step shared atomic (Figure 3b / Listing 3)",
            "VA2S": "two-step shared atomic + warp shuffle",
            "VA1A": "VA1 with warp-aggregated atomics (Section III-D, [25])",
        }[self.key]


@dataclass
class CompoundVariants:
    """Atomic and non-atomic flavours of one compound codelet."""

    tag: str
    pattern: str  # tile | stride
    atomic: GlobalAtomicResult
    non_atomic: GlobalAtomicResult


@dataclass
class PreprocessResult:
    analyzed: AnalyzedProgram
    spectrum: str
    reduction_op: str
    coop: dict = field(default_factory=dict)  # key -> CoopVariant
    compound: dict = field(default_factory=dict)  # pattern -> CompoundVariants
    log: list = field(default_factory=list)  # human-readable pass log

    def coop_variant(self, key: str) -> CoopVariant:
        if key not in self.coop:
            raise KeyError(
                f"no cooperative variant {key!r}; available: {sorted(self.coop)}"
            )
        return self.coop[key]


def preprocess(
    analyzed: AnalyzedProgram, spectrum: str = "reduce", unroll: bool = False
) -> PreprocessResult:
    """Run the Figure 5 pipeline and collect every generated variant.

    ``unroll=True`` additionally runs the loop-unrolling pass (the
    future-work item of Section III-A) over every cooperative variant.
    """
    tracer = get_tracer()
    with tracer.span("pass.planner", spectrum=spectrum):
        op = infer_reduction_op(analyzed, spectrum)
    result = PreprocessResult(analyzed=analyzed, spectrum=spectrum, reduction_op=op)
    result.log.append(f"planner: spectrum {spectrum!r} reduces with op {op!r}")

    _build_coop_variants(analyzed, spectrum, result)
    _build_compound_variants(analyzed, spectrum, result)
    if unroll:
        with tracer.span("pass.unroll", spectrum=spectrum) as span:
            expanded = 0
            for key, variant in result.coop.items():
                unrolled = apply_unroll(variant.codelet)
                if unrolled.loops_unrolled:
                    variant.codelet = unrolled.codelet
                    variant.unrolled = True
                    expanded += unrolled.iterations_expanded
                    result.log.append(
                        f"unroll pass on {key}: {unrolled.loops_unrolled} loop(s), "
                        f"{unrolled.iterations_expanded} iterations expanded"
                    )
            span.set(iterations_expanded=expanded)
    return result


def _base_coop_codelet(analyzed: AnalyzedProgram, spectrum: str):
    """The plain tree-based cooperative codelet (no atomic qualifiers)."""
    for info in analyzed.spectrum(spectrum):
        if info.kind == "cooperative" and not any(s.atomic for s in info.shared):
            return info
    raise TransformError(
        f"spectrum {spectrum!r} has no plain cooperative codelet"
    )


def _atomic_coop_codelets(analyzed: AnalyzedProgram, spectrum: str) -> list:
    return [
        info
        for info in analyzed.spectrum(spectrum)
        if info.kind == "cooperative" and any(s.atomic for s in info.shared)
    ]


def _build_coop_variants(analyzed, spectrum, result) -> None:
    tracer = get_tracer()
    base = _base_coop_codelet(analyzed, spectrum)
    result.coop["V"] = CoopVariant(key="V", codelet=base.codelet.clone())
    result.log.append(f"coop variant V from {base.display_name!r}")

    with tracer.span("pass.shuffle", target="V"):
        shuffled = apply_shuffle(base.codelet)
    if shuffled.rewrites:
        result.coop["VS"] = CoopVariant(
            key="VS",
            codelet=shuffled.codelet,
            uses_shuffle=True,
            disabled_arrays=shuffled.disabled_arrays,
        )
        result.log.append(
            f"shuffle pass: {shuffled.rewrites} loop(s) rewritten in "
            f"{base.display_name!r}; disabled shared arrays: "
            f"{shuffled.disabled_arrays or 'none'} -> variant VS"
        )

    for info in _atomic_coop_codelets(analyzed, spectrum):
        with tracer.span("pass.shared_atomics", target=info.display_name):
            rewritten = apply_shared_atomics(info.codelet)
        n_arrays = sum(1 for s in info.shared if not s.atomic)
        key = "VA2" if n_arrays else "VA1"
        atomic_ops = set(rewritten.atomic_symbols.values())
        if len(atomic_ops) != 1:
            raise TransformError(
                f"codelet {info.display_name!r} mixes atomic qualifiers "
                f"{sorted(atomic_ops)}"
            )
        result.coop[key] = CoopVariant(
            key=key,
            codelet=rewritten.codelet,
            uses_shared_atomic=True,
            shared_atomic_op=next(iter(atomic_ops)),
        )
        result.log.append(
            f"shared-atomic pass: {rewritten.rewrites} write(s) rewritten in "
            f"{info.display_name!r} -> variant {key}"
        )
        if key == "VA1":
            with tracer.span("pass.warp_aggregation", target=key):
                aggregated = apply_warp_aggregation(rewritten.codelet)
            if aggregated.rewrites:
                result.coop["VA1A"] = CoopVariant(
                    key="VA1A",
                    codelet=aggregated.codelet,
                    uses_shuffle=True,
                    uses_shared_atomic=True,
                    shared_atomic_op=next(iter(atomic_ops)),
                )
                result.log.append(
                    f"warp-aggregation pass: {aggregated.rewrites} atomic(s) "
                    f"aggregated per warp -> variant VA1A"
                )
        if key == "VA2":
            with tracer.span("pass.shuffle", target=key):
                both = apply_shuffle(rewritten.codelet)
            if both.rewrites:
                result.coop["VA2S"] = CoopVariant(
                    key="VA2S",
                    codelet=both.codelet,
                    uses_shuffle=True,
                    uses_shared_atomic=True,
                    shared_atomic_op=next(iter(atomic_ops)),
                    disabled_arrays=both.disabled_arrays,
                )
                result.log.append(
                    f"shuffle pass on VA2: {both.rewrites} loop(s) rewritten; "
                    f"disabled shared arrays: {both.disabled_arrays or 'none'}"
                    f" -> variant VA2S"
                )


def _build_compound_variants(analyzed, spectrum, result) -> None:
    tracer = get_tracer()
    for info in analyzed.spectrum(spectrum):
        if info.kind != "compound":
            continue
        with tracer.span("pass.global_atomics", target=info.display_name):
            atomic = apply_global_atomic(info, analyzed, atomic=True)
            non_atomic = apply_global_atomic(info, analyzed, atomic=False)
        pattern = atomic.pattern
        result.compound[pattern] = CompoundVariants(
            tag=info.codelet.tag or pattern,
            pattern=pattern,
            atomic=atomic,
            non_atomic=non_atomic,
        )
        result.log.append(
            f"global-atomic pass on {info.display_name!r}: pattern "
            f"{pattern!r}, atomic op {atomic.atomic_op!r}, spectrum call "
            f"{'disabled' if atomic.spectrum_disabled else 'kept'}"
        )
