"""AST pass: automatic warp-shuffle detection (Section III-C, Figure 4).

The pass scans cooperative codelets for tree-reduction ``for`` loops and
rewrites them into warp shuffle instructions, following the seven steps
of the paper's detection algorithm:

1. the loop bound comes from a ``Vector`` member function
   (``MaxSize()``/``Size()``);
2. the iterator decreases by a constant every iteration (``/= 2`` or a
   ``-=`` step);
3. the body reads a ``__shared`` array and reduces it into a local
   accumulator;
4. the shared-array read index is a function of ``Vector.ThreadId()``
   and the loop iterator;
5./6. the accumulator is written back to the *same* shared array;
7. at an index that is a function of ``ThreadId()`` only.

On a match, the loop body is replaced with
``val <op>= __shfl_down(val, offset)`` (``__shfl_up`` when the index is
``ThreadId() - offset``), matching Listing 4. Afterwards, shared arrays
whose remaining uses are only writes ("contents come directly from the
input array") are *disabled*: their stores and declarations are removed,
shrinking the shared-memory footprint. Arrays still read (the
producer-consumer ``partial`` array of Figure 1(c)) are retained.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang import ast

_VECTOR_BOUND_METHODS = ("MaxSize", "Size")
_REDUCTION_CALLS = ("max", "min")


@dataclass
class ShuffleMatch:
    """One for-loop that satisfies all seven conditions of Figure 4."""

    loop: ast.For
    iterator: str
    accumulator: str
    shared_array: str
    direction: str  # down | up
    combine: str  # "add" or "max"/"min" (generalized accumulate forms)


@dataclass
class ShuffleResult:
    codelet: ast.Codelet
    rewrites: int = 0
    disabled_arrays: list = field(default_factory=list)


# ---------------------------------------------------------------------
# Detection (read-only; works on original or cloned codelets)
# ---------------------------------------------------------------------


def detect_shuffle_loops(codelet: ast.Codelet) -> list:
    """All :class:`ShuffleMatch` opportunities in a codelet."""
    vector_name = _find_vector_name(codelet)
    if vector_name is None:
        return []
    shared_arrays = {
        node.name
        for node in ast.walk(codelet)
        if isinstance(node, ast.VarDecl) and node.shared and node.dims
    }
    matches = []
    for node in ast.walk(codelet):
        if isinstance(node, ast.For):
            match = _match_loop(node, vector_name, shared_arrays)
            if match is not None:
                matches.append(match)
    return matches


def _find_vector_name(codelet: ast.Codelet):
    for node in ast.walk(codelet):
        if isinstance(node, ast.VarDecl) and str(node.declared_type) == "Vector":
            return node.name
    return None


def _is_vector_method(expr, vector_name: str, methods) -> bool:
    return (
        isinstance(expr, ast.MethodCall)
        and isinstance(expr.obj, ast.Ident)
        and expr.obj.name == vector_name
        and expr.method in methods
    )


def _uses_vector_method(expr, vector_name: str, method: str) -> bool:
    return any(
        _is_vector_method(node, vector_name, (method,)) for node in ast.walk(expr)
    )


def _uses_ident(expr, name: str) -> bool:
    return any(
        isinstance(node, ast.Ident) and node.name == name for node in ast.walk(expr)
    )


def _match_loop(loop: ast.For, vector_name: str, shared_arrays: set):
    # Step (1): bound derived from a Vector member function.
    init = loop.init
    if not (isinstance(init, ast.VarDecl) and init.init is not None):
        return None
    iterator = init.name
    if not any(
        _is_vector_method(node, vector_name, _VECTOR_BOUND_METHODS)
        for node in ast.walk(init.init)
    ):
        return None
    # Step (2): iterator decreases by a constant each iteration.
    if not _iterator_decreases(loop, iterator):
        return None
    # Steps (3)-(7): body shape.
    body = [s for s in loop.body.stmts if not isinstance(s, ast.Block)]
    if len(body) != 2:
        return None
    reduce_stmt, writeback = body
    parsed = _match_reduction_stmt(reduce_stmt, shared_arrays)
    if parsed is None:
        return None
    accumulator, shared_array, read_index, combine = parsed
    # Step (4): read index uses ThreadId() and the iterator.
    if not (
        _uses_vector_method(read_index, vector_name, "ThreadId")
        and _uses_ident(read_index, iterator)
    ):
        return None
    direction = _index_direction(read_index, iterator)
    if direction is None:
        return None
    # Steps (5)+(6): accumulator written to the same shared array.
    if not (
        isinstance(writeback, ast.Assign)
        and writeback.op == "="
        and isinstance(writeback.target, ast.Index)
        and isinstance(writeback.target.base, ast.Ident)
        and writeback.target.base.name == shared_array
        and isinstance(writeback.value, ast.Ident)
        and writeback.value.name == accumulator
    ):
        return None
    # Step (7): write index depends on ThreadId() only (not the iterator).
    write_index = writeback.target.index
    if not _uses_vector_method(write_index, vector_name, "ThreadId"):
        return None
    if _uses_ident(write_index, iterator):
        return None
    return ShuffleMatch(
        loop=loop,
        iterator=iterator,
        accumulator=accumulator,
        shared_array=shared_array,
        direction=direction,
        combine=combine,
    )


def _iterator_decreases(loop: ast.For, iterator: str) -> bool:
    cond_ok = (
        isinstance(loop.cond, ast.Binary)
        and loop.cond.op in (">", ">=")
        and isinstance(loop.cond.lhs, ast.Ident)
        and loop.cond.lhs.name == iterator
    )
    if not cond_ok:
        return False
    step = loop.step
    if not (
        isinstance(step, ast.Assign)
        and isinstance(step.target, ast.Ident)
        and step.target.name == iterator
        and isinstance(step.value, ast.IntLiteral)
    ):
        return False
    if step.op == "/=" and step.value.value >= 2:
        return True
    if step.op == "-=" and step.value.value >= 1:
        return True
    if step.op == ">>=" and step.value.value >= 1:
        return True
    return False


def _match_reduction_stmt(stmt, shared_arrays: set):
    """Step (3): ``acc += <read>`` or ``acc = max/min(acc, <read>)``.

    Returns ``(accumulator, shared_array, read_index_expr, combine)``.
    """
    if not isinstance(stmt, ast.Assign) or not isinstance(stmt.target, ast.Ident):
        return None
    accumulator = stmt.target.name
    if stmt.op == "+=":
        read = stmt.value
        combine = "add"
    elif stmt.op == "=" and isinstance(stmt.value, ast.Call) and (
        stmt.value.name in _REDUCTION_CALLS
    ):
        args = stmt.value.args
        if len(args) != 2:
            return None
        if not (isinstance(args[0], ast.Ident) and args[0].name == accumulator):
            return None
        read = args[1]
        combine = stmt.value.name
    else:
        return None
    access = _find_shared_read(read, shared_arrays)
    if access is None:
        return None
    shared_array, read_index = access
    return accumulator, shared_array, read_index, combine


def _find_shared_read(expr, shared_arrays: set):
    """The (guarded) shared-array read inside the reduce expression."""
    for node in ast.walk(expr):
        if (
            isinstance(node, ast.Index)
            and isinstance(node.base, ast.Ident)
            and node.base.name in shared_arrays
        ):
            return node.base.name, node.index
    return None


def _index_direction(index_expr, iterator: str):
    """``ThreadId() + offset`` → down; ``ThreadId() - offset`` → up."""
    if not isinstance(index_expr, ast.Binary):
        return None
    rhs_is_iter = isinstance(index_expr.rhs, ast.Ident) and (
        index_expr.rhs.name == iterator
    )
    lhs_is_iter = isinstance(index_expr.lhs, ast.Ident) and (
        index_expr.lhs.name == iterator
    )
    if index_expr.op == "+" and (rhs_is_iter or lhs_is_iter):
        return "down"
    if index_expr.op == "-" and rhs_is_iter:
        return "up"
    return None


# ---------------------------------------------------------------------
# Rewrite
# ---------------------------------------------------------------------


def apply_shuffle(codelet: ast.Codelet, width: int = 32) -> ShuffleResult:
    """Return a transformed **clone** with shuffle loops rewritten and
    dead shared arrays disabled. The input codelet is untouched."""
    clone = codelet.clone()
    matches = detect_shuffle_loops(clone)
    for match in matches:
        _rewrite_loop(match, width)
    disabled = _disable_dead_shared_arrays(clone) if matches else []
    return ShuffleResult(
        codelet=clone, rewrites=len(matches), disabled_arrays=disabled
    )


def _rewrite_loop(match: ShuffleMatch, width: int) -> None:
    shuffle = ast.WarpShuffle(
        value=ast.Ident(name=match.accumulator),
        offset=ast.Ident(name=match.iterator),
        direction=match.direction,
        width=width,
    )
    if match.combine == "add":
        new_stmt = ast.Assign(
            target=ast.Ident(name=match.accumulator), op="+=", value=shuffle
        )
    else:
        new_stmt = ast.Assign(
            target=ast.Ident(name=match.accumulator),
            op="=",
            value=ast.Call(
                name=match.combine,
                args=[ast.Ident(name=match.accumulator), shuffle],
            ),
        )
    match.loop.body = ast.Block(stmts=[new_stmt], span=match.loop.body.span)


def _disable_dead_shared_arrays(codelet: ast.Codelet) -> list:
    """Remove shared arrays that are only written, plus their stores.

    This is the paper's "the AST pass disables array tmp, because its
    contents come directly from the input array" (Listing 4).
    """
    # Pure write targets: `arr[i] = v` overwrites without reading. Compound
    # assignments and AtomicUpdate targets are read-modify-write, so they
    # keep an array alive (conservative for e.g. histograms).
    pure_write_targets = set()
    for node in ast.walk(codelet):
        if (
            isinstance(node, ast.Assign)
            and node.op == "="
            and isinstance(node.target, ast.Index)
        ):
            pure_write_targets.add(id(node.target))

    read_arrays = set()
    for node in ast.walk(codelet):
        if (
            isinstance(node, ast.Index)
            and isinstance(node.base, ast.Ident)
            and id(node) not in pure_write_targets
        ):
            read_arrays.add(node.base.name)

    dead = set()
    for node in ast.walk(codelet):
        if (
            isinstance(node, ast.VarDecl)
            and node.shared
            and node.dims
            and node.name not in read_arrays
        ):
            dead.add(node.name)
    if dead:
        _DeadArrayPruner(dead).visit(codelet)
    return sorted(dead)


class _DeadArrayPruner(ast.NodeTransformer):
    def __init__(self, dead: set):
        self.dead = dead

    def visit_VarDecl(self, node: ast.VarDecl):
        if node.shared and node.name in self.dead:
            return None
        return self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign):
        target = node.target
        if (
            isinstance(target, ast.Index)
            and isinstance(target.base, ast.Ident)
            and target.base.name in self.dead
        ):
            return None
        return self.generic_visit(node)
