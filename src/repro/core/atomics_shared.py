"""AST pass: atomic instructions on shared memory (Section III-B).

The pass finds ``__shared`` declarations carrying an atomic qualifier
(``_atomicAdd``/``_atomicSub``/``_atomicMax``/``_atomicMin``) and rewrites
every write to such a variable into an :class:`~repro.lang.ast.AtomicUpdate`
node:

* ``partial = val;``      → ``atomicAdd(&partial, val);``   (Figure 3)
* ``hist[bin] += 1;``     → ``atomicAdd(&hist[bin], 1);``   (histograms [12])

A plain ``=`` write *becomes* the qualifier's read-modify-write — exactly
the paper's semantics for Figure 3(b) line 16 → Listing 3 line 27. A
compound assignment must agree with the qualifier (``+=`` with
``_atomicAdd``); mismatches are compile errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang import ast
from ..lang.errors import TransformError

#: compound-assignment operator compatible with each atomic qualifier
_COMPATIBLE_COMPOUND = {"add": "+=", "sub": "-="}


@dataclass
class SharedAtomicResult:
    codelet: ast.Codelet
    rewrites: int = 0
    atomic_symbols: dict = field(default_factory=dict)  # name -> op


def collect_atomic_shared(codelet: ast.Codelet) -> dict:
    """Map of shared-variable name -> atomic op for qualified declarations."""
    atomics = {}
    for node in ast.walk(codelet):
        if isinstance(node, ast.VarDecl) and node.shared and node.atomic:
            atomics[node.name] = node.atomic
    return atomics


class _SharedAtomicRewriter(ast.NodeTransformer):
    def __init__(self, atomics: dict):
        self.atomics = atomics
        self.rewrites = 0

    def visit_Assign(self, node: ast.Assign):
        name = _written_shared_name(node.target)
        if name is None or name not in self.atomics:
            return self.generic_visit(node)
        op = self.atomics[name]
        if node.op == "=":
            value = node.value
        elif _COMPATIBLE_COMPOUND.get(op) == node.op:
            value = node.value
        else:
            raise TransformError(
                f"write {node.op!r} to {name!r} conflicts with its "
                f"_atomic{op.capitalize()} qualifier",
                node.span,
            )
        self.rewrites += 1
        return ast.AtomicUpdate(
            target=node.target,
            op=op,
            value=value,
            space="shared",
            span=node.span,
        )


def _written_shared_name(target: ast.Expr):
    if isinstance(target, ast.Ident):
        return target.name
    if isinstance(target, ast.Index) and isinstance(target.base, ast.Ident):
        return target.base.name
    return None


def apply_shared_atomics(codelet: ast.Codelet) -> SharedAtomicResult:
    """Return a transformed **clone**; the input codelet is untouched."""
    clone = codelet.clone()
    atomics = collect_atomic_shared(clone)
    rewriter = _SharedAtomicRewriter(atomics)
    rewriter.visit(clone)
    if atomics and rewriter.rewrites == 0:
        raise TransformError(
            f"codelet {codelet.display_name()!r} declares atomic shared "
            f"variables {sorted(atomics)} but never writes them"
        )
    return SharedAtomicResult(
        codelet=clone, rewrites=rewriter.rewrites, atomic_symbols=atomics
    )
