"""The parallel-reduction DSL library (the paper's Figures 1 and 3).

One spectrum named ``reduce`` is generated per (reduction op, element
type). Its codelets are exactly the paper's:

* ``scalar``     — atomic autonomous serial reduction, Figure 1(a);
* ``tile``       — compound codelet with a tiled access pattern and the
  Map global-atomic API, Figure 1(b);
* ``stride``     — same compound codelet with a strided access pattern;
* ``coop_tree``  — cooperative tree-based summation (V), Figure 1(c);
* ``shared_v1``  — single shared atomic accumulator (VA1), Figure 3(a);
* ``shared_v2``  — two-step shared atomic (VA2), Figure 3(b).

The shuffle variants (VS, VA2S) are *not* written here: the warp-shuffle
AST pass derives them from ``coop_tree`` and ``shared_v2`` automatically
(Section III-C: "without requiring manual source code modification").

Non-``add`` reductions pad with the op's identity instead of ``0`` (the
paper only evaluates sums; padding with the identity keeps max/min
correct for negative inputs).
"""

from __future__ import annotations

from ..lang import AnalyzedProgram, analyze_source

#: Reduction operators supported by the Map atomic API (Section III-A).
REDUCTION_OPS = ("add", "sub", "max", "min")

#: Ops with full DSL codelet libraries (associative reductions).
LIBRARY_OPS = ("add", "max", "min")

_IDENTITY = {
    ("add", "float"): "0.0f",
    ("max", "float"): "-3.402823e38f",
    ("min", "float"): "3.402823e38f",
    ("add", "int"): "0",
    ("max", "int"): "-2147483647",
    ("min", "int"): "2147483647",
}

_ATOMIC_API = {"add": "atomicAdd", "sub": "atomicSub", "max": "atomicMax", "min": "atomicMin"}
_ATOMIC_QUALIFIER = {"add": "_atomicAdd", "sub": "_atomicSub", "max": "_atomicMax", "min": "_atomicMin"}


def identity_literal(op: str, ctype: str) -> str:
    key = (op, ctype)
    if key not in _IDENTITY:
        raise ValueError(f"no identity for op={op!r}, ctype={ctype!r}")
    return _IDENTITY[key]


def identity_value(op: str, ctype: str = "float"):
    """Numeric identity used for device-buffer initialization."""
    if ctype not in ("float", "int"):
        raise ValueError(f"ctype must be 'float' or 'int', got {ctype!r}")
    if op in ("add", "sub"):
        return 0.0 if ctype == "float" else 0
    if op == "max":
        return -3.402823e38 if ctype == "float" else -2147483647
    if op == "min":
        return 3.402823e38 if ctype == "float" else 2147483647
    raise ValueError(f"unknown reduction op {op!r}")


def _accumulate(op: str, target: str, value: str) -> str:
    """The serial accumulate statement for one element."""
    if op == "add":
        return f"{target} += {value};"
    if op == "sub":
        return f"{target} -= {value};"
    if op in ("max", "min"):
        return f"{target} = {op}({target}, {value});"
    raise ValueError(f"unknown reduction op {op!r}")


def _combine(op: str, target: str, value: str) -> str:
    """The tree-step combine statement (same shape the paper uses)."""
    return _accumulate(op, target, value)


def reduction_source(op: str = "add", ctype: str = "float") -> str:
    """DSL source text for the full ``reduce`` spectrum."""
    if op not in LIBRARY_OPS:
        raise ValueError(
            f"DSL codelet library supports {LIBRARY_OPS}; op {op!r} is only "
            f"available through the Map atomic API"
        )
    if ctype not in ("float", "int"):
        raise ValueError(f"ctype must be 'float' or 'int', got {ctype!r}")
    ident = identity_literal(op, ctype)
    api = _ATOMIC_API[op]
    qualifier = _ATOMIC_QUALIFIER[op]
    acc = _accumulate(op, "accum", "in[idx]")
    tree_read = f"(vthread.LaneId() + offset < vthread.Size()) ? tmp[vthread.ThreadId() + offset] : {ident}"
    tree_step = _combine(op, "val", f"{tree_read}")
    partial_read = (
        f"(vthread.LaneId() + offset < vthread.Size()) ? "
        f"partial[vthread.ThreadId() + offset] : {ident}"
    )
    partial_step = _combine(op, "val", f"{partial_read}")

    return f"""
// ---- Figure 1(a): atomic autonomous serial reduction -------------------
__codelet __tag(scalar)
{ctype} reduce(const Array<1,{ctype}> in) {{
  unsigned len = in.Size();
  {ctype} accum = {ident};
  for (unsigned idx = 0; idx < len; idx += 1) {{
    {acc}
  }}
  return accum;
}}

// ---- Figure 1(b), tiled: compound codelet + Map atomic API --------------
__codelet __tag(tile)
{ctype} reduce(const Array<1,{ctype}> in) {{
  __tunable unsigned p;
  unsigned len = in.Size();
  unsigned tile = (len + p - 1) / p;
  Sequence start(i * tile);
  Sequence inc(1);
  Sequence end(min((i + 1) * tile, len));
  Map map(reduce, partition(in, p, start, inc, end));
  map.{api}();
  return reduce(map);
}}

// ---- Figure 1(b), strided: compound codelet + Map atomic API ------------
__codelet __tag(stride)
{ctype} reduce(const Array<1,{ctype}> in) {{
  __tunable unsigned p;
  unsigned len = in.Size();
  Sequence start(i);
  Sequence inc(p);
  Sequence end(len);
  Map map(reduce, partition(in, p, start, inc, end));
  map.{api}();
  return reduce(map);
}}

// ---- Figure 1(c): cooperative tree-based reduction (V) -------------------
__codelet __coop __tag(coop_tree)
{ctype} reduce(const Array<1,{ctype}> in) {{
  Vector vthread();
  __shared {ctype} partial[vthread.MaxSize()];
  __shared {ctype} tmp[in.Size()];
  {ctype} val = {ident};
  val = (vthread.ThreadId() < in.Size()) ? in[vthread.ThreadId()] : {ident};
  tmp[vthread.ThreadId()] = val;
  for (int offset = vthread.MaxSize() / 2; offset > 0; offset /= 2) {{
    {tree_step}
    tmp[vthread.ThreadId()] = val;
  }}
  if (in.Size() != vthread.MaxSize() && in.Size() / vthread.MaxSize() > 0) {{
    if (vthread.LaneId() == 0) {{
      partial[vthread.VectorId()] = val;
    }}
    if (vthread.VectorId() == 0) {{
      val = (vthread.ThreadId() <= (in.Size() / vthread.MaxSize())) ? partial[vthread.LaneId()] : {ident};
      for (int offset = vthread.MaxSize() / 2; offset > 0; offset /= 2) {{
        {partial_step}
        partial[vthread.ThreadId()] = val;
      }}
    }}
  }}
  return val;
}}

// ---- Figure 3(a): single shared atomic accumulator (VA1) -----------------
__codelet __coop __tag(shared_v1)
{ctype} reduce(const Array<1,{ctype}> in) {{
  Vector vthread();
  __shared {qualifier} {ctype} tmp;
  {ctype} val = {ident};
  val = (vthread.ThreadId() < in.Size()) ? in[vthread.ThreadId()] : {ident};
  tmp = val;
  return tmp;
}}

// ---- Figure 3(b): two-step shared atomic (VA2) ----------------------------
__codelet __coop __tag(shared_v2)
{ctype} reduce(const Array<1,{ctype}> in) {{
  Vector vthread();
  __shared {qualifier} {ctype} partial;
  __shared {ctype} tmp[in.Size()];
  {ctype} val = {ident};
  val = (vthread.ThreadId() < in.Size()) ? in[vthread.ThreadId()] : {ident};
  tmp[vthread.ThreadId()] = val;
  for (int offset = vthread.MaxSize() / 2; offset > 0; offset /= 2) {{
    {tree_step}
    tmp[vthread.ThreadId()] = val;
  }}
  if (in.Size() != vthread.MaxSize() && in.Size() / vthread.MaxSize() > 0) {{
    if (vthread.LaneId() == 0) {{
      partial = val;
    }}
    if (vthread.VectorId() == 0) {{
      val = partial;
    }}
  }}
  return val;
}}
"""


def load_reduction_program(op: str = "add", ctype: str = "float") -> AnalyzedProgram:
    """Parse + analyze the reduction spectrum for one (op, element type)."""
    text = reduction_source(op=op, ctype=ctype)
    return analyze_source(text, name=f"reduce_{op}_{ctype}.tgm")
