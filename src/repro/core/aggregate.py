"""AST pass: warp-aggregated atomics (the paper's Section III-D
extension, citing Adinets' warp-aggregated atomics [25]).

"The code variants with atomic and warp shuffle instructions can be
further extended ... For example, aggregate atomics [25] could be
supported through the atomic APIs and qualifiers described in Sections
III-A and III-B with new AST passes and transformations."

This pass implements that future-work item. For an
:class:`~repro.lang.ast.AtomicUpdate` on a *scalar* shared accumulator
that every thread executes (warp-uniform — i.e. not nested inside
divergent control flow), the update is rewritten into:

1. a warp-level shuffle reduction of the contribution, and
2. a single atomic update issued by lane 0 of each warp,

cutting same-address atomic traffic by the warp width. On Kepler —
whose shared atomics are a software lock loop — this is exactly the
trick library developers used to avoid shared atomics [25]; the
ablation bench quantifies it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang import ast
from ..lang.errors import TransformError

_WARP = 32


@dataclass
class AggregateResult:
    codelet: ast.Codelet
    rewrites: int = 0


def _find_vector_name(codelet: ast.Codelet):
    for node in ast.walk(codelet):
        if isinstance(node, ast.VarDecl) and str(node.declared_type) == "Vector":
            return node.name
    return None


def _combine_stmt(op: str, accumulator: str, shuffle: ast.WarpShuffle) -> ast.Stmt:
    if op in ("add", "sub"):
        # subtraction aggregates contributions additively; the single
        # atomicSub then applies the warp total
        return ast.Assign(
            target=ast.Ident(name=accumulator), op="+=", value=shuffle
        )
    if op in ("max", "min"):
        return ast.Assign(
            target=ast.Ident(name=accumulator),
            op="=",
            value=ast.Call(name=op, args=[ast.Ident(name=accumulator), shuffle]),
        )
    raise TransformError(f"cannot aggregate atomic op {op!r}")


def _build_aggregation(update: ast.AtomicUpdate, vector: str, index: int) -> list:
    """Statements replacing one warp-uniform AtomicUpdate."""
    agg_name = f"__agg{index}"
    offset_name = f"__agg_off{index}"
    decl = ast.VarDecl(
        name=agg_name,
        declared_type=update.value.ty if update.value.ty else None,
        init=update.value,
        span=update.span,
    )
    # shared scalar contributions are float/int scalars; default to the
    # value's inferred type, falling back to float
    if decl.declared_type is None or not decl.declared_type.is_scalar():
        from ..lang.types import FLOAT

        decl.declared_type = FLOAT

    shuffle = ast.WarpShuffle(
        value=ast.Ident(name=agg_name),
        offset=ast.Ident(name=offset_name),
        direction="down",
        width=_WARP,
    )
    loop = ast.For(
        init=ast.VarDecl(
            name=offset_name,
            declared_type=_int_type(),
            init=ast.IntLiteral(value=_WARP // 2),
        ),
        cond=ast.Binary(op=">", lhs=ast.Ident(name=offset_name),
                        rhs=ast.IntLiteral(value=0)),
        step=ast.Assign(target=ast.Ident(name=offset_name), op="/=",
                        value=ast.IntLiteral(value=2)),
        body=ast.Block(stmts=[_combine_stmt(update.op, agg_name, shuffle)]),
        span=update.span,
    )
    lane_is_zero = ast.Binary(
        op="==",
        lhs=ast.MethodCall(obj=ast.Ident(name=vector), method="LaneId"),
        rhs=ast.IntLiteral(value=0),
    )
    leader_update = ast.AtomicUpdate(
        target=update.target,
        op=update.op,
        value=ast.Ident(name=agg_name),
        space=update.space,
        scope=update.scope,
        span=update.span,
    )
    guard = ast.If(cond=lane_is_zero, then=ast.Block(stmts=[leader_update]))
    return [decl, loop, guard]


def _int_type():
    from ..lang.types import INT

    return INT


def apply_warp_aggregation(codelet: ast.Codelet) -> AggregateResult:
    """Return a transformed **clone** with warp-uniform scalar atomic
    updates aggregated per warp. The input codelet is untouched."""
    clone = codelet.clone()
    vector = _find_vector_name(clone)
    if vector is None:
        return AggregateResult(codelet=clone, rewrites=0)

    rewrites = 0
    body = clone.body.stmts
    new_body = []
    for stmt in body:
        if _is_uniform_scalar_atomic(stmt):
            new_body.extend(_build_aggregation(stmt, vector, rewrites))
            rewrites += 1
        else:
            new_body.append(stmt)
    clone.body.stmts = new_body
    return AggregateResult(codelet=clone, rewrites=rewrites)


def _is_uniform_scalar_atomic(stmt: ast.Stmt) -> bool:
    """Only *top-level* updates to a scalar accumulator are warp-uniform:
    anything nested in control flow may be divergent, and array targets
    (histograms) hit different addresses per lane."""
    return isinstance(stmt, ast.AtomicUpdate) and isinstance(
        stmt.target, ast.Ident
    )
