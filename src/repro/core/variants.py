"""Code-version enumeration and the Figure 6 catalog.

A *version* composes codelets across the GPU software hierarchy
(Section IV-B):

* **grid level** — a distribute codelet (tiled or strided access
  pattern) whose per-block partials are combined either with a global
  atomic (``DT,A`` / ``DS,A``) or by launching a second kernel;
* **block level** — either a cooperative codelet
  (V / VS / VA1 / VA2 / VA2S) processing one block's elements directly,
  or a compound codelet distributing to threads (tiled or strided) with
  a serial scalar codelet per thread;
* **thread level** — the scalar codelet (compound block only), whose
  per-thread partials are combined by one of the cooperative codelets.

Enumerating all compositions gives **60** versions; the paper reports 89
(its enumeration includes compositions internal to Tangram we do not
model — see EXPERIMENTS.md). Applying the paper's pruning rule — drop
every version that needs a second kernel launch for per-block partials —
leaves exactly **30** versions, all using global atomics for the final
combine, matching the paper's pruned count.

The 16 versions of Figure 6 are pinned as labels ``a``–``p``; the
paper's 8 best-performing versions are ``{a, b, c, e, k, m, n, p}``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang.errors import SynthesisError
from .pipeline import COOP_KEYS, EXTENSION_COOP_KEYS

ALL_COOP_KEYS = COOP_KEYS + EXTENSION_COOP_KEYS

GRID_PATTERNS = ("tile", "stride")
FINAL_COMBINES = ("global_atomic", "second_kernel")
BLOCK_PATTERNS = ("tile", "stride")


@dataclass(frozen=True)
class Version:
    """One synthesizable code version (a column of Figure 6)."""

    grid_pattern: str  # tile | stride
    final_combine: str  # global_atomic | second_kernel
    block_kind: str  # coop | compound
    combine: str  # coop key: block codelet (coop) or partials combiner
    block_pattern: str = None  # tile | stride, compound only

    def __post_init__(self):
        if self.grid_pattern not in GRID_PATTERNS:
            raise SynthesisError(f"bad grid pattern {self.grid_pattern!r}")
        if self.final_combine not in FINAL_COMBINES:
            raise SynthesisError(f"bad final combine {self.final_combine!r}")
        if self.combine not in ALL_COOP_KEYS:
            raise SynthesisError(f"bad cooperative key {self.combine!r}")
        if self.block_kind == "compound":
            if self.block_pattern not in BLOCK_PATTERNS:
                raise SynthesisError(
                    f"compound version needs a block pattern, got "
                    f"{self.block_pattern!r}"
                )
        elif self.block_kind == "coop":
            if self.block_pattern is not None:
                raise SynthesisError("coop version takes no block pattern")
        else:
            raise SynthesisError(f"bad block kind {self.block_kind!r}")

    @property
    def identifier(self) -> str:
        grid = "DT" if self.grid_pattern == "tile" else "DS"
        if self.final_combine == "global_atomic":
            grid += ",A"
        if self.block_kind == "coop":
            return f"{grid} / {self.combine}"
        block = "DT" if self.block_pattern == "tile" else "DS"
        return f"{grid} / {block}+S / {self.combine}"

    @property
    def uses_global_atomic(self) -> bool:
        return self.final_combine == "global_atomic"

    @property
    def uses_shared_atomic(self) -> bool:
        return self.combine in ("VA1", "VA2", "VA2S", "VA1A")

    @property
    def uses_shuffle(self) -> bool:
        return self.combine in ("VS", "VA2S", "VA1A")

    @property
    def num_kernels(self) -> int:
        return 1 if self.final_combine == "global_atomic" else 2


def enumerate_versions(include_second_kernel: bool = True) -> list:
    """The full composition space (60 versions; 30 after pruning)."""
    versions = []
    finals = FINAL_COMBINES if include_second_kernel else ("global_atomic",)
    for grid in GRID_PATTERNS:
        for final in finals:
            for coop in COOP_KEYS:
                versions.append(
                    Version(
                        grid_pattern=grid,
                        final_combine=final,
                        block_kind="coop",
                        combine=coop,
                    )
                )
            for block in BLOCK_PATTERNS:
                for coop in COOP_KEYS:
                    versions.append(
                        Version(
                            grid_pattern=grid,
                            final_combine=final,
                            block_kind="compound",
                            block_pattern=block,
                            combine=coop,
                        )
                    )
    return versions


def prune_versions(versions: list) -> list:
    """The paper's pruning rule (Section IV-B): remove every version that
    requires a second CUDA kernel for the reduction of per-block sums."""
    return [v for v in versions if v.final_combine == "global_atomic"]


def original_tangram_versions() -> list:
    """Versions expressible before this paper's extensions: no atomics,
    no shuffles — so per-block partials need the second kernel and the
    only cooperative codelet is the tree-based V."""
    return [
        v
        for v in enumerate_versions()
        if v.final_combine == "second_kernel" and v.combine == "V"
    ]


def search_space_summary() -> dict:
    """Counts used by the search-space table (Section IV-B)."""
    everything = enumerate_versions()
    pruned = prune_versions(everything)
    original = original_tangram_versions()
    global_atomic_only = [
        v
        for v in everything
        if v.uses_global_atomic and not v.uses_shared_atomic and not v.uses_shuffle
    ]
    shared_atomic = [v for v in everything if v.uses_shared_atomic]
    shuffle = [v for v in everything if v.uses_shuffle]
    return {
        "total": len(everything),
        "original": len(original),
        "with_global_atomics_only": len(global_atomic_only),
        "with_shared_atomics": len(shared_atomic),
        "with_shuffle": len(shuffle),
        "pruned_total": len(pruned),
        "pruned_all_use_global_atomics": all(
            v.uses_global_atomic for v in pruned
        ),
    }


def _v(grid, block_pattern, combine) -> Version:
    if block_pattern is None:
        return Version(
            grid_pattern=grid,
            final_combine="global_atomic",
            block_kind="coop",
            combine=combine,
        )
    return Version(
        grid_pattern=grid,
        final_combine="global_atomic",
        block_kind="compound",
        block_pattern=block_pattern,
        combine=combine,
    )


#: The 16 named versions of Figure 6 (see DESIGN.md for the mapping).
FIG6 = {
    "a": _v("tile", "stride", "V"),
    "b": _v("tile", "stride", "VS"),
    "c": _v("tile", "stride", "VA2"),
    "d": _v("tile", "stride", "VA1"),
    "e": _v("tile", "stride", "VA2S"),
    "f": _v("tile", "tile", "V"),
    "g": _v("tile", "tile", "VS"),
    "h": _v("tile", "tile", "VA1"),
    "i": _v("tile", "tile", "VA2"),
    "j": _v("tile", "tile", "VA2S"),
    "k": _v("stride", "stride", "VA2"),
    "l": _v("tile", None, "V"),
    "m": _v("tile", None, "VS"),
    "n": _v("tile", None, "VA1"),
    "o": _v("tile", None, "VA2"),
    "p": _v("tile", None, "VA2S"),
}

#: The paper's 8 best-performing versions (colored in Figure 6).
BEST8 = frozenset("abcekmnp")


def fig6_label(version: Version):
    """Reverse lookup: the Figure 6 label of a version, or ``None``."""
    for label, entry in FIG6.items():
        if entry == version:
            return label
    return None
