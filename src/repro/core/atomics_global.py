"""AST pass: atomic instructions on global memory (Section III-A).

A compound codelet may contain both a Map atomic API call
(``map.atomicAdd();``) and a non-atomic spectrum call (``reduce(map)``)
— they are mutually exclusive alternatives (Figure 1(b) lines 10–11).
This pass generates the two variants:

* **non-atomic** (Listing 1): drop the atomic API call; partial results
  go to a per-partition array and a second spectrum call combines them;
* **atomic** (Listing 2): check that the spectrum call applies *the same
  computation* as the atomic API; if so, disable the spectrum call — the
  partial results are accumulated into a single location with
  ``atomicAdd``/``atomicAdd_block``. If the computations differ, the
  spectrum call is left in place (the paper's rule).

The module also derives the metadata lowering needs from a compound
codelet: the partition access pattern (tiled or strided, read off the
``Sequence`` generator expressions) and the spectrum's reduction
operator (inferred from the atomic-autonomous codelet's accumulate
statement).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang import AnalyzedProgram, CodeletInfo, PARTITION_INDEX_NAME, ast
from ..lang.errors import TransformError


@dataclass
class GlobalAtomicResult:
    codelet: ast.Codelet
    atomic: bool
    map_name: str
    atomic_op: str = None
    spectrum_disabled: bool = False
    pattern: str = None  # tile | stride


def infer_reduction_op(analyzed: AnalyzedProgram, spectrum: str) -> str:
    """The reduction operator a spectrum computes.

    Read from the atomic-autonomous codelet's accumulate statement:
    ``accum += x`` → add, ``accum -= x`` → sub,
    ``accum = max(accum, x)`` → max, ... .
    """
    for info in analyzed.spectrum(spectrum):
        if info.kind != "atomic_autonomous":
            continue
        op = _accumulate_op(info.codelet)
        if op is not None:
            return op
    raise TransformError(
        f"cannot infer the reduction operator of spectrum {spectrum!r}: "
        f"no atomic-autonomous codelet with a recognizable accumulate"
    )


def _accumulate_op(codelet: ast.Codelet):
    accumulator = _returned_name(codelet)
    if accumulator is None:
        return None
    for node in ast.walk(codelet):
        if not isinstance(node, ast.Assign):
            continue
        if not (
            isinstance(node.target, ast.Ident) and node.target.name == accumulator
        ):
            continue
        if node.op == "+=":
            return "add"
        if node.op == "-=":
            return "sub"
        if (
            node.op == "="
            and isinstance(node.value, ast.Call)
            and node.value.name in ("max", "min")
            and node.value.args
            and isinstance(node.value.args[0], ast.Ident)
            and node.value.args[0].name == accumulator
        ):
            return node.value.name
    return None


def _returned_name(codelet: ast.Codelet):
    for node in ast.walk(codelet):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Ident):
            return node.value.name
    return None


def classify_partition(info: CodeletInfo, map_index: int = 0) -> str:
    """Read the access pattern off the Sequence generators (Figure 1(b)).

    ``inc(1)`` means consecutive elements per sub-container → **tile**;
    ``inc(p)`` (the partition count) means interleaved → **stride**.
    """
    if not info.maps:
        raise TransformError(
            f"codelet {info.display_name!r} is not compound (no Map)"
        )
    map_info = info.maps[map_index]
    args = map_info.partition.args
    count_arg = args[1]
    inc_arg = args[3]
    if not isinstance(inc_arg, ast.Ident):
        raise TransformError(
            "partition() inc argument must name a Sequence", inc_arg.span
        )
    inc_decl = info.sequences.get(inc_arg.name)
    if inc_decl is None:
        raise TransformError(
            f"unknown Sequence {inc_arg.name!r} in partition()", inc_arg.span
        )
    inc_expr = inc_decl.ctor_args[0]
    if isinstance(inc_expr, ast.IntLiteral) and inc_expr.value == 1:
        return "tile"
    if (
        isinstance(inc_expr, ast.Ident)
        and isinstance(count_arg, ast.Ident)
        and inc_expr.name == count_arg.name
    ):
        return "stride"
    raise TransformError(
        f"unsupported Sequence increment {ast.dump(inc_expr)!r}; expected 1 "
        f"(tiled) or the partition count (strided)",
        inc_expr.span,
    )


def sequence_is_partition_index(info: CodeletInfo, name: str) -> bool:
    """True when a Sequence is just ``Sequence s(i)`` (the strided start)."""
    decl = info.sequences.get(name)
    if decl is None:
        return False
    expr = decl.ctor_args[0]
    return isinstance(expr, ast.Ident) and expr.name == PARTITION_INDEX_NAME


def apply_global_atomic(
    info: CodeletInfo, analyzed: AnalyzedProgram, atomic: bool
) -> GlobalAtomicResult:
    """Generate the atomic or non-atomic variant of a compound codelet.

    Returns a transformed **clone**; the original codelet is untouched.
    """
    if not info.maps:
        raise TransformError(
            f"codelet {info.display_name!r} has no Map to transform"
        )
    if len(info.maps) != 1:
        raise TransformError(
            f"codelet {info.display_name!r}: exactly one Map is supported"
        )
    map_info = info.maps[0]
    pattern = classify_partition(info)
    clone = info.codelet.clone()

    if not atomic:
        removed = _remove_atomic_api_calls(clone, map_info.decl.name)
        if map_info.atomic_op is not None and removed == 0:
            raise TransformError(
                f"failed to drop atomic API call on Map {map_info.decl.name!r}"
            )
        return GlobalAtomicResult(
            codelet=clone,
            atomic=False,
            map_name=map_info.decl.name,
            atomic_op=None,
            spectrum_disabled=False,
            pattern=pattern,
        )

    if map_info.atomic_op is None:
        raise TransformError(
            f"codelet {info.display_name!r} has no Map atomic API call; "
            f"cannot generate the atomic variant"
        )
    spectrum_op = infer_reduction_op(analyzed, map_info.spectrum)
    same_computation = spectrum_op == map_info.atomic_op
    disabled = False
    if same_computation:
        disabled = _disable_spectrum_calls_on_map(
            clone, map_info.spectrum, map_info.decl.name
        )
    return GlobalAtomicResult(
        codelet=clone,
        atomic=True,
        map_name=map_info.decl.name,
        atomic_op=map_info.atomic_op,
        spectrum_disabled=disabled,
        pattern=pattern,
    )


_MAP_ATOMIC_METHODS = ("atomicAdd", "atomicSub", "atomicMax", "atomicMin")


class _AtomicApiRemover(ast.NodeTransformer):
    def __init__(self, map_name: str):
        self.map_name = map_name
        self.removed = 0

    def visit_ExprStmt(self, node: ast.ExprStmt):
        expr = node.expr
        if (
            isinstance(expr, ast.MethodCall)
            and expr.method in _MAP_ATOMIC_METHODS
            and isinstance(expr.obj, ast.Ident)
            and expr.obj.name == self.map_name
        ):
            self.removed += 1
            return None
        return node


def _remove_atomic_api_calls(codelet: ast.Codelet, map_name: str) -> int:
    remover = _AtomicApiRemover(map_name)
    remover.visit(codelet)
    return remover.removed


class _SpectrumCallDisabler(ast.NodeTransformer):
    """Replace ``return reduce(map)`` with ``return map`` — the partials
    are already combined atomically, so the result *is* the accumulator
    (Listing 2's single-variable allocation)."""

    def __init__(self, spectrum: str, map_name: str):
        self.spectrum = spectrum
        self.map_name = map_name
        self.disabled = 0

    def visit_Return(self, node: ast.Return):
        value = node.value
        if (
            isinstance(value, ast.Call)
            and value.name == self.spectrum
            and len(value.args) == 1
            and isinstance(value.args[0], ast.Ident)
            and value.args[0].name == self.map_name
        ):
            self.disabled += 1
            node.value = ast.Ident(name=self.map_name, span=value.span)
        return node


def _disable_spectrum_calls_on_map(
    codelet: ast.Codelet, spectrum: str, map_name: str
) -> bool:
    disabler = _SpectrumCallDisabler(spectrum, map_name)
    disabler.visit(codelet)
    return disabler.disabled > 0
