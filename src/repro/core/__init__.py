"""The paper's contribution: AST passes and code-variant generation."""

from .atomics_global import (
    GlobalAtomicResult,
    apply_global_atomic,
    classify_partition,
    infer_reduction_op,
)
from .atomics_shared import SharedAtomicResult, apply_shared_atomics
from .pipeline import (
    COOP_KEYS,
    CompoundVariants,
    CoopVariant,
    PreprocessResult,
    preprocess,
)
from .aggregate import AggregateResult, apply_warp_aggregation
from .shuffle import ShuffleMatch, ShuffleResult, apply_shuffle, detect_shuffle_loops
from .unroll import UnrollResult, apply_unroll
from .sources import (
    LIBRARY_OPS,
    REDUCTION_OPS,
    identity_literal,
    identity_value,
    load_reduction_program,
    reduction_source,
)
from .variants import (
    BEST8,
    FIG6,
    Version,
    enumerate_versions,
    fig6_label,
    original_tangram_versions,
    prune_versions,
    search_space_summary,
)

__all__ = [
    "AggregateResult",
    "BEST8",
    "COOP_KEYS",
    "CompoundVariants",
    "CoopVariant",
    "FIG6",
    "GlobalAtomicResult",
    "LIBRARY_OPS",
    "PreprocessResult",
    "REDUCTION_OPS",
    "SharedAtomicResult",
    "ShuffleMatch",
    "ShuffleResult",
    "UnrollResult",
    "Version",
    "apply_global_atomic",
    "apply_unroll",
    "apply_warp_aggregation",
    "apply_shared_atomics",
    "apply_shuffle",
    "classify_partition",
    "detect_shuffle_loops",
    "enumerate_versions",
    "fig6_label",
    "identity_literal",
    "identity_value",
    "infer_reduction_op",
    "load_reduction_program",
    "original_tangram_versions",
    "preprocess",
    "prune_versions",
    "reduction_source",
    "search_space_summary",
]
