"""Hand-written baseline reductions: CUB-like and Kokkos-like."""

from .cub import CUB_HOST_OVERHEAD_S, build_cub_plan, cub_grid
from .kokkos import build_kokkos_plan

__all__ = ["CUB_HOST_OVERHEAD_S", "build_cub_plan", "build_kokkos_plan", "cub_grid"]
