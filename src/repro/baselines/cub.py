"""CUB-like hand-written reduction baseline (Section IV-A).

Models NVIDIA CUB 1.8's ``DeviceReduce``: a fixed two-kernel pipeline —
a tiled reduction kernel with **vectorized (float4) loads** [37] feeding
a single-tile kernel that combines the per-block partials — plus the
per-call temp-storage management on the host.

Behavioural properties the paper observes, encoded here structurally:

* bandwidth optimizations for large arrays (vector loads → the
  ``vector`` DRAM-efficiency tier and 4× fewer load instructions);
* **no special casing for small arrays**: always two kernel launches and
  the same host-side temp-storage handling, which is why CUB loses to
  the single-kernel Tangram variants below ~1M elements (Figures 7-10);
* a fixed launch configuration (256 threads, even-share grid capped at
  ``_GRID_CAP``).

``CUB_HOST_OVERHEAD_S`` models the per-call temp-storage query/allocation
cost included in the paper's CUB timings — without a flat host-side cost
of this magnitude the paper's reported 2-6x medium-size speedups are not
reproducible from launch overheads alone (see EXPERIMENTS.md).
"""

from __future__ import annotations

from ..vir import IRBuilder, Imm, Kernel, KernelStep, Plan, SharedDecl
from .common import combine_op, emit_block_tree_reduce, identity_of

_BLOCK = 256
_ITEMS_PER_THREAD = 4  # one float4 per iteration
_GRID_CAP = 512

#: Host-side temp-storage management per DeviceReduce call (seconds).
CUB_HOST_OVERHEAD_S = 20e-6


def cub_grid(n: int) -> int:
    per_block = _BLOCK * _ITEMS_PER_THREAD
    return max(1, min(_GRID_CAP, -(-n // per_block)))


def _build_upsweep_kernel(op: str) -> Kernel:
    """Kernel 1: vectorized grid-stride accumulate + block tree reduce."""
    b = IRBuilder()
    tid = b.special("tid")
    ctaid = b.special("ctaid")
    ntid = b.special("ntid")
    nctaid = b.special("nctaid")
    n = b.ld_param("n")
    n4 = b.ld_param("n4")  # number of whole float4s

    gid = b.binop("add", b.binop("mul", ctaid, ntid), tid)
    gsize = b.binop("mul", ntid, nctaid)
    acc = b.mov(Imm(identity_of(op)))

    # vectorized main loop: thread handles float4 number i
    i = b.mov(gid)
    cond = b.fresh("vec_c")
    loop = b.while_(cond)
    with loop.cond:
        b.binop("lt", i, n4, dst=cond)
    with loop.body:
        base = b.binop("mul", i, Imm(4))
        lanes = b.ld_global_vec("in", base, width=4)
        for value in lanes:
            b.binop(combine_op(op), acc, value, dst=acc)
        b.binop("add", i, gsize, dst=i)

    # scalar tail: elements [4*n4, n)
    tail_start = b.binop("mul", n4, Imm(4))
    j = b.binop("add", tail_start, gid)
    cond2 = b.fresh("tail_c")
    loop2 = b.while_(cond2)
    with loop2.cond:
        b.binop("lt", j, n, dst=cond2)
    with loop2.body:
        value = b.ld_global("in", j)
        b.binop(combine_op(op), acc, value, dst=acc)
        b.binop("add", j, gsize, dst=j)

    total = emit_block_tree_reduce(b, acc, _BLOCK, "smem", op)
    is_zero = b.binop("eq", tid, 0)
    with b.if_(is_zero):
        b.st_global("partials", ctaid, total)
    return Kernel(
        name="cub_device_reduce",
        params=["n", "n4"],
        buffers=["in", "partials"],
        shared=[SharedDecl("smem", _BLOCK)],
        body=b.finish(),
        meta={"load_pattern": "vector", "baseline": "cub"},
    )


def _build_single_tile_kernel(op: str) -> Kernel:
    """Kernel 2: one block combines the per-block partials."""
    b = IRBuilder()
    tid = b.special("tid")
    count = b.ld_param("count")
    acc = b.mov(Imm(identity_of(op)))
    i = b.mov(tid)
    cond = b.fresh("st_c")
    loop = b.while_(cond)
    with loop.cond:
        b.binop("lt", i, count, dst=cond)
    with loop.body:
        value = b.ld_global("partials", i)
        b.binop(combine_op(op), acc, value, dst=acc)
        b.binop("add", i, Imm(_BLOCK), dst=i)
    total = emit_block_tree_reduce(b, acc, _BLOCK, "smem", op)
    is_zero = b.binop("eq", tid, 0)
    with b.if_(is_zero):
        b.st_global("out", 0, total)
    return Kernel(
        name="cub_single_tile",
        params=["count"],
        buffers=["partials", "out"],
        shared=[SharedDecl("smem", _BLOCK)],
        body=b.finish(),
        meta={"load_pattern": "vector", "baseline": "cub"},
    )


def build_cub_plan(n: int, op: str = "add") -> Plan:
    """The full CUB-like DeviceReduce plan for n elements."""
    if n < 1:
        raise ValueError(f"reduction needs n >= 1, got {n}")
    grid = cub_grid(n)
    upsweep = _build_upsweep_kernel(op)
    single = _build_single_tile_kernel(op)
    steps = [
        KernelStep(
            upsweep,
            grid=grid,
            block=_BLOCK,
            args={"n": n, "n4": n // 4},
            buffers={"in": "in", "partials": "partials"},
        ),
        KernelStep(
            single,
            grid=1,
            block=_BLOCK,
            args={"count": grid},
            buffers={"partials": "partials", "out": "out"},
        ),
    ]
    plan = Plan(
        name="cub_device_reduce",
        steps=steps,
        scratch={"partials": grid, "out": 1},
        result_buffer="out",
        meta={
            "dtype": "float32",
            "baseline": "cub",
            "op": op,
            "n": n,
            "host_overhead_s": CUB_HOST_OVERHEAD_S,
        },
    )
    plan.validate()
    return plan
