"""Kokkos-like staged reduction baseline (Section IV-A).

Models the Kokkos GPU-backend ``parallel_reduce`` behaviour the paper
profiles (Section IV-C-2): **multiple kernels**, where "the most
time-consuming kernel is compute-bound, not memory-bound ... The Kokkos
code works by staging memory accesses for the main kernel through other
sister kernels." We encode that structure:

* kernel 1 (*stage*) — a sister kernel that streams the input with wide
  vector accesses into per-block partials (the staging pass; it moves
  the bytes at near-peak efficiency → the ``staged`` DRAM tier);
* kernel 2 (*main*) — the compute-bound combine over staged partials;
* kernel 3 (*finalize*) — a tiny kernel publishing the scalar result.

Three launches make Kokkos slow for small arrays (visible at the bottom
of Figures 8-10) while the staged bandwidth makes it the fastest code
beyond ~10M elements (2-3x over CUB in the paper).
"""

from __future__ import annotations

from ..vir import IRBuilder, Imm, Kernel, KernelStep, Plan, SharedDecl
from .common import combine_op, emit_block_tree_reduce, identity_of

_BLOCK = 256
_GRID = 256
_VECTOR_WIDTH = 4


def _build_stage_kernel(op: str) -> Kernel:
    b = IRBuilder()
    tid = b.special("tid")
    ctaid = b.special("ctaid")
    ntid = b.special("ntid")
    nctaid = b.special("nctaid")
    n = b.ld_param("n")
    n4 = b.ld_param("n4")

    gid = b.binop("add", b.binop("mul", ctaid, ntid), tid)
    gsize = b.binop("mul", ntid, nctaid)
    acc = b.mov(Imm(identity_of(op)))

    i = b.mov(gid)
    cond = b.fresh("kst_c")
    loop = b.while_(cond)
    with loop.cond:
        b.binop("lt", i, n4, dst=cond)
    with loop.body:
        base = b.binop("mul", i, Imm(_VECTOR_WIDTH))
        lanes = b.ld_global_vec("in", base, width=_VECTOR_WIDTH)
        for value in lanes:
            b.binop(combine_op(op), acc, value, dst=acc)
        b.binop("add", i, gsize, dst=i)

    tail_start = b.binop("mul", n4, Imm(_VECTOR_WIDTH))
    j = b.binop("add", tail_start, gid)
    cond2 = b.fresh("ktl_c")
    loop2 = b.while_(cond2)
    with loop2.cond:
        b.binop("lt", j, n, dst=cond2)
    with loop2.body:
        value = b.ld_global("in", j)
        b.binop(combine_op(op), acc, value, dst=acc)
        b.binop("add", j, gsize, dst=j)

    total = emit_block_tree_reduce(b, acc, _BLOCK, "smem", op)
    is_zero = b.binop("eq", tid, 0)
    with b.if_(is_zero):
        b.st_global("staged", ctaid, total)
    return Kernel(
        name="kokkos_stage",
        params=["n", "n4"],
        buffers=["in", "staged"],
        shared=[SharedDecl("smem", _BLOCK)],
        body=b.finish(),
        meta={"load_pattern": "staged", "baseline": "kokkos"},
    )


def _build_main_kernel(op: str) -> Kernel:
    """Compute-bound combine of the staged per-block partials."""
    b = IRBuilder()
    tid = b.special("tid")
    count = b.ld_param("count")
    acc = b.mov(Imm(identity_of(op)))
    i = b.mov(tid)
    cond = b.fresh("km_c")
    loop = b.while_(cond)
    with loop.cond:
        b.binop("lt", i, count, dst=cond)
    with loop.body:
        value = b.ld_global("staged", i)
        b.binop(combine_op(op), acc, value, dst=acc)
        b.binop("add", i, Imm(_BLOCK), dst=i)
    total = emit_block_tree_reduce(b, acc, _BLOCK, "smem", op)
    is_zero = b.binop("eq", tid, 0)
    with b.if_(is_zero):
        b.st_global("mid", 0, total)
    return Kernel(
        name="kokkos_main",
        params=["count"],
        buffers=["staged", "mid"],
        shared=[SharedDecl("smem", _BLOCK)],
        body=b.finish(),
        meta={"load_pattern": "staged", "baseline": "kokkos"},
    )


def _build_finalize_kernel() -> Kernel:
    b = IRBuilder()
    tid = b.special("tid")
    is_zero = b.binop("eq", tid, 0)
    with b.if_(is_zero):
        value = b.ld_global("mid", 0)
        b.st_global("out", 0, value)
    return Kernel(
        name="kokkos_finalize",
        params=[],
        buffers=["mid", "out"],
        shared=[],
        body=b.finish(),
        meta={"load_pattern": "staged", "baseline": "kokkos"},
    )


def build_kokkos_plan(n: int, op: str = "add") -> Plan:
    """The Kokkos-like three-kernel parallel_reduce plan."""
    if n < 1:
        raise ValueError(f"reduction needs n >= 1, got {n}")
    stage = _build_stage_kernel(op)
    main = _build_main_kernel(op)
    finalize = _build_finalize_kernel()
    steps = [
        KernelStep(
            stage,
            grid=_GRID,
            block=_BLOCK,
            args={"n": n, "n4": n // _VECTOR_WIDTH},
            buffers={"in": "in", "staged": "staged"},
        ),
        KernelStep(
            main,
            grid=1,
            block=_BLOCK,
            args={"count": _GRID},
            buffers={"staged": "staged", "mid": "mid"},
        ),
        KernelStep(
            finalize,
            grid=1,
            block=32,
            args={},
            buffers={"mid": "mid", "out": "out"},
        ),
    ]
    plan = Plan(
        name="kokkos_parallel_reduce",
        steps=steps,
        scratch={"staged": _GRID, "mid": 1, "out": 1},
        result_buffer="out",
        meta={"dtype": "float32", "baseline": "kokkos", "op": op, "n": n},
    )
    plan.validate()
    return plan
