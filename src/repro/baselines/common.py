"""Shared VIR emission helpers for the hand-written baseline kernels."""

from __future__ import annotations

from ..vir import IRBuilder, Imm, Reg

_COMBINE = {"add": "add", "max": "max", "min": "min"}


def combine_op(op: str) -> str:
    if op not in _COMBINE:
        raise ValueError(f"baselines support add/max/min, got {op!r}")
    return _COMBINE[op]


def identity_of(op: str) -> float:
    if op == "add":
        return 0.0
    if op == "max":
        return -3.402823e38
    return 3.402823e38


def emit_block_tree_reduce(
    b: IRBuilder, value: Reg, block: int, smem: str, op: str = "add"
) -> Reg:
    """Classic shared-memory tree reduction of one value per thread.

    Assumes a shared buffer ``smem`` of ``block`` elements was declared.
    Returns a register that holds the block total in thread 0.
    """
    tid = b.special("tid")
    b.st_shared(smem, tid, value)
    b.bar()
    offset = b.mov(Imm(block // 2))
    cond = b.fresh("tree_c")
    loop = b.while_(cond)
    with loop.cond:
        b.binop("gt", offset, 0, dst=cond)
    with loop.body:
        take = b.binop("lt", tid, offset)
        with b.if_(take):
            other_idx = b.binop("add", tid, offset)
            other = b.ld_shared(smem, other_idx)
            mine = b.ld_shared(smem, tid)
            merged = b.binop(combine_op(op), mine, other)
            b.st_shared(smem, tid, merged)
        b.bar()
        b.binop("div", offset, 2, dst=offset)
    return b.ld_shared(smem, 0)


def emit_serial_strided_reduce(
    b: IRBuilder,
    buf: str,
    start: Reg,
    stride,
    limit,
    op: str = "add",
    identity: float = None,
) -> Reg:
    """Grid-stride serial accumulation: ``for (i = start; i < limit; i += stride)``."""
    acc = b.mov(Imm(identity if identity is not None else identity_of(op)))
    i = b.mov(start)
    cond = b.fresh("ser_c")
    loop = b.while_(cond)
    with loop.cond:
        b.binop("lt", i, limit, dst=cond)
    with loop.body:
        value = b.ld_global(buf, i)
        b.binop(combine_op(op), acc, value, dst=acc)
        b.binop("add", i, stride, dst=i)
    return acc
