"""Code generation: codelet→VIR lowering, kernel synthesis, CUDA emission."""

from .compiler import CodeletToVIR, GlobalView, RegisterPartials
from .cuda import CudaEmitter, emit_compound_pair, emit_coop_kernel, emit_version
from .synthesize import Tunables, build_plan, launch_geometry

__all__ = [
    "CodeletToVIR",
    "CudaEmitter",
    "GlobalView",
    "RegisterPartials",
    "Tunables",
    "build_plan",
    "emit_compound_pair",
    "emit_coop_kernel",
    "emit_version",
    "launch_geometry",
]
