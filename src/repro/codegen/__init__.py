"""Code generation: codelet→VIR lowering, kernel synthesis, CUDA emission."""

from .compiler import CodeletToVIR, GlobalView, RegisterPartials
from .cuda import CudaEmitter, emit_compound_pair, emit_coop_kernel, emit_version
from .segmented import (
    SegmentLayout,
    build_segmented_plan,
    build_segmented_plan_cached,
    execute_segmented_plan,
    segment_layout,
    segmented_plan_key,
)
from .synthesize import (
    Tunables,
    build_plan,
    build_plan_cached,
    launch_geometry,
    plan_key,
)

__all__ = [
    "CodeletToVIR",
    "CudaEmitter",
    "GlobalView",
    "RegisterPartials",
    "SegmentLayout",
    "Tunables",
    "build_plan",
    "build_plan_cached",
    "build_segmented_plan",
    "build_segmented_plan_cached",
    "emit_compound_pair",
    "emit_coop_kernel",
    "emit_version",
    "execute_segmented_plan",
    "launch_geometry",
    "plan_key",
    "segment_layout",
    "segmented_plan_key",
]
