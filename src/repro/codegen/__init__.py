"""Code generation: codelet→VIR lowering, kernel synthesis, CUDA emission."""

from .compiler import CodeletToVIR, GlobalView, RegisterPartials
from .cuda import CudaEmitter, emit_compound_pair, emit_coop_kernel, emit_version
from .synthesize import (
    Tunables,
    build_plan,
    build_plan_cached,
    launch_geometry,
    plan_key,
)

__all__ = [
    "CodeletToVIR",
    "CudaEmitter",
    "GlobalView",
    "RegisterPartials",
    "Tunables",
    "build_plan",
    "build_plan_cached",
    "emit_compound_pair",
    "emit_coop_kernel",
    "emit_version",
    "launch_geometry",
    "plan_key",
]
