"""Kernel synthesis: compose a code version into a VIR plan.

This implements the Map/Partition semantics of Section II-B-2: at the
**grid level** the input array is partitioned across blocks (tiled or
strided access pattern), at the **block level** either a cooperative
codelet reduces the block's elements directly or a compound codelet
distributes them to threads (tiled or strided) for serial reduction,
after which a cooperative codelet combines the per-thread partials.
Per-block results are combined with a global atomic (Listing 2) or
written to a partials array consumed by a second kernel launch
(Listing 1).

The synthesizer owns the "argument linker / index calculation" stages of
Figure 5: all address arithmetic lives here, while the codelet bodies are
compiled generically by :mod:`repro.codegen.compiler`.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass

from ..core.pipeline import PreprocessResult
from ..core.sources import identity_value
from ..core.variants import Version, fig6_label
from ..lang.errors import SynthesisError
from ..perf import content_key
from ..vir import IRBuilder, Imm, Kernel, KernelStep, MemsetStep, Plan
from .compiler import CodeletToVIR, GlobalView, RegisterPartials

#: Default second-kernel block size (reduction of per-block partials).
_SECOND_KERNEL_BLOCK = 256

#: Cap on the partition count of compound versions when untuned (the
#: paper's tunable ``p``; the autotuner sweeps around this default).
_DEFAULT_COMPOUND_GRID_CAP = 1024


@dataclass(frozen=True)
class Tunables:
    """The paper's ``__tunable`` launch parameters (Section IV-C)."""

    block: int = 256
    grid: int = None  # partition count p for compound versions

    def __post_init__(self):
        if self.block < 32 or self.block % 32 or self.block > 1024:
            raise SynthesisError(
                f"block size must be a multiple of 32 in [32, 1024], got "
                f"{self.block}"
            )
        if self.grid is not None and self.grid < 1:
            raise SynthesisError(f"grid must be positive, got {self.grid}")


def launch_geometry(version: Version, n: int, tunables: Tunables) -> dict:
    """Grid/block shape and coarsening for a version at input size n."""
    if n < 1:
        raise SynthesisError(f"reduction needs n >= 1, got {n}")
    block = tunables.block
    if version.block_kind == "coop":
        grid = _ceil_div(n, block)
        return {"block": block, "grid": grid, "epb": block, "coarsen": 1}
    grid = tunables.grid or min(_DEFAULT_COMPOUND_GRID_CAP, _ceil_div(n, block))
    grid = min(grid, _ceil_div(n, 1))
    epb = _ceil_div(n, grid)
    coarsen = _ceil_div(epb, block)
    epb = coarsen * block  # pad so thread tiling is uniform
    return {"block": block, "grid": grid, "epb": epb, "coarsen": coarsen}


def build_plan(
    pre: PreprocessResult,
    version: Version,
    n: int,
    tunables: Tunables = None,
) -> Plan:
    """Synthesize the full host plan for one version at input size n."""
    tunables = tunables or Tunables()
    geometry = launch_geometry(version, n, tunables)
    op = pre.reduction_op
    ctype = _element_ctype(pre)
    identity = identity_value(op, ctype)
    label = fig6_label(version)

    kernel = _build_main_kernel(pre, version, n, geometry, identity)
    plan_name = f"tangram_{label or version.identifier}"
    steps = []
    scratch = {"out": 1}
    if version.final_combine == "global_atomic":
        steps.append(MemsetStep("out", identity))
        steps.append(
            KernelStep(
                kernel,
                grid=geometry["grid"],
                block=geometry["block"],
                args={"n": n},
                buffers={"in": "in", "out": "out"},
            )
        )
    else:
        scratch["partials"] = geometry["grid"]
        steps.append(
            KernelStep(
                kernel,
                grid=geometry["grid"],
                block=geometry["block"],
                args={"n": n},
                buffers={"in": "in", "partials": "partials"},
            )
        )
        second = _build_second_kernel(pre, geometry["grid"], identity)
        steps.append(
            KernelStep(
                second,
                grid=1,
                block=_SECOND_KERNEL_BLOCK,
                args={"n": geometry["grid"]},
                buffers={"partials": "partials", "out": "out"},
            )
        )
    plan = Plan(
        name=plan_name,
        steps=steps,
        scratch=scratch,
        result_buffer="out",
        result_index=0,
        meta={
            "dtype": "int32" if ctype == "int" else "float32",
            "version": version.identifier,
            "label": label,
            "op": op,
            "n": n,
            "geometry": geometry,
        },
    )
    plan.validate()
    return plan


# ---------------------------------------------------------------------
# plan cache
# ---------------------------------------------------------------------


def _pipeline_fingerprint(pre) -> str:
    """sha256 prefix of the preprocessing pass log, memoized on ``pre``.

    The log records every pass that ran (including the unroll flag), so
    any change to the frontend configuration changes the fingerprint and
    with it every plan-cache key derived from this result.
    """
    sig = getattr(pre, "_pipeline_fingerprint", None)
    if sig is None:
        sig = hashlib.sha256("\n".join(pre.log).encode("utf-8")).hexdigest()[:16]
        pre._pipeline_fingerprint = sig
    return sig


def plan_key(
    pre: PreprocessResult,
    version: Version,
    n: int,
    tunables: Tunables = None,
    backend: str = "compiled",
) -> str:
    """Content-hash key identifying one built plan (see ``repro.perf``).

    The execution backend is part of the key: a cached plan is
    pre-warmed for exactly one backend's per-kernel artifact (compiled
    closures, fused regions, ...), and artifact memoization is by
    kernel object identity — so plans warmed for different backends
    must be distinct entries.
    """
    t = tunables or Tunables()
    return content_key(
        kind="plan",
        op=pre.reduction_op,
        ctype=_element_ctype(pre),
        version=version.identifier,
        n=int(n),
        block=t.block,
        grid=t.grid,
        passes=_pipeline_fingerprint(pre),
        backend=backend,
    )


def build_plan_cached(
    pre: PreprocessResult,
    version: Version,
    n: int,
    tunables: Tunables = None,
    backend: str = "compiled",
) -> Plan:
    """:func:`build_plan` through the process-wide plan cache.

    On a miss the plan is built and *pre-warmed*: each kernel step's
    per-kernel backend artifact (resolved through the backend registry
    — compiled closure trace, fused regions, ...) and batchability
    summary are computed before the plan is published, so every later
    executor — any framework instance, any sweep worker thread —
    starts hot. Keys are content hashes (:func:`plan_key`), so two
    frameworks with the same frontend configuration *and backend*
    share one built plan.
    """
    # Imported lazily: codegen must stay importable without dragging in
    # the simulator (and gpusim must never import codegen at top level).
    from ..gpusim import analyze_batchability, get_backend
    from ..obs import get_tracer
    from ..perf import default_plan_cache

    cache = default_plan_cache()
    key = plan_key(pre, version, n, tunables, backend=backend)
    plan = cache.get(key)
    if plan is None:
        tracer = get_tracer()
        start = time.perf_counter()
        with tracer.span(
            "plan.build", version=version.identifier, n=int(n)
        ) as span:
            plan = build_plan(pre, version, n, tunables)
            span.set(name_=plan.name, steps=len(plan.steps))
        with tracer.span(
            "plan.compile", version=version.identifier, n=int(n)
        ) as span:
            prepare = get_backend(backend).prepare
            traces = 0
            for step in plan.kernel_steps():
                artifact = prepare(step.kernel)
                trace = getattr(artifact, "trace", None)
                if trace is not None:
                    traces += len(trace)
                analyze_batchability(step.kernel)
            span.set(closures=traces, backend=backend)
        cache.put(key, plan, cost_s=time.perf_counter() - start)
    return plan


# ---------------------------------------------------------------------
# kernel construction
# ---------------------------------------------------------------------


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def _element_ctype(pre) -> str:
    """The DSL element type of the spectrum ('float' or 'int')."""
    return str(pre.analyzed.spectrum(pre.spectrum)[0].codelet.return_type)


def _build_main_kernel(pre, version, n, geometry, identity) -> Kernel:
    b = IRBuilder()
    tid = b.special("tid")
    ctaid = b.special("ctaid")
    n_reg = b.ld_param("n")
    grid = geometry["grid"]
    block = geometry["block"]
    epb = geometry["epb"]

    # Grid-level sub-container: global index = gbase + k * gstride for
    # k in [0, kcount).
    if version.grid_pattern == "tile":
        gbase = b.binop("mul", ctaid, Imm(epb))
        gstride = Imm(1)
        remaining = b.binop("sub", n_reg, gbase)
        clamped = b.binop("max", remaining, Imm(0))
        kcount = b.binop("min", clamped, Imm(epb))
    else:  # stride
        gbase = b.mov(ctaid)
        gstride = Imm(grid)
        numer = b.binop("sub", n_reg, ctaid)
        numer = b.binop("add", numer, Imm(grid - 1))
        numer = b.binop("max", numer, Imm(0))
        raw = b.binop("div", numer, Imm(grid))
        kcount = b.binop("min", raw, Imm(epb))

    if version.block_kind == "coop":
        coop = pre.coop_variant(version.combine)
        binding = GlobalView(
            buf="in", base=gbase, stride=gstride, size=kcount, size_static=block
        )
        compiler = CodeletToVIR(
            b, coop.codelet, binding, identity=identity, prefix="blk"
        )
        ret = compiler.compile()
        shared = compiler.shared_decls
        meta = {
            "load_pattern": "scalar",
            "uses_shuffle": coop.uses_shuffle,
            "uses_shared_atomic": coop.uses_shared_atomic,
            "cross_block_interleaved": version.grid_pattern == "stride",
        }
    else:
        ret, shared, meta = _compile_compound_block(
            pre, version, b, geometry, gbase, gstride, kcount, identity
        )

    is_zero = b.binop("eq", tid, 0)
    if version.final_combine == "global_atomic":
        with b.if_(is_zero):
            b.atom_global(pre.reduction_op, "out", 0, ret)
        buffers = ["in", "out"]
    else:
        with b.if_(is_zero):
            b.st_global("partials", ctaid, ret)
        buffers = ["in", "partials"]

    label = fig6_label(version)
    name = f"reduce_{label}" if label else "reduce_block"
    return Kernel(
        name=name,
        params=["n"],
        buffers=buffers,
        shared=shared,
        body=b.finish(),
        meta=meta,
    )


def _compile_compound_block(
    pre, version, b, geometry, gbase, gstride, kcount, identity
):
    """Thread-level serial reduction + cooperative combine of partials."""
    block = geometry["block"]
    coarsen = geometry["coarsen"]
    tid = b.special("tid")

    if version.block_pattern == "tile":
        k0 = b.binop("mul", tid, Imm(coarsen))
        t_remaining = b.binop("sub", kcount, k0)
        t_clamped = b.binop("max", t_remaining, Imm(0))
        tcount = b.binop("min", t_clamped, Imm(coarsen))
        tstride = gstride
    else:  # stride: k = tid + j * block
        k0 = b.mov(tid)
        numer = b.binop("sub", kcount, tid)
        numer = b.binop("add", numer, Imm(block - 1))
        numer = b.binop("max", numer, Imm(0))
        tcount = b.binop("div", numer, Imm(block))
        if isinstance(gstride, Imm):
            tstride = Imm(block * gstride.value)
        else:
            tstride = b.binop("mul", gstride, Imm(block))

    if isinstance(gstride, Imm) and gstride.value == 1:
        scaled_k0 = k0
    else:
        scaled_k0 = b.binop("mul", k0, gstride)
    tbase = b.binop("add", gbase, scaled_k0)

    scalar_info = pre.analyzed.find(pre.spectrum, "scalar")
    thread_view = GlobalView(
        buf="in", base=tbase, stride=tstride, size=tcount, size_static=None
    )
    thread_compiler = CodeletToVIR(
        b, scalar_info.codelet, thread_view, identity=identity, prefix="thr"
    )
    val = thread_compiler.compile()

    combine = pre.coop_variant(version.combine)
    partials = RegisterPartials(value=val, count=block)
    combine_compiler = CodeletToVIR(
        b, combine.codelet, partials, identity=identity, prefix="cmb"
    )
    ret = combine_compiler.compile()
    shared = thread_compiler.shared_decls + combine_compiler.shared_decls
    meta = {
        "load_pattern": "scalar",
        "uses_shuffle": combine.uses_shuffle,
        "uses_shared_atomic": combine.uses_shared_atomic,
        "coarsen": coarsen,
        "cross_block_interleaved": version.grid_pattern == "stride",
    }
    return ret, shared, meta


def _build_second_kernel(pre, num_partials, identity) -> Kernel:
    """Single-block reduction of per-block partials (the second launch
    the pruning rule of Section IV-B removes)."""
    b = IRBuilder()
    tid = b.special("tid")
    n_reg = b.ld_param("n")
    block = _SECOND_KERNEL_BLOCK

    # serial grid-stride accumulate per thread over the partials array
    numer = b.binop("sub", n_reg, tid)
    numer = b.binop("add", numer, Imm(block - 1))
    numer = b.binop("max", numer, Imm(0))
    tcount = b.binop("div", numer, Imm(block))
    scalar_info = pre.analyzed.find(pre.spectrum, "scalar")
    view = GlobalView(
        buf="partials", base=tid, stride=Imm(block), size=tcount, size_static=None
    )
    thread_compiler = CodeletToVIR(
        b, scalar_info.codelet, view, identity=identity, prefix="thr2"
    )
    val = thread_compiler.compile()

    combine = pre.coop_variant("V")
    partials = RegisterPartials(value=val, count=block)
    combine_compiler = CodeletToVIR(
        b, combine.codelet, partials, identity=identity, prefix="cmb2"
    )
    ret = combine_compiler.compile()

    is_zero = b.binop("eq", tid, 0)
    with b.if_(is_zero):
        b.st_global("out", 0, ret)
    return Kernel(
        name="reduce_partials",
        params=["n"],
        buffers=["partials", "out"],
        shared=thread_compiler.shared_decls + combine_compiler.shared_decls,
        body=b.finish(),
        meta={"load_pattern": "scalar"},
    )
