"""Generic lowering of (transformed) codelet ASTs to VIR.

This is the stage that turns the output of the AST passes into
executable code. It compiles:

* **cooperative codelets** (V / VS / VA1 / VA2 / VA2S) — ``Vector``
  member functions map to SIMT special registers, ``__shared``
  declarations become shared buffers (initialized to the reduction
  identity, like Listing 3 lines 5–11), :class:`~repro.lang.ast.AtomicUpdate`
  becomes ``atom.shared``, :class:`~repro.lang.ast.WarpShuffle` becomes
  ``shfl``; barriers are inserted after statements that write shared
  memory (the ``__syncthreads()`` placement of Listings 3 and 4);
* **scalar (atomic autonomous) codelets** — the per-thread serial loop
  of Figure 1(a), over an affine view of global memory.

The codelet's container parameter is bound by the synthesizer to one of:

* :class:`GlobalView` — an affine slice ``buf[base + i*stride]`` of a
  global buffer (a block's sub-container);
* :class:`RegisterPartials` — per-thread partial results living in a
  register, indexable only by ``ThreadId()`` (the compound-block combine
  stage, where "contents come directly from the input").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang import ast
from ..lang.errors import LoweringError
from ..vir import IRBuilder, Imm, Reg, SharedDecl

_BINOP_MAP = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "div",
    "%": "mod",
    "&": "and",
    "|": "or",
    "^": "xor",
    "<<": "shl",
    ">>": "shr",
    "<": "lt",
    "<=": "le",
    ">": "gt",
    ">=": "ge",
    "==": "eq",
    "!=": "ne",
    "&&": "land",
    "||": "lor",
}

_COMPOUND_ASSIGN = {"+=": "add", "-=": "sub", "*=": "mul", "/=": "div", "%=": "mod"}

WARP_SIZE = 32


# ---------------------------------------------------------------------
# Container bindings
# ---------------------------------------------------------------------


@dataclass
class GlobalView:
    """Affine view ``buf[base + i * stride]`` with ``size`` elements."""

    buf: str
    base: object  # operand
    stride: object  # operand or int
    size: object  # operand (runtime element count)
    size_static: int = None  # compile-time bound for shared allocation

    def load(self, compiler: "CodeletToVIR", index_expr: ast.Expr):
        b = compiler.builder
        idx = compiler.compile_expr(index_expr)
        stride = self.stride
        if isinstance(stride, int):
            stride = Imm(stride)
        if isinstance(stride, Imm) and stride.value == 1:
            scaled = idx
        else:
            scaled = b.binop("mul", idx, stride)
        base = self.base
        if isinstance(base, Imm) and base.value == 0:
            addr = scaled
        else:
            addr = b.binop("add", base, scaled)
        return b.ld_global(self.buf, addr)


@dataclass
class RegisterPartials:
    """Per-thread partials in a register; only ``in[ThreadId()]`` is legal."""

    value: Reg
    count: int  # blockDim

    @property
    def size(self):
        return Imm(self.count)

    @property
    def size_static(self):
        return self.count

    def load(self, compiler: "CodeletToVIR", index_expr: ast.Expr):
        if not compiler.is_thread_id(index_expr):
            raise LoweringError(
                "register-partials containers may only be indexed with "
                "Vector.ThreadId()",
                index_expr.span,
            )
        return self.value


# ---------------------------------------------------------------------
# Variable slots
# ---------------------------------------------------------------------


@dataclass
class _RegSlot:
    reg: Reg


@dataclass
class _SharedScalarSlot:
    buf: str
    atomic: str = None


@dataclass
class _SharedArraySlot:
    buf: str
    size: int
    atomic: str = None


@dataclass
class _VectorSlot:
    pass


@dataclass
class _ContainerSlot:
    binding: object


class CodeletToVIR:
    """Compiles one codelet body into the current builder region."""

    def __init__(
        self,
        builder: IRBuilder,
        codelet: ast.Codelet,
        binding,
        *,
        identity: float = 0.0,
        prefix: str = "c",
        insert_barriers: bool = None,
    ):
        self.builder = builder
        self.codelet = codelet
        self.binding = binding
        self.identity = identity
        self.prefix = prefix
        self.shared_decls = []
        self.env = {}
        self.ret_reg = None
        self._vector_name = None
        self._specials = {}
        is_coop = codelet.coop or _declares_vector(codelet)
        self.is_cooperative = is_coop
        self.insert_barriers = is_coop if insert_barriers is None else insert_barriers

    # -- public ----------------------------------------------------------

    def compile(self) -> Reg:
        """Compile the codelet body; returns the register holding the
        codelet's return value."""
        params = self.codelet.params
        self.env[params[0].name] = _ContainerSlot(self.binding)
        for extra in params[1:]:
            raise LoweringError(
                f"extra codelet parameter {extra.name!r} is not supported by "
                f"lowering yet",
                extra.span,
            )
        self.ret_reg = self.builder.fresh(f"{self.prefix}_ret")
        self._compile_block(self.codelet.body)
        return self.ret_reg

    # -- specials -----------------------------------------------------------

    def _special(self, kind: str) -> Reg:
        if kind not in self._specials:
            self._specials[kind] = self.builder.special(kind)
        return self._specials[kind]

    def is_thread_id(self, expr: ast.Expr) -> bool:
        return (
            isinstance(expr, ast.MethodCall)
            and expr.method == "ThreadId"
            and isinstance(expr.obj, ast.Ident)
            and expr.obj.name == self._vector_name
        )

    # -- statements -----------------------------------------------------------

    def _compile_block(self, block: ast.Block) -> bool:
        wrote_any = False
        for stmt in block.stmts:
            wrote = self._compile_stmt(stmt)
            if wrote and self.insert_barriers:
                self.builder.bar()
            wrote_any = wrote_any or wrote
        return False if self.insert_barriers else wrote_any

    def _compile_stmt(self, stmt: ast.Stmt) -> bool:
        """Compile one statement; returns True when it wrote shared memory
        (so the caller inserts a barrier)."""
        if isinstance(stmt, ast.VarDecl):
            return self._compile_var_decl(stmt)
        if isinstance(stmt, ast.Assign):
            return self._compile_assign(stmt)
        if isinstance(stmt, ast.AtomicUpdate):
            return self._compile_atomic_update(stmt)
        if isinstance(stmt, ast.ExprStmt):
            self.compile_expr(stmt.expr)
            return False
        if isinstance(stmt, ast.If):
            return self._compile_if(stmt)
        if isinstance(stmt, ast.For):
            return self._compile_for(stmt)
        if isinstance(stmt, ast.While):
            return self._compile_while(stmt)
        if isinstance(stmt, ast.Return):
            self._compile_return(stmt)
            return False
        if isinstance(stmt, ast.Block):
            return self._compile_block(stmt)
        raise LoweringError(
            f"cannot lower statement {type(stmt).__name__}", stmt.span
        )

    def _compile_var_decl(self, decl: ast.VarDecl) -> bool:
        type_name = str(decl.declared_type) if decl.declared_type else ""
        if type_name == "Vector":
            self._vector_name = decl.name
            self.env[decl.name] = _VectorSlot()
            return False
        if type_name in ("Sequence",) or decl.ctor_args:
            raise LoweringError(
                f"{type_name or 'Map'} declarations belong to compound "
                f"codelets and are lowered by the synthesizer",
                decl.span,
            )
        if decl.shared:
            return self._compile_shared_decl(decl)
        reg = self.builder.fresh(f"{self.prefix}_{decl.name}")
        self.env[decl.name] = _RegSlot(reg)
        if decl.init is not None:
            value = self.compile_expr(decl.init)
            self.builder.mov(value, dst=reg)
        return False

    def _compile_shared_decl(self, decl: ast.VarDecl) -> bool:
        buf = f"{self.prefix}_{decl.name}"
        b = self.builder
        if decl.dims:
            if len(decl.dims) != 1:
                raise LoweringError("only 1-D shared arrays supported", decl.span)
            size = self._static_eval(decl.dims[0])
            self.shared_decls.append(SharedDecl(buf, size))
            self.env[decl.name] = _SharedArraySlot(buf, size, atomic=decl.atomic)
            # Cooperative initialization to the reduction identity
            # (Listing 3 lines 9-11; identity generalizes the 0 of sums).
            tid = self._special("tid")
            idx = b.mov(tid)
            cond = b.fresh(f"{self.prefix}_initc")
            loop = b.while_(cond)
            with loop.cond:
                b.binop("lt", idx, size, dst=cond)
            with loop.body:
                b.st_shared(buf, idx, Imm(self.identity))
                b.binop("add", idx, self._block_dim_operand(), dst=idx)
            return True
        # shared scalar (the single accumulator of Figure 3).
        self.shared_decls.append(SharedDecl(buf, 1))
        self.env[decl.name] = _SharedScalarSlot(buf, atomic=decl.atomic)
        tid = self._special("tid")
        is_zero = b.binop("eq", tid, 0)
        with b.if_(is_zero):
            b.st_shared(buf, 0, Imm(self.identity))
        return True

    def _block_dim_operand(self):
        return self._special("ntid")

    def _compile_assign(self, stmt: ast.Assign) -> bool:
        target = stmt.target
        if isinstance(target, ast.Ident):
            slot = self._lookup(target.name, target.span)
            if isinstance(slot, _RegSlot):
                value = self.compile_expr(stmt.value)
                if stmt.op == "=":
                    self.builder.mov(value, dst=slot.reg)
                else:
                    op = self._compound_op(stmt.op, stmt.span)
                    self.builder.binop(op, slot.reg, value, dst=slot.reg)
                return False
            if isinstance(slot, _SharedScalarSlot):
                value = self.compile_expr(stmt.value)
                if stmt.op == "=":
                    self.builder.st_shared(slot.buf, 0, value)
                else:
                    op = self._compound_op(stmt.op, stmt.span)
                    old = self.builder.ld_shared(slot.buf, 0)
                    new = self.builder.binop(op, old, value)
                    self.builder.st_shared(slot.buf, 0, new)
                return True
            raise LoweringError(
                f"cannot assign to {target.name!r}", stmt.span
            )
        if isinstance(target, ast.Index) and isinstance(target.base, ast.Ident):
            slot = self._lookup(target.base.name, target.span)
            if not isinstance(slot, _SharedArraySlot):
                raise LoweringError(
                    f"cannot store into {target.base.name!r}", stmt.span
                )
            idx = self.compile_expr(target.index)
            value = self.compile_expr(stmt.value)
            if stmt.op == "=":
                self.builder.st_shared(slot.buf, idx, value)
            else:
                op = self._compound_op(stmt.op, stmt.span)
                old = self.builder.ld_shared(slot.buf, idx)
                new = self.builder.binop(op, old, value)
                self.builder.st_shared(slot.buf, idx, new)
            return True
        raise LoweringError("unsupported assignment target", stmt.span)

    @staticmethod
    def _compound_op(op_text: str, span) -> str:
        op = _COMPOUND_ASSIGN.get(op_text)
        if op is None:
            raise LoweringError(f"unsupported assignment {op_text!r}", span)
        return op

    def _compile_atomic_update(self, stmt: ast.AtomicUpdate) -> bool:
        if stmt.space != "shared":
            raise LoweringError(
                "global AtomicUpdate is emitted by the synthesizer", stmt.span
            )
        value = self.compile_expr(stmt.value)
        target = stmt.target
        if isinstance(target, ast.Ident):
            slot = self._lookup(target.name, target.span)
            if isinstance(slot, _SharedScalarSlot):
                self.builder.atom_shared(stmt.op, slot.buf, 0, value)
                return True
        if isinstance(target, ast.Index) and isinstance(target.base, ast.Ident):
            slot = self._lookup(target.base.name, target.span)
            if isinstance(slot, _SharedArraySlot):
                idx = self.compile_expr(target.index)
                self.builder.atom_shared(stmt.op, slot.buf, idx, value)
                return True
        raise LoweringError("unsupported AtomicUpdate target", stmt.span)

    def _compile_if(self, stmt: ast.If) -> bool:
        cond = self._as_reg(self.compile_expr(stmt.cond))
        instr, then_region, else_region = self.builder.if_else(cond)
        with then_region:
            wrote = self._compile_block(stmt.then)
        if stmt.otherwise is not None:
            with else_region:
                wrote = self._compile_block(stmt.otherwise) or wrote
        return wrote

    def _compile_for(self, stmt: ast.For) -> bool:
        if stmt.init is not None:
            self._compile_stmt(stmt.init)
        cond_reg = self.builder.fresh(f"{self.prefix}_loopc")
        loop = self.builder.while_(cond_reg)
        with loop.cond:
            if stmt.cond is None:
                self.builder.mov(Imm(True), dst=cond_reg)
            else:
                self.builder.mov(self.compile_expr(stmt.cond), dst=cond_reg)
        with loop.body:
            wrote = self._compile_block(stmt.body)
            if stmt.step is not None:
                self._compile_stmt(stmt.step)
        return wrote

    def _compile_while(self, stmt: ast.While) -> bool:
        cond_reg = self.builder.fresh(f"{self.prefix}_loopc")
        loop = self.builder.while_(cond_reg)
        with loop.cond:
            self.builder.mov(self.compile_expr(stmt.cond), dst=cond_reg)
        with loop.body:
            wrote = self._compile_block(stmt.body)
        return wrote

    def _compile_return(self, stmt: ast.Return) -> None:
        if stmt.value is None:
            raise LoweringError("codelets must return a value", stmt.span)
        value = self.compile_expr(stmt.value)
        self.builder.mov(value, dst=self.ret_reg)

    # -- expressions -----------------------------------------------------------

    def compile_expr(self, expr: ast.Expr):
        if isinstance(expr, ast.IntLiteral):
            return Imm(expr.value)
        if isinstance(expr, ast.FloatLiteral):
            return Imm(expr.value)
        if isinstance(expr, ast.BoolLiteral):
            return Imm(expr.value)
        if isinstance(expr, ast.Ident):
            return self._compile_ident(expr)
        if isinstance(expr, ast.Unary):
            return self._compile_unary(expr)
        if isinstance(expr, ast.Binary):
            op = _BINOP_MAP.get(expr.op)
            if op is None:
                raise LoweringError(f"cannot lower operator {expr.op!r}", expr.span)
            lhs = self.compile_expr(expr.lhs)
            rhs = self.compile_expr(expr.rhs)
            return self.builder.binop(op, lhs, rhs)
        if isinstance(expr, ast.Ternary):
            return self._compile_ternary(expr)
        if isinstance(expr, ast.Call):
            return self._compile_call(expr)
        if isinstance(expr, ast.MethodCall):
            return self._compile_method_call(expr)
        if isinstance(expr, ast.Index):
            return self._compile_index(expr)
        if isinstance(expr, ast.WarpShuffle):
            return self._compile_shuffle(expr)
        raise LoweringError(f"cannot lower {type(expr).__name__}", expr.span)

    def _compile_ident(self, expr: ast.Ident):
        slot = self._lookup(expr.name, expr.span)
        if isinstance(slot, _RegSlot):
            return slot.reg
        if isinstance(slot, _SharedScalarSlot):
            return self.builder.ld_shared(slot.buf, 0)
        raise LoweringError(
            f"{expr.name!r} cannot be used as a value here", expr.span
        )

    def _compile_unary(self, expr: ast.Unary):
        operand = self.compile_expr(expr.operand)
        if expr.op == "-":
            return self.builder.unop("neg", operand)
        if expr.op == "!":
            return self.builder.unop("lnot", operand)
        if expr.op == "~":
            return self.builder.unop("bnot", operand)
        raise LoweringError(f"cannot lower unary {expr.op!r}", expr.span)

    def _compile_ternary(self, expr: ast.Ternary):
        # CUDA's ?: short-circuits, so memory accesses must stay guarded
        # (out-of-bounds loads would fault). Side-effect-free ternaries
        # lower to a select, like predicated hardware execution.
        if not (_touches_memory(expr.then) or _touches_memory(expr.otherwise)):
            cond = self.compile_expr(expr.cond)
            a = self.compile_expr(expr.then)
            b = self.compile_expr(expr.otherwise)
            return self.builder.sel(cond, a, b)
        dst = self.builder.fresh(f"{self.prefix}_t")
        cond = self._as_reg(self.compile_expr(expr.cond))
        instr, then_region, else_region = self.builder.if_else(cond)
        with then_region:
            self.builder.mov(self.compile_expr(expr.then), dst=dst)
        with else_region:
            self.builder.mov(self.compile_expr(expr.otherwise), dst=dst)
        return dst

    def _compile_call(self, expr: ast.Call):
        if expr.name in ("min", "max"):
            lhs = self.compile_expr(expr.args[0])
            rhs = self.compile_expr(expr.args[1])
            return self.builder.binop(expr.name, lhs, rhs)
        raise LoweringError(
            f"call to {expr.name!r} cannot be lowered inside a codelet "
            f"(spectrum calls are resolved by the synthesizer)",
            expr.span,
        )

    def _compile_method_call(self, expr: ast.MethodCall):
        if not isinstance(expr.obj, ast.Ident):
            raise LoweringError("unsupported method receiver", expr.span)
        slot = self._lookup(expr.obj.name, expr.span)
        if isinstance(slot, _VectorSlot):
            return self._compile_vector_method(expr)
        if isinstance(slot, _ContainerSlot):
            if expr.method == "Size":
                return slot.binding.size
            if expr.method == "Stride":
                stride = getattr(slot.binding, "stride", 1)
                return Imm(stride) if isinstance(stride, int) else stride
            raise LoweringError(
                f"container method {expr.method!r} cannot be lowered", expr.span
            )
        raise LoweringError(
            f"{expr.obj.name!r} has no lowerable methods", expr.span
        )

    def _compile_vector_method(self, expr: ast.MethodCall):
        method = expr.method
        if method == "ThreadId":
            return self._special("tid")
        if method == "LaneId":
            return self._special("laneid")
        if method == "VectorId":
            return self._special("warpid")
        if method in ("MaxSize", "Size"):
            # Size() maps to warpSize, exactly as in Figure 2's table.
            return Imm(WARP_SIZE)
        raise LoweringError(f"unknown Vector method {method!r}", expr.span)

    def _compile_index(self, expr: ast.Index):
        if not isinstance(expr.base, ast.Ident):
            raise LoweringError("unsupported indexing base", expr.span)
        slot = self._lookup(expr.base.name, expr.span)
        if isinstance(slot, _ContainerSlot):
            return slot.binding.load(self, expr.index)
        if isinstance(slot, _SharedArraySlot):
            idx = self.compile_expr(expr.index)
            return self.builder.ld_shared(slot.buf, idx)
        raise LoweringError(f"{expr.base.name!r} is not indexable", expr.span)

    def _compile_shuffle(self, expr: ast.WarpShuffle):
        value = self._as_reg(self.compile_expr(expr.value))
        offset = self.compile_expr(expr.offset)
        mode = expr.direction
        return self.builder.shfl(value, mode, offset, width=expr.width)

    # -- helpers -----------------------------------------------------------

    def _as_reg(self, operand) -> Reg:
        if isinstance(operand, Reg):
            return operand
        return self.builder.mov(operand)

    def _lookup(self, name: str, span):
        slot = self.env.get(name)
        if slot is None:
            raise LoweringError(f"unknown variable {name!r} in lowering", span)
        return slot

    def _static_eval(self, expr: ast.Expr) -> int:
        """Compile-time evaluation for shared-array dimensions."""
        if isinstance(expr, ast.IntLiteral):
            return expr.value
        if isinstance(expr, ast.Binary):
            lhs = self._static_eval(expr.lhs)
            rhs = self._static_eval(expr.rhs)
            return _fold_int(expr.op, lhs, rhs, expr.span)
        if isinstance(expr, ast.MethodCall) and isinstance(expr.obj, ast.Ident):
            slot = self.env.get(expr.obj.name)
            if isinstance(slot, _VectorSlot) and expr.method in ("MaxSize", "Size"):
                return WARP_SIZE
            if isinstance(slot, _ContainerSlot) and expr.method == "Size":
                bound = slot.binding.size_static
                if bound is None:
                    raise LoweringError(
                        "shared array sized by in.Size() needs a static bound",
                        expr.span,
                    )
                return bound
        raise LoweringError(
            "shared array dimension is not a compile-time constant", expr.span
        )


def _fold_int(op: str, lhs: int, rhs: int, span) -> int:
    if op == "+":
        return lhs + rhs
    if op == "-":
        return lhs - rhs
    if op == "*":
        return lhs * rhs
    if op == "/":
        if rhs == 0:
            raise LoweringError("division by zero in shared dimension", span)
        return lhs // rhs
    if op == "%":
        return lhs % rhs
    raise LoweringError(f"cannot fold operator {op!r} at compile time", span)


def _touches_memory(expr: ast.Expr) -> bool:
    """Whether evaluating the expression may access memory."""
    return any(isinstance(node, ast.Index) for node in ast.walk(expr))


def _declares_vector(codelet: ast.Codelet) -> bool:
    return any(
        isinstance(node, ast.VarDecl) and str(node.declared_type) == "Vector"
        for node in ast.walk(codelet)
    )
