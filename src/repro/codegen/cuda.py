"""CUDA C source emission (the paper's Listings 1–4).

The emitter renders transformed codelet ASTs as CUDA C so that the
effect of each AST pass is visible in the generated source:

* :func:`emit_coop_kernel` — a ``Reduce_Block`` ``__global__`` kernel
  from a cooperative codelet variant. The shared-atomic pass shows up as
  ``atomicAdd(&partial, val)`` (Listing 3), the shuffle pass as
  ``__shfl_down(val, offset, 32)`` with the disabled ``tmp`` array gone
  (Listing 4).
* :func:`emit_compound_pair` — the Listing 1 / Listing 2 pair for a
  compound codelet: the non-atomic version allocates a partials array
  and keeps the second spectrum call; the atomic version allocates a
  single accumulator and uses ``atomicAdd_block`` / ``atomicAdd``.
* :func:`emit_version` — a full program for one Figure 6 version.

Identifier conventions follow the listings: the kernel signature is
``(Return, input_x, SourceSize, ObjectSize)``; ``vthread.ThreadId()``
renders as ``threadIdx.x``, ``LaneId()`` as ``threadIdx.x % warpSize``,
``VectorId()`` as ``threadIdx.x / warpSize`` (Figure 2's table).
"""

from __future__ import annotations

from ..core.pipeline import CoopVariant, PreprocessResult
from ..core.sources import identity_literal
from ..core.variants import Version, fig6_label
from ..lang import ast
from ..lang.errors import LoweringError

_ATOMIC_FN = {"add": "atomicAdd", "sub": "atomicSub", "max": "atomicMax", "min": "atomicMin"}

_PRECEDENCE = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class CudaEmitter:
    """Stateful expression/statement renderer for one codelet."""

    def __init__(self, ctype: str = "float", input_name: str = "input_x"):
        self.ctype = ctype
        self.input_name = input_name
        self.vector_name = None
        self.container_name = None
        self.shared_dynamic = set()  # arrays sized by in.Size() -> extern

    # -- expressions ------------------------------------------------------

    def expr(self, node: ast.Expr, parent_prec: int = 0) -> str:
        text, prec = self._expr(node)
        if prec < parent_prec:
            return f"({text})"
        return text

    def _expr(self, node: ast.Expr):
        if isinstance(node, ast.IntLiteral):
            return str(node.value) + ("u" if node.unsigned else ""), 99
        if isinstance(node, ast.FloatLiteral):
            suffix = "f" if node.single else ""
            return f"{node.value!r}{suffix}", 99
        if isinstance(node, ast.BoolLiteral):
            return ("true" if node.value else "false"), 99
        if isinstance(node, ast.Ident):
            return node.name, 99
        if isinstance(node, ast.Unary):
            inner = self.expr(node.operand, 11)
            return f"{node.op}{inner}", 11
        if isinstance(node, ast.Binary):
            prec = _PRECEDENCE[node.op]
            lhs = self.expr(node.lhs, prec)
            rhs = self.expr(node.rhs, prec + 1)
            return f"{lhs} {node.op} {rhs}", prec
        if isinstance(node, ast.Ternary):
            cond = self.expr(node.cond, 1)
            cond = self._augment_bounds_guard(cond, node.then)
            then = self.expr(node.then, 0)
            otherwise = self.expr(node.otherwise, 0)
            return f"({cond}) ? {then} : {otherwise}", 0
        if isinstance(node, ast.Call):
            args = ", ".join(self.expr(a) for a in node.args)
            return f"{node.name}({args})", 99
        if isinstance(node, ast.MethodCall):
            return self._method(node), 99
        if isinstance(node, ast.Index):
            return self._index(node), 99
        if isinstance(node, ast.WarpShuffle):
            fn = "__shfl_down" if node.direction == "down" else "__shfl_up"
            value = self.expr(node.value)
            offset = self.expr(node.offset)
            return f"{fn}({value}, {offset}, {node.width})", 99
        raise LoweringError(f"cannot emit {type(node).__name__} as CUDA")

    def _method(self, node: ast.MethodCall) -> str:
        obj = node.obj.name if isinstance(node.obj, ast.Ident) else None
        if obj == self.vector_name:
            return {
                "ThreadId": "threadIdx.x",
                "LaneId": "threadIdx.x % warpSize",
                "VectorId": "threadIdx.x / warpSize",
                "MaxSize": "32",
                "Size": "warpSize",
            }[node.method]
        if obj == self.container_name:
            if node.method == "Size":
                return "ObjectSize"
            if node.method == "Stride":
                return "1"
        raise LoweringError(f"cannot emit method {node.method!r} as CUDA")

    def _index(self, node: ast.Index) -> str:
        base = node.base.name if isinstance(node.base, ast.Ident) else None
        idx = self.expr(node.index)
        if base == self.container_name:
            return f"{self.input_name}[blockIdx.x * blockDim.x + {idx}]"
        return f"{base}[{idx}]"

    def _augment_bounds_guard(self, cond: str, then: ast.Expr) -> str:
        """Listing 3 lines 13-14: reads of the block's input slice also
        guard against the end of the whole array (SourceSize)."""
        reads_input = any(
            isinstance(sub, ast.Index)
            and isinstance(sub.base, ast.Ident)
            and sub.base.name == self.container_name
            for sub in ast.walk(then)
        )
        if not reads_input:
            return cond
        return (
            f"(({cond})) && "
            f"((blockIdx.x * blockDim.x + threadIdx.x) < SourceSize)"
        )

    # -- statements --------------------------------------------------------

    def stmt(self, node: ast.Stmt, indent: int) -> list:
        pad = "  " * indent
        if isinstance(node, ast.VarDecl):
            return self._var_decl(node, indent)
        if isinstance(node, ast.Assign):
            target = self.expr(node.target)
            value = self.expr(node.value)
            return [f"{pad}{target} {node.op} {value};"]
        if isinstance(node, ast.AtomicUpdate):
            fn = _ATOMIC_FN[node.op]
            if node.scope == "block":
                fn += "_block"
            target = self.expr(node.target)
            value = self.expr(node.value)
            return [f"{pad}{fn}(&{target}, {value});"]
        if isinstance(node, ast.ExprStmt):
            return [f"{pad}{self.expr(node.expr)};"]
        if isinstance(node, ast.If):
            lines = [f"{pad}if ({self.expr(node.cond)}) {{"]
            lines += self.block(node.then, indent + 1)
            if node.otherwise is not None:
                lines.append(f"{pad}}} else {{")
                lines += self.block(node.otherwise, indent + 1)
            lines.append(f"{pad}}}")
            return lines
        if isinstance(node, ast.For):
            init = self._inline_stmt(node.init)
            cond = self.expr(node.cond) if node.cond is not None else ""
            step = self._inline_stmt(node.step)
            lines = [f"{pad}for ({init}; {cond}; {step}) {{"]
            lines += self.block(node.body, indent + 1)
            lines.append(f"{pad}}}")
            return lines
        if isinstance(node, ast.While):
            lines = [f"{pad}while ({self.expr(node.cond)}) {{"]
            lines += self.block(node.body, indent + 1)
            lines.append(f"{pad}}}")
            return lines
        if isinstance(node, ast.Return):
            if node.value is None:
                return [f"{pad}return;"]
            return [f"{pad}return {self.expr(node.value)};"]
        if isinstance(node, ast.Block):
            return self.block(node, indent)
        raise LoweringError(f"cannot emit statement {type(node).__name__}")

    def _inline_stmt(self, node) -> str:
        if node is None:
            return ""
        if isinstance(node, ast.VarDecl):
            init = f" = {self.expr(node.init)}" if node.init is not None else ""
            return f"{node.declared_type} {node.name}{init}"
        if isinstance(node, ast.Assign):
            return f"{self.expr(node.target)} {node.op} {self.expr(node.value)}"
        raise LoweringError("unsupported inline statement")

    def block(self, node: ast.Block, indent: int) -> list:
        lines = []
        for stmt in node.stmts:
            lines += self.stmt(stmt, indent)
            if _writes_shared(stmt):
                _append_sync(lines, indent)
        return lines

    def _var_decl(self, node: ast.VarDecl, indent: int) -> list:
        pad = "  " * indent
        if str(node.declared_type) == "Vector":
            return [f"{pad}// Vector {node.name} -> SIMT thread group"]
        if node.shared:
            return self._shared_decl(node, indent)
        init = f" = {self.expr(node.init)}" if node.init is not None else ""
        return [f"{pad}{node.declared_type} {node.name}{init};"]

    def _shared_decl(self, node: ast.VarDecl, indent: int) -> list:
        pad = "  " * indent
        lines = []
        if not node.dims:
            # single shared accumulator (Listing 3 lines 5-8)
            lines.append(f"{pad}__shared__ {node.declared_type} {node.name};")
            lines.append(f"{pad}if (threadIdx.x == 0)")
            lines.append(f"{pad}  {node.name} = {self._identity(node)};")
            lines.append(f"{pad}__syncthreads();")
            return lines
        dim = node.dims[0]
        if _is_static_dim(dim):
            size = self.expr(dim)
            lines.append(
                f"{pad}__shared__ {node.declared_type} {node.name}[{size}];"
            )
            lines.append(f"{pad}if (threadIdx.x < {size})")
        else:
            # dynamically sized by in.Size() -> extern (Listing 3 line 9)
            self.shared_dynamic.add(node.name)
            lines.append(
                f"{pad}extern __shared__ {node.declared_type} {node.name}[];"
            )
            lines.append(f"{pad}if (threadIdx.x < ObjectSize)")
        lines.append(f"{pad}  {node.name}[threadIdx.x] = {self._identity(node)};")
        lines.append(f"{pad}__syncthreads();")
        return lines

    def _identity(self, node: ast.VarDecl) -> str:
        op = node.atomic or "add"
        try:
            return identity_literal(op, str(node.declared_type))
        except ValueError:
            return "0"


def _append_sync(lines: list, indent: int) -> None:
    """Append ``__syncthreads()`` unless the previous line already is one."""
    if lines and lines[-1].strip() == "__syncthreads();":
        return
    lines.append("  " * indent + "__syncthreads();")


def _is_static_dim(dim: ast.Expr) -> bool:
    """MaxSize()-sized arrays are static; in.Size()-sized are dynamic."""
    return not any(
        isinstance(node, ast.MethodCall) and node.method == "Size"
        for node in ast.walk(dim)
    )


def _writes_shared(stmt: ast.Stmt) -> bool:
    """Conservative: statement contains a write to a shared variable.

    The emitter mirrors the lowering's barrier-insertion rule, which in
    turn mirrors the ``__syncthreads()`` placement of Listings 3 and 4.
    """
    if isinstance(stmt, (ast.If, ast.For, ast.While, ast.Block)):
        children = []
        if isinstance(stmt, ast.Block):
            children = stmt.stmts
        elif isinstance(stmt, ast.While):
            children = stmt.body.stmts
        elif isinstance(stmt, ast.For):
            children = stmt.body.stmts
        else:
            children = stmt.then.stmts + (
                stmt.otherwise.stmts if stmt.otherwise else []
            )
        return any(_writes_shared(s) for s in children)
    if isinstance(stmt, ast.AtomicUpdate):
        return True
    if isinstance(stmt, ast.Assign):
        target = stmt.target
        names = set()
        if isinstance(target, ast.Ident):
            names.add(target.name)
        if isinstance(target, ast.Index) and isinstance(target.base, ast.Ident):
            names.add(target.base.name)
        return bool(names & _SHARED_NAMES.get())
    return False


class _SharedNames:
    """Per-emission set of shared variable names (module-level helper)."""

    def __init__(self):
        self._names = set()

    def set(self, names):
        self._names = set(names)

    def get(self):
        return self._names


_SHARED_NAMES = _SharedNames()


def emit_coop_kernel(
    variant: CoopVariant,
    op: str = "add",
    ctype: str = "float",
    kernel_name: str = None,
) -> str:
    """Render a cooperative codelet variant as a ``__global__`` kernel
    (the shape of Listings 3 and 4)."""
    codelet = variant.codelet
    emitter = CudaEmitter(ctype=ctype)
    emitter.container_name = codelet.params[0].name
    for node in ast.walk(codelet):
        if isinstance(node, ast.VarDecl) and str(node.declared_type) == "Vector":
            emitter.vector_name = node.name
    _SHARED_NAMES.set(
        node.name
        for node in ast.walk(codelet)
        if isinstance(node, ast.VarDecl) and node.shared
    )

    name = kernel_name or f"Reduce_Block_{variant.key}"
    lines = [
        "__global__",
        f"void {name}({ctype} *Return, {ctype} *{emitter.input_name}, "
        f"int SourceSize, int ObjectSize) {{",
        "  unsigned int blockID = blockIdx.x;",
    ]
    body_lines = []
    ret_expr = None
    for stmt in codelet.body.stmts:
        if isinstance(stmt, ast.Return):
            ret_expr = emitter.expr(stmt.value)
            continue
        body_lines += emitter.stmt(stmt, 1)
        if _writes_shared(stmt):
            _append_sync(body_lines, 1)
    lines += body_lines
    if ret_expr is None:
        raise LoweringError("cooperative codelet has no return")
    lines.append("  if (threadIdx.x == 0)")
    lines.append(f"    Return[blockID] = {ret_expr};")
    lines.append("}")
    return "\n".join(lines)


def emit_compound_pair(pre: PreprocessResult, pattern: str = "tile") -> dict:
    """The Listing 1 / Listing 2 pair for a compound codelet."""
    compound = pre.compound[pattern]
    ctype = "float"
    op = pre.reduction_op
    atomic_fn = _ATOMIC_FN[op]
    non_atomic = _emit_grid_code(ctype, atomic=False, atomic_fn=atomic_fn)
    atomic = _emit_grid_code(ctype, atomic=True, atomic_fn=atomic_fn)
    return {
        "non_atomic": non_atomic,
        "atomic": atomic,
        "pattern": compound.pattern,
        "spectrum_disabled": compound.atomic.spectrum_disabled,
    }


def _emit_grid_code(ctype: str, atomic: bool, atomic_fn: str) -> str:
    """Host + device scaffolding following Listings 1 and 2."""
    if atomic:
        thread_tail = f"  {atomic_fn}_block(Return, accum);"
        alloc_block = "    map_return = new {t}[1];".format(t=ctype)
        block_tail = f"    {atomic_fn}(Return, map_return[0]);"
        grid_alloc = f"  cudaMalloc(&map_return_block, sizeof({ctype}));"
    else:
        thread_tail = "  Return[threadIdx.x] = accum;"
        alloc_block = "    map_return = new {t}[p];".format(t=ctype)
        block_tail = "    Return[blockIdx.x] = Reduce_Partials(map_return, p);"
        grid_alloc = (
            f"  cudaMalloc(&map_return_block, (p) * sizeof({ctype}));"
        )
    return f"""__inline__ __device__
void Reduce_Thread({ctype} *Return, {ctype} *input_x, int Count, int Stride) {{
  {ctype} accum = 0;
  for (int idx = 0; idx < Count; idx += 1)
    accum += input_x[idx * Stride];
{thread_tail}
}}

__global__
void Reduce_Block({ctype} *Return, {ctype} *input_x, int SourceSize) {{
  int p = blockDim.x;
  __shared__ {ctype} *map_return;
  if (threadIdx.x == 0)
{alloc_block}
  __syncthreads();
  Reduce_Thread(map_return, input_x + blockIdx.x * blockDim.x, SourceSize, 1);
  __syncthreads();
  if (threadIdx.x == 0)
{block_tail}
}}

template <unsigned int TGM_TEMPLATE_0>
{ctype} Reduce_Grid({ctype} *input_x, int SourceSize) {{
  int p = TGM_TEMPLATE_0;
  {ctype} *map_return_block;
{grid_alloc}
  Reduce_Block<<<p, 256>>>(map_return_block, input_x, SourceSize);
  return Collect(map_return_block);
}}
"""


def emit_version(pre: PreprocessResult, version: Version) -> str:
    """Full CUDA program text for one Figure 6 version."""
    label = fig6_label(version)
    header = [
        f"// Tangram-synthesized parallel reduction",
        f"// version: {version.identifier}"
        + (f"  (Figure 6 ({label}))" if label else ""),
        f"// reduction op: {pre.reduction_op}",
        "",
    ]
    parts = []
    coop = pre.coop_variant(version.combine)
    parts.append(emit_coop_kernel(coop, op=pre.reduction_op))
    if version.block_kind == "compound":
        pair = emit_compound_pair(pre, version.block_pattern)
        parts.append(pair["atomic" if version.uses_global_atomic else "non_atomic"])
    return "\n".join(header) + "\n\n".join(parts) + "\n"
