"""Segmented reduction synthesis: many independent reductions, one launch.

The paper's Map/Partition semantics (Section II-B-2) partition *one*
array across blocks.  This module generalizes that to **heterogeneous
segments**: N independent reductions, packed back to back in a single
``in`` buffer, reduced by a single launch whose blocks are partitioned
*per segment* — the segment-group shape that "A Fast and Generic
GPU-Based Parallel Reduction Implementation" motivates for multi-value
workloads.  It exists to serve cross-request launch fusion
(:mod:`repro.serve`): concurrent small requests become segments of one
plan instead of one launch each.

Layout contract (what makes fused results bit-identical to per-request
runs): each segment gets exactly the blocks, elements-per-block, and
coarsening that :func:`~repro.codegen.synthesize.launch_geometry` would
assign it standalone, and its blocks are contiguous in the fused grid.
Each block therefore sees the same elements in the same order as the
standalone launch, so the reduction tree — and with it every float
rounding step — is unchanged.

A block finds its work through small int32 metadata buffers uploaded
alongside the data:

========== ============ ====================================================
buffer     length       meaning
========== ============ ====================================================
seg_map    total blocks block id -> segment id
seg_off    N            segment start offset in the packed ``in`` buffer
seg_len    N            segment element count (0 allowed)
seg_first  N + 1        first block id of each segment (+ total sentinel)
seg_epb    N            per-segment elements per block
seg_coarsen N           per-segment thread coarsening (compound versions)
========== ============ ====================================================

Values loaded from global memory land in float64 registers, so all
derived counts use exact double arithmetic; trip counts that standalone
synthesis computed with integer ``div`` use the dtype-independent
``idiv`` (floor division) here.

Only ``tile`` grid partitioning is supported: a strided grid pattern
interleaves a block's accesses across the whole input, which has no
per-segment meaning.  Callers (the serve scheduler) catch the
:class:`~repro.lang.errors.SynthesisError` and degrade to unfused
execution.  Empty segments receive no blocks and reduce to the
operator identity.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass

import numpy as np

from ..core.pipeline import PreprocessResult
from ..core.sources import identity_value
from ..core.variants import Version, fig6_label
from ..lang.errors import SynthesisError
from ..perf import content_key
from ..vir import IRBuilder, Imm, Kernel, KernelStep, MemsetStep, Plan
from .compiler import CodeletToVIR, GlobalView, RegisterPartials
from .synthesize import (
    _SECOND_KERNEL_BLOCK,
    _element_ctype,
    _pipeline_fingerprint,
    Tunables,
    launch_geometry,
)

#: Packed inputs are addressed through int32 metadata buffers.
_MAX_TOTAL_ELEMENTS = 2**31 - 1


@dataclass(frozen=True)
class SegmentLayout:
    """Resolved per-segment geometry of one fused launch."""

    lengths: tuple  #: element count per segment (0 allowed)
    offsets: tuple  #: start offset of each segment in the packed input
    first_block: tuple  #: first block id per segment, + total sentinel
    epb: tuple  #: elements per block, per segment
    coarsen: tuple  #: thread coarsening, per segment
    block: int  #: shared block size of the fused launch
    grid: int  #: total blocks across all segments
    total: int  #: total packed elements

    @property
    def num_segments(self) -> int:
        return len(self.lengths)

    def block_map(self) -> list:
        """block id -> segment id (length :attr:`grid`)."""
        seg_map = []
        for sid in range(self.num_segments):
            seg_map.extend([sid] * (self.first_block[sid + 1] - self.first_block[sid]))
        return seg_map


def segment_layout(
    version: Version, lengths, tunables: Tunables = None
) -> SegmentLayout:
    """Per-segment :func:`launch_geometry`, packed into one grid."""
    tunables = tunables or Tunables()
    if version.grid_pattern != "tile":
        raise SynthesisError(
            f"segmented synthesis requires tile grid partitioning; version "
            f"{version.identifier!r} strides blocks across the whole input"
        )
    lengths = tuple(int(n) for n in lengths)
    if not lengths:
        raise SynthesisError("segmented reduction needs at least one segment")
    if any(n < 0 for n in lengths):
        raise SynthesisError("segment lengths must be non-negative")
    total = sum(lengths)
    if total > _MAX_TOTAL_ELEMENTS:
        raise SynthesisError(
            f"packed input of {total} elements overflows int32 addressing"
        )
    offsets, first_block, epbs, coarsens = [], [0], [], []
    offset = 0
    for n in lengths:
        offsets.append(offset)
        offset += n
        if n == 0:
            # No blocks; the plan writes the identity for this segment.
            first_block.append(first_block[-1])
            epbs.append(tunables.block)
            coarsens.append(1)
            continue
        geometry = launch_geometry(version, n, tunables)
        first_block.append(first_block[-1] + geometry["grid"])
        epbs.append(geometry["epb"])
        coarsens.append(geometry["coarsen"])
    return SegmentLayout(
        lengths=lengths,
        offsets=tuple(offsets),
        first_block=tuple(first_block),
        epb=tuple(epbs),
        coarsen=tuple(coarsens),
        block=tunables.block,
        grid=first_block[-1],
        total=total,
    )


def build_segmented_plan(
    pre: PreprocessResult,
    version: Version,
    lengths,
    tunables: Tunables = None,
) -> Plan:
    """Synthesize one fused plan reducing every segment independently.

    The result buffer ``out`` holds one value per segment (the operator
    identity for empty segments)."""
    tunables = tunables or Tunables()
    layout = segment_layout(version, lengths, tunables)
    op = pre.reduction_op
    ctype = _element_ctype(pre)
    identity = identity_value(op, ctype)
    label = fig6_label(version)
    nseg = layout.num_segments

    uploads = {
        "seg_map": layout.block_map(),
        "seg_off": list(layout.offsets),
        "seg_len": list(layout.lengths),
        "seg_first": list(layout.first_block),
        "seg_epb": list(layout.epb),
    }
    if version.block_kind != "coop":
        uploads["seg_coarsen"] = list(layout.coarsen)

    steps = []
    scratch = {"out": nseg}
    if layout.grid:
        kernel = _build_segmented_main_kernel(pre, version, layout, identity)
        main_buffers = {name: name for name in kernel.buffers}
        main_step = KernelStep(
            kernel,
            grid=layout.grid,
            block=layout.block,
            args={},
            buffers=main_buffers,
        )
    if version.final_combine == "global_atomic":
        # Identity-fill covers empty segments; atomics fold block results.
        steps.append(MemsetStep("out", identity))
        if layout.grid:
            steps.append(main_step)
    else:
        scratch["partials"] = max(1, layout.grid)
        if layout.grid:
            steps.append(main_step)
        second = _build_segmented_second_kernel(pre, identity)
        steps.append(
            KernelStep(
                second,
                grid=nseg,
                block=_SECOND_KERNEL_BLOCK,
                args={},
                buffers={name: name for name in second.buffers},
            )
        )

    plan = Plan(
        name=f"segmented_{label or version.identifier}",
        steps=steps,
        scratch=scratch,
        result_buffer="out",
        result_index=0,
        meta={
            "dtype": "int32" if ctype == "int" else "float32",
            "version": version.identifier,
            "label": label,
            "op": op,
            "n": layout.total,
            "segmented": True,
            "num_segments": nseg,
            "lengths": list(layout.lengths),
            "geometry": {"block": layout.block, "grid": layout.grid},
            "uploads": uploads,
        },
    )
    plan.validate()
    return plan


def segmented_plan_key(
    pre: PreprocessResult,
    version: Version,
    lengths,
    tunables: Tunables = None,
    backend: str = "compiled",
) -> str:
    """Content-hash key for one fused plan (see :func:`plan_key`)."""
    t = tunables or Tunables()
    digest = hashlib.sha256(
        ",".join(str(int(n)) for n in lengths).encode("ascii")
    ).hexdigest()[:24]
    return content_key(
        kind="segplan",
        op=pre.reduction_op,
        ctype=_element_ctype(pre),
        version=version.identifier,
        segments=digest,
        block=t.block,
        grid=t.grid,
        passes=_pipeline_fingerprint(pre),
        backend=backend,
    )


def build_segmented_plan_cached(
    pre: PreprocessResult,
    version: Version,
    lengths,
    tunables: Tunables = None,
    backend: str = "compiled",
) -> Plan:
    """:func:`build_segmented_plan` through the process-wide plan cache,
    pre-warmed exactly like :func:`build_plan_cached` (backend artifact +
    batchability summary computed before the plan is published)."""
    from ..gpusim import analyze_batchability, get_backend
    from ..obs import get_tracer
    from ..perf import default_plan_cache

    cache = default_plan_cache()
    key = segmented_plan_key(pre, version, lengths, tunables, backend=backend)
    plan = cache.get(key)
    if plan is None:
        tracer = get_tracer()
        start = time.perf_counter()
        with tracer.span(
            "plan.build.segmented",
            version=version.identifier,
            segments=len(tuple(lengths)),
        ) as span:
            plan = build_segmented_plan(pre, version, lengths, tunables)
            span.set(name_=plan.name, steps=len(plan.steps))
        with tracer.span(
            "plan.compile", version=version.identifier, n=int(plan.meta["n"])
        ) as span:
            prepare = get_backend(backend).prepare
            for step in plan.kernel_steps():
                prepare(step.kernel)
                analyze_batchability(step.kernel)
            span.set(backend=backend)
        cache.put(key, plan, cost_s=time.perf_counter() - start)
    return plan


def execute_segmented_plan(
    plan: Plan,
    arrays,
    mode: str = "auto",
    backend: str = "compiled",
):
    """Upload segment data + metadata, run the fused plan, and return
    ``(per_segment_results, plan_profile)``.

    ``arrays`` must match the lengths the plan was built for; the
    results array has one element per segment in request order."""
    from ..gpusim import Executor

    lengths = plan.meta["lengths"]
    if [len(a) for a in arrays] != list(lengths):
        raise ValueError(
            f"segment data lengths {[len(a) for a in arrays]} do not match "
            f"plan lengths {list(lengths)}"
        )
    dtype = np.dtype(plan.meta["dtype"])
    executor = Executor(mode=mode, backend=backend)
    device = executor.device
    total = int(plan.meta["n"])
    if total:
        packed = np.concatenate(
            [np.asarray(a, dtype=dtype) for a in arrays if len(a)]
        )
        device.upload("in", packed)
    for name, values in plan.meta["uploads"].items():
        if values:
            device.upload(name, np.asarray(values, dtype=np.int32))
    profile = executor.run_plan(plan)
    results = device.download("out")[: plan.meta["num_segments"]]
    return results, profile


# ---------------------------------------------------------------------
# kernel construction
# ---------------------------------------------------------------------


def _segment_prologue(b, layout_has_coarsen: bool):
    """Emit the per-block segment binding; returns the shared registers.

    Every quantity loaded from the metadata buffers lands in a float64
    register; the arithmetic below is exact for any int32 value."""
    tid = b.special("tid")
    ctaid = b.special("ctaid")
    sid = b.ld_global("seg_map", ctaid)
    off = b.ld_global("seg_off", sid)
    slen = b.ld_global("seg_len", sid)
    first = b.ld_global("seg_first", sid)
    epb = b.ld_global("seg_epb", sid)
    local = b.binop("sub", ctaid, first)
    lbase = b.binop("mul", local, epb)
    remaining = b.binop("sub", slen, lbase)
    clamped = b.binop("max", remaining, Imm(0))
    kcount = b.binop("min", clamped, epb)
    gbase = b.binop("add", off, lbase)
    coarsen = b.ld_global("seg_coarsen", sid) if layout_has_coarsen else None
    return tid, sid, gbase, kcount, coarsen


def _build_segmented_main_kernel(pre, version, layout, identity) -> Kernel:
    """The fused analogue of ``synthesize._build_main_kernel``: the same
    block-level reduction, with the grid-level sub-container resolved
    from the segment metadata instead of launch constants."""
    b = IRBuilder()
    block = layout.block
    is_compound = version.block_kind != "coop"
    tid, sid, gbase, kcount, coarsen = _segment_prologue(b, is_compound)
    gstride = Imm(1)  # tile grid pattern only

    if not is_compound:
        coop = pre.coop_variant(version.combine)
        binding = GlobalView(
            buf="in", base=gbase, stride=gstride, size=kcount, size_static=block
        )
        compiler = CodeletToVIR(
            b, coop.codelet, binding, identity=identity, prefix="blk"
        )
        ret = compiler.compile()
        shared = compiler.shared_decls
        meta = {
            "load_pattern": "scalar",
            "uses_shuffle": coop.uses_shuffle,
            "uses_shared_atomic": coop.uses_shared_atomic,
            "cross_block_interleaved": False,
        }
    else:
        ret, shared, meta = _compile_segmented_compound(
            pre, version, b, block, gbase, kcount, coarsen, identity
        )
    meta["segmented"] = True

    buffers = ["in", "seg_map", "seg_off", "seg_len", "seg_first", "seg_epb"]
    if is_compound:
        buffers.append("seg_coarsen")
    is_zero = b.binop("eq", tid, 0)
    if version.final_combine == "global_atomic":
        with b.if_(is_zero):
            b.atom_global(pre.reduction_op, "out", sid, ret)
        buffers.append("out")
    else:
        ctaid = b.special("ctaid")
        with b.if_(is_zero):
            b.st_global("partials", ctaid, ret)
        buffers.append("partials")

    label = fig6_label(version)
    name = f"segreduce_{label}" if label else "segreduce_block"
    return Kernel(
        name=name,
        params=[],
        buffers=buffers,
        shared=shared,
        body=b.finish(),
        meta=meta,
    )


def _compile_segmented_compound(
    pre, version, b, block, gbase, kcount, coarsen, identity
):
    """``synthesize._compile_compound_block`` with the coarsening factor
    in a register (it varies per segment) instead of an immediate."""
    tid = b.special("tid")

    if version.block_pattern == "tile":
        k0 = b.binop("mul", tid, coarsen)
        t_remaining = b.binop("sub", kcount, k0)
        t_clamped = b.binop("max", t_remaining, Imm(0))
        tcount = b.binop("min", t_clamped, coarsen)
        tstride = Imm(1)
    else:  # stride: k = tid + j * block
        k0 = b.mov(tid)
        numer = b.binop("sub", kcount, tid)
        numer = b.binop("add", numer, Imm(block - 1))
        numer = b.binop("max", numer, Imm(0))
        # kcount lives in a float64 register here, so integer `div`
        # semantics must be requested explicitly.
        tcount = b.binop("idiv", numer, Imm(block))
        tstride = Imm(block)

    tbase = b.binop("add", gbase, k0)

    scalar_info = pre.analyzed.find(pre.spectrum, "scalar")
    thread_view = GlobalView(
        buf="in", base=tbase, stride=tstride, size=tcount, size_static=None
    )
    thread_compiler = CodeletToVIR(
        b, scalar_info.codelet, thread_view, identity=identity, prefix="thr"
    )
    val = thread_compiler.compile()

    combine = pre.coop_variant(version.combine)
    partials = RegisterPartials(value=val, count=block)
    combine_compiler = CodeletToVIR(
        b, combine.codelet, partials, identity=identity, prefix="cmb"
    )
    ret = combine_compiler.compile()
    shared = thread_compiler.shared_decls + combine_compiler.shared_decls
    meta = {
        "load_pattern": "scalar",
        "uses_shuffle": combine.uses_shuffle,
        "uses_shared_atomic": combine.uses_shared_atomic,
        "cross_block_interleaved": False,
    }
    return ret, shared, meta


def _build_segmented_second_kernel(pre, identity) -> Kernel:
    """Per-segment partials reduction: block ``s`` folds the partials of
    segment ``s`` exactly like ``synthesize._build_second_kernel`` folds
    a standalone launch's partials (same block size, same stride walk,
    same cooperative combine — so the same rounding order)."""
    b = IRBuilder()
    tid = b.special("tid")
    sid = b.special("ctaid")
    block = _SECOND_KERNEL_BLOCK

    first = b.ld_global("seg_first", sid)
    nxt = b.binop("add", sid, Imm(1))
    after = b.ld_global("seg_first", nxt)
    nblocks = b.binop("sub", after, first)

    numer = b.binop("sub", nblocks, tid)
    numer = b.binop("add", numer, Imm(block - 1))
    numer = b.binop("max", numer, Imm(0))
    tcount = b.binop("idiv", numer, Imm(block))
    base = b.binop("add", first, tid)
    scalar_info = pre.analyzed.find(pre.spectrum, "scalar")
    view = GlobalView(
        buf="partials", base=base, stride=Imm(block), size=tcount,
        size_static=None,
    )
    thread_compiler = CodeletToVIR(
        b, scalar_info.codelet, view, identity=identity, prefix="thr2"
    )
    val = thread_compiler.compile()

    combine = pre.coop_variant("V")
    partials = RegisterPartials(value=val, count=block)
    combine_compiler = CodeletToVIR(
        b, combine.codelet, partials, identity=identity, prefix="cmb2"
    )
    ret = combine_compiler.compile()

    is_zero = b.binop("eq", tid, 0)
    with b.if_(is_zero):
        b.st_global("out", sid, ret)
    return Kernel(
        name="segreduce_partials",
        params=[],
        buffers=["partials", "seg_first", "out"],
        shared=thread_compiler.shared_decls + combine_compiler.shared_decls,
        body=b.finish(),
        meta={"load_pattern": "scalar", "segmented": True},
    )
