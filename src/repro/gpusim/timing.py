"""Analytic timing model fed by simulator event counts.

``kernel_time`` converts one launch's event profile into seconds on a
target :class:`~repro.gpusim.arch.Architecture`; ``plan_time`` adds host
overheads (kernel launches, memsets) across a plan's steps.

The model is deliberately mechanistic: every term corresponds to a
microarchitectural effect the paper's analysis relies on.

* **Issue/compute** — warp-instructions × per-class CPI, spread over the
  SMs actually occupied, with a latency penalty when too few warps are
  resident to hide pipeline latency (this is what makes low-occupancy
  launches slow, Section III-B/III-C's motivation for smaller shared
  footprints).
* **Memory** — bytes moved at segment granularity over DRAM bandwidth,
  scaled by an achieved-efficiency factor per load pattern (scalar /
  vectorized / staged). CUB's vector-load advantage for large arrays and
  the Kokkos staged kernels' advantage (Section IV-C) enter here.
* **Shared atomics** — native single-op cost on Maxwell/Pascal; Kepler
  pays the software lock-update-unlock loop per serialized round
  (Section II-A-2), plus a block-level critical path when many updates
  hit one accumulator.
* **Global atomics** — cheap when spread out, serialized at the L2 when
  they hit one address (the per-block final combine).
* **Launch overhead** — per kernel launch; dominates small arrays and is
  why single-kernel atomic variants win there (Section IV-B's pruning).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .arch import Architecture
from .events import PlanProfile, StepProfile

#: Host cost of a cudaMemset-style fill, seconds.
MEMSET_OVERHEAD_S = 1.5e-6

#: Fraction of the non-dominant timing terms that fails to overlap with
#: the dominant one (imperfect compute/memory overlap).
OVERLAP_LEAK = 0.12


@dataclass
class TimeBreakdown:
    """Per-launch timing terms (seconds), for inspection and tests."""

    kernel: str
    launch_overhead: float = 0.0
    compute: float = 0.0
    memory: float = 0.0
    atomic_global: float = 0.0
    atomic_shared_block: float = 0.0
    total: float = 0.0
    detail: dict = field(default_factory=dict)


def kernel_time(
    profile: StepProfile, arch: Architecture, load_pattern: str = None
) -> TimeBreakdown:
    """Seconds one kernel launch takes on ``arch`` (excluding launch cost)."""
    events = profile.scaled()
    block = profile.block
    grid = profile.grid
    warps_per_block = profile.warps_per_block
    total_warps = max(1, grid * warps_per_block)

    blocks_per_sm = arch.max_resident_blocks(block, profile.shared_bytes)
    if blocks_per_sm == 0:
        raise ValueError(
            f"kernel {profile.kernel_name!r} cannot launch: block={block}, "
            f"shared={profile.shared_bytes}B exceed per-SM limits of {arch.name}"
        )
    sm_used = min(arch.sm_count, grid)
    resident_warps = min(
        blocks_per_sm * warps_per_block,
        arch.max_warps_per_sm,
        math.ceil(grid / sm_used) * warps_per_block,
    )
    waves = math.ceil(grid / (blocks_per_sm * arch.sm_count))

    # -- instruction issue cycles -------------------------------------
    # Dependent-issue instructions (ALU, shuffles, memory instruction
    # issue, barriers): with few resident warps their pipeline latency
    # cannot be hidden, so the effective per-instruction cost rises from
    # 1/IPC to latency/resident_warps (classic SIMT latency-hiding).
    # Kept as a per-class dict so the explain layer can attribute the
    # compute term back to individual counters (repro.obs.explain).
    issue_by_class = {
        "alu": events.get("inst.alu", 0) * arch.alu_cpi,
        "shfl": events.get("inst.shfl", 0) * arch.shfl_cpi,
        "global_issue": (
            events.get("inst.ld.global", 0) + events.get("inst.st.global", 0)
        ) * arch.ld_global_cpi,
        "shared": (
            events.get("inst.ld.shared", 0)
            + events.get("inst.st.shared", 0)
            + events.get("mem.shared.replays", 0)
        ) * arch.ld_shared_cpi,
        "barrier": events.get("inst.bar", 0) * warps_per_block * arch.bar_cpi,
    }
    issue = sum(issue_by_class.values())

    # Atomic operations retire at the atomic units' throughput — they are
    # fire-and-forget, so they do not pay the dependence-latency penalty.
    atomic_issue = (
        events.get("atom.global.ops", 0) / arch.warp_size
    ) * arch.global_atomic_cpi
    if arch.native_shared_atomics:
        atomic_issue += events.get("atom.shared.warp_serial", 0) * (
            arch.shared_atomic_cpi
        )
    else:
        # Kepler's software lock-update-unlock loop: every serialized
        # round replays the branchy lock sequence [13].
        atomic_issue += events.get("atom.shared.warp_serial", 0) * (
            arch.shared_atomic_sw_base + arch.shared_atomic_sw_retry
        )

    per_instr_cost = max(
        1.0 / arch.ipc_per_sm, arch.pipeline_latency / max(1, resident_warps)
    )
    compute_cycles = (issue / sm_used) * per_instr_cost + (
        atomic_issue / sm_used
    ) / arch.ipc_per_sm
    compute_s = compute_cycles / (arch.clock_ghz * 1e9)

    # -- memory ---------------------------------------------------------
    pattern = load_pattern or profile.meta.get("load_pattern", "scalar")
    efficiency = _pattern_efficiency(arch, pattern)
    bytes_moved = events.get("mem.global.bytes", 0)
    # Grid-strided distributions look scattered per warp, but concurrent
    # blocks interleave to cover whole 128B segments, which the L2
    # reassembles into dense DRAM traffic. When the synthesizer marks a
    # kernel cross-block interleaved and enough blocks run concurrently,
    # the effective traffic drops to the useful bytes.
    if profile.meta.get("cross_block_interleaved"):
        concurrent = blocks_per_sm * arch.sm_count
        elems_per_segment = 32  # 128B / 4B elements
        if concurrent >= elems_per_segment:
            bytes_moved = max(
                events.get("mem.global.bytes_useful", 0),
                bytes_moved / elems_per_segment,
            )
    memory_s = bytes_moved / (arch.mem_bandwidth_gbps * 1e9 * efficiency)

    # -- global atomic same-address serialization -----------------------
    same_addr = events.get("atom.global.max_same_addr", 0)
    atomic_global_s = (
        same_addr * arch.global_atomic_same_addr_cpi / (arch.clock_ghz * 1e9)
    )

    # -- shared atomic block critical path -------------------------------
    executed_blocks = max(1, events.get("blocks", grid))
    per_block_serial = events.get("atom.shared.block_max_same_addr", 0) / executed_blocks
    if arch.native_shared_atomics:
        per_round = arch.shared_atomic_same_addr_cpi
    else:
        per_round = arch.shared_atomic_sw_base + arch.shared_atomic_sw_retry
    atomic_shared_s = per_block_serial * per_round * waves / (arch.clock_ghz * 1e9)

    # Pipelines overlap compute with memory and atomic traffic, but not
    # perfectly: the non-dominant terms leak a fraction into the total.
    # This keeps the model sensitive to instruction-count differences
    # between versions even at memory-bound sizes.
    terms = (compute_s, memory_s, atomic_global_s, atomic_shared_s)
    dominant = max(terms)
    total = dominant + OVERLAP_LEAK * (sum(terms) - dominant)
    return TimeBreakdown(
        kernel=profile.kernel_name,
        compute=compute_s,
        memory=memory_s,
        atomic_global=atomic_global_s,
        atomic_shared_block=atomic_shared_s,
        total=total,
        detail={
            "issue_cycles": issue,
            "issue_by_class": issue_by_class,
            "atomic_issue_cycles": atomic_issue,
            "per_instr_cost": per_instr_cost,
            "waves": waves,
            "resident_warps": resident_warps,
            "blocks_per_sm": blocks_per_sm,
            "sm_used": sm_used,
            "pattern": pattern,
            "efficiency": efficiency,
            "bytes": bytes_moved,
            "total_warps": total_warps,
        },
    )


def _pattern_efficiency(arch: Architecture, pattern: str) -> float:
    if pattern == "vector":
        return arch.dram_efficiency_vector
    if pattern == "staged":
        return arch.extra.get("dram_efficiency_staged", 0.97)
    if pattern == "scalar":
        return arch.dram_efficiency_scalar
    raise ValueError(f"unknown load pattern {pattern!r}")


def plan_time(
    profile: PlanProfile,
    arch: Architecture,
    num_memsets: int = 0,
    extra_host_overhead_s: float = 0.0,
) -> float:
    """Total seconds for a plan: kernels + launch and memset overheads."""
    total = extra_host_overhead_s + num_memsets * MEMSET_OVERHEAD_S
    for step in profile.steps:
        breakdown = kernel_time(step, arch)
        total += arch.kernel_launch_overhead_us * 1e-6 + breakdown.total
    return total


def plan_breakdown(profile: PlanProfile, arch: Architecture) -> list:
    """Per-launch :class:`TimeBreakdown` list, with launch overhead filled."""
    results = []
    for step in profile.steps:
        breakdown = kernel_time(step, arch)
        breakdown.launch_overhead = arch.kernel_launch_overhead_us * 1e-6
        breakdown.total += breakdown.launch_overhead
        results.append(breakdown)
    return results


# ---------------------------------------------------------------------
# additive component decomposition (consumed by repro.obs.explain)
# ---------------------------------------------------------------------

#: Order in which timing terms claim the "dominant" slot when tied —
#: fixed so the decomposition is deterministic for a given profile.
_TERM_ORDER = ("compute", "memory", "atomic_global", "atomic_shared")


def kernel_components(
    profile: StepProfile, arch: Architecture, load_pattern: str = None
) -> dict:
    """One launch's modelled time as an **exactly additive** component map.

    :func:`kernel_time` combines its four terms nonlinearly (the dominant
    term counts in full, the rest leak :data:`OVERLAP_LEAK`), which makes
    "which counter accounts for the delta" ill-posed on the raw terms.
    This helper bakes the dominant/leak weighting into each term — the
    dominant term keeps weight 1, every other weight ``OVERLAP_LEAK`` —
    and then splits the compute term linearly over its per-instruction-
    class issue cycles.  The result: ``sum(components.values())`` equals
    ``kernel_time(...).total`` to float round-off, so per-component
    deltas between two variants sum to the model's timing delta.
    """
    breakdown = kernel_time(profile, arch, load_pattern)
    detail = breakdown.detail
    terms = {
        "compute": breakdown.compute,
        "memory": breakdown.memory,
        "atomic_global": breakdown.atomic_global,
        "atomic_shared": breakdown.atomic_shared_block,
    }
    dominant = max(_TERM_ORDER, key=lambda name: (terms[name], -_TERM_ORDER.index(name)))
    weight = {
        name: 1.0 if name == dominant else OVERLAP_LEAK
        for name in _TERM_ORDER
    }
    components = {}
    # compute splits linearly over issue cycles per instruction class.
    sm_used = detail["sm_used"]
    per_instr_cost = detail["per_instr_cost"]
    clock_hz = arch.clock_ghz * 1e9
    for cls, cycles in detail["issue_by_class"].items():
        components[f"compute.{cls}"] = (
            weight["compute"] * (cycles / sm_used) * per_instr_cost / clock_hz
        )
    components["compute.atomic_issue"] = (
        weight["compute"]
        * (detail["atomic_issue_cycles"] / sm_used)
        / arch.ipc_per_sm
        / clock_hz
    )
    components["memory.dram"] = weight["memory"] * breakdown.memory
    components["atomic.global_serial"] = (
        weight["atomic_global"] * breakdown.atomic_global
    )
    components["atomic.shared_serial"] = (
        weight["atomic_shared"] * breakdown.atomic_shared_block
    )
    return components


def plan_components(
    profile: PlanProfile,
    arch: Architecture,
    num_memsets: int = 0,
    extra_host_overhead_s: float = 0.0,
) -> dict:
    """Whole-plan additive components: kernels + launch/host overheads.

    ``sum(plan_components(...).values())`` equals
    :func:`plan_time` with the same arguments to float round-off.
    """
    total = {}
    for step in profile.steps:
        for name, seconds in kernel_components(step, arch).items():
            total[name] = total.get(name, 0.0) + seconds
    total["launch.overhead"] = (
        len(profile.steps) * arch.kernel_launch_overhead_us * 1e-6
    )
    host = extra_host_overhead_s + num_memsets * MEMSET_OVERHEAD_S
    if host:
        total["host.overhead"] = host
    return total
