"""Functional SIMT execution of VIR kernels with event profiling.

Execution model
---------------

A block executes in **lockstep**: every VIR instruction is applied to all
threads of the block at once as a numpy vector operation, restricted to
the currently *active lanes*. Structured ``If``/``While`` regions narrow
the active mask exactly the way SIMT hardware's reconvergence stack does,
so divergence, predication and warp-level operations (shuffles, atomics)
behave like the real machine.

Blocks execute in one of two modes:

* **sequential** — one block at a time through :class:`_BlockRun`; global
  atomics are trivially atomic across blocks and later blocks observe
  earlier blocks' global stores (the reference semantics);
* **batched** — all (or a memory-capped chunk of) blocks of the launch
  as a single 2-D ``blocks × threads`` numpy batch through
  :class:`_BatchedRun`. Reduction kernels have block-uniform control
  flow, so every per-thread vector op, mask and event counter simply
  gains a leading block axis; one pass over the instruction stream then
  services every block at once, which removes the dominant Python
  interpretation overhead.

:func:`analyze_batchability` decides per kernel whether the batched mode
is observationally equivalent to the sequential reference — it falls
back automatically when a kernel reads a global buffer it also writes
(cross-block read-after-write), stores to global memory inside a loop,
or issues order-sensitive floating-point global atomics from inside a
loop / from multiple sites. On batchable kernels both modes produce
bit-identical numeric results **and** bit-identical event counters
(verified exhaustively by ``tests/gpusim/test_batched_engine.py``).

Profiling counts warp-instructions (one unit per warp with ≥1 active
lane), global-memory transactions at 128-byte-segment granularity
(coalescing), shared-memory bank-conflict replays, atomic same-address
serialization, divergent branches and barriers — the inputs of the
timing model in :mod:`repro.gpusim.timing`.

Large launches can be *sampled*: only a representative subset of blocks
executes and counters are scaled to the full grid. Sampled runs produce
profiles, not valid numerical results.
"""

from __future__ import annotations

import weakref

import numpy as np

from ..obs import default_metrics, get_tracer
from ..obs.fragments import FragmentProfiler, instrument_trace
from ..vir.instructions import (
    AtomGlobal,
    AtomShared,
    Bar,
    BinOp,
    Comment,
    If,
    Imm,
    LdGlobal,
    LdParam,
    LdShared,
    Mov,
    Reg,
    Sel,
    Shfl,
    Special,
    StGlobal,
    StShared,
    UnOp,
    While,
)
from ..vir.program import KernelStep, MemsetStep, Plan
from .backend import backend_names, get_backend
from .device import Device
from .events import PlanProfile, StepProfile

WARP = 32

#: Cap on how many distinct atomic addresses are tracked exactly per step.
_ATOMIC_TRACK_CAP = 4096


class SimulationError(Exception):
    """Raised when a kernel does something invalid (OOB access, etc.)."""


_CMP_LOGICAL = frozenset(
    {"lt", "le", "gt", "ge", "eq", "ne", "land", "lor"}
)


def _coerce_bool(value):
    """C semantics: predicates participate in arithmetic as 0/1 ints."""
    if isinstance(value, np.ndarray) and value.dtype == np.bool_:
        return value.astype(np.int64)
    if isinstance(value, (bool, np.bool_)):
        return int(value)
    return value


def _np_binop(op, a, b):
    if op not in _CMP_LOGICAL:
        a = _coerce_bool(a)
        b = _coerce_bool(b)
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return a * b
    if op == "div":
        if _is_integer(a) and _is_integer(b):
            return _int_div(a, b)
        return a / b
    if op == "idiv":
        return np.floor_divide(a, b)
    if op == "mod":
        return a % b
    if op == "min":
        return np.minimum(a, b)
    if op == "max":
        return np.maximum(a, b)
    if op == "and":
        return np.bitwise_and(a, b)
    if op == "or":
        return np.bitwise_or(a, b)
    if op == "xor":
        return np.bitwise_xor(a, b)
    if op == "shl":
        return np.left_shift(a, b)
    if op == "shr":
        return np.right_shift(a, b)
    if op == "lt":
        return a < b
    if op == "le":
        return a <= b
    if op == "gt":
        return a > b
    if op == "ge":
        return a >= b
    if op == "eq":
        return a == b
    if op == "ne":
        return a != b
    if op == "land":
        return np.logical_and(a, b)
    if op == "lor":
        return np.logical_or(a, b)
    raise SimulationError(f"unknown binary op {op!r}")


def _is_integer(value) -> bool:
    if isinstance(value, np.ndarray):
        return value.dtype.kind in "iub"
    return isinstance(value, (int, np.integer, bool, np.bool_))


def _int_div(a, b):
    """C-style truncating integer division (valid for our kernels, which
    only divide non-negative quantities)."""
    return np.floor_divide(a, b)


_ATOMIC_UFUNC = {
    "add": np.add,
    "sub": np.subtract,
    "min": np.minimum,
    "max": np.maximum,
}


#: Execution-mode names accepted by :class:`Executor`.
EXECUTION_MODES = ("auto", "batched", "sequential")

#: Executor backends, from the registry in :mod:`repro.gpusim.backend`:
#: ``compiled`` runs kernels as pre-compiled closure traces
#: (:mod:`repro.gpusim.compile`), ``interpreted`` is the reference
#: per-instruction dispatch path, ``vector`` executes fused-region
#: mega-expressions (:mod:`repro.gpusim.fuse`). All are bit-identical.
EXECUTION_BACKENDS = backend_names()


def parse_engine_spec(spec):
    """Parse an engine spec string into ``(mode, backend)``.

    Accepts a mode (``auto`` | ``batched`` | ``sequential``), a
    registered backend name (see
    :func:`repro.gpusim.backend.backend_names`), or a hyphenated
    combination such as ``sequential-interpreted``; omitted parts
    default to ``auto`` and ``compiled``.  A backend that is registered
    but unavailable on this machine (e.g. ``native`` without a C
    compiler) is rejected here with the reason, so CLI errors say
    exactly what is missing.
    """
    mode = backend = None
    backends = backend_names()
    for part in str(spec).split("-"):
        if part in EXECUTION_MODES and mode is None:
            mode = part
        elif part in backends and backend is None:
            backend = part
        else:
            raise ValueError(
                f"unknown engine {spec!r}: expected a mode in "
                f"{EXECUTION_MODES} and/or a backend in "
                f"{backends}, hyphen-separated"
            )
    if backend is not None:
        get_backend(backend)  # raises with a reason when unavailable
    return mode or "auto", backend or "compiled"


def memoize_by_identity(memo: dict, obj, build):
    """Memoize ``build(obj)`` keyed by ``id(obj)``, guarded by a weakref
    so a recycled id can never return a stale value. The cached value
    must not strongly reference ``obj``, or entries would never evict.
    """
    key = id(obj)
    entry = memo.get(key)
    if entry is not None and entry[0]() is obj:
        return entry[1]
    value = build(obj)
    ref = weakref.ref(obj, lambda _ref, _key=key: memo.pop(_key, None))
    memo[key] = (ref, value)
    return value


#: Launch-hot caches over immutable-once-executed objects (see
#: :func:`memoize_by_identity` for the recycled-id guard).
_PLAN_VALIDATED = {}
_REGISTER_COUNTS = {}


def _validate_plan(plan):
    plan.validate()
    return True


def _count_registers(kernel):
    return kernel.register_count()


def _walk_while_depth(body, in_while=False):
    """Yield ``(instr, inside_a_While)`` for every instruction in a body."""
    for instr in body:
        yield instr, in_while
        if isinstance(instr, If):
            yield from _walk_while_depth(instr.then, in_while)
            yield from _walk_while_depth(instr.otherwise, in_while)
        elif isinstance(instr, While):
            yield from _walk_while_depth(instr.cond_block, True)
            yield from _walk_while_depth(instr.body, True)


#: id(kernel) -> (weakref, access summary); see memoize_by_identity.
_ACCESS_MEMO = {}


def _build_access_summary(kernel) -> dict:
    """One full tree walk collecting the global-memory access facts the
    batchability verdict needs. Walked once per kernel object — the
    executor re-resolves the verdict on every launch, and re-walking the
    tree each time dominated small-launch dispatch."""
    loads = set()
    stores = set()
    store_in_while = None
    atomics = {}
    for instr, in_while in _walk_while_depth(kernel.body):
        if isinstance(instr, LdGlobal):
            loads.add(instr.buf)
        elif isinstance(instr, StGlobal):
            stores.add(instr.buf)
            if in_while and store_in_while is None:
                store_in_while = instr.buf
        elif isinstance(instr, AtomGlobal):
            entry = atomics.setdefault(
                instr.buf, {"count": 0, "in_while": False, "ops": set()}
            )
            entry["count"] += 1
            entry["in_while"] = entry["in_while"] or in_while
            entry["ops"].add(instr.op)
    return {
        "loads": loads,
        "stores": stores,
        "store_in_while": store_in_while,
        "atomics": atomics,
    }


def _kernel_access_summary(kernel) -> dict:
    return memoize_by_identity(_ACCESS_MEMO, kernel, _build_access_summary)


def analyze_batchability(kernel, device: Device = None):
    """Can ``kernel`` run batched with sequential-identical observables?

    Returns ``(ok, reason)``. The batched engine preserves block-major
    ordering for every *single* instruction (numpy applies fancy-indexed
    stores and ``ufunc.at`` atomics in flattened block-major order), so
    the only hazards are *cross-instruction* interleavings:

    * a kernel that loads a global buffer it also stores/atomically
      updates — later blocks would observe earlier blocks' writes under
      sequential execution but not under lockstep batching;
    * global stores inside a ``While`` — iteration-major store order
      differs from the sequential block-major order when blocks overlap;
    * floating-point ``add``/``sub`` global atomics issued from inside a
      ``While`` or from more than one site per buffer — rounding depends
      on the cross-block interleaving. Integer and min/max atomics are
      order-independent and stay batchable.

    The kernel-tree walk is memoized per kernel object; only the cheap
    device-dependent dtype check runs per call.
    """
    summary = _kernel_access_summary(kernel)
    if summary["store_in_while"] is not None:
        return False, f"global store inside a loop ({summary['store_in_while']!r})"
    atomics = summary["atomics"]
    hazard = summary["loads"] & (summary["stores"] | set(atomics))
    if hazard:
        return False, f"load/store hazard on {sorted(hazard)}"
    for buf, entry in atomics.items():
        dtype_kind = "f"
        if device is not None:
            try:
                dtype_kind = device.get(buf).dtype.kind
            except Exception:
                dtype_kind = "f"
        order_sensitive = dtype_kind == "f" and bool(entry["ops"] & {"add", "sub"})
        if order_sensitive and (entry["in_while"] or entry["count"] > 1):
            return False, f"order-sensitive float atomics on {buf!r}"
    return True, "block-uniform"


#: Shuffle widths hardware accepts (power-of-two warp segments). The
#: instruction dataclass validates these at construction; the engines
#: re-validate at execution time so hand-built or mutated instructions
#: fail identically under the interpreted and compiled backends.
_SHFL_WIDTHS = frozenset({1, 2, 4, 8, 16, 32})


class Executor:
    """Executes :class:`~repro.vir.program.Plan` objects on a device."""

    #: Iteration cap per structured loop — a backstop against kernels
    #: that never converge (well above any legitimate coarsening loop).
    DEFAULT_LOOP_CAP = 2_000_000

    #: Cap on simulated lanes (blocks × threads) held in memory at once
    #: by the batched mode; larger launches run in block-ordered chunks.
    BATCH_LANES = 1 << 17

    def __init__(
        self,
        device: Device = None,
        check_races: bool = False,
        loop_cap: int = None,
        mode: str = "auto",
        backend: str = "compiled",
        sanitizer=None,
    ):
        if mode not in EXECUTION_MODES:
            raise ValueError(
                f"mode must be one of {EXECUTION_MODES}, got {mode!r}"
            )
        #: Backend object resolved from the registry (raises ValueError
        #: for unknown names); ``self.backend`` keeps the plain name for
        #: profile metadata.
        self._backend = get_backend(backend)
        self.device = device if device is not None else Device()
        self.check_races = check_races
        self.loop_cap = loop_cap or self.DEFAULT_LOOP_CAP
        self.mode = mode
        self.backend = backend
        #: Optional :class:`repro.sanitize.Sanitizer`. When set, every
        #: launch feeds shadow-state hooks (memory accesses, barriers,
        #: shuffles) from both run states — results and event counters
        #: are unaffected.
        self.sanitizer = sanitizer

    # -- plan level -----------------------------------------------------

    def run_plan(self, plan: Plan, sample_limit: int = None) -> PlanProfile:
        """Run every step of a plan.

        ``sample_limit`` bounds how many blocks of each launch actually
        execute; when it kicks in, the profile is marked sampled and the
        numeric result is not meaningful.
        """
        # Kernels and plans are immutable once executed (the compile /
        # fuse / native-lowering memos already rely on this), so the
        # structural validation walk runs once per plan object rather
        # than on every launch.
        memoize_by_identity(_PLAN_VALIDATED, plan, _validate_plan)
        dtype = np.dtype(plan.meta.get("dtype", "float32"))
        for name, size in plan.scratch.items():
            if name not in self.device:
                self.device.alloc(name, size, dtype=dtype)
        profile = PlanProfile(plan_name=plan.name)
        sampled_any = False
        for step in plan.steps:
            if isinstance(step, MemsetStep):
                self.device.memset(step.buffer, step.value)
                continue
            step_profile = self.run_kernel(step, sample_limit=sample_limit)
            sampled_any = sampled_any or bool(step_profile.sampled_blocks)
            profile.steps.append(step_profile)
        if not sampled_any:
            result_buf = self.device.get(plan.result_buffer)
            index = plan.result_index
            if not 0 <= index < len(result_buf):
                raise SimulationError(
                    f"plan {plan.name!r}: result index {index} out of range"
                )
            profile.result = float(result_buf[index])
        profile.meta["sampled"] = sampled_any
        return profile

    # -- kernel level ------------------------------------------------------

    def execution_mode(self, step: KernelStep) -> str:
        """Resolve the execution mode used for one launch."""
        if self.mode != "auto":
            return self.mode
        if step.grid <= 1:
            return "sequential"  # nothing to batch
        ok, _ = analyze_batchability(step.kernel, self.device)
        return "batched" if ok else "sequential"

    def run_kernel(self, step: KernelStep, sample_limit: int = None) -> StepProfile:
        kernel = step.kernel
        profile = StepProfile(
            kernel_name=kernel.name,
            grid=step.grid,
            block=step.block,
            shared_bytes=kernel.shared_bytes(),
            registers=memoize_by_identity(
                _REGISTER_COUNTS, kernel, _count_registers
            ),
            meta=dict(kernel.meta),
        )
        if sample_limit is not None and step.grid > sample_limit:
            block_ids = np.unique(
                np.linspace(0, step.grid - 1, sample_limit).astype(np.int64)
            )
            profile.sampled_blocks = len(block_ids)
        else:
            block_ids = np.arange(step.grid, dtype=np.int64)

        mode = self.execution_mode(step)
        profile.meta["exec.mode"] = mode
        profile.meta["exec.backend"] = self.backend
        trace = self._backend.trace(kernel)
        tracer = get_tracer()
        fragprof = None
        if tracer.enabled and self.backend in ("vector", "native"):
            # Per-launch trace copy with wall-clock shims on the
            # top-level fragments; the backend's memoized trace and the
            # disabled fast path are untouched.
            fragprof = FragmentProfiler()
            trace = instrument_trace(trace, fragprof)
        with tracer.span(
            "exec.launch",
            kernel=kernel.name,
            grid=step.grid,
            block=step.block,
            mode=mode,
            backend=self.backend,
            sampled_blocks=profile.sampled_blocks,
        ) as span:
            atomic_addr_counts = {}
            san = None
            if self.sanitizer is not None:
                san = self.sanitizer.begin_kernel(step, self.device)
            if mode == "batched":
                batch = max(1, self.BATCH_LANES // max(1, step.block))
                for start in range(0, len(block_ids), batch):
                    chunk = _BatchedRun(
                        self,
                        step,
                        block_ids[start : start + batch],
                        profile.events,
                        atomic_addr_counts,
                        trace=trace,
                        san=san,
                        fragprof=fragprof,
                    )
                    chunk.run()
            else:
                for block_id in block_ids:
                    block = _BlockRun(
                        self,
                        step,
                        int(block_id),
                        profile.events,
                        atomic_addr_counts,
                        trace=trace,
                        san=san,
                        fragprof=fragprof,
                    )
                    block.run()

            executed_blocks = profile.sampled_blocks or step.grid
            profile.events["blocks"] = executed_blocks
            profile.events["threads"] = executed_blocks * step.block
            profile.events["warps"] = executed_blocks * profile.warps_per_block

            if atomic_addr_counts:
                profile.events["atom.global.max_same_addr"] = (
                    self._launch_max_same_addr(atomic_addr_counts, profile, step)
                )
            span.set(events={k: int(v) for k, v in profile.events.items()})
            if fragprof is not None and fragprof.totals:
                span.set(**fragprof.span_args())
        # One grouped update: a snapshot must never observe the launch
        # counter without the launch's event totals (or vice versa).
        metrics = default_metrics()
        counters = {f"sim.{key}": int(value)
                    for key, value in profile.events.items()}
        counters[f"exec.launch.{mode}"] = 1
        metrics.record(counters=counters)
        return profile

    @staticmethod
    def _launch_max_same_addr(atomic_addr_counts, profile, step) -> int:
        """Launch-wide max atomic ops on one address, from the executed
        blocks' per-address ``[ops, first_block, cross_block]`` tallies.

        A *max* is not additive across blocks, so sampled launches must
        not be linearly extrapolated after the fact (see
        :meth:`StepProfile.scaled`). Instead the extrapolation happens
        here, per address, and only where it is justified: an address
        hit by **multiple** sampled blocks (the per-block final combine
        hitting ``out[0]``) grows with the grid, while an address owned
        by a single block keeps its measured count.
        """
        sampled = profile.sampled_blocks
        if sampled and sampled < step.grid:
            factor = step.grid / sampled
            return int(round(max(
                ops * factor if cross_block else ops
                for ops, _first, cross_block in atomic_addr_counts.values()
            )))
        return max(ops for ops, _first, _cross in atomic_addr_counts.values())


class _BlockRun:
    """Execution state of one block (registers, shared memory, masks)."""

    def __init__(self, executor, step, block_id, events, atomic_addr_counts,
                 trace=None, san=None, fragprof=None):
        self.executor = executor
        self.device = executor.device
        self.step = step
        self.kernel = step.kernel
        self.block_id = block_id
        self.nthreads = step.block
        self.shape = (step.block,)
        self.events = events
        self.atomic_addr_counts = atomic_addr_counts
        self.trace = trace
        self.fragprof = fragprof
        self.san = san
        self.regs = {}
        self.shared = {
            decl.name: np.zeros(decl.size, dtype=np.float64)
            for decl in self.kernel.shared
        }
        self.nwarps = (self.nthreads + WARP - 1) // WARP
        # padded lane->warp mapping for warp-granularity statistics
        self._warp_of_lane = np.arange(self.nthreads) // WARP
        #: Compiled-trace state: active-warp count / all-lanes-active of
        #: the current trace mask (None while interpreting), and a per-run
        #: cache for trace-invariant values (specials, params).
        self._cur_warps = None
        self._cur_all = None
        self._cache = {}

    # -- helpers -------------------------------------------------------

    def run(self) -> None:
        mask = np.ones(self.shape, dtype=bool)
        if self.trace is None:
            self._exec_body(self.kernel.body, mask)
        else:
            self._run_trace(self.trace, mask)

    def _active_warps(self, mask) -> int:
        if not mask.any():
            return 0
        return int(np.unique(self._warp_of_lane[mask]).size)

    def _count(self, key, mask) -> None:
        if self._cur_warps is not None:
            self.events[key] += self._cur_warps
            return
        warps = self._active_warps(mask)
        if warps:
            self.events[key] += warps

    def _bar(self, mask) -> None:
        self.events["inst.bar"] += 1
        if self.san is not None:
            self.san.on_bar(self, mask)

    def _count_loop_divergence(self, before, after) -> None:
        """A warp diverges at a loop back-edge test when some of its
        still-active lanes continue and others exit — the same "active
        lanes take both paths" rule :meth:`_exec_if` applies."""
        exited = before & ~after
        if not exited.any() or not after.any():
            return
        for warp in np.unique(self._warp_of_lane[before]):
            lanes = self._warp_of_lane == warp
            if (after & lanes).any() and (exited & lanes).any():
                self.events["branch.divergent"] += 1

    # -- compiled-trace execution (see repro.gpusim.compile) -----------

    def _run_trace(self, trace, mask) -> None:
        """Run a compiled closure trace under ``mask``: hoists the
        per-instruction ``mask.any()`` check and active-warp count to
        trace entry (straight-line code never changes the mask)."""
        if not mask.any():
            return
        saved = (self._cur_warps, self._cur_all)
        if mask.all():
            self._cur_all = True
            self._cur_warps = self.nwarps
        else:
            self._cur_all = False
            self._cur_warps = int(np.unique(self._warp_of_lane[mask]).size)
        try:
            for fn in trace:
                fn(self, mask)
        finally:
            self._cur_warps, self._cur_all = saved

    def _exec_if_c(self, cond_read, then_trace, else_trace, has_else, mask):
        cond = np.asarray(cond_read(self), dtype=bool)
        then_mask = mask & cond
        else_mask = mask & ~cond
        # A warp diverges when its active lanes take both paths.
        for warp in np.unique(self._warp_of_lane[mask]):
            lanes = self._warp_of_lane == warp
            if (then_mask & lanes).any() and (else_mask & lanes).any():
                self.events["branch.divergent"] += 1
        self._run_trace(then_trace, then_mask)
        if has_else:
            self._run_trace(else_trace, else_mask)

    def _exec_while_c(self, cond_trace, cond_read, body_trace, mask):
        active = mask.copy()
        iterations = 0
        while True:
            self._run_trace(cond_trace, active)
            cond = np.asarray(cond_read(self), dtype=bool)
            staying = active & cond
            self._count_loop_divergence(active, staying)
            active = staying
            if not active.any():
                return
            iterations += 1
            if iterations > self.executor.loop_cap:
                raise SimulationError(
                    f"kernel {self.kernel.name!r}: loop exceeded iteration cap "
                    f"({self.executor.loop_cap})"
                )
            self._run_trace(body_trace, active)

    def _read(self, operand, mask):
        if isinstance(operand, Imm):
            return operand.value
        if isinstance(operand, Reg):
            if operand.name not in self.regs:
                raise SimulationError(
                    f"kernel {self.kernel.name!r}: read of unwritten register "
                    f"{operand}"
                )
            return self.regs[operand.name]
        raise SimulationError(f"bad operand {operand!r}")

    def _write(self, reg: Reg, value, mask) -> None:
        value = np.asarray(value)
        if value.ndim == 0:
            value = np.broadcast_to(value, (self.nthreads,))
        current = self.regs.get(reg.name)
        all_active = self._cur_all
        if all_active is None:
            all_active = mask.all()
        if current is None or all_active:
            # Inactive lanes keep whatever the vectorized computation put
            # there — deterministic in the simulator, "undefined" on HW.
            if self._cur_warps is not None:
                # Compiled traces never mutate register arrays in place,
                # so aliasing is safe and the defensive copy is skipped.
                self.regs[reg.name] = value.astype(
                    _promote_dtype(value.dtype), copy=False
                )
            else:
                self.regs[reg.name] = np.array(
                    value, dtype=_promote_dtype(value.dtype)
                )
            return
        merged_dtype = np.result_type(current.dtype, value.dtype)
        if merged_dtype != current.dtype:
            current = current.astype(merged_dtype)
        else:
            current = current.copy()
        current[mask] = value[mask]
        self.regs[reg.name] = current

    # -- structured execution ----------------------------------------------

    def _exec_body(self, body, mask) -> None:
        for instr in body:
            if not mask.any():
                return
            self._exec(instr, mask)

    def _exec(self, instr, mask) -> None:
        if isinstance(instr, Comment):
            return
        if isinstance(instr, BinOp):
            a = self._read(instr.a, mask)
            b = self._read(instr.b, mask)
            self._write(instr.dst, _np_binop(instr.op, a, b), mask)
            self._count("inst.alu", mask)
        elif isinstance(instr, UnOp):
            a = self._read(instr.a, mask)
            if instr.op == "neg":
                value = -np.asarray(_coerce_bool(a))
            elif instr.op == "lnot":
                value = np.logical_not(a)
            else:  # bnot
                value = np.bitwise_not(np.asarray(_coerce_bool(a)))
            self._write(instr.dst, value, mask)
            self._count("inst.alu", mask)
        elif isinstance(instr, Mov):
            self._write(instr.dst, self._read(instr.a, mask), mask)
            self._count("inst.alu", mask)
        elif isinstance(instr, Sel):
            cond = self._read(instr.cond, mask)
            a = self._read(instr.a, mask)
            b = self._read(instr.b, mask)
            self._write(instr.dst, np.where(cond, a, b), mask)
            self._count("inst.alu", mask)
        elif isinstance(instr, Special):
            self._write(instr.dst, self._special(instr.kind), mask)
            self._count("inst.alu", mask)
        elif isinstance(instr, LdParam):
            value = self.step.args[instr.name]
            self._write(instr.dst, np.full(self.nthreads, value), mask)
            self._count("inst.alu", mask)
        elif isinstance(instr, LdGlobal):
            self._ld_global(instr, mask)
        elif isinstance(instr, StGlobal):
            self._st_global(instr, mask)
        elif isinstance(instr, LdShared):
            self._ld_shared(instr, mask)
        elif isinstance(instr, StShared):
            self._st_shared(instr, mask)
        elif isinstance(instr, AtomGlobal):
            self._atom_global(instr, mask)
        elif isinstance(instr, AtomShared):
            self._atom_shared(instr, mask)
        elif isinstance(instr, Shfl):
            self._shfl(instr, mask)
        elif isinstance(instr, Bar):
            self._bar(mask)
        elif isinstance(instr, If):
            self._exec_if(instr, mask)
        elif isinstance(instr, While):
            self._exec_while(instr, mask)
        else:
            raise SimulationError(f"cannot execute {type(instr).__name__}")

    def _special(self, kind):
        tid = np.arange(self.nthreads, dtype=np.int64)
        if kind == "tid":
            return tid
        if kind == "ctaid":
            return np.full(self.nthreads, self.block_id, dtype=np.int64)
        if kind == "ntid":
            return np.full(self.nthreads, self.nthreads, dtype=np.int64)
        if kind == "nctaid":
            return np.full(self.nthreads, self.step.grid, dtype=np.int64)
        if kind == "laneid":
            return tid % WARP
        if kind == "warpid":
            return tid // WARP
        raise SimulationError(f"unknown special register {kind!r}")

    def _exec_if(self, instr, mask) -> None:
        cond = np.asarray(self._read(instr.cond, mask), dtype=bool)
        then_mask = mask & cond
        else_mask = mask & ~cond
        # A warp diverges when its active lanes take both paths.
        if instr.otherwise or True:
            for warp in np.unique(self._warp_of_lane[mask]):
                lanes = self._warp_of_lane == warp
                if (then_mask & lanes).any() and (else_mask & lanes).any():
                    self.events["branch.divergent"] += 1
        if then_mask.any():
            self._exec_body(instr.then, then_mask)
        if instr.otherwise and else_mask.any():
            self._exec_body(instr.otherwise, else_mask)

    def _exec_while(self, instr, mask) -> None:
        active = mask.copy()
        iterations = 0
        while True:
            self._exec_body(instr.cond_block, active)
            cond = np.asarray(self._read(instr.cond, active), dtype=bool)
            staying = active & cond
            self._count_loop_divergence(active, staying)
            active = staying
            if not active.any():
                return
            iterations += 1
            if iterations > self.executor.loop_cap:
                raise SimulationError(
                    f"kernel {self.kernel.name!r}: loop exceeded iteration cap "
                    f"({self.executor.loop_cap})"
                )
            self._exec_body(instr.body, active)

    # -- memory -------------------------------------------------------------

    def _global_indices(self, operand, mask, buf) -> np.ndarray:
        idx = np.asarray(self._read(operand, mask))
        if idx.ndim == 0:
            idx = np.broadcast_to(idx, (self.nthreads,))
        active_idx = idx[mask]
        arr = self.device.get(buf)
        if active_idx.size and (
            active_idx.min() < 0 or active_idx.max() >= len(arr)
        ):
            raise SimulationError(
                f"kernel {self.kernel.name!r}: out-of-bounds access to global "
                f"buffer {buf!r} (size {len(arr)}, index range "
                f"[{active_idx.min()}, {active_idx.max()}])"
            )
        return idx.astype(np.int64)

    def _count_transactions(self, idx, mask, buf, kind, width: int = 1) -> None:
        """Count unique 128-byte segments touched per warp.

        For vectorized accesses all ``width`` element addresses of the
        access are coalesced together (one wide access), so segments are
        deduplicated across the whole vector, not per element.
        """
        arr = self.device.get(buf)
        per_segment = max(1, 128 // arr.dtype.itemsize)
        if width == 1:
            all_segments = (idx // per_segment)[np.newaxis, :]
        else:
            all_segments = np.stack(
                [(idx + k) // per_segment for k in range(width)]
            )
        total = 0
        for warp in np.unique(self._warp_of_lane[mask]):
            lanes = mask & (self._warp_of_lane == warp)
            total += int(np.unique(all_segments[:, lanes]).size)
        self.events[f"mem.global.{kind}.trans"] += total
        self.events["mem.global.bytes"] += total * 128
        self.events["mem.global.bytes_useful"] += (
            int(mask.sum()) * width * arr.dtype.itemsize
        )

    def _ld_global(self, instr, mask) -> None:
        idx = self._global_indices(instr.idx, mask, instr.buf)
        arr = self.device.get(instr.buf)
        if self.san is not None:
            self.san.on_mem(self, instr, idx, mask)
        if instr.width == 1:
            value = np.zeros(self.nthreads, dtype=np.float64)
            value[mask] = arr[idx[mask]]
            self._write(instr.dst, value, mask)
            self._count_transactions(idx, mask, instr.buf, "ld")
        else:
            last = idx + (instr.width - 1)
            if (last[mask] >= len(arr)).any():
                raise SimulationError(
                    f"kernel {self.kernel.name!r}: vector load past end of "
                    f"{instr.buf!r}"
                )
            for k, dst in enumerate(instr.dst):
                value = np.zeros(self.nthreads, dtype=np.float64)
                value[mask] = arr[idx[mask] + k]
                self._write(dst, value, mask)
            self._count_transactions(idx, mask, instr.buf, "ld", width=instr.width)
        self._count("inst.ld.global", mask)

    def _st_global(self, instr, mask) -> None:
        idx = self._global_indices(instr.idx, mask, instr.buf)
        src = self._value_array(instr.src, mask)
        arr = self.device.get(instr.buf)
        if self.san is not None:
            self.san.on_mem(self, instr, idx, mask)
        self._maybe_check_race(idx[mask], src[mask], f"global buffer {instr.buf!r}")
        arr[idx[mask]] = src[mask].astype(arr.dtype)
        self._count_transactions(idx, mask, instr.buf, "st")
        self._count("inst.st.global", mask)

    def _shared_indices(self, operand, mask, buf) -> np.ndarray:
        idx = np.asarray(self._read(operand, mask))
        if idx.ndim == 0:
            idx = np.broadcast_to(idx, (self.nthreads,))
        arr = self.shared[buf]
        active_idx = idx[mask]
        if active_idx.size and (
            active_idx.min() < 0 or active_idx.max() >= len(arr)
        ):
            raise SimulationError(
                f"kernel {self.kernel.name!r}: out-of-bounds access to shared "
                f"buffer {buf!r} (size {len(arr)}, index range "
                f"[{active_idx.min()}, {active_idx.max()}])"
            )
        return idx.astype(np.int64)

    def _count_bank_replays(self, idx, mask) -> None:
        """Shared memory has 32 banks; distinct words in one bank replay."""
        total = 0
        for warp in np.unique(self._warp_of_lane[mask]):
            lanes = mask & (self._warp_of_lane == warp)
            addrs = np.unique(idx[lanes])
            banks = addrs % 32
            if banks.size:
                _, counts = np.unique(banks, return_counts=True)
                total += int(counts.max()) - 1
        if total:
            self.events["mem.shared.replays"] += total

    def _ld_shared(self, instr, mask) -> None:
        idx = self._shared_indices(instr.idx, mask, instr.buf)
        arr = self.shared[instr.buf]
        if self.san is not None:
            self.san.on_mem(self, instr, idx, mask)
        value = np.zeros(self.nthreads, dtype=np.float64)
        value[mask] = arr[idx[mask]]
        self._write(instr.dst, value, mask)
        self._count("inst.ld.shared", mask)
        self._count_bank_replays(idx, mask)

    def _st_shared(self, instr, mask) -> None:
        idx = self._shared_indices(instr.idx, mask, instr.buf)
        src = self._value_array(instr.src, mask)
        if self.san is not None:
            self.san.on_mem(self, instr, idx, mask)
        self._maybe_check_race(idx[mask], src[mask], f"shared buffer {instr.buf!r}")
        self.shared[instr.buf][idx[mask]] = src[mask]
        self._count("inst.st.shared", mask)
        self._count_bank_replays(idx, mask)

    def _value_array(self, operand, mask) -> np.ndarray:
        value = np.asarray(self._read(operand, mask))
        if value.ndim == 0:
            value = np.broadcast_to(value, (self.nthreads,)).astype(np.float64)
        return value

    def _maybe_check_race(self, idx, values, what) -> None:
        if not self.executor.check_races or idx.size < 2:
            return
        order = np.argsort(idx, kind="stable")
        sorted_idx = idx[order]
        sorted_vals = np.asarray(values)[order]
        dup = sorted_idx[1:] == sorted_idx[:-1]
        conflicting = dup & (sorted_vals[1:] != sorted_vals[:-1])
        if conflicting.any():
            raise SimulationError(
                f"kernel {self.kernel.name!r}: write-write race on {what} "
                f"(same-cycle conflicting stores to index "
                f"{int(sorted_idx[1:][conflicting][0])})"
            )

    # -- atomics -----------------------------------------------------------

    def _atom_shared(self, instr, mask) -> None:
        idx = self._shared_indices(instr.idx, mask, instr.buf)
        src = self._value_array(instr.src, mask)
        if self.san is not None:
            self.san.on_mem(self, instr, idx, mask)
        _ATOMIC_UFUNC[instr.op].at(self.shared[instr.buf], idx[mask], src[mask])
        ops = int(mask.sum())
        self.events["atom.shared.ops"] += ops
        # Per-warp serialization: ops to the same address inside one warp
        # execute one at a time.
        serial = 0
        for warp in np.unique(self._warp_of_lane[mask]):
            lanes = mask & (self._warp_of_lane == warp)
            _, counts = np.unique(idx[lanes], return_counts=True)
            serial += int(counts.max())
        self.events["atom.shared.warp_serial"] += serial
        # Block-level: total ops per address bound the block's critical path.
        _, counts = np.unique(idx[mask], return_counts=True)
        self.events["atom.shared.block_max_same_addr"] += int(counts.max())

    def _atom_global(self, instr, mask) -> None:
        idx = self._global_indices(instr.idx, mask, instr.buf)
        src = self._value_array(instr.src, mask)
        arr = self.device.get(instr.buf)
        if self.san is not None:
            self.san.on_mem(self, instr, idx, mask)
        # numpy's ufunc.at on a float32 array accumulates in float32, like
        # the hardware's atomic units.
        _ATOMIC_UFUNC[instr.op].at(arr, idx[mask], src[mask].astype(arr.dtype))
        self.events["atom.global.ops"] += int(mask.sum())
        counts = self.atomic_addr_counts
        if len(counts) <= _ATOMIC_TRACK_CAP:
            block_id = self.block_id
            for address in idx[mask]:
                key = (instr.buf, int(address))
                entry = counts.get(key)
                if entry is None:
                    # [ops, first block to touch, touched cross-block]
                    counts[key] = [1, block_id, False]
                else:
                    entry[0] += 1
                    if entry[1] != block_id:
                        entry[2] = True

    # -- shuffles -----------------------------------------------------------

    def _shfl(self, instr, mask) -> None:
        if instr.width not in _SHFL_WIDTHS:
            raise SimulationError(
                f"kernel {self.kernel.name!r}: invalid shfl width "
                f"{instr.width!r}"
            )
        src = np.asarray(self._read(instr.src, mask))
        lanes = np.arange(self.nthreads, dtype=np.int64)
        sub = lanes % instr.width
        base = lanes - sub
        offset = self._read(instr.offset, mask)
        offset = np.asarray(offset)
        if offset.ndim == 0:
            offset = np.broadcast_to(offset, (self.nthreads,))
        if instr.mode == "down":
            target = sub + offset
        elif instr.mode == "up":
            target = sub - offset
        elif instr.mode == "xor":
            target = np.bitwise_xor(sub, offset.astype(np.int64))
        elif instr.mode == "idx":
            target = offset.astype(np.int64)
        else:
            raise SimulationError(
                f"kernel {self.kernel.name!r}: invalid shfl mode "
                f"{instr.mode!r}"
            )
        # Identity fallback for any source lane outside the width segment
        # *or* past the block's last thread: hardware reads the caller's
        # own value there, it never wraps into the next warp segment.
        source = base + target
        valid = (target >= 0) & (target < instr.width) & (source < self.nthreads)
        source_lane = np.where(valid, source, lanes)
        if self.san is not None:
            self.san.on_shfl(self, instr, source_lane, mask)
        result = src[source_lane]
        self._write(instr.dst, result, mask)
        self._count("inst.shfl", mask)


class _BatchedRun:
    """Execution state of a *batch* of blocks (2-D ``blocks × threads``).

    Mirrors :class:`_BlockRun` instruction for instruction, with every
    per-thread array gaining a leading block axis: registers and masks
    are ``(B, T)``, shared memory is ``(B, S)``. Per-warp statistics
    group by a flat ``block*warps_per_block + warp`` id so the summed
    counters are bit-identical to running the same blocks sequentially.

    Semantic deltas vs. the sequential reference (both only observable
    from *invalid* kernels):

    * register "freshness" is batch-global, so a read of a register that
      some block never wrote returns the vectorized value instead of
      raising;
    * out-of-bounds errors report the index range over the whole batch
      rather than the first offending block.
    """

    def __init__(self, executor, step, block_ids, events, atomic_addr_counts,
                 trace=None, san=None, fragprof=None):
        self.executor = executor
        self.device = executor.device
        self.step = step
        self.kernel = step.kernel
        self.fragprof = fragprof
        self.block_ids = np.asarray(block_ids, dtype=np.int64)
        self.nblocks = len(self.block_ids)
        self.nthreads = step.block
        self.shape = (self.nblocks, self.nthreads)
        self.events = events
        self.atomic_addr_counts = atomic_addr_counts
        self.trace = trace
        self.san = san
        self.regs = {}
        self.shared = {
            decl.name: np.zeros((self.nblocks, decl.size), dtype=np.float64)
            for decl in self.kernel.shared
        }
        self.nwarps = (self.nthreads + WARP - 1) // WARP
        self._warp_of_lane = np.arange(self.nthreads) // WARP
        self._warp_starts = np.arange(0, self.nthreads, WARP)
        #: row (block slot) index per lane, and flat per-warp group id.
        self._brow = np.broadcast_to(
            np.arange(self.nblocks, dtype=np.int64)[:, None], self.shape
        )
        self._gid = (
            np.arange(self.nblocks, dtype=np.int64)[:, None] * self.nwarps
            + self._warp_of_lane[None, :]
        )
        #: Compiled-trace state (see _BlockRun).
        self._cur_warps = None
        self._cur_all = None
        self._cache = {}

    # -- helpers -------------------------------------------------------

    def run(self) -> None:
        mask = np.ones(self.shape, dtype=bool)
        if self.trace is None:
            self._exec_body(self.kernel.body, mask)
        else:
            self._run_trace(self.trace, mask)

    def _count(self, key, mask) -> None:
        if self._cur_warps is not None:
            self.events[key] += self._cur_warps
            return
        if not mask.any():
            return
        # bitwise_or over bool == "any active lane", per warp per block.
        per_warp = np.bitwise_or.reduceat(mask, self._warp_starts, axis=1)
        warps = int(np.count_nonzero(per_warp))
        if warps:
            self.events[key] += warps

    def _bar(self, mask) -> None:
        # One barrier per block that actually reaches it.
        if self._cur_all:
            self.events["inst.bar"] += self.nblocks
        else:
            self.events["inst.bar"] += int(mask.any(axis=1).sum())
        if self.san is not None:
            self.san.on_bar(self, mask)

    def _count_loop_divergence(self, before, after) -> None:
        """Batched twin of :meth:`_BlockRun._count_loop_divergence`."""
        exited = before & ~after
        if not exited.any() or not after.any():
            return
        stay_any = np.bitwise_or.reduceat(after, self._warp_starts, axis=1)
        exit_any = np.bitwise_or.reduceat(exited, self._warp_starts, axis=1)
        divergent = int(np.count_nonzero(stay_any & exit_any))
        if divergent:
            self.events["branch.divergent"] += divergent

    # -- compiled-trace execution (see repro.gpusim.compile) -----------

    def _run_trace(self, trace, mask) -> None:
        if not mask.any():
            return
        saved = (self._cur_warps, self._cur_all)
        if mask.all():
            self._cur_all = True
            self._cur_warps = self.nblocks * self.nwarps
        else:
            self._cur_all = False
            per_warp = np.bitwise_or.reduceat(mask, self._warp_starts, axis=1)
            self._cur_warps = int(np.count_nonzero(per_warp))
        try:
            for fn in trace:
                fn(self, mask)
        finally:
            self._cur_warps, self._cur_all = saved

    def _exec_if_c(self, cond_read, then_trace, else_trace, has_else, mask):
        cond = np.asarray(cond_read(self), dtype=bool)
        if cond.shape != self.shape:
            cond = np.broadcast_to(cond, self.shape)
        then_mask = mask & cond
        else_mask = mask & ~cond
        # A warp diverges when its active lanes take both paths.
        then_any = np.bitwise_or.reduceat(then_mask, self._warp_starts, axis=1)
        else_any = np.bitwise_or.reduceat(else_mask, self._warp_starts, axis=1)
        divergent = int(np.count_nonzero(then_any & else_any))
        if divergent:
            self.events["branch.divergent"] += divergent
        self._run_trace(then_trace, then_mask)
        if has_else:
            self._run_trace(else_trace, else_mask)

    def _exec_while_c(self, cond_trace, cond_read, body_trace, mask):
        active = mask.copy()
        iterations = 0
        while True:
            self._run_trace(cond_trace, active)
            cond = np.asarray(cond_read(self), dtype=bool)
            if cond.shape != self.shape:
                cond = np.broadcast_to(cond, self.shape)
            staying = active & cond
            self._count_loop_divergence(active, staying)
            active = staying
            if not active.any():
                return
            iterations += 1
            if iterations > self.executor.loop_cap:
                raise SimulationError(
                    f"kernel {self.kernel.name!r}: loop exceeded iteration cap "
                    f"({self.executor.loop_cap})"
                )
            self._run_trace(body_trace, active)

    def _read(self, operand, mask):
        if isinstance(operand, Imm):
            return operand.value
        if isinstance(operand, Reg):
            if operand.name not in self.regs:
                raise SimulationError(
                    f"kernel {self.kernel.name!r}: read of unwritten register "
                    f"{operand}"
                )
            return self.regs[operand.name]
        raise SimulationError(f"bad operand {operand!r}")

    def _write(self, reg: Reg, value, mask) -> None:
        value = np.asarray(value)
        if value.shape != self.shape:
            value = np.broadcast_to(value, self.shape)
        current = self.regs.get(reg.name)
        all_active = self._cur_all
        if all_active is None:
            all_active = mask.all()
        if current is None or all_active:
            # Inactive lanes keep whatever the vectorized computation put
            # there — deterministic in the simulator, "undefined" on HW.
            if self._cur_warps is not None:
                # Compiled traces never mutate register arrays in place,
                # so aliasing is safe and the defensive copy is skipped.
                self.regs[reg.name] = value.astype(
                    _promote_dtype(value.dtype), copy=False
                )
            else:
                self.regs[reg.name] = np.array(
                    value, dtype=_promote_dtype(value.dtype)
                )
            return
        merged_dtype = np.result_type(current.dtype, value.dtype)
        if merged_dtype != current.dtype:
            current = current.astype(merged_dtype)
        else:
            current = current.copy()
        current[mask] = value[mask]
        self.regs[reg.name] = current

    # -- structured execution ----------------------------------------------

    def _exec_body(self, body, mask) -> None:
        for instr in body:
            if not mask.any():
                return
            self._exec(instr, mask)

    def _exec(self, instr, mask) -> None:
        if isinstance(instr, Comment):
            return
        if isinstance(instr, BinOp):
            a = self._read(instr.a, mask)
            b = self._read(instr.b, mask)
            self._write(instr.dst, _np_binop(instr.op, a, b), mask)
            self._count("inst.alu", mask)
        elif isinstance(instr, UnOp):
            a = self._read(instr.a, mask)
            if instr.op == "neg":
                value = -np.asarray(_coerce_bool(a))
            elif instr.op == "lnot":
                value = np.logical_not(a)
            else:  # bnot
                value = np.bitwise_not(np.asarray(_coerce_bool(a)))
            self._write(instr.dst, value, mask)
            self._count("inst.alu", mask)
        elif isinstance(instr, Mov):
            self._write(instr.dst, self._read(instr.a, mask), mask)
            self._count("inst.alu", mask)
        elif isinstance(instr, Sel):
            cond = self._read(instr.cond, mask)
            a = self._read(instr.a, mask)
            b = self._read(instr.b, mask)
            self._write(instr.dst, np.where(cond, a, b), mask)
            self._count("inst.alu", mask)
        elif isinstance(instr, Special):
            self._write(instr.dst, self._special(instr.kind), mask)
            self._count("inst.alu", mask)
        elif isinstance(instr, LdParam):
            value = self.step.args[instr.name]
            self._write(instr.dst, np.full(self.shape, value), mask)
            self._count("inst.alu", mask)
        elif isinstance(instr, LdGlobal):
            self._ld_global(instr, mask)
        elif isinstance(instr, StGlobal):
            self._st_global(instr, mask)
        elif isinstance(instr, LdShared):
            self._ld_shared(instr, mask)
        elif isinstance(instr, StShared):
            self._st_shared(instr, mask)
        elif isinstance(instr, AtomGlobal):
            self._atom_global(instr, mask)
        elif isinstance(instr, AtomShared):
            self._atom_shared(instr, mask)
        elif isinstance(instr, Shfl):
            self._shfl(instr, mask)
        elif isinstance(instr, Bar):
            self._bar(mask)
        elif isinstance(instr, If):
            self._exec_if(instr, mask)
        elif isinstance(instr, While):
            self._exec_while(instr, mask)
        else:
            raise SimulationError(f"cannot execute {type(instr).__name__}")

    def _special(self, kind):
        tid = np.broadcast_to(
            np.arange(self.nthreads, dtype=np.int64), self.shape
        )
        if kind == "tid":
            return tid
        if kind == "ctaid":
            return np.broadcast_to(self.block_ids[:, None], self.shape)
        if kind == "ntid":
            return np.full(self.shape, self.nthreads, dtype=np.int64)
        if kind == "nctaid":
            return np.full(self.shape, self.step.grid, dtype=np.int64)
        if kind == "laneid":
            return tid % WARP
        if kind == "warpid":
            return tid // WARP
        raise SimulationError(f"unknown special register {kind!r}")

    def _exec_if(self, instr, mask) -> None:
        cond = np.asarray(self._read(instr.cond, mask), dtype=bool)
        if cond.shape != self.shape:
            cond = np.broadcast_to(cond, self.shape)
        then_mask = mask & cond
        else_mask = mask & ~cond
        # A warp diverges when its active lanes take both paths.
        then_any = np.bitwise_or.reduceat(then_mask, self._warp_starts, axis=1)
        else_any = np.bitwise_or.reduceat(else_mask, self._warp_starts, axis=1)
        divergent = int(np.count_nonzero(then_any & else_any))
        if divergent:
            self.events["branch.divergent"] += divergent
        if then_mask.any():
            self._exec_body(instr.then, then_mask)
        if instr.otherwise and else_mask.any():
            self._exec_body(instr.otherwise, else_mask)

    def _exec_while(self, instr, mask) -> None:
        active = mask.copy()
        iterations = 0
        while True:
            self._exec_body(instr.cond_block, active)
            cond = np.asarray(self._read(instr.cond, active), dtype=bool)
            if cond.shape != self.shape:
                cond = np.broadcast_to(cond, self.shape)
            staying = active & cond
            self._count_loop_divergence(active, staying)
            active = staying
            if not active.any():
                return
            iterations += 1
            if iterations > self.executor.loop_cap:
                raise SimulationError(
                    f"kernel {self.kernel.name!r}: loop exceeded iteration cap "
                    f"({self.executor.loop_cap})"
                )
            self._exec_body(instr.body, active)

    # -- memory -------------------------------------------------------------

    def _global_indices(self, operand, mask, buf) -> np.ndarray:
        idx = np.asarray(self._read(operand, mask))
        if idx.shape != self.shape:
            idx = np.broadcast_to(idx, self.shape)
        active_idx = idx if self._cur_all else idx[mask]
        arr = self.device.get(buf)
        if active_idx.size and (
            active_idx.min() < 0 or active_idx.max() >= len(arr)
        ):
            raise SimulationError(
                f"kernel {self.kernel.name!r}: out-of-bounds access to global "
                f"buffer {buf!r} (size {len(arr)}, index range "
                f"[{active_idx.min()}, {active_idx.max()}])"
            )
        if self._cur_warps is not None:
            # Compiled path: callers never mutate the index array, skip
            # the defensive copy when it is already int64.
            return idx.astype(np.int64, copy=False)
        return idx.astype(np.int64)

    def _count_transactions(self, idx, mask, buf, kind, width: int = 1) -> None:
        """Count unique 128-byte segments per (block, warp) group."""
        arr = self.device.get(buf)
        per_segment = max(1, 128 // arr.dtype.itemsize)
        if self._cur_warps is not None:
            total = self._count_segments_sorted(idx, mask, per_segment, width)
        else:
            segment_space = len(arr) // per_segment + width + 1
            gid = self._gid[mask]
            base = idx[mask]
            if width == 1:
                keys = gid * segment_space + base // per_segment
            else:
                keys = np.concatenate(
                    [gid * segment_space + (base + k) // per_segment
                     for k in range(width)]
                )
            total = int(np.unique(keys).size)
        self.events[f"mem.global.{kind}.trans"] += total
        self.events["mem.global.bytes"] += total * 128
        active = mask.size if self._cur_all else int(mask.sum())
        self.events["mem.global.bytes_useful"] += (
            active * width * arr.dtype.itemsize
        )

    def _count_segments_sorted(self, idx, mask, per_segment, width) -> int:
        """Unique active segments per (block, warp), summed — the same
        quantity the interpreted path gets from one ``np.unique`` over
        ``group * segment_space + segment`` keys, computed instead by
        sorting fixed 32-lane warp rows (inactive lanes hold a ``-1``
        sentinel). Sorting many short rows beats one global unique and
        materializes no key array; per sorted row the distinct
        non-sentinel count is ``adjacent-changes + (first != -1)``."""
        nw = self.nwarps
        lanes = nw * WARP
        planes = []
        for k in range(width):
            seg = (idx if k == 0 else idx + k) // per_segment
            if not self._cur_all:
                seg = np.where(mask, seg, -1)
            if self.nthreads != lanes:
                pad = np.full((self.nblocks, lanes), -1, dtype=seg.dtype)
                pad[:, : self.nthreads] = seg
                seg = pad
            planes.append(seg.reshape(self.nblocks * nw, WARP))
        rows = planes[0] if width == 1 else np.concatenate(planes, axis=1)
        rows.sort(axis=1)
        changes = int(np.count_nonzero(rows[:, 1:] != rows[:, :-1]))
        nonempty = int(np.count_nonzero(rows[:, 0] != -1))
        return changes + nonempty

    def _ld_global(self, instr, mask) -> None:
        idx = self._global_indices(instr.idx, mask, instr.buf)
        arr = self.device.get(instr.buf)
        if self.san is not None:
            self.san.on_mem(self, instr, idx, mask)
        if instr.width == 1:
            if self._cur_all:
                # Full mask: the masked scatter below degenerates to a
                # plain gather (bit-identical, no zeros container).
                value = arr[idx].astype(np.float64)
            else:
                value = np.zeros(self.shape, dtype=np.float64)
                value[mask] = arr[idx[mask]]
            self._write(instr.dst, value, mask)
            self._count_transactions(idx, mask, instr.buf, "ld")
        else:
            last = idx + (instr.width - 1)
            if (last[mask] >= len(arr)).any():
                raise SimulationError(
                    f"kernel {self.kernel.name!r}: vector load past end of "
                    f"{instr.buf!r}"
                )
            for k, dst in enumerate(instr.dst):
                value = np.zeros(self.shape, dtype=np.float64)
                value[mask] = arr[idx[mask] + k]
                self._write(dst, value, mask)
            self._count_transactions(idx, mask, instr.buf, "ld", width=instr.width)
        self._count("inst.ld.global", mask)

    def _st_global(self, instr, mask) -> None:
        idx = self._global_indices(instr.idx, mask, instr.buf)
        src = self._value_array(instr.src, mask)
        arr = self.device.get(instr.buf)
        if self.san is not None:
            self.san.on_mem(self, instr, idx, mask)
        self._maybe_check_race(
            self._brow[mask], idx[mask], src[mask], len(arr),
            f"global buffer {instr.buf!r}",
        )
        # C-order flattening applies the store block-major, matching the
        # sequential engine's per-block store order exactly.
        arr[idx[mask]] = src[mask].astype(arr.dtype)
        self._count_transactions(idx, mask, instr.buf, "st")
        self._count("inst.st.global", mask)

    def _shared_indices(self, operand, mask, buf) -> np.ndarray:
        idx = np.asarray(self._read(operand, mask))
        if idx.shape != self.shape:
            idx = np.broadcast_to(idx, self.shape)
        arr = self.shared[buf]
        active_idx = idx[mask]
        if active_idx.size and (
            active_idx.min() < 0 or active_idx.max() >= arr.shape[1]
        ):
            raise SimulationError(
                f"kernel {self.kernel.name!r}: out-of-bounds access to shared "
                f"buffer {buf!r} (size {arr.shape[1]}, index range "
                f"[{active_idx.min()}, {active_idx.max()}])"
            )
        return idx.astype(np.int64)

    def _count_bank_replays(self, idx, mask) -> None:
        """Shared memory has 32 banks; distinct words in one bank replay."""
        if not mask.any():
            return
        gid = self._gid[mask]
        addr = idx[mask]
        span = int(addr.max()) + 1
        # Unique (group, address) pairs, then per-group per-bank counts.
        unique_keys = np.unique(gid * span + addr)
        ugroup = unique_keys // span
        ubank = (unique_keys % span) % 32
        ngroups = int(ugroup[-1]) + 1
        counts = np.bincount(
            ugroup * 32 + ubank, minlength=ngroups * 32
        ).reshape(ngroups, 32)
        present = counts.any(axis=1)
        total = int(counts.max(axis=1)[present].sum()) - int(present.sum())
        if total:
            self.events["mem.shared.replays"] += total

    def _ld_shared(self, instr, mask) -> None:
        idx = self._shared_indices(instr.idx, mask, instr.buf)
        arr = self.shared[instr.buf]
        if self.san is not None:
            self.san.on_mem(self, instr, idx, mask)
        value = np.zeros(self.shape, dtype=np.float64)
        value[mask] = arr[self._brow[mask], idx[mask]]
        self._write(instr.dst, value, mask)
        self._count("inst.ld.shared", mask)
        self._count_bank_replays(idx, mask)

    def _st_shared(self, instr, mask) -> None:
        idx = self._shared_indices(instr.idx, mask, instr.buf)
        src = self._value_array(instr.src, mask)
        arr = self.shared[instr.buf]
        if self.san is not None:
            self.san.on_mem(self, instr, idx, mask)
        self._maybe_check_race(
            self._brow[mask], idx[mask], src[mask], arr.shape[1],
            f"shared buffer {instr.buf!r}",
        )
        arr[self._brow[mask], idx[mask]] = src[mask]
        self._count("inst.st.shared", mask)
        self._count_bank_replays(idx, mask)

    def _value_array(self, operand, mask) -> np.ndarray:
        value = np.asarray(self._read(operand, mask))
        if value.ndim == 0:
            value = np.broadcast_to(value, self.shape).astype(np.float64)
        return value

    def _maybe_check_race(self, brow, idx, values, span, what) -> None:
        """Same-cycle conflicting stores *within one block* are races."""
        if not self.executor.check_races or idx.size < 2:
            return
        key = brow * span + idx
        order = np.argsort(key, kind="stable")
        sorted_key = key[order]
        sorted_vals = np.asarray(values)[order]
        dup = sorted_key[1:] == sorted_key[:-1]
        conflicting = dup & (sorted_vals[1:] != sorted_vals[:-1])
        if conflicting.any():
            raise SimulationError(
                f"kernel {self.kernel.name!r}: write-write race on {what} "
                f"(same-cycle conflicting stores to index "
                f"{int(sorted_key[1:][conflicting][0] % span)})"
            )

    # -- atomics -----------------------------------------------------------

    def _group_max_sum(self, group_keys, span) -> int:
        """Sum over groups of the max same-address count in each group.

        ``group_keys`` are ``group * span + address`` for every active
        lane; groups with no active lanes contribute nothing.
        """
        unique_keys, counts = np.unique(group_keys, return_counts=True)
        group = unique_keys // span
        starts = np.r_[0, np.flatnonzero(np.diff(group)) + 1]
        return int(np.maximum.reduceat(counts, starts).sum())

    def _atom_shared(self, instr, mask) -> None:
        idx = self._shared_indices(instr.idx, mask, instr.buf)
        src = self._value_array(instr.src, mask)
        arr = self.shared[instr.buf]
        if self.san is not None:
            self.san.on_mem(self, instr, idx, mask)
        rows = self._brow[mask]
        cols = idx[mask]
        _ATOMIC_UFUNC[instr.op].at(arr, (rows, cols), src[mask])
        ops = int(mask.sum())
        self.events["atom.shared.ops"] += ops
        span = arr.shape[1]
        # Per-warp serialization: ops to the same address inside one warp
        # execute one at a time.
        self.events["atom.shared.warp_serial"] += self._group_max_sum(
            self._gid[mask] * span + cols, span
        )
        # Block-level: total ops per address bound the block's critical path.
        self.events["atom.shared.block_max_same_addr"] += self._group_max_sum(
            rows * span + cols, span
        )

    def _atom_global(self, instr, mask) -> None:
        idx = self._global_indices(instr.idx, mask, instr.buf)
        src = self._value_array(instr.src, mask)
        arr = self.device.get(instr.buf)
        if self.san is not None:
            self.san.on_mem(self, instr, idx, mask)
        # ufunc.at applies updates in flattened (block-major) order — the
        # same order the sequential engine's per-block calls produce, so
        # float accumulation is bit-identical.
        _ATOMIC_UFUNC[instr.op].at(arr, idx[mask], src[mask].astype(arr.dtype))
        self.events["atom.global.ops"] += int(mask.sum())
        counts = self.atomic_addr_counts
        for row in range(self.nblocks):
            if len(counts) > _ATOMIC_TRACK_CAP:
                continue  # sequential engine stops adding past the cap
            row_mask = mask[row]
            if not row_mask.any():
                continue
            block_id = int(self.block_ids[row])
            addresses, per_addr = np.unique(
                idx[row][row_mask], return_counts=True
            )
            for address, count in zip(addresses.tolist(), per_addr.tolist()):
                key = (instr.buf, int(address))
                entry = counts.get(key)
                if entry is None:
                    # [ops, first block to touch, touched cross-block];
                    # rows are block-ascending like the sequential engine.
                    counts[key] = [count, block_id, False]
                else:
                    entry[0] += count
                    if entry[1] != block_id:
                        entry[2] = True

    # -- shuffles -----------------------------------------------------------

    def _shfl(self, instr, mask) -> None:
        if instr.width not in _SHFL_WIDTHS:
            raise SimulationError(
                f"kernel {self.kernel.name!r}: invalid shfl width "
                f"{instr.width!r}"
            )
        src = np.asarray(self._read(instr.src, mask))
        if src.shape != self.shape:
            src = np.broadcast_to(src, self.shape)
        lanes = np.arange(self.nthreads, dtype=np.int64)
        sub = lanes % instr.width
        base = lanes - sub
        offset = np.asarray(self._read(instr.offset, mask))
        if offset.shape != self.shape:
            offset = np.broadcast_to(offset, self.shape)
        if instr.mode == "down":
            target = sub + offset
        elif instr.mode == "up":
            target = sub - offset
        elif instr.mode == "xor":
            target = np.bitwise_xor(sub, offset.astype(np.int64))
        elif instr.mode == "idx":
            target = offset.astype(np.int64)
        else:
            raise SimulationError(
                f"kernel {self.kernel.name!r}: invalid shfl mode "
                f"{instr.mode!r}"
            )
        if target.shape != self.shape:
            target = np.broadcast_to(target, self.shape)
        # Identity fallback for any source lane outside the width segment
        # *or* past the block's last thread (see _BlockRun._shfl).
        source = base + target
        valid = (target >= 0) & (target < instr.width) & (source < self.nthreads)
        source_lane = np.where(valid, source, np.broadcast_to(lanes, self.shape))
        source_lane = source_lane.astype(np.int64)
        if self.san is not None:
            self.san.on_shfl(self, instr, source_lane, mask)
        result = np.take_along_axis(src, source_lane, axis=1)
        self._write(instr.dst, result, mask)
        self._count("inst.shfl", mask)


def _promote_dtype(dtype):
    """Registers hold int64 / float64 / bool for simulation stability."""
    if dtype.kind in "iu":
        return np.int64
    if dtype.kind == "b":
        return np.bool_
    return np.float64


def run_plan(plan: Plan, device: Device = None, sample_limit: int = None):
    """One-shot convenience wrapper around :class:`Executor`."""
    executor = Executor(device=device)
    return executor.run_plan(plan, sample_limit=sample_limit), executor.device
