"""C toolchain discovery, shared-library compilation and the `.so` disk cache.

The native backend generates one C translation unit per kernel and needs
it compiled into a loadable shared object at plan-build time.  This
module owns everything between "here is C source" and "here is a callable
symbol":

* **Discovery** — find a working C compiler (``$REPRO_NATIVE_CC``, then
  ``cc``/``gcc``/``clang`` on ``PATH``).  When none exists the backend
  reports itself *unavailable with a reason* instead of erroring; the
  reason string is surfaced verbatim by ``parse_engine_spec`` and the
  CLI so a user on a compiler-less machine knows exactly what to
  install.  ``REPRO_NATIVE_DISABLE=1`` forces unavailability (used by
  the degradation tests).

* **FFI layer** — loaded libraries are called through :mod:`cffi` when
  importable (``ffi.dlopen`` against a uniform ``int64_t f(void **,
  int64_t *)`` prototype) and fall back to :mod:`ctypes` otherwise;
  ``REPRO_NATIVE_FFI`` pins one layer for tests.  Both produce the same
  ``(ptr_array_addr, meta_array_addr) -> int64`` callable.

* **Disk cache** — compiled objects persist under a content key of
  ``sha256(source + toolchain tag)`` so unrelated processes reuse one
  compile, mirroring :class:`repro.perf.cache.ProfileCache`'s disk
  tier: entries are written atomically (temp file + ``os.replace``),
  and corrupt, truncated or stale entries are *evicted and recompiled*
  rather than trusted — a sidecar ``.json`` records the toolchain tag,
  ABI version and object size, and any mismatch (or a load failure of
  the object itself) unlinks the pair and falls through to a fresh
  compile.
"""

from __future__ import annotations

import ctypes
import hashlib
import json
import os
import shutil
import subprocess
import tempfile
from dataclasses import dataclass

#: Generated-code ABI version.  Part of every cache key and sidecar:
#: bump when the generated C / caller protocol changes so stale objects
#: from older builds can never be loaded.
ABI_VERSION = 1

#: Compiler candidates probed in order when $REPRO_NATIVE_CC is unset.
_CC_CANDIDATES = ("cc", "gcc", "clang")

_CFLAGS = ("-O3", "-fPIC", "-shared", "-std=c99", "-fno-strict-aliasing")

#: Host-tuning flags, used only when the compiler accepts them (probed
#: once at discovery).  They join the toolchain tag, so objects built
#: for a different host or flag set never get reused from disk.
_TUNE_FLAGS = ("-march=native", "-funroll-loops", "-mprefer-vector-width=512")


class NativeUnavailable(RuntimeError):
    """Raised when native compilation is requested but impossible."""


class NativeCompileError(RuntimeError):
    """The toolchain exists but compilation of generated source failed."""


@dataclass(frozen=True)
class Toolchain:
    """A discovered C compiler plus the FFI layer used to call into it."""

    cc: str            # absolute compiler path
    version: str       # first line of `cc --version`
    ffi: str           # "cffi" | "ctypes"
    tune: tuple = ()   # accepted host-tuning flags (subset of _TUNE_FLAGS)

    @property
    def tag(self) -> str:
        """Cache-key component: compiler identity + flags + ABI rev."""
        flags = " ".join(self.tune)
        return f"{self.cc}|{self.version}|abi{ABI_VERSION}|ffi-any|{flags}"


# Discovery is cached process-wide; tests reset it around env changes.
_DETECTED = None       # False = not probed yet; None = unavailable
_DETECT_REASON = None
_NOT_PROBED = False


def reset_toolchain_cache() -> None:
    """Forget discovery results (tests flip env vars around this)."""
    global _DETECTED, _DETECT_REASON
    _DETECTED = _NOT_PROBED
    _DETECT_REASON = None


reset_toolchain_cache()


def _probe() -> tuple:
    if os.environ.get("REPRO_NATIVE_DISABLE"):
        return None, "disabled via REPRO_NATIVE_DISABLE"
    override = os.environ.get("REPRO_NATIVE_CC")
    if override:
        path = shutil.which(override)
        if path is None:
            return None, (
                f"REPRO_NATIVE_CC={override!r} is not an executable on PATH"
            )
        candidates = [path]
    else:
        candidates = [
            p for p in (shutil.which(c) for c in _CC_CANDIDATES) if p
        ]
        if not candidates:
            return None, (
                "no C compiler found (looked for "
                + ", ".join(_CC_CANDIDATES)
                + " on PATH; install one or set REPRO_NATIVE_CC)"
            )
    cc = candidates[0]
    try:
        out = subprocess.run(
            [cc, "--version"], capture_output=True, text=True, timeout=30
        )
        version = (out.stdout or out.stderr).splitlines()[0].strip()
    except (OSError, subprocess.SubprocessError, IndexError) as exc:
        return None, f"C compiler {cc!r} failed to run: {exc}"
    ffi_pref = os.environ.get("REPRO_NATIVE_FFI", "")
    if ffi_pref not in ("", "cffi", "ctypes"):
        return None, f"REPRO_NATIVE_FFI={ffi_pref!r} (want 'cffi' or 'ctypes')"
    ffi = "ctypes"
    if ffi_pref != "ctypes":
        try:
            import cffi  # noqa: F401  (optional accelerant)

            ffi = "cffi"
        except ImportError:
            if ffi_pref == "cffi":
                return None, "REPRO_NATIVE_FFI=cffi but cffi is not importable"
    return Toolchain(cc=cc, version=version, ffi=ffi,
                     tune=_probe_tune_flags(cc)), None


def _probe_tune_flags(cc) -> tuple:
    """Which of :data:`_TUNE_FLAGS` the compiler accepts (all or none:
    a trivial compile is attempted with the full set)."""
    with tempfile.TemporaryDirectory(prefix="repro-native-probe-") as td:
        src = os.path.join(td, "probe.c")
        with open(src, "w", encoding="utf-8") as fh:
            fh.write("int probe(int x) { return x + 1; }\n")
        try:
            r = subprocess.run(
                [cc, *_CFLAGS, *_TUNE_FLAGS, src,
                 "-o", os.path.join(td, "probe.so")],
                capture_output=True, timeout=60,
            )
        except (OSError, subprocess.SubprocessError):
            return ()
    return _TUNE_FLAGS if r.returncode == 0 else ()


def detect_toolchain():
    """The process's toolchain, or None (see :func:`unavailable_reason`)."""
    global _DETECTED, _DETECT_REASON
    if _DETECTED is _NOT_PROBED:
        _DETECTED, _DETECT_REASON = _probe()
    return _DETECTED


def unavailable_reason():
    """Why native execution is impossible, or None when it is possible."""
    detect_toolchain()
    return _DETECT_REASON


def native_available() -> bool:
    return detect_toolchain() is not None


# ---------------------------------------------------------------------
# disk cache
# ---------------------------------------------------------------------


def cache_dir() -> str:
    path = os.environ.get("REPRO_NATIVE_CACHE_DIR")
    if not path:
        base = os.environ.get(
            "XDG_CACHE_HOME", os.path.join(os.path.expanduser("~"), ".cache")
        )
        path = os.path.join(base, "repro", "native")
    return path


def source_key(source: str, toolchain: Toolchain) -> str:
    """Content key for one translation unit under one toolchain."""
    h = hashlib.sha256()
    h.update(source.encode("utf-8"))
    h.update(b"\x00")
    h.update(toolchain.tag.encode("utf-8"))
    return h.hexdigest()


def _evict(so_path: str, meta_path: str) -> None:
    for path in (so_path, meta_path):
        try:
            os.unlink(path)
        except OSError:
            pass


def _meta_ok(meta_path: str, so_path: str, toolchain: Toolchain) -> bool:
    """Validate a cached object's sidecar: same toolchain tag, same ABI,
    and the recorded byte size (a truncated `.so` fails here before we
    ever try to dlopen it)."""
    try:
        with open(meta_path, "r", encoding="utf-8") as fh:
            meta = json.load(fh)
        return (
            meta.get("toolchain") == toolchain.tag
            and meta.get("abi") == ABI_VERSION
            and meta.get("size") == os.path.getsize(so_path)
        )
    except (OSError, ValueError):
        return False


def _compile(source: str, toolchain: Toolchain, so_path: str) -> None:
    directory = os.path.dirname(so_path)
    os.makedirs(directory, exist_ok=True)
    fd, c_path = tempfile.mkstemp(suffix=".c", dir=directory)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(source)
        tmp_so = c_path[:-2] + ".so.tmp"
        cmd = [toolchain.cc, *_CFLAGS, *toolchain.tune,
               c_path, "-o", tmp_so, "-lm"]
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=300
        )
        if proc.returncode != 0:
            raise NativeCompileError(
                f"native codegen: {toolchain.cc} failed "
                f"(rc={proc.returncode}):\n{proc.stderr[-2000:]}"
            )
        os.replace(tmp_so, so_path)
        meta = {
            "toolchain": toolchain.tag,
            "abi": ABI_VERSION,
            "size": os.path.getsize(so_path),
        }
        mfd, m_tmp = tempfile.mkstemp(suffix=".json", dir=directory)
        with os.fdopen(mfd, "w", encoding="utf-8") as fh:
            json.dump(meta, fh)
        os.replace(m_tmp, so_path[:-3] + ".json")
    finally:
        try:
            os.unlink(c_path)
        except OSError:
            pass


class LoadedLibrary:
    """A dlopened generated library behind a uniform call protocol.

    ``get(name)`` returns a callable taking the *addresses* (ints) of a
    ``void *`` pointer array and an ``int64_t`` metadata array and
    returning the function's int64 status code — identical across the
    cffi and ctypes layers.
    """

    def __init__(self, so_path: str, names, toolchain: Toolchain):
        self.so_path = so_path
        self.ffi_kind = toolchain.ffi
        self._fns = {}
        self._raw = {}
        if self.ffi_kind == "cffi":
            import cffi

            ffi = cffi.FFI()
            for name in names:
                ffi.cdef(f"int64_t {name}(void **, int64_t *);")
            lib = ffi.dlopen(so_path)
            voidpp = "void **"
            i64p = "int64_t *"
            cast = ffi.cast
            for name in names:
                raw = getattr(lib, name)
                self._raw[name] = raw
                self._fns[name] = (
                    lambda p, m, _raw=raw, _c=cast: _raw(
                        _c(voidpp, p), _c(i64p, m)
                    )
                )
            self._keepalive = (ffi, lib)
        else:
            lib = ctypes.CDLL(so_path)
            for name in names:
                raw = getattr(lib, name)
                raw.restype = ctypes.c_int64
                raw.argtypes = [ctypes.c_void_p, ctypes.c_void_p]
                self._raw[name] = raw
                self._fns[name] = raw
            self._keepalive = (lib,)

    def get(self, name):
        return self._fns[name]

    def binder(self, name):
        """``bind(p_addr, m_addr) -> call()`` for one symbol: the FFI
        pointer casts happen once at bind time instead of per invocation.
        Callers that reuse fixed argument frames (the native wrappers)
        bind once per frame and then pay only a zero-arg call."""
        raw = self._raw[name]
        if self.ffi_kind == "cffi":
            cast = self._keepalive[0].cast

            def bind(p, m, _raw=raw, _c=cast):
                cp = _c("void **", p)
                cm = _c("int64_t *", m)
                return lambda _raw=_raw, cp=cp, cm=cm: _raw(cp, cm)

            return bind

        def bind(p, m, _raw=raw):
            cp = ctypes.c_void_p(p)
            cm = ctypes.c_void_p(m)
            return lambda _raw=_raw, cp=cp, cm=cm: _raw(cp, cm)

        return bind


def load_or_compile(source: str, names, metrics=None) -> LoadedLibrary:
    """Return the compiled library for ``source``, via the disk cache.

    Cache-hit path: sidecar validates (toolchain tag + ABI + size) and
    the object dlopens.  Every other state — missing sidecar, stale
    toolchain, truncated object, dlopen failure — evicts the entry and
    recompiles from source.
    """
    toolchain = detect_toolchain()
    if toolchain is None:
        raise NativeUnavailable(unavailable_reason())
    key = source_key(source, toolchain)
    directory = cache_dir()
    so_path = os.path.join(directory, f"{key}.so")
    meta_path = os.path.join(directory, f"{key}.json")
    names = list(names)
    if os.path.exists(so_path):
        if _meta_ok(meta_path, so_path, toolchain):
            try:
                lib = LoadedLibrary(so_path, names, toolchain)
                if metrics is not None:
                    metrics.inc("native.cache.hits")
                return lib
            except OSError:
                pass  # corrupt object that still had a valid-looking sidecar
        _evict(so_path, meta_path)
    if metrics is not None:
        metrics.inc("native.cache.misses")
    _compile(source, toolchain, so_path)
    return LoadedLibrary(so_path, names, toolchain)
