"""C source generation for fused regions and the shuffle gather.

The native backend reuses :mod:`repro.gpusim.fuse`'s partition: each
fused ALU region (a straight-line run of ``BinOp``/``UnOp``/``Mov``/
``Sel``/``Special``/``LdParam``) is lowered to one C function over the
run state's register arrays.  The generated code replicates the vector
backend's *value semantics* exactly:

* registers hold the promoted dtypes only — ``bool`` (uint8_t 0/1),
  ``int64`` and ``float64`` — and every operation is emitted at the
  dtype numpy promotion would produce (bools coerce to 0/1 int64 in
  arithmetic, comparisons compare at the joined operand dtype, ...);
* integer ``add``/``sub``/``mul``/``neg`` wrap modulo 2^64 through
  unsigned casts, ``div``/``mod`` emulate ``np.floor_divide`` /
  ``np.remainder`` including the zero-divisor -> 0 result, shifts mask
  the count to 6 bits (the x86 behavior numpy's C loops inherit), and
  ``min``/``max`` propagate NaN operands exactly like ``np.minimum`` /
  ``np.maximum`` (``(a <= b || isnan(a)) ? a : b``);
* every value is classified by *shape class* — scalar (S), lane row
  (R), block column (C) or full (F) — mirroring the vector backend's
  zero-stride broadcast views.  Outputs are written at their class's
  core shape and re-broadcast by the Python glue, so downstream
  closures observe the same stride structure the vector backend
  produces.

Static inference happens at plan-build time against an environment of
register ``(dtype, class)`` facts threaded through the whole fused
trace; anything the inference cannot prove (unknown dtypes after
divergent merges, unsupported op/dtype combinations such as bitwise
float math) simply keeps its vector closure.  The runtime glue
re-validates every assumption per call (dtypes, stride classes,
sanitizer off, full mask) and delegates to the wrapped vector closure
on any mismatch, so the C path can never change results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...vir.instructions import (
    BinOp,
    Imm,
    LdParam,
    Mov,
    Reg,
    Sel,
    Special,
    UnOp,
)
from ..compile import _div

# shape classes; bitwise-or is the lattice join (R|C == F).
S, R, C, F = 0, 1, 2, 3

_CORE_SHAPES = {S: (), R: "row", C: "col", F: "full"}

#: special-register kind -> (dtype, class); mirrors fuse._sp cores.
SPECIAL_INFO = {
    "tid": ("i", R),
    "laneid": ("i", R),
    "warpid": ("i", R),
    "ctaid": ("i", C),
    "ntid": ("i", S),
    "nctaid": ("i", S),
}

_DT_C = {"b": "uint8_t", "i": "int64_t", "f": "double"}
_DT_NP = {"b": np.dtype(np.bool_), "i": np.dtype(np.int64),
          "f": np.dtype(np.float64)}

#: numpy comparison / logical ops (operands uncoerced, result bool).
_CMP = frozenset({"lt", "le", "gt", "ge", "eq", "ne"})
_CMP_C = {"lt": "<", "le": "<=", "gt": ">", "ge": ">=",
          "eq": "==", "ne": "!="}

#: global-buffer dtype codes shared with the generated ``nb_load``.
BUF_CODES = {
    np.dtype(np.float32): 0, np.dtype(np.float64): 1,
    np.dtype(np.int32): 2, np.dtype(np.int64): 3,
    np.dtype(np.uint32): 4, np.dtype(np.uint64): 5,
    np.dtype(np.int16): 6, np.dtype(np.uint16): 7,
    np.dtype(np.int8): 8, np.dtype(np.uint8): 9,
}

PREAMBLE = r"""
#include <stdint.h>
#include <math.h>

#define EXPORT __attribute__((visibility("default")))

static inline int64_t i64_add(int64_t a, int64_t b)
{ return (int64_t)((uint64_t)a + (uint64_t)b); }
static inline int64_t i64_sub(int64_t a, int64_t b)
{ return (int64_t)((uint64_t)a - (uint64_t)b); }
static inline int64_t i64_mul(int64_t a, int64_t b)
{ return (int64_t)((uint64_t)a * (uint64_t)b); }
static inline int64_t i64_neg(int64_t a)
{ return (int64_t)(0u - (uint64_t)a); }
static inline int64_t i64_shl(int64_t a, int64_t b)
{ return (int64_t)((uint64_t)a << ((uint64_t)b & 63)); }
static inline int64_t i64_shr(int64_t a, int64_t b)
{ return a >> ((uint64_t)b & 63); }
/* np.floor_divide: floor quotient, 0 on zero divisor.  The -1 divisor
 * is handled before the hardware divide: INT64_MIN / -1 traps on x86,
 * while numpy wraps (and -a is exact for every other dividend). */
static inline int64_t i64_fdiv(int64_t a, int64_t b)
{
    int64_t q, r;
    if (b == 0) return 0;
    if (b == -1) return i64_neg(a);
    q = a / b; r = a % b;
    if (r != 0 && ((r < 0) != (b < 0))) q -= 1;
    return q;
}
/* np.remainder: sign of divisor, 0 on zero divisor (or -1: the
 * remainder is always 0, and INT64_MIN % -1 traps on x86). */
static inline int64_t i64_fmod(int64_t a, int64_t b)
{
    int64_t r;
    if (b == 0 || b == -1) return 0;
    r = a % b;
    if (r != 0 && ((r < 0) != (b < 0))) r += b;
    return r;
}
static inline double d_fmod_np(double a, double b)
{
    double r = fmod(a, b);
    if (r != 0.0 && ((r < 0.0) != (b < 0.0))) r += b;
    return r;
}
static inline int64_t i64_min(int64_t a, int64_t b) { return a < b ? a : b; }
static inline int64_t i64_max(int64_t a, int64_t b) { return a > b ? a : b; }
/* numpy minimum/maximum NaN propagation: (a <= b || isnan(a)) ? a : b */
static inline double d_min_np(double a, double b)
{ return (a <= b || isnan(a)) ? a : b; }
static inline double d_max_np(double a, double b)
{ return (a >= b || isnan(a)) ? a : b; }

/* global-buffer element load, converted to float64 like the engine. */
static const int64_t nb_item[10] = {4, 8, 4, 8, 4, 8, 2, 2, 1, 1};
static inline double nb_load(const void *p, int64_t code, int64_t i)
{
    switch (code) {
    case 0: return (double)((const float *)p)[i];
    case 1: return ((const double *)p)[i];
    case 2: return (double)((const int32_t *)p)[i];
    case 3: return (double)((const int64_t *)p)[i];
    case 4: return (double)((const uint32_t *)p)[i];
    case 5: return (double)((const uint64_t *)p)[i];
    case 6: return (double)((const int16_t *)p)[i];
    case 7: return (double)((const uint16_t *)p)[i];
    case 8: return (double)((const int8_t *)p)[i];
    default: return (double)((const uint8_t *)p)[i];
    }
}
"""


class Unsupported(Exception):
    """An instruction the C emitter cannot lower (bad op/dtype combo)."""


def join_dt(a, b):
    """Promotion join for *uncoerced* operands (b < i < f)."""
    if a is None or b is None:
        return None
    for dt in ("f", "i", "b"):
        if a == dt or b == dt:
            return dt
    return None


def coerced_dt(dt):
    """dtype after ``_coerce_bool`` (predicates become 0/1 int64)."""
    return "i" if dt == "b" else dt


def imm_dt(value):
    if isinstance(value, (bool, np.bool_)):
        return "b"
    if isinstance(value, (int, np.integer)):
        return "i"
    return "f"


def c_literal(value, dt):
    """Exact C literal for a folded constant of register dtype ``dt``."""
    if dt == "b":
        return "1" if value else "0"
    if dt == "i":
        v = int(value)
        if v == -(2 ** 63):
            return "(-INT64_C(9223372036854775807) - 1)"
        if not -(2 ** 63) <= v < 2 ** 63:
            raise Unsupported(f"int literal out of int64 range: {v}")
        return f"INT64_C({v})"
    v = float(value)
    if v != v:
        return "((double)NAN)"
    if v == float("inf"):
        return "((double)INFINITY)"
    if v == float("-inf"):
        return "(-(double)INFINITY)"
    return f"{v.hex()}"


_NOTCONST = object()


@dataclass
class Val:
    """One SSA value during planning: C expression + static facts."""

    expr: str
    dt: str          # 'b' | 'i' | 'f' | None (unknown)
    kl: int          # shape class
    const: object = _NOTCONST  # python-semantics folded value


@dataclass
class Slot:
    """One runtime input of a generated function."""

    kind: str    # "reg" | "sp" | "lp"
    name: str    # register name / special kind / parameter name
    disp: str    # display string for the unwritten-register error
    dt: str
    kl: int
    var: str     # C local the innermost body loads it into


def _cast(expr, src, dst):
    if src == dst:
        return expr
    if dst == "f":
        return f"(double)({expr})"
    if dst == "i":
        return f"(int64_t)({expr})"
    return f"(uint8_t)({expr})"


def _nonzero(expr, dt):
    if dt == "b":
        return f"({expr})"
    if dt == "f":
        return f"(({expr}) != 0.0)"
    return f"(({expr}) != 0)"


_WRAP_FN = {"add": "i64_add", "sub": "i64_sub", "mul": "i64_mul"}
_F_INFIX = {"add": "+", "sub": "-", "mul": "*"}


def binop_expr(op, a: Val, b: Val):
    """C expression + result dtype for one ``BinOp``; raises
    :class:`Unsupported` for combinations numpy itself would reject or
    that have no exact C counterpart."""
    da, db = a.dt, b.dt
    if da is None or db is None:
        raise Unsupported(op)
    if op in _CMP:
        jt = join_dt(da, db)
        ea, eb = _cast(a.expr, da, jt), _cast(b.expr, db, jt)
        return f"(uint8_t)(({ea}) {_CMP_C[op]} ({eb}))", "b"
    if op == "land":
        return f"(uint8_t)({_nonzero(a.expr, da)} && {_nonzero(b.expr, db)})", "b"
    if op == "lor":
        return f"(uint8_t)({_nonzero(a.expr, da)} || {_nonzero(b.expr, db)})", "b"
    # arithmetic: operands coerced (bool -> int64)
    ca, cb = coerced_dt(da), coerced_dt(db)
    jt = join_dt(ca, cb)
    ea, eb = _cast(a.expr, da, jt), _cast(b.expr, db, jt)
    if op in ("add", "sub", "mul"):
        if jt == "i":
            return f"{_WRAP_FN[op]}({ea}, {eb})", "i"
        return f"(({ea}) {_F_INFIX[op]} ({eb}))", "f"
    if op == "div":
        if jt == "i":
            return f"i64_fdiv({ea}, {eb})", "i"
        return f"(({ea}) / ({eb}))", "f"
    if op == "idiv":
        if jt == "i":
            return f"i64_fdiv({ea}, {eb})", "i"
        return f"floor(({ea}) / ({eb}))", "f"
    if op == "mod":
        if jt == "i":
            return f"i64_fmod({ea}, {eb})", "i"
        return f"d_fmod_np({ea}, {eb})", "f"
    if op == "min":
        fn = "i64_min" if jt == "i" else "d_min_np"
        return f"{fn}({ea}, {eb})", jt
    if op == "max":
        fn = "i64_max" if jt == "i" else "d_max_np"
        return f"{fn}({ea}, {eb})", jt
    if op in ("and", "or", "xor", "shl", "shr"):
        if jt != "i":
            raise Unsupported(f"{op} on float")
        if op == "shl":
            return f"i64_shl({ea}, {eb})", "i"
        if op == "shr":
            return f"i64_shr({ea}, {eb})", "i"
        sym = {"and": "&", "or": "|", "xor": "^"}[op]
        return f"(({ea}) {sym} ({eb}))", "i"
    raise Unsupported(op)


def unop_expr(op, a: Val):
    da = a.dt
    if da is None:
        raise Unsupported(op)
    if op == "lnot":
        if da == "f":
            return f"(uint8_t)(({a.expr}) == 0.0)", "b"
        return f"(uint8_t)(({a.expr}) == 0)", "b"
    ca = coerced_dt(da)
    ea = _cast(a.expr, da, ca)
    if op == "neg":
        if ca == "i":
            return f"i64_neg({ea})", "i"
        return f"(-({ea}))", "f"
    if op == "bnot":
        if ca != "i":
            raise Unsupported("bnot on float")
        return f"(~({ea}))", "i"
    raise Unsupported(op)


def sel_expr(cond: Val, a: Val, b: Val):
    if None in (cond.dt, a.dt, b.dt):
        raise Unsupported("sel")
    jt = join_dt(a.dt, b.dt)
    ea, eb = _cast(a.expr, a.dt, jt), _cast(b.expr, b.dt, jt)
    return f"({_nonzero(cond.expr, cond.dt)} ? ({ea}) : ({eb}))", jt


# ---------------------------------------------------------------------
# constant folding (vector-backend python semantics on literals)
# ---------------------------------------------------------------------

def _cbv(v):
    if isinstance(v, (bool, np.bool_)):
        return int(v)
    return v


def _fold_binop(op, a, b):
    """Replicate the *vector* region's generated expression on python
    literal values (python infix operators where the region source uses
    them, numpy helpers where it calls helpers)."""
    if op in _CMP:
        import operator as _op

        fn = {"lt": _op.lt, "le": _op.le, "gt": _op.gt, "ge": _op.ge,
              "eq": _op.eq, "ne": _op.ne}[op]
        return fn(a, b)
    if op == "land":
        return np.logical_and(a, b)
    if op == "lor":
        return np.logical_or(a, b)
    a, b = _cbv(a), _cbv(b)
    if op == "div":
        return _div(a, b)
    if op == "idiv":
        return np.floor_divide(a, b)
    if op == "min":
        return np.minimum(a, b)
    if op == "max":
        return np.maximum(a, b)
    import operator as _op

    fn = {"add": _op.add, "sub": _op.sub, "mul": _op.mul, "mod": _op.mod,
          "and": _op.and_, "or": _op.or_, "xor": _op.xor,
          "shl": _op.lshift, "shr": _op.rshift}[op]
    return fn(a, b)


def _fold_unop(op, a):
    if op == "lnot":
        return np.logical_not(a)
    if op == "neg":
        return -np.asarray(_cbv(a))
    return np.bitwise_not(np.asarray(_cbv(a)))


def _const_val(value):
    """(expr, dt, const) for a folded python value, via the same
    ``np.asarray`` wrap the vector backend's ``_0d`` applies."""
    arr = np.asarray(value)
    kind = arr.dtype.kind
    if kind == "b":
        dt = "b"
    elif kind in "iu":
        dt = "i"
    elif kind == "f":
        dt = "f"
    else:
        raise Unsupported(f"constant dtype {arr.dtype}")
    return c_literal(arr.item(), dt), dt


# ---------------------------------------------------------------------
# planner core (shared by regions and loops)
# ---------------------------------------------------------------------

class Planner:
    """Walk FUSIBLE instructions building C statements and an input
    signature against a register-environment of (dtype, class) facts.

    ``read_reg``/``write_reg`` are provided by the region or loop
    subclass — regions bind SSA temps only, loops add storage access
    and write-back bookkeeping."""

    def __init__(self, env):
        self.env = env
        self.inputs = []          # ordered Slots
        self._input_index = {}    # (kind, name) -> Slot
        self.bind = {}            # reg name -> Val
        self.stmts = []           # (class, line) pairs
        self.counter = 0
        self.ok = True
        self.n_instrs = 0

    def _sym(self):
        self.counter += 1
        return f"t{self.counter}"

    def slot(self, kind, name, disp, dt, kl):
        key = (kind, name)
        found = self._input_index.get(key)
        if found is None:
            found = Slot(kind, name, disp, dt, kl,
                         var=f"x{len(self.inputs)}")
            self.inputs.append(found)
            self._input_index[key] = found
        return found

    def input_val(self, sl):
        """The C expression reading one input Slot (regions load every
        input into an ``x{k}`` local; the loop planner overrides this
        with a direct strided pointer read)."""
        return Val(sl.var, sl.dt, sl.kl)

    def read_reg(self, operand):
        """Resolve a register read (region variant: bind else input)."""
        val = self.bind.get(operand.name)
        if val is not None:
            return val
        dt, kl = self.env.get(operand.name, (None, F))
        if dt is None:
            self.ok = False
        sl = self.slot("reg", operand.name, str(operand), dt, kl)
        return self.input_val(sl)

    def operand(self, op):
        if isinstance(op, Imm):
            dt = imm_dt(op.value)
            try:
                expr = c_literal(np.asarray(op.value).item(), dt)
            except (OverflowError, ValueError, Unsupported):
                self.ok = False
                expr = "0"
            return Val(expr, dt, S, const=op.value)
        return self.read_reg(op)

    def write_reg(self, dst, val):
        self.bind[dst.name] = val
        self.env[dst.name] = (val.dt, val.kl)

    def emit(self, instr, val):
        """Materialize a computed value as a C temp (non-const only)."""
        if val.const is not _NOTCONST or val.dt is None:
            self.write_reg(instr.dst, val)
            return
        var = self._sym()
        self.stmts.append(
            (val.kl, f"const {_DT_C[val.dt]} {var} = {val.expr};")
        )
        self.write_reg(instr.dst, Val(var, val.dt, val.kl))

    def gen_instr(self, instr):
        self.n_instrs += 1
        cls = type(instr)
        try:
            if cls is BinOp:
                a, b = self.operand(instr.a), self.operand(instr.b)
                if a.const is not _NOTCONST and b.const is not _NOTCONST:
                    val = self._fold(_fold_binop, instr.op, a, b)
                else:
                    expr, dt = binop_expr(instr.op, a, b)
                    val = Val(expr, dt, a.kl | b.kl)
            elif cls is UnOp:
                a = self.operand(instr.a)
                if a.const is not _NOTCONST:
                    val = self._fold(_fold_unop, instr.op, a)
                else:
                    expr, dt = unop_expr(instr.op, a)
                    val = Val(expr, dt, a.kl)
            elif cls is Mov:
                val = self.operand(instr.a)
            elif cls is Sel:
                c = self.operand(instr.cond)
                a, b = self.operand(instr.a), self.operand(instr.b)
                if (c.const is not _NOTCONST and a.const is not _NOTCONST
                        and b.const is not _NOTCONST):
                    val = self._fold(
                        lambda _o, cv, av, bv: np.where(cv, av, bv),
                        None, c, a, b)
                else:
                    expr, dt = sel_expr(c, a, b)
                    val = Val(expr, dt, c.kl | a.kl | b.kl)
            elif cls is Special:
                info = SPECIAL_INFO.get(instr.kind)
                if info is None:
                    raise Unsupported(f"special {instr.kind}")
                sl = self.slot("sp", instr.kind, instr.kind, *info)
                val = self.input_val(sl)
            elif cls is LdParam:
                sl = self.slot("lp", instr.name, instr.name, "i", S)
                val = self.input_val(sl)
            else:
                raise Unsupported(cls.__name__)
        except Unsupported:
            self.ok = False
            val = Val("0", None, F)
        self.emit(instr, val)

    def _fold(self, fn, op, *vals):
        try:
            folded = fn(op, *[v.const for v in vals])
        except Exception:
            folded = _NOTCONST
        if folded is not _NOTCONST:
            try:
                expr, dt = _const_val(folded)
                return Val(expr, dt, S, const=folded)
            except (Unsupported, OverflowError, ValueError):
                # Folded fine in python but has no exact C literal (e.g.
                # an out-of-int64 product): the vector path would carry
                # the big value onward, so give up rather than diverge.
                self.ok = False
                return Val("0", None, F)
        # Python fold raised (the vector expression would raise at run
        # time only if actually evaluated with these semantics — but a
        # region never folds, it computes): evaluate in C instead.
        try:
            if fn is _fold_unop:
                expr, dt = unop_expr(op, vals[0])
            elif len(vals) == 3:
                expr, dt = sel_expr(*vals)
            else:
                expr, dt = binop_expr(op, *vals)
            return Val(expr, dt, S)
        except Unsupported:
            self.ok = False
            return Val("0", None, F)


# ---------------------------------------------------------------------
# region lowering
# ---------------------------------------------------------------------

@dataclass
class RegionPlan:
    """Everything the glue and the C emitter need for one region."""

    inputs: list                 # Slots, in first-use order
    outs: list                   # (reg name, dt, class, expr)
    stmts: list                  # (class, line)
    n_instrs: int
    max_kl: int
    ok: bool
    fname: str = ""


def plan_region(instrs, env, visible=None) -> RegionPlan:
    """Plan one fused region; always updates ``env`` with the region's
    writes (conservatively when lowering is impossible)."""
    p = Planner(env)
    for instr in instrs:
        p.gen_instr(instr)
    outs = []
    max_kl = S
    for name, val in p.bind.items():
        if visible is not None and name not in visible:
            continue  # dead store: the vector fast path skips it too
        if val.dt is None:
            p.ok = False
            continue
        outs.append((name, val.dt, val.kl, val.expr))
        max_kl |= val.kl
    for kl, _ in p.stmts:
        max_kl |= kl
    if not outs:
        p.ok = False  # nothing observable: not worth a native call
    return RegionPlan(
        inputs=p.inputs, outs=outs, stmts=p.stmts,
        n_instrs=p.n_instrs, max_kl=max_kl, ok=p.ok,
    )


def _input_decls(inputs, pbase=0, mbase=2):
    """Pointer/stride declarations + innermost-body load lines."""
    decls, loads = [], []
    for k, sl in enumerate(inputs):
        ct = _DT_C[sl.dt]
        decls.append(
            f"    const {ct} *p{k} = (const {ct} *)P[{pbase + k}];"
        )
        decls.append(
            f"    const int64_t s{k}a = M[{mbase + 2 * k}], "
            f"s{k}b = M[{mbase + 2 * k + 1}];"
        )
        loads.append(
            f"const {ct} {sl.var} = p{k}[i * s{k}a + j * s{k}b];"
        )
    return decls, loads


_OUT_IDX = {S: "[0]", R: "[j]", C: "[i]", F: "[i * T + j]"}


def region_source(fname, plan: RegionPlan) -> str:
    """One C function evaluating a whole region over (B, T) arrays."""
    nin = len(plan.inputs)
    lines = [f"EXPORT int64_t {fname}(void **P, int64_t *M)", "{"]
    lines.append("    const int64_t B = M[0], T = M[1];")
    lines.append("    (void)B; (void)T;")
    decls, loads = _input_decls(plan.inputs)
    lines.extend(decls)
    for n, (name, dt, kl, expr) in enumerate(plan.outs):
        ct = _DT_C[dt]
        lines.append(f"    {ct} *o{n} = ({ct} *)P[{nin + n}];")
    body = loads + [line for _, line in plan.stmts]
    for n, (name, dt, kl, expr) in enumerate(plan.outs):
        body.append(f"o{n}{_OUT_IDX[kl]} = {expr};")
    if plan.max_kl == S:
        lines.append("    { const int64_t i = 0, j = 0; (void)i; (void)j;")
        lines.extend(f"      {b}" for b in body)
        lines.append("    }")
    elif plan.max_kl == R:
        lines.append("    { const int64_t i = 0; (void)i;")
        lines.append("      for (int64_t j = 0; j < T; j++) {")
        lines.extend(f"        {b}" for b in body)
        lines.append("      } }")
    elif plan.max_kl == C:
        lines.append("    { const int64_t j = 0; (void)j;")
        lines.append("      for (int64_t i = 0; i < B; i++) {")
        lines.extend(f"        {b}" for b in body)
        lines.append("      } }")
    else:
        lines.append("    for (int64_t i = 0; i < B; i++) {")
        lines.append("      for (int64_t j = 0; j < T; j++) {")
        lines.extend(f"        {b}" for b in body)
        lines.append("      }")
        lines.append("    }")
    lines.append("    return 0;")
    lines.append("}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------
# chain lowering: regions + imm-offset shuffles in one function
# ---------------------------------------------------------------------

@dataclass
class ChainPlan:
    """A maximal run of fused regions and immediate-offset shuffles
    lowered as ONE function.  Execution is warp-major: for every
    (block, 32-lane warp window) the whole chain runs out of 32-wide
    stack arrays, so shuffle intermediates never round-trip through
    full (B, T) register arrays and the Python dispatch per closure
    collapses into a single call."""

    inputs: list                 # Slots, in first-use order
    outs: list                   # (reg name, dt, class, expr)
    blocks: list                 # ("lane" | "raw", [lines])
    decls: list                  # function-scope declarations
    n_alu: int                   # region instruction count (event replay)
    n_shfl: int                  # shuffle count (event replay)
    ok: bool
    fname: str = ""


def plan_chain(items, env, suffix_reads) -> ChainPlan:
    """Plan one chain.  ``items`` is the ordered mix of
    ``("region", instrs)`` / ``("shfl", instr)``; ``suffix_reads`` is
    the set of register names read *after* the chain (anything else a
    member binds is chain-internal and stays in stack arrays).  Always
    updates ``env`` with every member's writes, like ``plan_region``.

    Widths <= 32 never cross the 32-lane warp window: a window holds
    whole shuffle groups, so the lane map computed for one window is
    exact for every window.
    """
    from ..fuse import _shfl_source_lanes

    p = Planner(env)
    decls = []
    blocks = []
    stage_n = [0]
    stmt_pos = [0]
    n_shfl = 0

    def close_lane():
        lines = [line for _, line in p.stmts[stmt_pos[0]:]]
        stmt_pos[0] = len(p.stmts)
        if lines:
            blocks.append(("lane", lines))

    def new_stage(dt):
        stage_n[0] += 1
        var = f"stg{stage_n[0]}"
        decls.append(f"{_DT_C[dt]} {var}[32];")
        return var

    def stage_live():
        # Spill every live non-constant binding into a 32-wide stack
        # array so later lane segments (separate C scopes) can still
        # read it.  Input locals are exempt: they are reloaded at the
        # top of every lane segment.  Unread spills are dead stores the
        # compiler drops.
        svars = {sl.var for sl in p.inputs}
        for name, val in list(p.bind.items()):
            if val.const is not _NOTCONST or val.dt is None:
                continue
            e = val.expr
            if e in svars or (e.startswith("stg") and e.endswith("[l]")):
                continue
            var = new_stage(val.dt)
            p.stmts.append((val.kl, f"{var}[l] = {e};"))
            p.bind[name] = Val(f"{var}[l]", val.dt, val.kl)

    for kind, payload in items:
        if not p.ok:
            break
        if kind == "region":
            for instr in payload:
                p.gen_instr(instr)
            continue
        instr = payload
        n_shfl += 1
        src = p.read_reg(instr.src)
        if src.dt is None:
            p.ok = False
            break
        off = instr.offset
        if isinstance(off, Imm):
            v = off.value
            if isinstance(v, bool) or not isinstance(v, (int, np.integer)):
                p.ok = False
                break
            off_val = int(v)
        else:
            # Register offset: resolvable only when the chain itself
            # (or an earlier fold) proves it a compile-time constant —
            # the warp-tree Movs that set shuffle strides always are.
            ov = p.read_reg(off)
            if ov.const is _NOTCONST or ov.dt not in ("i", "b"):
                p.ok = False
                break
            off_val = int(ov.const)
        lanes = _shfl_source_lanes(instr.mode, instr.width, off_val, 32)
        if lanes is None:
            p.ok = False
            break
        stage_live()
        src = p.read_reg(instr.src)  # may have just been staged
        svar = new_stage(src.dt)
        p.stmts.append((src.kl, f"{svar}[l] = {src.expr};"))
        close_lane()
        dvar = new_stage(src.dt)
        mname = f"{dvar}_map"
        decls.append(
            f"static const int64_t {mname}[32] = {{"
            + ", ".join(str(int(x)) for x in lanes) + "};"
        )
        blocks.append(("raw", [
            f"for (int64_t l = 0; l < 32; l++) "
            f"{dvar}[l] = {svar}[{mname}[l]];"
        ]))
        p.write_reg(instr.dst, Val(f"{dvar}[l]", src.dt, F))

    outs = []
    for name, val in p.bind.items():
        if name not in suffix_reads:
            continue  # chain-internal: lives and dies in stack arrays
        if val.dt is None:
            p.ok = False
            continue
        outs.append((name, val.dt, val.kl, val.expr))
    if not outs:
        p.ok = False
    for n, (name, dt, kl, expr) in enumerate(outs):
        p.stmts.append((kl, f"o{n}{_OUT_IDX[kl]} = {expr};"))
    close_lane()
    return ChainPlan(
        inputs=p.inputs, outs=outs, blocks=blocks, decls=decls,
        n_alu=p.n_instrs, n_shfl=n_shfl, ok=p.ok,
    )


def chain_source(fname, plan: ChainPlan) -> str:
    """One warp-major C function for a whole region/shuffle chain."""
    nin = len(plan.inputs)
    lines = [f"EXPORT int64_t {fname}(void **P, int64_t *M)", "{"]
    lines.append("    const int64_t B = M[0], T = M[1];")
    decls, loads = _input_decls(plan.inputs)
    lines.extend(decls)
    for n, (name, dt, kl, expr) in enumerate(plan.outs):
        ct = _DT_C[dt]
        lines.append(f"    {ct} *o{n} = ({ct} *)P[{nin + n}];")
    for d in plan.decls:
        lines.append(f"    {d}")
    lines.append("    for (int64_t i = 0; i < B; i++) {")
    lines.append("      for (int64_t jb = 0; jb < T; jb += 32) {")
    for kind, body in plan.blocks:
        if kind == "lane":
            lines.append("        for (int64_t l = 0; l < 32; l++) {")
            lines.append("          const int64_t j = jb + l; (void)j;")
            for ld in loads:
                lines.append(f"          {ld}")
            for b in body:
                lines.append(f"          {b}")
            lines.append("        }")
        else:
            for b in body:
                lines.append(f"        {b}")
    lines.append("      }")
    lines.append("    }")
    lines.append("    return 0;")
    lines.append("}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------
# shuffle gather lowering
# ---------------------------------------------------------------------

def shfl_source(fname, dt) -> str:
    """Row-mapped gather: ``out[i, j] = src[i, lane[j]]`` — the exact
    take-along-axis the fast shuffle closure performs once the
    per-lane source map is precomputed (uniform offset)."""
    ct = _DT_C[dt]
    return (
        f"EXPORT int64_t {fname}(void **P, int64_t *M)\n"
        "{\n"
        "    const int64_t B = M[0], T = M[1];\n"
        "    const int64_t sa = M[2], sb = M[3];\n"
        f"    const {ct} *src = (const {ct} *)P[0];\n"
        "    const int64_t *lane = (const int64_t *)P[1];\n"
        f"    {ct} *out = ({ct} *)P[2];\n"
        "    for (int64_t i = 0; i < B; i++) {\n"
        "        for (int64_t j = 0; j < T; j++) {\n"
        "            out[i * T + j] = src[i * sa + lane[j] * sb];\n"
        "        }\n"
        "    }\n"
        "    return 0;\n"
        "}\n"
    )


# ---------------------------------------------------------------------
# environment propagation through non-lowered closures
# ---------------------------------------------------------------------

def apply_boundary_env(instr, env):
    """Update the (dtype, class) environment for a boundary instruction
    executed by its engine/vector closure."""
    from ...vir.instructions import LdGlobal, LdShared, Shfl

    if isinstance(instr, LdGlobal):
        dsts = instr.dst if isinstance(instr.dst, (tuple, list)) else (
            instr.dst,)
        for d in dsts:
            env[d.name] = ("f", F)
    elif isinstance(instr, LdShared):
        env[instr.dst.name] = ("f", F)
    elif isinstance(instr, Shfl):
        src_dt = env.get(instr.src.name, (None, F))[0]
        env[instr.dst.name] = (src_dt, F)
    else:
        dst = getattr(instr, "dst", None)
        if isinstance(dst, Reg):
            env[dst.name] = (None, F)
