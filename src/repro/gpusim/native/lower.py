"""Lower a fused kernel trace to compiled C, closure by closure.

:func:`lower_kernel` walks :func:`repro.gpusim.fuse.fuse_kernel`'s
closure trace — the same partition the vector backend executes — and
replaces what it can prove lowerable with wrappers around functions of
one generated C translation unit, compiled once per kernel through
:mod:`repro.gpusim.native.toolchain`'s disk cache:

* **fused regions** become single C loop nests over the run state's
  register arrays (:func:`repro.gpusim.native.cgen.plan_region`);
* **megafused While loops** become one C function running *all*
  iterations — condition, body and the width-1 global loads — per call
  (:func:`repro.gpusim.native.cloop.plan_loop`);
* **uniform-offset shuffles** become precomputed-lane-map C gathers.

Everything else — barriers, atomics, shared memory, divergent control
— keeps its existing vector/compiled closure, so sanitizer hooks and
event accounting stay exactly where they were.  Planning threads a
register environment of ``(dtype, shape-class)`` facts through the
whole trace; any register the static walk cannot type simply pins its
consumers to their vector closures.

Every native wrapper re-validates its plan's assumptions at call time
(dtypes, stride classes, full mask, sanitizer off) and delegates to
the wrapped vector closure on any mismatch — the C path can never
change results, only skip Python dispatch.  Event accounting
(``inst.alu`` per region / per loop phase, load transaction and byte
counters, ``inst.shfl``) is replayed from counters the C functions
return, replicating the vector closures' totals bit-for-bit.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ...obs.fragments import note_fallback
from ...vir.instructions import If, Imm, Reg, Shfl, While
from ..compile import _reader, compile_kernel
from ..engine import (
    _SHFL_WIDTHS,
    SimulationError,
    _promote_dtype,
    memoize_by_identity,
)
from ..fuse import (
    _collect_visible_reads,
    _is_uniform,
    _lp,
    _rd,
    _reg_operands,
    _shfl_source_lanes,
    _sp,
    _vcore,
    _while_divergent_continue,
    fuse_kernel,
)
from . import cloop
from .cgen import (
    BUF_CODES,
    C,
    F,
    PREAMBLE,
    R,
    S,
    _DT_NP,
    _NOTCONST,
    apply_boundary_env,
    chain_source,
    plan_chain,
    plan_region,
    region_source,
    shfl_source,
)
from .cloop import _LoopPlanner, plan_loop, poison_loop_env
from .toolchain import (
    NativeCompileError,
    NativeUnavailable,
    load_or_compile,
)

__all__ = ["NativeKernel", "lower_kernel"]

#: Per-thread reusable loop frames (slot storage + metadata arrays),
#: keyed by compiled-cell identity; see :func:`_make_loop_wrapper`.
_local = threading.local()


@dataclass
class NativeKernel:
    """A kernel's natively-accelerated closure trace plus statistics."""

    kernel_name: str
    trace: list
    stats: dict = field(default_factory=dict)


_NATIVE_MEMO = {}


def lower_kernel(kernel) -> NativeKernel:
    """Lower (and memoize) a kernel's fused trace to native closures.

    Keyed by kernel object identity like ``compile_kernel`` /
    ``fuse_kernel``, so all launches of a cached plan share one
    compiled library.
    """
    return memoize_by_identity(_NATIVE_MEMO, kernel, _lower_fresh)


# ---------------------------------------------------------------------
# runtime glue helpers
# ---------------------------------------------------------------------


def _fetch_input(state, sl):
    """Load one planned input from the run state, in the same order
    (and with the same unwritten-register error) the vector closure's
    first use would."""
    if sl.kind == "reg":
        return _rd(state, sl.name, sl.disp)
    if sl.kind == "sp":
        return _sp(state, sl.name)
    return _lp(state, sl.name)


def _element_strides(arr, nblocks, nthreads):
    """``(block, lane)`` element strides of a register value against
    the (B, T) iteration space, or None when the value's layout does
    not map onto it (the wrapper then falls back)."""
    if arr.ndim == 0:
        return (0, 0)
    item = arr.itemsize
    if arr.ndim == 2 and arr.shape == (nblocks, nthreads):
        sa, sb = arr.strides
    elif arr.ndim == 2 and arr.shape == (1, nthreads):
        sa, sb = 0, arr.strides[1]
    elif arr.ndim == 2 and arr.shape == (nblocks, 1):
        sa, sb = arr.strides[0], 0
    elif arr.ndim == 1 and arr.shape == (nthreads,):
        sa, sb = 0, arr.strides[0]
    else:
        return None
    if sa % item or sb % item:
        return None
    if nblocks == 1:
        sa = 0
    if nthreads == 1:
        sb = 0
    return (sa // item, sb // item)


def _gather_inputs(state, inputs, nblocks, nthreads, P, M, keep):
    """Fetch + validate every planned input; False ⇒ fall back."""
    for sl in inputs:
        arr = _fetch_input(state, sl)
        if not isinstance(arr, np.ndarray) or arr.dtype != _DT_NP[sl.dt]:
            return False
        st = _element_strides(arr, nblocks, nthreads)
        if st is None:
            return False
        observed = (1 if st[1] else 0) | (2 if st[0] else 0)
        if observed | sl.kl != sl.kl:
            return False
        P.append(arr.ctypes.data)
        M.extend(st)
        keep.append(arr)
    return True


def _alloc_core(kl, dt, nblocks, nthreads):
    if kl == S:
        shape = (1,)
    elif kl == R:
        shape = (nthreads,)
    elif kl == C:
        shape = (nblocks,)
    else:
        shape = (nblocks, nthreads)
    return np.empty(shape, dtype=_DT_NP[dt])


def _broadcast_core(core, kl, shape):
    """Re-broadcast a core-shaped output to the full state shape with
    the same stride structure (zero-stride views, readonly) the vector
    backend's ``_bx`` store produces.  Built straight through
    ``ndarray.__new__`` — ~3x cheaper than ``np.broadcast_to`` on this
    per-closure-call hot path."""
    if kl == F:
        return core
    if kl == S:
        strides = (0, 0)
    elif kl == R:
        strides = (0, core.strides[0])
    else:
        strides = (core.strides[0], 0)
    view = np.ndarray.__new__(
        np.ndarray, shape, core.dtype, core, 0, strides
    )
    view.flags.writeable = False
    return view


class _FallbackPlan(Exception):
    """Internal: a plan references something the glue cannot resolve."""


# ---------------------------------------------------------------------
# wrapper factories
# ---------------------------------------------------------------------


def _make_region_wrapper(plan, cell, fallback):
    inputs = plan.inputs
    outs = plan.outs
    n_instrs = plan.n_instrs
    in_specs = [(sl, sl.kl, np.dtype(_DT_NP[sl.dt])) for sl in inputs]
    n_in = len(inputs)
    # Per-thread reusable call frame: pointer/metadata arrays with their
    # addresses precomputed, plus output cores and the broadcast views
    # that go into the register file.  Safe to reuse across launches
    # because compiled traces never mutate register arrays in place and
    # the previous launch's state is dead; a repeat call against the
    # *same* state (divergent replays) reallocates.
    scratch = threading.local()

    def run(state, mask):
        if not state._cur_all or len(state.shape) != 2:
            note_fallback(state, "native.region", "mask-or-shape")
            fallback(state, mask)
            return
        shape = state.shape
        nblocks, nthreads = shape
        frame = getattr(scratch, "frame", None)
        if frame is None or frame[0] != shape or frame[5] == id(state):
            parr = np.empty(n_in + len(outs), dtype=np.uint64)
            marr = np.empty(2 + 2 * n_in, dtype=np.int64)
            marr[0] = nblocks
            marr[1] = nthreads
            views = []
            for j, (name, dt, kl, _) in enumerate(outs):
                core = _alloc_core(kl, dt, nblocks, nthreads)
                parr[n_in + j] = core.ctypes.data
                views.append((name, _broadcast_core(core, kl, shape)))
            call = cell[1](parr.ctypes.data, marr.ctypes.data)
            frame = [shape, parr, marr, call, [None] * n_in, 0, views]
            scratch.frame = frame
        else:
            parr = frame[1]
            marr = frame[2]
            views = frame[6]
        frame[5] = id(state)
        # Identity cache: regions mostly consume other native wrappers'
        # reused output views, which are the *same array objects* every
        # launch — an `is` hit skips validation and pointer extraction
        # (same object implies same dtype, strides and data address; the
        # strong ref pins the id).
        last = frame[4]
        i = 0
        for sl, kl, npdt in in_specs:
            arr = _fetch_input(state, sl)
            if arr is not last[i]:
                if not isinstance(arr, np.ndarray) or arr.dtype != npdt:
                    note_fallback(state, "native.region", "input-dtype")
                    fallback(state, mask)
                    return
                st = _element_strides(arr, nblocks, nthreads)
                if st is None:
                    note_fallback(state, "native.region", "input-strides")
                    fallback(state, mask)
                    return
                observed = (1 if st[1] else 0) | (2 if st[0] else 0)
                if observed | kl != kl:
                    note_fallback(state, "native.region", "input-layout")
                    fallback(state, mask)
                    return
                parr[i] = arr.ctypes.data
                marr[2 + 2 * i] = st[0]
                marr[3 + 2 * i] = st[1]
                last[i] = arr
            i += 1
        frame[3]()
        regs = state.regs
        for name, view in views:
            regs[name] = view
        state.events["inst.alu"] += n_instrs * state._cur_warps

    run._instrs = list(plan.instrs)
    run._native = "region"
    return run


def _resolve_flush(plan):
    """Pre-resolve the loop plan's exit-flush bindings to concrete
    sources: a storage slot, an input index, or a folded constant."""
    by_expr = {}
    for st in list(plan.slots) + list(plan.s_decls):
        by_expr[_LoopPlanner.read_slot(st)] = ("slot", st)
    for k, sl in enumerate(plan.inputs):
        by_expr[cloop.input_expr(k, sl.kl)] = ("input", k)

    def resolve(entries):
        out = []
        for name, val in entries:
            if val.const is not _NOTCONST:
                out.append((name, ("const", np.asarray(val.const))))
                continue
            src = by_expr.get(val.expr)
            if src is None:
                raise _FallbackPlan(val.expr)
            out.append((name, src))
        return out

    return resolve(plan.flush_always), resolve(plan.flush_body)


def _make_loop_wrapper(plan, cell, fallback, instr):
    flush_always, flush_body = _resolve_flush(plan)
    cond_read = _reader(instr.cond)
    cond_trace = fallback._cond_trace
    body_trace = fallback._body_trace
    inputs = plan.inputs
    sites = plan.sites
    slots = plan.slots
    s_decls = plan.s_decls
    m_out = plan.m_out
    # Where in the (1,)-out block / slot list the condition mirror is.
    cond_kl = plan.cond_slot.kl

    def run(state, mask):
        if (
            not state._cur_all
            or state.san is not None
            or len(state.shape) != 2
        ):
            note_fallback(state, "native.loop", "mask-san-or-shape")
            fallback(state, mask)
            return
        nblocks, nthreads = state.shape
        if nthreads % 32:
            # Warp-major execution needs whole 32-lane warps per block.
            note_fallback(state, "native.loop", "partial-warp")
            fallback(state, mask)
            return
        P = []
        M = [nblocks, nthreads, state.executor.loop_cap]
        keep = []
        if not _gather_inputs(state, inputs, nblocks, nthreads, P, M,
                              keep):
            note_fallback(state, "native.loop", "input-gather")
            fallback(state, mask)
            return
        # Slot storage is reused across launches: a top-level megafused
        # loop closure runs at most once per launch, and the previous
        # launch's state (which the flush aliased into) is dead by the
        # time the next one starts.  Keyed per thread so parallel
        # sweeps never share a frame.
        frames = getattr(_local, "loop_frames", None)
        if frames is None:
            frames = _local.loop_frames = {}
        frame = frames.get(id(cell))
        if (
            frame is None
            or frame[3] != (nblocks, nthreads)
            # id collision after GC only forces a fresh allocation
            or frame[4] == id(state)  # re-entered within one launch
        ):
            slot_bufs = {
                st.name: _alloc_core(st.kl, st.dt, nblocks, nthreads)
                for st in slots
            }
            s_bufs = {
                st.name: np.empty((1,), dtype=_DT_NP[st.dt])
                for st in s_decls
            }
            marr = np.empty(plan.m_len, dtype=np.int64)
            n_ptr = len(P) + len(slots) + len(sites) + len(s_decls)
            parr = np.empty(n_ptr, dtype=np.uint64)
            frame = [
                slot_bufs, s_bufs, marr, (nblocks, nthreads), 0,
                parr, cell[1](parr.ctypes.data, marr.ctypes.data),
                [slot_bufs[st.name].ctypes.data for st in slots],
                [s_bufs[st.name].ctypes.data for st in s_decls],
            ]
            frames[id(cell)] = frame
        else:
            slot_bufs, s_bufs, marr, parr = (
                frame[0], frame[1], frame[2], frame[5]
            )
        frame[4] = id(state)
        P.extend(frame[7])
        site_arrs = []
        for s in sites:
            arr = state.device.get(s.buf)
            code = BUF_CODES.get(arr.dtype) if isinstance(
                arr, np.ndarray) else None
            if (
                code is None
                or arr.ndim != 1
                or not arr.flags["C_CONTIGUOUS"]
            ):
                note_fallback(state, "native.loop", "site-buffer")
                fallback(state, mask)
                return
            site_arrs.append(arr)
            P.append(arr.ctypes.data)
            M.extend((len(arr), code))
        P.extend(frame[8])
        parr[:] = P
        marr[:len(M)] = M
        marr[len(M):] = 0
        rc = frame[6]()

        iters = int(marr[m_out + cloop.OUT_ITERS])
        evals = int(marr[m_out + cloop.OUT_EVALS])
        completed = int(marr[m_out + cloop.OUT_COMPLETED])
        events = state.events
        warps = state._cur_warps
        events["inst.alu"] += plan.n_cond * evals * warps
        if plan.n_body_alu and completed:
            events["inst.alu"] += plan.n_body_alu * completed * warps
        for s, arr in zip(sites, site_arrs):
            base = m_out + cloop.OUT_N_FIXED + 2 * s.index
            execs = int(marr[base + 1])
            if not execs:
                continue
            trans = int(marr[base])
            events["mem.global.ld.trans"] += trans
            events["mem.global.bytes"] += trans * 128
            events["mem.global.bytes_useful"] += (
                execs * mask.size * arr.dtype.itemsize
            )
            events["inst.ld.global"] += execs * warps

        def storage_value(st):
            if st.kl == S:
                return s_bufs[st.name]
            return slot_bufs[st.name]

        def flush():
            regs = state.regs
            phases = (flush_always, flush_body) if iters else (
                flush_always,)
            for phase in phases:
                for name, (kind, ref) in phase:
                    if kind == "const":
                        regs[name] = np.broadcast_to(ref, state.shape)
                    elif kind == "input":
                        regs[name] = np.broadcast_to(
                            keep[ref], state.shape)
                    else:
                        regs[name] = _broadcast_core(
                            storage_value(ref), ref.kl, state.shape)

        if rc == cloop.RC_OOB:
            # The vector loop raises from inside the load closure —
            # before any exit flush — with all-lane index extremes.
            site = sites[int(marr[m_out + cloop.OUT_ERR_SITE])]
            arr = site_arrs[site.index]
            lo = int(marr[m_out + cloop.OUT_ERR_LO])
            hi = int(marr[m_out + cloop.OUT_ERR_HI])
            raise SimulationError(
                f"kernel {state.kernel.name!r}: out-of-bounds access to "
                f"global buffer {site.buf!r} (size {len(arr)}, index "
                f"range [{lo}, {hi}])"
            )
        flush()
        if rc == cloop.RC_CAP:
            cap = state.executor.loop_cap
            raise SimulationError(
                f"kernel {state.kernel.name!r}: loop exceeded "
                f"iteration cap ({cap})"
            )
        if rc == cloop.RC_MIXED:
            note_fallback(state, "native.loop", "divergent-continue")
            mirror = storage_value(plan.cond_slot)
            cond = _broadcast_core(mirror, cond_kl, state.shape)
            _while_divergent_continue(
                state, mask, cond, iters, cond_trace, body_trace,
                cond_read,
            )

    run._cond_trace = cond_trace
    run._body_trace = body_trace
    run._instr = instr
    run._loop_fused = True
    run._native = "loop"
    return run


def _make_shfl_wrapper(instr, dt, cell, fallback):
    """Uniform-offset shuffle via the compiled row gather; preserves
    ``_c_shfl_fast``'s offset-resolution and guard structure, and
    delegates to the vector closure whenever they fail."""
    mode0, width0, off_op = instr.mode, instr.width, instr.offset
    off_imm = None
    if (
        isinstance(off_op, Imm)
        and isinstance(off_op.value, (int, np.integer))
        and not isinstance(off_op.value, bool)
    ):
        off_imm = int(off_op.value)
    off_name = off_op.name if isinstance(off_op, Reg) else None
    src_name = instr.src.name
    dst = instr.dst
    npdt = np.dtype(_DT_NP[dt])
    # Shuffle outputs are always written under a full mask here, so the
    # wrapper can assign the register directly when the output dtype is
    # already in promoted form (it always is for b/i/f cores); otherwise
    # it goes through state._write like the vector closure.
    direct_assign = _promote_dtype(npdt) == npdt
    cache = {}
    scratch = threading.local()

    def run(state, mask):
        if (
            state.san is not None
            or not state._cur_all
            or len(state.shape) != 2
            or instr.mode is not mode0
            or instr.width != width0
            or instr.offset is not off_op
            or width0 not in _SHFL_WIDTHS
        ):
            note_fallback(state, "native.shfl", "guard")
            fallback(state, mask)
            return
        offset = off_imm
        if offset is None:
            off = state.regs.get(off_name) if off_name is not None else None
            if (
                isinstance(off, np.ndarray)
                and off.ndim
                and off.dtype.kind in "biu"
            ):
                if _is_uniform(off):
                    offset = int(off.flat[0])
                elif off.shape == state.shape:
                    core = _vcore(off)
                    if bool((core == core.flat[0]).all()):
                        offset = int(core.flat[0])
            if offset is None:
                note_fallback(state, "native.shfl", "offset-not-uniform")
                fallback(state, mask)
                return
        src = state.regs.get(src_name)
        key = (state.nthreads, offset)
        source_lane = cache.get(key)
        if source_lane is None:
            source_lane = _shfl_source_lanes(
                mode0, width0, offset, state.nthreads
            )
            if source_lane is None:
                note_fallback(state, "native.shfl", "offset-unsupported")
                fallback(state, mask)
                return
            cache[key] = source_lane
        nblocks, nthreads = state.shape
        frame = getattr(scratch, "frame", None)
        if (
            frame is None
            or frame[0] != state.shape
            or frame[5] == id(state)
        ):
            out = np.empty(state.shape, dtype=npdt)
            parr = np.empty(3, dtype=np.uint64)
            parr[2] = out.ctypes.data
            marr = np.empty(4, dtype=np.int64)
            marr[0] = nblocks
            marr[1] = nthreads
            call = cell[1](parr.ctypes.data, marr.ctypes.data)
            frame = [state.shape, parr, marr, out, call, 0, None, None]
            scratch.frame = frame
        else:
            parr = frame[1]
            marr = frame[2]
            out = frame[3]
        frame[5] = id(state)
        # Same identity cache as the region wrapper: a steady-state src
        # is another wrapper's reused output object, so validation and
        # pointer extraction run once per frame, not per call.
        if src is not frame[6]:
            if (
                not isinstance(src, np.ndarray)
                or src.ndim != 2
                or src.shape != state.shape
                or src.dtype != npdt
            ):
                note_fallback(state, "native.shfl", "src-dtype-shape")
                fallback(state, mask)
                return
            item = src.itemsize
            sa, sb = src.strides
            if sa % item or sb % item:
                note_fallback(state, "native.shfl", "src-strides")
                fallback(state, mask)
                return
            parr[0] = src.ctypes.data
            marr[2] = sa // item
            marr[3] = sb // item
            frame[6] = src
        if source_lane is not frame[7]:
            parr[1] = source_lane.ctypes.data
            frame[7] = source_lane
        frame[4]()
        if direct_assign:
            state.regs[dst.name] = out
        else:
            state._write(dst, out, mask)
        state.events["inst.shfl"] += state._cur_warps

    run._specialized = "shfl"
    run._instr = instr
    run._native = "shfl"
    return run


def _suffix_reads(trace, reads):
    """Register names a *fused* trace reads through the register file —
    the set a chain's outputs must cover.  Mirrors
    ``fuse._collect_visible_reads`` but walks fused traces, where
    regions carry their instruction list on ``_instrs``."""
    for closure in trace:
        instrs = getattr(closure, "_instrs", None)
        if instrs is not None:
            bound = set()
            for instr in instrs:
                for name in _reg_operands(instr):
                    if name not in bound:
                        reads.add(name)
                bound.add(instr.dst.name)
            continue
        instr = closure._instr
        reads.update(_reg_operands(instr))
        if isinstance(instr, If):
            _suffix_reads(closure._then_trace, reads)
            _suffix_reads(closure._else_trace, reads)
        elif isinstance(instr, While):
            _suffix_reads(closure._cond_trace, reads)
            _suffix_reads(closure._body_trace, reads)


def _make_chain_wrapper(plan, cell, members, items):
    """One call for a run of consecutive region/shuffle closures.  The
    compiled function walks warp-major, keeps every chain-internal value
    in 32-lane stack arrays, and only materializes registers the rest of
    the trace actually reads.  Any guard miss replays the individual
    member wrappers, which carry their own fallbacks."""
    inputs = plan.inputs
    outs = plan.outs
    n_alu = plan.n_alu
    n_shfl = plan.n_shfl
    in_specs = [(sl, sl.kl, np.dtype(_DT_NP[sl.dt])) for sl in inputs]
    n_in = len(inputs)
    scratch = threading.local()

    def fallback(state, mask):
        for m in members:
            m(state, mask)

    def run(state, mask):
        if (
            state.san is not None
            or not state._cur_all
            or len(state.shape) != 2
            or state.shape[1] % 32
        ):
            note_fallback(state, "native.chain", "mask-san-or-shape")
            fallback(state, mask)
            return
        shape = state.shape
        nblocks, nthreads = shape
        frame = getattr(scratch, "frame", None)
        if frame is None or frame[0] != shape or frame[5] == id(state):
            parr = np.empty(n_in + len(outs), dtype=np.uint64)
            marr = np.empty(2 + 2 * n_in, dtype=np.int64)
            marr[0] = nblocks
            marr[1] = nthreads
            views = []
            for j, (name, dt, kl, _) in enumerate(outs):
                core = _alloc_core(kl, dt, nblocks, nthreads)
                parr[n_in + j] = core.ctypes.data
                views.append((name, _broadcast_core(core, kl, shape)))
            call = cell[1](parr.ctypes.data, marr.ctypes.data)
            frame = [shape, parr, marr, call, [None] * n_in, 0, views]
            scratch.frame = frame
        else:
            parr = frame[1]
            marr = frame[2]
            views = frame[6]
        frame[5] = id(state)
        last = frame[4]
        i = 0
        for sl, kl, npdt in in_specs:
            arr = _fetch_input(state, sl)
            if arr is not last[i]:
                if not isinstance(arr, np.ndarray) or arr.dtype != npdt:
                    note_fallback(state, "native.chain", "input-dtype")
                    fallback(state, mask)
                    return
                st = _element_strides(arr, nblocks, nthreads)
                if st is None:
                    note_fallback(state, "native.chain", "input-strides")
                    fallback(state, mask)
                    return
                observed = (1 if st[1] else 0) | (2 if st[0] else 0)
                if observed | kl != kl:
                    note_fallback(state, "native.chain", "input-layout")
                    fallback(state, mask)
                    return
                parr[i] = arr.ctypes.data
                marr[2 + 2 * i] = st[0]
                marr[3 + 2 * i] = st[1]
                last[i] = arr
            i += 1
        frame[3]()
        regs = state.regs
        for name, view in views:
            regs[name] = view
        events = state.events
        warps = state._cur_warps
        events["inst.alu"] += n_alu * warps
        if n_shfl:
            events["inst.shfl"] += n_shfl * warps

    all_instrs = []
    for kind, payload in items:
        if kind == "region":
            all_instrs.extend(payload)
        else:
            all_instrs.append(payload)
    run._instrs = all_instrs
    run._native = "chain"
    run._members = members
    return run


# ---------------------------------------------------------------------
# the lowering walk
# ---------------------------------------------------------------------


class _Lowerer:
    def __init__(self, kernel_name, visible):
        self.kernel_name = kernel_name
        self.visible = visible
        self.chunks = []      # C function sources
        self.names = []       # exported symbol names
        self.pending = []     # (cell, fname) to bind after compile
        self.counter = 0
        self.lowered_regions = 0
        self.lowered_loops = 0
        self.lowered_shfls = 0
        self.lowered_chains = 0
        self.fallback_closures = 0

    def _fname(self, prefix):
        self.counter += 1
        return f"{prefix}{self.counter}"

    def _add(self, fname, source):
        self.chunks.append(source)
        self.names.append(fname)
        cell = [None, None]  # [call(p, m), binder] bound after compile
        self.pending.append((cell, fname))
        return cell

    def lower_trace(self, trace, env, tail_reads=frozenset()):
        out = []
        k = 0
        n = len(trace)
        while k < n:
            items, members = self._chain_run(trace, k)
            if items is not None:
                suffix = set(tail_reads)
                _suffix_reads(trace[k + len(members):], suffix)
                chain = self._lower_chain(items, members, env, suffix)
                if chain is not None:
                    out.append(chain)
                    k += len(members)
                    continue
            closure = trace[k]
            if (
                not hasattr(closure, "_instrs")
                and isinstance(getattr(closure, "_instr", None), If)
            ):
                # Branch traces can host chains of their own; their
                # tail is whatever follows the If in this trace.
                rest = set(tail_reads)
                _suffix_reads(trace[k + 1:], rest)
                out.append(self._lower_closure(closure, env, rest))
            else:
                out.append(self._lower_closure(closure, env))
            k += 1
        return out

    @staticmethod
    def _chain_item(closure):
        """A chainable trace step: a fused straight-line region, or a
        shuffle with a compile-time-constant offset (its 32-lane source
        map is window-invariant for widths <= 32)."""
        instrs = getattr(closure, "_instrs", None)
        if instrs is not None:
            return ("region", instrs)
        instr = getattr(closure, "_instr", None)
        if (
            isinstance(instr, Shfl)
            and instr.width in _SHFL_WIDTHS
            and instr.width <= 32
        ):
            # Offset constancy (Imm or const-folded register) is
            # checked by plan_chain, which sees the fold state.
            return ("shfl", instr)
        return None

    def _chain_run(self, trace, k):
        """Maximal run of chainable closures starting at ``trace[k]``.
        Worth compiling as one unit only when it mixes at least one
        region with at least one shuffle; otherwise the per-closure
        lowerings already cover it."""
        items = []
        members = []
        n_shfl = n_region = 0
        for closure in trace[k:]:
            item = self._chain_item(closure)
            if item is None:
                break
            items.append(item)
            members.append(closure)
            if item[0] == "shfl":
                n_shfl += 1
            else:
                n_region += 1
        if len(members) >= 2 and n_shfl and n_region:
            return items, members
        return None, None

    def _lower_chain(self, items, members, env, suffix_reads):
        env_probe = dict(env)
        plan = plan_chain(items, env_probe, suffix_reads)
        if not plan.ok:
            return None
        # The member wrappers double as the runtime fallback path;
        # lowering them walks the same instructions and applies the
        # same env updates as the probe above.
        wrappers = [self._lower_closure(c, env) for c in members]
        plan.fname = self._fname("chain")
        cell = self._add(plan.fname, chain_source(plan.fname, plan))
        self.lowered_chains += 1
        return _make_chain_wrapper(plan, cell, wrappers, items)

    def _lower_closure(self, closure, env, tail_reads=frozenset()):
        instrs = getattr(closure, "_instrs", None)
        if instrs is not None:
            return self._lower_region(closure, instrs, env)
        instr = closure._instr
        if isinstance(instr, While):
            return self._lower_while(closure, instr, env)
        if isinstance(instr, If):
            return self._lower_if(closure, instr, env, tail_reads)
        if isinstance(instr, Shfl):
            return self._lower_shfl(closure, instr, env)
        apply_boundary_env(instr, env)
        self.fallback_closures += 1
        return closure

    def _lower_region(self, closure, instrs, env):
        plan = plan_region(instrs, env, self.visible)
        if not plan.ok or plan.n_instrs < 2:
            self.fallback_closures += 1
            return closure
        plan.fname = self._fname("region")
        plan.instrs = instrs
        cell = self._add(plan.fname, region_source(plan.fname, plan))
        self.lowered_regions += 1
        return _make_region_wrapper(plan, cell, closure)

    def _lower_while(self, closure, instr, env):
        if not getattr(closure, "_loop_fused", False):
            # Not vector-megafusible (divergence-capable body, shared
            # memory, ...): keep the whole closure, poison its writes.
            poison_loop_env(closure._cond_trace, closure._body_trace, env)
            self.fallback_closures += 1
            return closure
        self.counter += 1
        plan = plan_loop(
            self.counter, instr, closure._cond_trace,
            closure._body_trace, env,
        )
        if plan is None:
            self.fallback_closures += 1
            return closure
        cell = self._add(plan.fname, plan.source)
        try:
            wrapper = _make_loop_wrapper(plan, cell, closure, instr)
        except _FallbackPlan:
            self.chunks.pop()
            self.names.pop()
            self.pending.pop()
            self.fallback_closures += 1
            return closure
        self.lowered_loops += 1
        return wrapper

    def _lower_if(self, closure, instr, env, tail_reads=frozenset()):
        env_then = dict(env)
        env_else = dict(env)
        # The else trace runs after the then trace, so a then-side chain
        # must also keep registers the else side reads alive.
        then_tail = set(tail_reads)
        _suffix_reads(closure._else_trace, then_tail)
        then_trace = self.lower_trace(
            closure._then_trace, env_then, then_tail
        )
        else_trace = self.lower_trace(
            closure._else_trace, env_else, tail_reads
        )
        _merge_branch_envs(env, env_then, env_else)
        from ..fuse import _c_if_fast

        return _c_if_fast(instr, then_trace, else_trace)

    def _lower_shfl(self, closure, instr, env):
        src_dt = env.get(instr.src.name, (None, F))[0]
        apply_boundary_env(instr, env)
        if src_dt is None:
            self.fallback_closures += 1
            return closure
        fname = self._fname("shfl")
        cell = self._add(fname, shfl_source(fname, src_dt))
        self.lowered_shfls += 1
        return _make_shfl_wrapper(instr, src_dt, cell, closure)


def _merge_branch_envs(env, env_then, env_else):
    """Post-If environment: a register keeps its dtype only when both
    branch walks agree; classes widen to F (masked merges materialize
    full arrays). Registers untouched by both branches keep their entry
    facts."""
    for name in set(env_then) | set(env_else):
        a = env_then.get(name, (None, F))
        b = env_else.get(name, (None, F))
        pre = env.get(name)
        if a == b and a == pre:
            continue
        dt = a[0] if a[0] == b[0] else None
        env[name] = (dt, F)


def _lower_fresh(kernel) -> NativeKernel:
    from ...obs import default_metrics, get_tracer

    fused = fuse_kernel(kernel)
    metrics = default_metrics()
    with get_tracer().span("native.kernel", kernel=kernel.name) as span:
        visible = set()
        _collect_visible_reads(compile_kernel(kernel).trace, visible)
        lo = _Lowerer(kernel.name, visible)
        env = {}
        trace = lo.lower_trace(fused.trace, env)
        lib = None
        if lo.names:
            source = PREAMBLE + "\n" + "\n".join(lo.chunks)
            start = time.perf_counter()
            try:
                lib = load_or_compile(source, lo.names, metrics)
            except NativeCompileError:
                metrics.inc("native.compile_errors")
                trace = list(fused.trace)
                lo.lowered_regions = 0
                lo.lowered_loops = 0
                lo.lowered_shfls = 0
                lo.lowered_chains = 0
            else:
                metrics.observe(
                    "native.compile_us",
                    (time.perf_counter() - start) * 1e6,
                )
                for cell, fname in lo.pending:
                    cell[0] = lib.get(fname)
                    cell[1] = lib.binder(fname)
        stats = dict(fused.stats)
        stats.update(
            native_regions=lo.lowered_regions,
            native_loops=lo.lowered_loops,
            native_shfls=lo.lowered_shfls,
            native_chains=lo.lowered_chains,
            native_fallbacks=lo.fallback_closures,
        )
        span.set(
            regions=lo.lowered_regions,
            loops=lo.lowered_loops,
            shfls=lo.lowered_shfls,
            chains=lo.lowered_chains,
        )
    metrics.inc("native.kernels")
    metrics.inc("native.lowered_regions", lo.lowered_regions)
    metrics.inc("native.lowered_loops", lo.lowered_loops)
    metrics.inc("native.lowered_shfls", lo.lowered_shfls)
    metrics.inc("native.lowered_chains", lo.lowered_chains)
    metrics.inc("native.fallback_closures", lo.fallback_closures)
    nk = NativeKernel(kernel_name=kernel.name, trace=trace, stats=stats)
    nk._lib = lib  # keepalive: wrappers hold only bare function cells
    return nk
